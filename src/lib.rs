//! Umbrella crate re-exporting the full `lpomp` public API.
pub use lpomp_core as core;
pub use lpomp_machine as machine;
pub use lpomp_npb as npb;
pub use lpomp_prof as prof;
pub use lpomp_runtime as runtime;
pub use lpomp_tlb as tlb;
pub use lpomp_vm as vm;

/// The types nearly every experiment binary and example needs, in one
/// import: `use lpomp::prelude::*;`.
///
/// Covers configuring a system ([`System`](prelude::System) /
/// [`SystemBuilder`](prelude::SystemBuilder),
/// [`PagePolicy`](prelude::PagePolicy),
/// [`ProfileSpec`](prelude::ProfileSpec)), running it
/// ([`run_sim`](prelude::run_sim), [`run_system`](prelude::run_system),
/// [`SweepSpec`](prelude::SweepSpec), [`par_map`](prelude::par_map)),
/// the platforms ([`opteron_2x2`](prelude::opteron_2x2),
/// [`xeon_2x2_ht`](prelude::xeon_2x2_ht)), the workloads
/// ([`AppKind`](prelude::AppKind), [`Class`](prelude::Class)) and
/// reading the results ([`Event`](prelude::Event),
/// [`Counters`](prelude::Counters),
/// [`ProfileSheet`](prelude::ProfileSheet),
/// [`TextTable`](prelude::TextTable), [`fnum`](prelude::fnum)).
pub mod prelude {
    pub use lpomp_core::{
        default_workers, figure4_thread_counts, par_map, run_backend, run_sim, run_system, Arch,
        BackendKind, GridCell, IncrementalSweep, JsonlSink, KeyedGrid, MMArch, MultiRunReport,
        MultiSystem, PagePolicy, PopulatePolicy, ProfileSpec, RunOpts, RunRecord, RunStore,
        SetupStats, Shard, StoreKey, SweepResults, SweepSpec, System, SystemBuilder, SystemConfig,
        TenancyConfig, TenantReport, TenantSpec,
    };
    pub use lpomp_machine::{
        arm64_2x2_16k, arm64_2x2_4k, modern_x86_2x2, opteron_2x2, xeon_2x2_ht, AsidMode,
        MachineConfig, NumaConfig, NumaPlacement,
    };
    pub use lpomp_npb::{AppKind, Class, Kernel, Skew};
    pub use lpomp_prof::table::fnum;
    pub use lpomp_prof::{normalized, Counters, Event, ProfileSheet, TextTable};
    pub use lpomp_runtime::{Schedule, StealPolicy, Team};
}
