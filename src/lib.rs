//! Umbrella crate re-exporting the full `lpomp` public API.
pub use lpomp_core as core;
pub use lpomp_machine as machine;
pub use lpomp_npb as npb;
pub use lpomp_prof as prof;
pub use lpomp_runtime as runtime;
pub use lpomp_tlb as tlb;
pub use lpomp_vm as vm;
