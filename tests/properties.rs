//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning crates.

use proptest::prelude::*;
use std::collections::HashMap;

use lpomp::runtime::{plan, Mailbox, Plan, Schedule, ShVec};
use lpomp::tlb::{Assoc, TlbArray};
use lpomp::vm::{
    AccessKind, AddressSpace, Backing, BuddyAllocator, PageSize, Populate, PteFlags, VirtAddr,
};

// ---------------------------------------------------------------- buddy

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random alloc/free sequences: no overlap between live blocks, free
    /// bytes account exactly, and freeing everything restores the heap.
    #[test]
    fn buddy_allocator_invariants(ops in proptest::collection::vec((0u8..2, 0u8..6), 1..120)) {
        let total = 16 * 1024 * 1024u64;
        let mut buddy = BuddyAllocator::new(total);
        let mut live: Vec<(u64, u8)> = Vec::new();
        for (op, order) in ops {
            if op == 0 || live.is_empty() {
                if let Ok(pa) = buddy.alloc(order) {
                    // natural alignment
                    prop_assert_eq!(pa.0 % (4096u64 << order), 0);
                    // no overlap with any live block
                    let len = 4096u64 << order;
                    for &(base, o) in &live {
                        let blen = 4096u64 << o;
                        prop_assert!(pa.0 + len <= base || base + blen <= pa.0,
                            "overlap: new [{:#x},{len}) vs live [{:#x},{blen})", pa.0, base);
                    }
                    live.push((pa.0, order));
                }
            } else {
                let idx = (order as usize) % live.len();
                let (base, o) = live.swap_remove(idx);
                buddy.free(lpomp::vm::PhysAddr(base), o);
            }
            let live_bytes: u64 = live.iter().map(|&(_, o)| 4096u64 << o).sum();
            prop_assert_eq!(buddy.free_bytes(), total - live_bytes);
        }
        for (base, o) in live.drain(..) {
            buddy.free(lpomp::vm::PhysAddr(base), o);
        }
        prop_assert_eq!(buddy.free_bytes(), total);
    }

    /// Every schedule covers every iteration exactly once.
    #[test]
    fn schedules_cover_exactly_once(
        start in 0usize..1000,
        len in 0usize..2000,
        threads in 1usize..9,
        which in 0u8..4,
        chunk in 1usize..64,
    ) {
        let sched = match which {
            0 => Schedule::Static,
            1 => Schedule::StaticChunk(chunk),
            2 => Schedule::Dynamic(chunk),
            _ => Schedule::Guided(chunk),
        };
        let p = plan(start..start + len, threads, sched);
        let mut seen = vec![0u8; start + len];
        let chunks = match &p {
            Plan::Fixed(per) => per.iter().flatten().cloned().collect::<Vec<_>>(),
            Plan::Queue(q) => q.clone(),
        };
        for c in chunks {
            prop_assert!(c.start >= start && c.end <= start + len);
            for i in c {
                seen[i] += 1;
            }
        }
        for (i, &count) in seen.iter().enumerate().take(start + len).skip(start) {
            prop_assert_eq!(count, 1, "iteration {} covered {} times", i, count);
        }
    }

    /// The TLB array behaves exactly like a reference LRU model.
    #[test]
    fn tlb_array_matches_reference_lru(
        vpns in proptest::collection::vec(0u64..32, 1..300),
        capacity in 1u16..9,
    ) {
        let mut tlb = TlbArray::new(PageSize::Small4K, capacity, Assoc::Full);
        // Reference: vector of vpns, MRU at the front.
        let mut model: Vec<u64> = Vec::new();
        for vpn in vpns {
            let hit = tlb.lookup(vpn);
            let model_hit = model.contains(&vpn);
            prop_assert_eq!(hit, model_hit, "vpn {} divergence", vpn);
            if hit {
                let pos = model.iter().position(|&v| v == vpn).unwrap();
                let v = model.remove(pos);
                model.insert(0, v);
            } else {
                tlb.fill(vpn);
                if model.len() == capacity as usize {
                    model.pop();
                }
                model.insert(0, vpn);
            }
        }
    }

    /// ShVec stores every written value at the right index.
    #[test]
    fn shvec_random_writes_read_back(
        writes in proptest::collection::vec((0usize..64, any::<f64>()), 0..200)
    ) {
        let v: ShVec<f64> = ShVec::new(64, VirtAddr(0x1000));
        let mut model: HashMap<usize, f64> = HashMap::new();
        for (i, val) in writes {
            v.set_raw(i, val);
            model.insert(i, val);
        }
        for (i, val) in model {
            let got = v.get_raw(i);
            prop_assert!(got == val || (got.is_nan() && val.is_nan()));
        }
    }

    /// Mailbox channels are FIFO for arbitrary message contents.
    #[test]
    fn mailbox_is_fifo(msgs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 1..32)
    ) {
        let mb = Mailbox::new(2);
        for m in &msgs {
            mb.try_send(0, 1, m).unwrap();
        }
        for m in &msgs {
            let got = mb.recv(0, 1);
            prop_assert_eq!(&got, m);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Map random pages, then every mapped address translates and every
    /// unmapped address faults; unmapping restores the fault.
    #[test]
    fn page_table_translation_consistency(
        pages in proptest::collection::btree_set(0u64..512, 1..40)
    ) {
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        let base = 0x4000_0000u64;
        // Map one 4 KB page region per selected page number.
        for &p in &pages {
            asp.mmap_fixed(
                &mut frames,
                VirtAddr(base + p * 4096),
                4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "p",
            ).unwrap();
        }
        for p in 0u64..512 {
            let va = VirtAddr(base + p * 4096 + (p % 4096));
            let r = asp.access(&mut frames, va, AccessKind::Read);
            prop_assert_eq!(r.is_ok(), pages.contains(&p), "page {}", p);
        }
        // Translations of distinct pages hit distinct frames.
        let mut seen = std::collections::HashSet::new();
        for &p in &pages {
            let va = VirtAddr(base + p * 4096);
            let t = asp.access(&mut frames, va, AccessKind::Read).unwrap().translation();
            prop_assert!(seen.insert(t.pa.0), "frame reused at page {}", p);
        }
    }

    /// THP promotion never breaks translation: after promoting a random
    /// subset-populated region, every previously mapped page still
    /// translates (now possibly via a 2 MB leaf) and unpopulated pages
    /// still fault.
    #[test]
    fn promotion_preserves_translations(
        touched in proptest::collection::btree_set(0u64..1024, 1..200)
    ) {
        use lpomp::vm::promote_region;
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        let base = asp.mmap(
            &mut frames,
            2 * 2 * 1024 * 1024, // two 2 MB chunks of 4 KB pages
            PageSize::Small4K,
            PteFlags::rw(),
            Backing::Anonymous,
            Populate::OnDemand,
            "heap",
        ).unwrap();
        for &p in &touched {
            asp.access(&mut frames, base.add(p * 4096), AccessKind::Write).unwrap();
        }
        let report = promote_region(&mut asp, &mut frames, base).unwrap();
        // A chunk is promoted iff all of its 512 pages were touched.
        let chunk_full = |c: u64| (c * 512..(c + 1) * 512).all(|p| touched.contains(&p));
        let expected = (0..2).filter(|&c| chunk_full(c)).count() as u64;
        prop_assert_eq!(report.promoted, expected);
        for p in 0u64..1024 {
            let va = base.add(p * 4096);
            let in_promoted = chunk_full(p / 512);
            let r = asp.access(&mut frames, va, AccessKind::Read);
            if in_promoted {
                let t = r.unwrap().translation();
                prop_assert_eq!(t.size, PageSize::Large2M);
            } else if touched.contains(&p) {
                let t = r.unwrap().translation();
                prop_assert_eq!(t.size, PageSize::Small4K);
            } else {
                // Untouched page in an unpromoted chunk: demand fault
                // resolves it (OnDemand region), so access succeeds too —
                // but it must be a *fault*, not an existing mapping.
                prop_assert!(r.unwrap().faulted());
            }
        }
    }

    /// NUMA node assignment is always in range and respects page-size
    /// clamping (a page never straddles nodes).
    #[test]
    fn numa_nodes_in_range_and_page_uniform(
        addr in 0u64..(1 << 33),
        which in 0u8..3,
    ) {
        use lpomp::machine::{NumaConfig, NumaPlacement};
        let placement = match which {
            0 => NumaPlacement::MasterNode,
            1 => NumaPlacement::Interleave4K,
            _ => NumaPlacement::Interleave2M,
        };
        let n = NumaConfig::opteron(placement);
        for page in [PageSize::Small4K, PageSize::Large2M] {
            let node = n.node_of(VirtAddr(addr), page);
            prop_assert!(node < n.nodes);
            // Every address inside the same page maps to the same node.
            let base = VirtAddr(addr & !page.offset_mask());
            prop_assert_eq!(n.node_of(base, page), n.node_of(base.add(page.bytes() - 1), page));
        }
    }

    /// Reductions over random data agree between native engine runs with
    /// different schedules (within floating-point reassociation).
    #[test]
    fn native_reductions_schedule_independent(
        data in proptest::collection::vec(-1000.0f64..1000.0, 1..500),
        chunk in 1usize..32,
    ) {
        use lpomp::runtime::{Reduction, Team};
        let v: ShVec<f64> = ShVec::from_fn(data.len(), VirtAddr(0x1000), |i| data[i]);
        let mut results = Vec::new();
        for sched in [Schedule::Static, Schedule::Dynamic(chunk), Schedule::Guided(chunk)] {
            let mut team = Team::native(3);
            let s = team.parallel_for_reduce(0..data.len(), sched, Reduction::Max, &|_, r| {
                r.map(|i| v.get_raw(i)).fold(f64::NEG_INFINITY, f64::max)
            });
            results.push(s);
        }
        // max is exact regardless of association.
        prop_assert_eq!(results[0], results[1]);
        prop_assert_eq!(results[1], results[2]);
        let direct = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(results[0], direct);
    }
}
