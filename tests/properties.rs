//! Randomized property tests on the core data structures and invariants,
//! spanning crates.
//!
//! Formerly written with `proptest`; now driven by a local SplitMix64
//! generator so the tier-1 suite builds with no external dependencies
//! (and every case is reproducible from its printed seed).

use std::collections::HashMap;

use lpomp::runtime::{plan, Mailbox, Plan, Schedule, ShVec};
use lpomp::tlb::{Assoc, TlbArray};
use lpomp::vm::{
    AccessKind, AddressSpace, Backing, BuddyAllocator, PageSize, Populate, PteFlags, VirtAddr,
};

/// SplitMix64: tiny, fast, and statistically fine for test-input
/// generation (not used by any simulated component).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform f64 in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

// ---------------------------------------------------------------- buddy

/// Random alloc/free sequences: no overlap between live blocks, free
/// bytes account exactly, and freeing everything restores the heap.
#[test]
fn buddy_allocator_invariants() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0xb0dd * 7919 + seed);
        let total = 16 * 1024 * 1024u64;
        let mut buddy = BuddyAllocator::new(total);
        let mut live: Vec<(u64, u8)> = Vec::new();
        let n_ops = 1 + rng.below(119) as usize;
        for _ in 0..n_ops {
            let op = rng.below(2) as u8;
            let order = rng.below(6) as u8;
            if op == 0 || live.is_empty() {
                if let Ok(pa) = buddy.alloc(order) {
                    // natural alignment
                    assert_eq!(pa.0 % (4096u64 << order), 0, "seed {seed}");
                    // no overlap with any live block
                    let len = 4096u64 << order;
                    for &(base, o) in &live {
                        let blen = 4096u64 << o;
                        assert!(
                            pa.0 + len <= base || base + blen <= pa.0,
                            "seed {seed} overlap: new [{:#x},{len}) vs live [{:#x},{blen})",
                            pa.0,
                            base
                        );
                    }
                    live.push((pa.0, order));
                }
            } else {
                let idx = (order as usize) % live.len();
                let (base, o) = live.swap_remove(idx);
                buddy.free(lpomp::vm::PhysAddr(base), o);
            }
            let live_bytes: u64 = live.iter().map(|&(_, o)| 4096u64 << o).sum();
            assert_eq!(buddy.free_bytes(), total - live_bytes, "seed {seed}");
        }
        for (base, o) in live.drain(..) {
            buddy.free(lpomp::vm::PhysAddr(base), o);
        }
        assert_eq!(buddy.free_bytes(), total, "seed {seed}");
    }
}

/// Every schedule covers every iteration exactly once.
#[test]
fn schedules_cover_exactly_once() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x5ced * 104729 + seed);
        let start = rng.below(1000) as usize;
        let len = rng.below(2000) as usize;
        let threads = 1 + rng.below(8) as usize;
        let chunk = 1 + rng.below(63) as usize;
        let sched = match rng.below(5) {
            0 => Schedule::Static,
            1 => Schedule::StaticChunk(chunk),
            2 => Schedule::Dynamic(chunk),
            3 => Schedule::Guided(chunk),
            _ => Schedule::Hierarchical { chunk },
        };
        let p = plan(start..start + len, threads, sched);
        let mut seen = vec![0u8; start + len];
        let chunks = match &p {
            Plan::Fixed(per) | Plan::Hier(per) => per.iter().flatten().cloned().collect::<Vec<_>>(),
            Plan::Queue(q) => q.clone(),
        };
        for c in chunks {
            assert!(c.start >= start && c.end <= start + len, "seed {seed}");
            for i in c {
                seen[i] += 1;
            }
        }
        for (i, &count) in seen.iter().enumerate().take(start + len).skip(start) {
            assert_eq!(
                count, 1,
                "seed {seed}: iteration {i} covered {count} times ({sched:?})"
            );
        }
    }
}

/// The TLB array behaves exactly like a reference LRU model.
#[test]
fn tlb_array_matches_reference_lru() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x71b * 31337 + seed);
        let capacity = 1 + rng.below(8) as u16;
        let mut tlb = TlbArray::new(PageSize::Small4K, capacity, Assoc::Full);
        // Reference: vector of vpns, MRU at the front.
        let mut model: Vec<u64> = Vec::new();
        let n = 1 + rng.below(299);
        for _ in 0..n {
            let vpn = rng.below(32);
            let hit = tlb.lookup(vpn);
            let model_hit = model.contains(&vpn);
            assert_eq!(hit, model_hit, "seed {seed}: vpn {vpn} divergence");
            if hit {
                let pos = model.iter().position(|&v| v == vpn).unwrap();
                let v = model.remove(pos);
                model.insert(0, v);
            } else {
                tlb.fill(vpn);
                if model.len() == capacity as usize {
                    model.pop();
                }
                model.insert(0, vpn);
            }
        }
    }
}

/// ShVec stores every written value at the right index.
#[test]
fn shvec_random_writes_read_back() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x5bec * 65537 + seed);
        let v: ShVec<f64> = ShVec::new(64, VirtAddr(0x1000));
        let mut model: HashMap<usize, f64> = HashMap::new();
        let writes = rng.below(200);
        for _ in 0..writes {
            let i = rng.below(64) as usize;
            // Include non-finite values: NaN payloads must round-trip too.
            let val = match rng.below(16) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => rng.f64_in(-1e300, 1e300),
            };
            v.set_raw(i, val);
            model.insert(i, val);
        }
        for (i, val) in model {
            let got = v.get_raw(i);
            assert!(
                got == val || (got.is_nan() && val.is_nan()),
                "seed {seed}: index {i}: {got} != {val}"
            );
        }
    }
}

/// Mailbox channels are FIFO for arbitrary message contents.
#[test]
fn mailbox_is_fifo() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x3a11 * 49999 + seed);
        let msgs: Vec<Vec<u8>> = (0..1 + rng.below(31))
            .map(|_| {
                let len = rng.below(64) as usize;
                (0..len).map(|_| rng.below(256) as u8).collect()
            })
            .collect();
        let mb = Mailbox::new(2);
        for m in &msgs {
            mb.try_send(0, 1, m).unwrap();
        }
        for m in &msgs {
            let got = mb.recv(0, 1);
            assert_eq!(&got, m, "seed {seed}");
        }
    }
}

// ---------------------------------------------------------------- vm

/// Map random pages, then every mapped address translates and every
/// unmapped address faults; unmapping restores the fault.
#[test]
fn page_table_translation_consistency() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(0x9a9e * 15485863 + seed);
        let pages: std::collections::BTreeSet<u64> =
            (0..1 + rng.below(39)).map(|_| rng.below(512)).collect();
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        let base = 0x4000_0000u64;
        // Map one 4 KB page region per selected page number.
        for &p in &pages {
            asp.mmap_fixed(
                &mut frames,
                VirtAddr(base + p * 4096),
                4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "p",
            )
            .unwrap();
        }
        for p in 0u64..512 {
            let va = VirtAddr(base + p * 4096 + (p % 4096));
            let r = asp.access(&mut frames, va, AccessKind::Read);
            assert_eq!(r.is_ok(), pages.contains(&p), "seed {seed}: page {p}");
        }
        // Translations of distinct pages hit distinct frames.
        let mut seen = std::collections::HashSet::new();
        for &p in &pages {
            let va = VirtAddr(base + p * 4096);
            let t = asp
                .access(&mut frames, va, AccessKind::Read)
                .unwrap()
                .translation();
            assert!(seen.insert(t.pa.0), "seed {seed}: frame reused at page {p}");
        }
    }
}

/// THP promotion never breaks translation: after promoting a random
/// subset-populated region, every previously mapped page still
/// translates (now possibly via a 2 MB leaf) and unpopulated pages
/// still fault.
#[test]
fn promotion_preserves_translations() {
    for seed in 0..24u64 {
        use lpomp::vm::promote_region;
        let mut rng = Rng::new(0x7a9 * 32452843 + seed);
        let mut touched: std::collections::BTreeSet<u64> =
            (0..1 + rng.below(199)).map(|_| rng.below(1024)).collect();
        // Occasionally force a fully-touched chunk so the promoted case is
        // exercised (random subsets of 1024 rarely cover 512 pages).
        if seed % 3 == 0 {
            touched.extend(0..512u64);
        }
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        let base = asp
            .mmap(
                &mut frames,
                2 * 2 * 1024 * 1024, // two 2 MB chunks of 4 KB pages
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::OnDemand,
                "heap",
            )
            .unwrap();
        for &p in &touched {
            asp.access(&mut frames, base.add(p * 4096), AccessKind::Write)
                .unwrap();
        }
        let report = promote_region(&mut asp, &mut frames, base).unwrap();
        // A chunk is promoted iff all of its 512 pages were touched.
        let chunk_full = |c: u64| (c * 512..(c + 1) * 512).all(|p| touched.contains(&p));
        let expected = (0..2).filter(|&c| chunk_full(c)).count() as u64;
        assert_eq!(report.promoted, expected, "seed {seed}");
        for p in 0u64..1024 {
            let va = base.add(p * 4096);
            let in_promoted = chunk_full(p / 512);
            let r = asp.access(&mut frames, va, AccessKind::Read);
            if in_promoted {
                let t = r.unwrap().translation();
                assert_eq!(t.size, PageSize::Large2M, "seed {seed}: page {p}");
            } else if touched.contains(&p) {
                let t = r.unwrap().translation();
                assert_eq!(t.size, PageSize::Small4K, "seed {seed}: page {p}");
            } else {
                // Untouched page in an unpromoted chunk: demand fault
                // resolves it (OnDemand region), so access succeeds too —
                // but it must be a *fault*, not an existing mapping.
                assert!(r.unwrap().faulted(), "seed {seed}: page {p}");
            }
        }
    }
}

/// Physical NUMA properties of the node-aware buddy allocator: every
/// frame's home node is in range, node-targeted allocation lands on the
/// requested node while it has memory, and an allocated block of any
/// order never straddles a node boundary — so a page's home is a
/// property of the page alone (what the machine layer's cached
/// micro-TLB home relies on).
#[test]
fn numa_nodes_in_range_and_blocks_node_uniform() {
    use lpomp::vm::{BuddyAllocator, PhysAddr};
    for seed in 0..24u64 {
        let mut rng = Rng::new(0x17a * 49979687 + seed);
        let nodes = 2 + rng.below(3) as usize; // 2..=4
        let mb = 16 * (1 + rng.below(8)); // 16..=128 MB
        let mut frames = BuddyAllocator::with_nodes(mb * 1024 * 1024, nodes);
        assert_eq!(frames.nodes(), nodes);
        for _ in 0..64 {
            let node = rng.below(nodes as u64) as usize;
            let order = rng.below(10) as u8;
            let Ok(pa) = frames.alloc_on_node(node, order) else {
                continue;
            };
            let home = frames.node_of(pa);
            assert!(home < nodes, "seed {seed}: node out of range");
            // Every address inside the block lives on one node.
            let last = PhysAddr(pa.0 + (4096u64 << order) - 1);
            assert_eq!(
                home,
                frames.node_of(last),
                "seed {seed}: block straddles a node boundary"
            );
        }
    }
}

/// Twin-system equivalence: the same kernel on a system with the
/// khugepaged daemon and on one without it produces bit-identical
/// checksums, and afterwards every virtual page carries the same
/// presence and protection (writable / executable) bits. The daemon may
/// change page *sizes* and physical placement — never program-visible
/// semantics. (Accessed/dirty are excluded: collapse OR-combines them
/// across a chunk by design.)
#[test]
fn khugepaged_twin_systems_are_semantically_identical() {
    use lpomp::core::System;
    use lpomp::machine::opteron_2x2;
    use lpomp::npb::{AppKind, Class};

    for (app, threads) in [(AppKind::Cg, 4), (AppKind::Mg, 2)] {
        let run_twin = |daemon: bool| {
            let mut kernel = app.build(Class::S);
            let builder = System::builder(opteron_2x2()).threads(threads);
            let builder = if daemon {
                builder.thp_daemon(true)
            } else {
                builder.thp()
            };
            let mut sys = builder.build(kernel.as_mut()).unwrap();
            let checksum = kernel.run(&mut sys.team);
            (checksum, sys)
        };
        let (cs_off, sys_off) = run_twin(false);
        let (cs_on, sys_on) = run_twin(true);
        assert_eq!(
            cs_off.to_bits(),
            cs_on.to_bits(),
            "{app}: daemon changed the checksum"
        );
        let off = sys_off.team.engine().unwrap();
        let on = sys_on.team.engine().unwrap();
        // The comparison below is only meaningful if the daemon really
        // rewrote mappings while the kernel ran.
        assert!(
            on.daemon().unwrap().totals().collapsed > 0,
            "{app}: daemon never collapsed anything — twin test is vacuous"
        );
        // Identical region layout...
        let spans = |e: &lpomp::runtime::SimEngine| -> Vec<(u64, u64)> {
            e.aspace.vmas().iter().map(|v| (v.start.0, v.len)).collect()
        };
        assert_eq!(spans(off), spans(on), "{app}: VMA layout diverged");
        // ...and identical per-page permissions, page by page.
        for &(start, len) in &spans(off) {
            for off_bytes in (0..len).step_by(4096) {
                let va = VirtAddr(start + off_bytes);
                let perms = |t: Option<lpomp::vm::Translation>| {
                    t.map(|t| (t.flags.present, t.flags.writable, t.flags.executable))
                };
                assert_eq!(
                    perms(off.aspace.page_table().probe(va)),
                    perms(on.aspace.page_table().probe(va)),
                    "{app}: permissions diverged at {va:?}"
                );
            }
        }
    }
}

/// The NUMA machinery (first-touch placement, the balancing daemon,
/// replicated page tables) is a pure performance layer: a run with all
/// of it enabled computes bit-for-bit the same checksum as a plain
/// NUMA run, over the same VMA layout, with identical per-page
/// permissions. Only cycle counts may differ.
#[test]
fn numa_daemon_twin_systems_are_semantically_identical() {
    use lpomp::core::{PagePolicy, PopulatePolicy, System};
    use lpomp::machine::{opteron_2x2, NumaConfig, NumaPlacement};
    use lpomp::npb::{AppKind, Class};
    use lpomp::vm::NumaDaemonConfig;

    // MG's block-partitioned grids give the daemon node-dominated pages
    // to migrate; CG's shared sparse vectors are accessed from both
    // nodes, so the daemon judges them but (correctly) leaves them put.
    for (app, threads, placement, expect_migrate) in [
        (AppKind::Mg, 4, NumaPlacement::FirstTouch, true),
        (AppKind::Cg, 4, NumaPlacement::MasterNode, false),
    ] {
        let run_twin = |daemon: bool| {
            let mut machine = opteron_2x2();
            let numa = NumaConfig::opteron(placement);
            machine.numa = Some(if daemon {
                numa.with_replicated_pt()
            } else {
                numa
            });
            let mut builder = System::builder(machine)
                .policy(PagePolicy::Small4K)
                .threads(threads)
                .populate(PopulatePolicy::OnDemand);
            if daemon {
                builder = builder.numa_daemon(NumaDaemonConfig::default());
            }
            let mut kernel = app.build(Class::S);
            let mut sys = builder.build(kernel.as_mut()).unwrap();
            let checksum = kernel.run(&mut sys.team);
            (checksum, sys)
        };
        let (cs_off, sys_off) = run_twin(false);
        let (cs_on, sys_on) = run_twin(true);
        assert_eq!(
            cs_off.to_bits(),
            cs_on.to_bits(),
            "{app}: NUMA daemon/replication changed the checksum"
        );
        let off = sys_off.team.engine().unwrap();
        let on = sys_on.team.engine().unwrap();
        // Meaningful only if the daemon actually did something: either
        // it migrated pages, or it at least judged remote-majority pages
        // (CG's genuinely shared pages are kept put by design).
        let totals = on.numa_daemon().unwrap().totals();
        if expect_migrate {
            assert!(
                totals.migrated > 0,
                "{app}: daemon never migrated a page — twin test is vacuous"
            );
        } else {
            assert!(
                totals.migrated + totals.stuck_shared > 0,
                "{app}: daemon never judged a page — twin test is vacuous"
            );
        }
        let spans = |e: &lpomp::runtime::SimEngine| -> Vec<(u64, u64)> {
            e.aspace.vmas().iter().map(|v| (v.start.0, v.len)).collect()
        };
        assert_eq!(spans(off), spans(on), "{app}: VMA layout diverged");
        for &(start, len) in &spans(off) {
            for off_bytes in (0..len).step_by(4096) {
                let va = VirtAddr(start + off_bytes);
                let perms = |t: Option<lpomp::vm::Translation>| {
                    t.map(|t| (t.flags.present, t.flags.writable, t.flags.executable))
                };
                assert_eq!(
                    perms(off.aspace.page_table().probe(va)),
                    perms(on.aspace.page_table().probe(va)),
                    "{app}: permissions diverged at {va:?}"
                );
            }
        }
    }
}

/// Reductions over random data agree between native engine runs with
/// different schedules (within floating-point reassociation).
#[test]
fn native_reductions_schedule_independent() {
    use lpomp::runtime::{Reduction, Team};
    for seed in 0..24u64 {
        let mut rng = Rng::new(0x2ed * 86028121 + seed);
        let data: Vec<f64> = (0..1 + rng.below(499))
            .map(|_| rng.f64_in(-1000.0, 1000.0))
            .collect();
        let chunk = 1 + rng.below(31) as usize;
        let v: ShVec<f64> = ShVec::from_fn(data.len(), VirtAddr(0x1000), |i| data[i]);
        let mut results = Vec::new();
        for sched in [
            Schedule::Static,
            Schedule::Dynamic(chunk),
            Schedule::Guided(chunk),
        ] {
            let mut team = Team::native(3);
            let s = team.parallel_for_reduce(0..data.len(), sched, Reduction::Max, &|_, r| {
                r.map(|i| v.get_raw(i)).fold(f64::NEG_INFINITY, f64::max)
            });
            results.push(s);
        }
        // max is exact regardless of association.
        assert_eq!(results[0], results[1], "seed {seed}");
        assert_eq!(results[1], results[2], "seed {seed}");
        let direct = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(results[0], direct, "seed {seed}");
    }
}
