//! The checked-in harness benchmark (`BENCH_sweep.json`) stays honest:
//! it parses with the in-tree JSON parser and carries `host_seconds`
//! measurements for both backends on every config.

use lpomp::prof::{parse_json, Json};

#[test]
fn bench_sweep_json_parses_and_covers_both_backends() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_sweep.json");
    let text = std::fs::read_to_string(path).expect("BENCH_sweep.json is checked in");
    let doc = parse_json(&text).expect("BENCH_sweep.json parses");

    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("fig4_sweep"));
    for field in [
        "serial_total_seconds",
        "parallel_total_seconds",
        "analytic_capture_seconds",
        "analytic_total_seconds",
        "analytic_mean_config_speedup",
    ] {
        let v = doc.get(field).and_then(Json::as_num);
        assert!(
            v.is_some_and(|s| s > 0.0),
            "{field} missing or non-positive"
        );
    }

    let configs = doc
        .get("configs")
        .and_then(Json::as_arr)
        .expect("configs array");
    assert!(!configs.is_empty(), "trajectory is empty");

    let (mut cycle, mut analytic) = (0usize, 0usize);
    for c in configs {
        let backend = c.get("backend").and_then(Json::as_str).expect("backend");
        let host = c
            .get("host_seconds")
            .and_then(Json::as_num)
            .expect("every config carries host_seconds");
        assert!(host >= 0.0);
        assert!(c.get("sim_seconds").and_then(Json::as_num).is_some());
        match backend {
            "cycle" => cycle += 1,
            "analytic" => {
                analytic += 1;
                assert!(
                    c.get("speedup").and_then(Json::as_num).is_some(),
                    "analytic configs carry the per-config speedup"
                );
            }
            other => panic!("unexpected backend {other:?}"),
        }
    }
    assert_eq!(cycle, analytic, "paired cycle/analytic entries per config");
    assert!(cycle > 0, "no cycle-backend entries");
}
