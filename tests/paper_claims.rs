//! End-to-end integration tests of the paper's claims at test scale
//! (class S): the qualitative results of §4 must hold in the assembled
//! system, not just in unit tests of its parts.

use lpomp::core::{run_sim, run_system, PagePolicy, PopulatePolicy, RunOpts, System};
use lpomp::machine::{opteron_2x2, xeon_2x2_ht};
use lpomp::npb::{AppKind, Class};
use lpomp::prof::Event;

fn pair(app: AppKind, threads: usize) -> (lpomp::core::RunRecord, lpomp::core::RunRecord) {
    let small = run_sim(
        app,
        Class::S,
        opteron_2x2(),
        PagePolicy::Small4K,
        threads,
        RunOpts::default(),
    );
    let large = run_sim(
        app,
        Class::S,
        opteron_2x2(),
        PagePolicy::Large2M,
        threads,
        RunOpts::default(),
    );
    (small, large)
}

#[test]
fn large_pages_never_change_results() {
    // The computation must be bit-identical under every page policy.
    for app in AppKind::ALL {
        let (s, l) = pair(app, 4);
        assert_eq!(
            s.checksum, l.checksum,
            "{app}: page size changed the result"
        );
    }
}

#[test]
fn cg_reduces_dtlb_misses_by_a_large_factor() {
    let (s, l) = pair(AppKind::Cg, 4);
    assert!(
        l.dtlb_misses() * 10 <= s.dtlb_misses(),
        "CG: 4KB {} vs 2MB {}",
        s.dtlb_misses(),
        l.dtlb_misses()
    );
}

#[test]
fn mg_reduces_dtlb_misses_by_a_large_factor() {
    let (s, l) = pair(AppKind::Mg, 4);
    assert!(
        l.dtlb_misses() * 10 <= s.dtlb_misses(),
        "MG: 4KB {} vs 2MB {}",
        s.dtlb_misses(),
        l.dtlb_misses()
    );
}

#[test]
fn large_pages_do_not_slow_the_tlb_friendly_apps() {
    // BT/FT/EP must stay within a few percent either way.
    for app in [AppKind::Bt, AppKind::Ft, AppKind::Ep] {
        let (s, l) = pair(app, 4);
        let delta = (l.seconds - s.seconds).abs() / s.seconds;
        assert!(delta < 0.10, "{app}: |delta| = {:.1}%", delta * 100.0);
    }
}

#[test]
fn ep_is_completely_page_size_insensitive() {
    let (s, l) = pair(AppKind::Ep, 4);
    assert_eq!(s.dtlb_misses(), l.dtlb_misses());
}

#[test]
fn all_apps_verify_on_the_simulated_system() {
    for app in AppKind::ALL {
        let r = run_sim(
            app,
            Class::S,
            opteron_2x2(),
            PagePolicy::Large2M,
            4,
            RunOpts { verify: true },
        );
        assert_eq!(r.verified, Some(true), "{app} failed verification");
    }
}

#[test]
fn opteron_scales_to_four_threads() {
    // Fig. 4: near-linear speedup through 4 threads on the Opteron.
    let t1 = run_sim(
        AppKind::Mg,
        Class::S,
        opteron_2x2(),
        PagePolicy::Small4K,
        1,
        RunOpts::default(),
    );
    let t4 = run_sim(
        AppKind::Mg,
        Class::S,
        opteron_2x2(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    let speedup = t1.seconds / t4.seconds;
    assert!(speedup > 3.0, "MG 4-thread speedup only {speedup:.2}");
}

#[test]
fn xeon_does_not_scale_from_four_to_eight() {
    // Fig. 4's Xeon story: the flush-on-stall SMT implementation stops
    // scaling beyond one thread per core.
    let t4 = run_sim(
        AppKind::Sp,
        Class::S,
        xeon_2x2_ht(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    let t8 = run_sim(
        AppKind::Sp,
        Class::S,
        xeon_2x2_ht(),
        PagePolicy::Small4K,
        8,
        RunOpts::default(),
    );
    assert!(
        t8.seconds > t4.seconds * 0.85,
        "SP gained too much from hyper-threading: {} -> {}",
        t4.seconds,
        t8.seconds
    );
    assert!(
        t8.counters.get(Event::SmtFlushes) > 0,
        "no SMT flushes at 8T"
    );
}

#[test]
fn smt_contexts_share_the_tlb() {
    // At 8 threads two contexts share each core's DTLB: aggregate misses
    // per access must not drop below the 4-thread run's.
    let t4 = run_sim(
        AppKind::Cg,
        Class::S,
        xeon_2x2_ht(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    let t8 = run_sim(
        AppKind::Cg,
        Class::S,
        xeon_2x2_ht(),
        PagePolicy::Small4K,
        8,
        RunOpts::default(),
    );
    assert!(
        t8.dtlb_misses() >= t4.dtlb_misses(),
        "sharing cannot reduce misses: {} -> {}",
        t4.dtlb_misses(),
        t8.dtlb_misses()
    );
}

#[test]
fn preallocation_moves_faults_out_of_the_run() {
    let base = System::builder(opteron_2x2())
        .policy(PagePolicy::Large2M)
        .threads(4);
    let pre = run_system(
        AppKind::Cg,
        Class::S,
        &base.clone().populate(PopulatePolicy::Prefault),
        RunOpts::default(),
    );
    let lazy = run_system(
        AppKind::Cg,
        Class::S,
        &base.populate(PopulatePolicy::OnDemand),
        RunOpts::default(),
    );
    assert_eq!(pre.counters.get(Event::PageFaults), 0);
    assert!(lazy.counters.get(Event::PageFaults) > 0);
    assert!(lazy.seconds >= pre.seconds);
    assert_eq!(pre.checksum, lazy.checksum);
}

#[test]
fn itlb_misses_are_negligible() {
    // Fig. 3's conclusion: instruction fetches almost always hit the ITLB
    // (loop-dominated codes), so the miss *rate* is tiny. The absolute
    // overhead conclusion needs a realistic run length (class W — see the
    // fig3 binary); at class S we check the rate and that misses do not
    // scale with work (they are cold-code touches, bounded by the binary
    // size).
    for app in AppKind::PAPER_FIVE {
        let r = run_sim(
            app,
            Class::S,
            opteron_2x2(),
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        );
        let fetches = r.counters.get(Event::IFetches);
        let rate = r.itlb_misses() as f64 / fetches.max(1) as f64;
        assert!(rate < 0.15, "{app}: ITLB miss rate {:.3}", rate);
        // Bounded by the binary's page count (cold-code touches), not by
        // the amount of computation.
        assert!(
            r.itlb_misses() < 2 * 400,
            "{app}: {} ITLB misses",
            r.itlb_misses()
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    let a = run_sim(
        AppKind::Sp,
        Class::S,
        opteron_2x2(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    let b = run_sim(
        AppKind::Sp,
        Class::S,
        opteron_2x2(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn mixed_policy_matches_large_page_results() {
    let large = run_sim(
        AppKind::Cg,
        Class::S,
        opteron_2x2(),
        PagePolicy::Large2M,
        4,
        RunOpts::default(),
    );
    let mixed = run_sim(
        AppKind::Cg,
        Class::S,
        opteron_2x2(),
        PagePolicy::Mixed {
            threshold_bytes: 64 * 1024,
        },
        4,
        RunOpts::default(),
    );
    assert_eq!(large.checksum, mixed.checksum);
    // Mixed should be within a few percent of the all-large policy.
    let delta = (mixed.seconds - large.seconds).abs() / large.seconds;
    assert!(delta < 0.15, "mixed vs 2MB delta {:.1}%", delta * 100.0);
}
