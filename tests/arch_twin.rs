//! Twin-system property tests for the translation-architecture redesign:
//! the `Arch::X86_64_2007` instantiation of the ladder machinery must be
//! indistinguishable — counter for counter, cycle for cycle, checksum for
//! checksum — from the classic two-size configuration it replaced, and
//! the rank aliases (`PagePolicy::Rung(0)`/`Rung(1)`) must execute
//! identically to `Small4K`/`Large2M`.

use lpomp::prelude::*;

/// The S-class smoke grid: every paper app at every Figure-4 thread
/// count on the Opteron, both page policies.
fn smoke_grid() -> Vec<(AppKind, PagePolicy, usize)> {
    let mut grid = Vec::new();
    for app in AppKind::PAPER_FIVE {
        for policy in [PagePolicy::Small4K, PagePolicy::Large2M] {
            for threads in [1usize, 2, 4] {
                grid.push((app, policy, threads));
            }
        }
    }
    grid
}

fn assert_twin(a: &RunRecord, b: &RunRecord, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycle drift");
    assert_eq!(
        a.seconds.to_bits(),
        b.seconds.to_bits(),
        "{what}: run-time drift"
    );
    assert_eq!(
        a.checksum.to_bits(),
        b.checksum.to_bits(),
        "{what}: checksum drift"
    );
    assert_eq!(a.counters, b.counters, "{what}: counter drift");
}

/// An explicit `.arch(Arch::X86_64_2007)` on the paper's Opteron is a
/// no-op: the builder recognizes the machine already carries that
/// translation architecture and leaves its platform TLBs untouched.
#[test]
fn explicit_x86_64_2007_is_identical_to_the_default() {
    for (app, policy, threads) in smoke_grid() {
        let default = System::builder(opteron_2x2())
            .policy(policy)
            .threads(threads);
        let explicit = System::builder(opteron_2x2())
            .arch(Arch::X86_64_2007)
            .policy(policy)
            .threads(threads);
        let a = run_system(app, Class::S, &default, RunOpts::default());
        let b = run_system(app, Class::S, &explicit, RunOpts::default());
        assert_twin(&a, &b, &format!("{app} {policy} t{threads}"));
    }
}

/// `Rung(0)`/`Rung(1)` are exact aliases of `Small4K`/`Large2M` on the
/// x86-64-2007 ladder: the store keys differ (the policies render
/// differently) but execution must be twin-identical.
#[test]
fn rank_aliases_execute_identically() {
    for (app, policy, threads) in smoke_grid() {
        let rung = PagePolicy::Rung(policy.rank() as u8);
        let named = System::builder(opteron_2x2())
            .policy(policy)
            .threads(threads);
        let ranked = System::builder(opteron_2x2())
            .page_size(policy.rank() as u8)
            .threads(threads);
        let a = run_system(app, Class::S, &named, RunOpts::default());
        let b = run_system(app, Class::S, &ranked, RunOpts::default());
        assert_eq!(b.policy, rung);
        assert_twin(
            &a,
            &b,
            &format!("{app} {policy}=rung{} t{threads}", policy.rank()),
        );
    }
}

/// The translation architecture never touches the computation: every
/// extension preset produces the same verified checksum as the Opteron,
/// at every rung of its own ladder.
#[test]
fn checksums_are_arch_invariant() {
    let opts = RunOpts { verify: true };
    let reference = run_sim(
        AppKind::Cg,
        Class::S,
        opteron_2x2(),
        PagePolicy::Small4K,
        4,
        opts,
    );
    for machine in [modern_x86_2x2(), arm64_2x2_4k(), arm64_2x2_16k()] {
        let rungs = machine.arch().ladder().len();
        for rank in 0..rungs as u8 {
            let rec = run_sim(
                AppKind::Cg,
                Class::S,
                machine.clone(),
                PagePolicy::Rung(rank),
                4,
                opts,
            );
            assert_eq!(
                rec.checksum.to_bits(),
                reference.checksum.to_bits(),
                "{} rung{rank}: checksum depends on translation arch",
                machine.name
            );
            assert_eq!(rec.verified, Some(true), "{} rung{rank}", machine.name);
        }
    }
}

/// The README's E7 snippet, verbatim: on the 16 KB-granule ARM64
/// preset the 2 MB contiguous-bit rung still beats the base granule.
#[test]
fn readme_arch_snippet_holds() {
    let base = run_system(
        AppKind::Cg,
        Class::W,
        &System::builder(arm64_2x2_16k()).page_size(0).threads(4),
        RunOpts::default(),
    );
    let block = run_system(
        AppKind::Cg,
        Class::W,
        &System::builder(arm64_2x2_16k()).page_size(1).threads(4),
        RunOpts::default(),
    );
    assert!(block.dtlb_misses() < base.dtlb_misses());
}

/// Store keys for the same configuration under different architectures
/// can never alias: the fingerprint carries the arch descriptor.
#[test]
fn store_keys_separate_architectures() {
    let opts = RunOpts::default();
    let keys: Vec<StoreKey> = [
        opteron_2x2(),
        modern_x86_2x2(),
        arm64_2x2_4k(),
        arm64_2x2_16k(),
    ]
    .iter()
    .map(|m| {
        StoreKey::new(
            m,
            AppKind::Cg,
            Class::S,
            PagePolicy::Rung(1),
            4,
            opts,
            BackendKind::CycleExact,
        )
    })
    .collect();
    for (i, a) in keys.iter().enumerate() {
        assert!(
            a.fingerprint().contains(";arch="),
            "fingerprint lacks the arch descriptor: {}",
            a.fingerprint()
        );
        for b in &keys[i + 1..] {
            assert_ne!(a.address(), b.address(), "cross-arch store-key collision");
        }
    }
}
