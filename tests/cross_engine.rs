//! Cross-engine equivalence: every kernel must compute the same checksum
//! on the native engine (real threads), the simulated engine (any page
//! policy, any thread count) and the serial reference.

use lpomp::core::{run_sim, PagePolicy, RunOpts};
use lpomp::machine::{opteron_2x2, xeon_2x2_ht};
use lpomp::npb::{run_native, verify_close, AppKind, Class};

#[test]
fn native_equals_simulated_for_every_kernel() {
    for app in AppKind::ALL {
        let (native_cs, ok) = run_native(app, Class::S, 2);
        assert!(ok, "{app}: native run failed verification");
        let sim = run_sim(
            app,
            Class::S,
            opteron_2x2(),
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        );
        assert!(
            verify_close(sim.checksum, native_cs),
            "{app}: native {native_cs} vs simulated {}",
            sim.checksum
        );
    }
}

#[test]
fn thread_count_does_not_change_simulated_results() {
    for app in [AppKind::Cg, AppKind::Mg, AppKind::Sp] {
        let mut checksums = Vec::new();
        for threads in [1, 2, 4] {
            let r = run_sim(
                app,
                Class::S,
                opteron_2x2(),
                PagePolicy::Large2M,
                threads,
                RunOpts::default(),
            );
            checksums.push(r.checksum);
        }
        assert!(
            checksums.windows(2).all(|w| verify_close(w[0], w[1])),
            "{app}: checksums varied across thread counts: {checksums:?}"
        );
    }
}

#[test]
fn platform_does_not_change_results() {
    for app in [AppKind::Bt, AppKind::Ft] {
        let opt = run_sim(
            app,
            Class::S,
            opteron_2x2(),
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        );
        let xeon = run_sim(
            app,
            Class::S,
            xeon_2x2_ht(),
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        );
        assert_eq!(opt.checksum, xeon.checksum, "{app}");
    }
}

#[test]
fn native_engine_is_deterministic_across_schedules() {
    // The kernels' parallel phases are order-independent (disjoint writes,
    // reductions combined deterministically per thread then in order), so
    // repeated native runs must agree within reduction tolerance.
    for app in [AppKind::Sp, AppKind::Mg] {
        let (a, _) = run_native(app, Class::S, 4);
        let (b, _) = run_native(app, Class::S, 4);
        assert!(verify_close(a, b), "{app}: {a} vs {b}");
    }
}
