//! Cross-kernel consistency of the hardware counters: relationships that
//! must hold for *every* application and configuration if the machine
//! model is internally coherent.

use lpomp::core::{run_sim, PagePolicy, RunOpts};
use lpomp::machine::{opteron_2x2, xeon_2x2_ht};
use lpomp::npb::{AppKind, Class};
use lpomp::prof::Event;

fn all_records() -> Vec<lpomp::core::RunRecord> {
    let mut v = Vec::new();
    for app in AppKind::ALL {
        for policy in [PagePolicy::Small4K, PagePolicy::Large2M] {
            v.push(run_sim(
                app,
                Class::S,
                opteron_2x2(),
                policy,
                4,
                RunOpts::default(),
            ));
        }
    }
    v
}

#[test]
fn tlb_counters_partition_the_accesses() {
    for r in all_records() {
        let c = &r.counters;
        let accesses = c.get(Event::Loads) + c.get(Event::Stores);
        let hits = c.get(Event::DtlbHits);
        let misses = c.get(Event::DtlbMisses);
        assert_eq!(
            hits + misses,
            accesses,
            "{} {}: hits {hits} + misses {misses} != accesses {accesses}",
            r.app,
            r.policy
        );
        // L2-TLB hits are a subset of hits.
        assert!(c.get(Event::DtlbL2Hits) <= hits);
    }
}

#[test]
fn walk_cycles_bound_by_misses() {
    let walk_base = opteron_2x2().cost.walk_base;
    for r in all_records() {
        let c = &r.counters;
        let misses = c.get(Event::DtlbMisses) + c.get(Event::ItlbMisses);
        let walk = c.get(Event::WalkCycles);
        if misses > 0 {
            assert!(
                walk >= misses * walk_base,
                "{} {}: walk {walk} < misses {misses} x base {walk_base}",
                r.app,
                r.policy
            );
        } else {
            assert_eq!(walk, 0, "{} {}", r.app, r.policy);
        }
    }
}

#[test]
fn cache_miss_hierarchy_is_ordered() {
    for r in all_records() {
        let c = &r.counters;
        // L2 misses (including walk refs) can't exceed L1 misses plus walk
        // and ifetch references; sanity: every L2 data miss implies an L1
        // miss happened for that reference, so L2 data misses <= L1 misses
        // + walk/ifetch refs (which bypass L1).
        let l1m = c.get(Event::L1dMisses);
        let l2m = c.get(Event::L2Misses);
        let walk_refs = c.get(Event::DtlbMisses) + c.get(Event::ItlbMisses);
        assert!(
            l2m <= l1m + walk_refs,
            "{} {}: L2 misses {l2m} > L1 misses {l1m} + walk refs {walk_refs}",
            r.app,
            r.policy
        );
    }
}

#[test]
fn cycles_account_for_all_components() {
    for r in all_records() {
        let c = &r.counters;
        // Aggregate cycles must at least cover instructions + barrier
        // waits + walks (memory-access cycles come on top).
        let floor =
            c.get(Event::Instructions) + c.get(Event::BarrierCycles) + c.get(Event::WalkCycles);
        assert!(
            c.get(Event::Cycles) >= floor,
            "{} {}: cycles {} below component floor {floor}",
            r.app,
            r.policy,
            c.get(Event::Cycles)
        );
    }
}

#[test]
fn restarts_only_under_small_pages_in_reach() {
    // Prefetch restarts happen on streamed TLB misses at page entry; with
    // 2 MB pages and class-S working sets (within large-page reach) they
    // should be rare compared to the 4 KB run.
    for app in [AppKind::Mg, AppKind::Sp] {
        let small = run_sim(
            app,
            Class::S,
            opteron_2x2(),
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        );
        let large = run_sim(
            app,
            Class::S,
            opteron_2x2(),
            PagePolicy::Large2M,
            4,
            RunOpts::default(),
        );
        assert!(
            large.counters.get(Event::PrefetchRestarts)
                <= small.counters.get(Event::PrefetchRestarts),
            "{app}"
        );
    }
}

#[test]
fn xeon_has_no_l2_tlb_hits() {
    let r = run_sim(
        AppKind::Cg,
        Class::S,
        xeon_2x2_ht(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    assert_eq!(
        r.counters.get(Event::DtlbL2Hits),
        0,
        "the Xeon DTLB is single-level"
    );
}

#[test]
fn numa_counters_partition_dram_accesses() {
    // With a NUMA config, every DRAM-reaching reference (data or page
    // walk) is classified local or remote — the two must sum exactly to
    // the L2 miss count, for every placement and page size.
    use lpomp::machine::{NumaConfig, NumaPlacement};
    for placement in [
        NumaPlacement::MasterNode,
        NumaPlacement::Interleave4K,
        NumaPlacement::FirstTouch,
    ] {
        for policy in [PagePolicy::Small4K, PagePolicy::Large2M] {
            let b = lpomp::core::System::builder(opteron_2x2())
                .numa(NumaConfig::opteron(placement))
                .policy(policy)
                .threads(4)
                .populate(lpomp::core::PopulatePolicy::OnDemand);
            let r = lpomp::core::run_system(AppKind::Mg, Class::S, &b, RunOpts::default());
            let c = &r.counters;
            let local = c.get(Event::LocalDramAccesses);
            let remote = c.get(Event::RemoteDramAccesses);
            let l2m = c.get(Event::L2Misses);
            assert_eq!(
                local + remote,
                l2m,
                "{placement:?} {policy}: local {local} + remote {remote} != L2 misses {l2m}"
            );
        }
    }
}

#[test]
fn numa_counters_zero_without_numa_config() {
    // The uniform-memory paper baseline must not be perturbed: none of
    // the NUMA-only counters may fire without a NUMA config.
    for r in all_records() {
        let c = &r.counters;
        for ev in [
            Event::LocalDramAccesses,
            Event::RemoteDramAccesses,
            Event::RemoteWalkCycles,
            Event::NumaHintFaults,
            Event::PagesMigrated,
        ] {
            assert_eq!(
                c.get(ev),
                0,
                "{} {}: {ev:?} fired without a NUMA config",
                r.app,
                r.policy
            );
        }
    }
}

#[test]
fn event_all_is_complete_ordered_and_uniquely_named() {
    // `Event::ALL` drives every counter sheet and CSV header: it must
    // list each event exactly once, in declaration order, with distinct
    // mnemonics.
    use std::collections::HashSet;
    assert_eq!(Event::ALL.len(), Event::COUNT);
    for (i, ev) in Event::ALL.iter().enumerate() {
        assert_eq!(*ev as usize, i, "{ev:?} out of declaration order");
    }
    let names: HashSet<&str> = Event::ALL.iter().map(|e| e.mnemonic()).collect();
    assert_eq!(names.len(), Event::COUNT, "duplicate mnemonic");
}

#[test]
fn smt_flush_cycles_only_on_xeon_at_eight_threads() {
    let opt = run_sim(
        AppKind::Sp,
        Class::S,
        opteron_2x2(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    assert_eq!(opt.counters.get(Event::SmtFlushCycles), 0);
    let xeon4 = run_sim(
        AppKind::Sp,
        Class::S,
        xeon_2x2_ht(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    assert_eq!(
        xeon4.counters.get(Event::SmtFlushCycles),
        0,
        "one thread per core: no co-residency, no flushes"
    );
}
