//! System-level properties of the hierarchical scheduler (E8): worker
//! invariance of whole experiment cells, and exact counter conservation
//! through the `rt:steal` region.

use lpomp::core::{par_map, PagePolicy, PopulatePolicy, ProfileSpec, System};
use lpomp::machine::{opteron_2x2, NumaConfig, NumaPlacement};
use lpomp::npb::{Class, Kernel, Skew};
use lpomp::prof::{Counters, Event};
use lpomp::runtime::{Schedule, StealPolicy};
use lpomp::vm::NumaDaemonConfig;

/// One E8-shaped cell: SKEW class S on the NUMA Opteron, first-touch,
/// demand faulting, NUMA daemon on, with the given schedule override.
fn run_cell(
    policy: PagePolicy,
    sched: Option<Schedule>,
    steal: StealPolicy,
    spec: ProfileSpec,
) -> (u64, Counters, f64, Option<lpomp::prof::ProfileSheet>) {
    let mut machine = opteron_2x2();
    machine.numa = Some(NumaConfig::opteron(NumaPlacement::FirstTouch));
    let mut kernel = Skew::new(Class::S);
    let mut b = System::builder(machine)
        .policy(policy)
        .threads(4)
        .populate(PopulatePolicy::OnDemand)
        .numa_daemon(NumaDaemonConfig::default())
        .steal_policy(steal)
        .profile(spec);
    if let Some(s) = sched {
        b = b.schedule(s);
    }
    let mut sys = b.build(&mut kernel).expect("SKEW system builds");
    let checksum = kernel.run(&mut sys.team);
    assert!(kernel.verify(checksum), "SKEW checksum drifted");
    (
        sys.team.elapsed_cycles(),
        sys.team.aggregate_counters(),
        checksum,
        sys.team.region_sheet(),
    )
}

fn grid() -> Vec<(PagePolicy, Option<Schedule>, StealPolicy)> {
    let hier = Some(Schedule::Hierarchical { chunk: 64 });
    let blind = StealPolicy {
        remote_batch: 1,
        work_follows_pages: false,
        pages_follow_work: false,
        topology_aware: false,
    };
    vec![
        (PagePolicy::Small4K, None, StealPolicy::default()),
        (PagePolicy::Small4K, hier, StealPolicy::default()),
        (PagePolicy::Small4K, hier, blind),
        (PagePolicy::Large2M, hier, StealPolicy::default()),
    ]
}

/// The determinism contract of the E8 grid: every cell is a pure
/// function of its configuration, so running the grid under `par_map`
/// at 1, 2 and 4 workers produces byte-identical records — cycles,
/// every counter lane, and the checksum bits.
#[test]
fn ext_sched_cells_are_worker_invariant() {
    let cells = grid();
    let run_all = |workers: usize| -> Vec<(u64, Counters, u64)> {
        par_map(&cells, workers, |_, &(policy, sched, steal)| {
            let (cycles, counters, checksum, _) = run_cell(policy, sched, steal, ProfileSpec::Off);
            (cycles, counters, checksum.to_bits())
        })
    };
    let w1 = run_all(1);
    assert_eq!(w1, run_all(2), "2-worker run diverged");
    assert_eq!(w1, run_all(4), "4-worker run diverged");
}

/// Steal-loop attribution conserves: with region profiling on, the
/// per-region counters (including the new `rt:steal` region) sum
/// exactly to the run's aggregate counters, and the steal counters are
/// live on an imbalanced hierarchical run.
#[test]
fn steal_region_counters_conserve() {
    let (_, counters, _, sheet) = run_cell(
        PagePolicy::Small4K,
        Some(Schedule::Hierarchical { chunk: 64 }),
        StealPolicy::default(),
        ProfileSpec::Regions,
    );
    let sheet = sheet.expect("profiled run returns a sheet");
    assert_eq!(sheet.total(), counters, "attribution leaked");
    let steals = counters.get(Event::LocalSteals) + counters.get(Event::RemoteSteals);
    assert!(steals > 0, "the sawtooth must provoke steals");
    assert!(
        sheet.by_name("rt:steal").is_some(),
        "steal transfers must be attributed to rt:steal"
    );
    assert!(sheet.by_name("rt:barrier").is_some());
    assert!(sheet.by_name("skew:matvec").is_some());
}

/// Profiling stays observational under the hierarchical schedule: the
/// same cell with profiling off and on produces identical cycles,
/// counters and checksum.
#[test]
fn hierarchical_profiling_is_free() {
    let cfg = (
        PagePolicy::Small4K,
        Some(Schedule::Hierarchical { chunk: 64 }),
        StealPolicy::default(),
    );
    let (c0, k0, s0, _) = run_cell(cfg.0, cfg.1, cfg.2, ProfileSpec::Off);
    let (c1, k1, s1, _) = run_cell(cfg.0, cfg.1, cfg.2, ProfileSpec::Regions);
    assert_eq!(c0, c1);
    assert_eq!(k0, k1);
    assert_eq!(s0.to_bits(), s1.to_bits());
}
