//! The EXPERIMENTS.md effect-size bands as executable assertions.
//!
//! Runs the class-W headline configuration (Opteron, 4 threads) for all
//! five paper applications and checks the measured improvements sit in
//! the bands recorded in EXPERIMENTS.md (and near the paper's numbers).
//! Expensive (~2-3 minutes in release), therefore `#[ignore]`d by
//! default:
//!
//! ```sh
//! cargo test --release --test fig4_bands -- --ignored
//! ```

use lpomp::core::{run_sim, PagePolicy, RunOpts};
use lpomp::machine::{opteron_2x2, xeon_2x2_ht};
use lpomp::npb::{AppKind, Class};

fn improvement(app: AppKind) -> f64 {
    let small = run_sim(
        app,
        Class::W,
        opteron_2x2(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    let large = run_sim(
        app,
        Class::W,
        opteron_2x2(),
        PagePolicy::Large2M,
        4,
        RunOpts::default(),
    );
    (1.0 - large.seconds / small.seconds) * 100.0
}

#[test]
#[ignore = "runs the full class-W evaluation (~3 minutes)"]
fn opteron_4thread_improvements_match_paper_bands() {
    // (app, paper %, allowed band)
    let bands = [
        (AppKind::Cg, 25.0, 18.0..30.0),
        (AppKind::Sp, 20.0, 14.0..26.0),
        (AppKind::Mg, 17.0, 11.0..22.0),
        (AppKind::Ft, 0.0, -5.0..8.0),
        (AppKind::Bt, 0.0, -5.0..8.0),
    ];
    let mut measured = Vec::new();
    for (app, paper, band) in bands {
        let imp = improvement(app);
        measured.push((app, imp));
        assert!(
            band.contains(&imp),
            "{app}: measured {imp:.1}%, paper ~{paper}%, band {band:?}"
        );
    }
    // Ordering: CG > SP > MG > (FT, BT), as in the paper.
    let get = |a: AppKind| measured.iter().find(|(x, _)| *x == a).unwrap().1;
    assert!(get(AppKind::Cg) > get(AppKind::Sp));
    assert!(get(AppKind::Sp) > get(AppKind::Mg));
    assert!(get(AppKind::Mg) > get(AppKind::Ft));
    assert!(get(AppKind::Mg) > get(AppKind::Bt));
}

#[test]
#[ignore = "runs the class-W Xeon evaluation (~2 minutes)"]
fn xeon_smt_collapse_and_sp_improvement() {
    // SP at 8 threads on the Xeon: paper 13%, band 10-22%.
    let small = run_sim(
        AppKind::Sp,
        Class::W,
        xeon_2x2_ht(),
        PagePolicy::Small4K,
        8,
        RunOpts::default(),
    );
    let large = run_sim(
        AppKind::Sp,
        Class::W,
        xeon_2x2_ht(),
        PagePolicy::Large2M,
        8,
        RunOpts::default(),
    );
    let imp = (1.0 - large.seconds / small.seconds) * 100.0;
    assert!((10.0..22.0).contains(&imp), "SP@8T improvement {imp:.1}%");
    // The 4 -> 8 collapse.
    let t4 = run_sim(
        AppKind::Sp,
        Class::W,
        xeon_2x2_ht(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    assert!(
        small.seconds > t4.seconds * 0.9,
        "8 threads should not beat 4 by much: {} vs {}",
        small.seconds,
        t4.seconds
    );
}
