//! Edge cases of the two execution engines and the machine model that the
//! main paper-claim tests do not reach.

use lpomp::machine::{opteron_2x2, xeon_2x2_ht, CodeWalker, Machine};
use lpomp::prof::Event;
use lpomp::runtime::{Reduction, Schedule, ShVec, SimEngine, Team};
use lpomp::vm::{AddressSpace, Backing, PageSize, Populate, PteFlags, VirtAddr};

fn sim_team(threads: usize, machine: lpomp::machine::MachineConfig) -> (Team, VirtAddr) {
    let mut m = Machine::new(machine);
    let mut asp = AddressSpace::new(&mut m.frames).unwrap();
    let code = asp
        .mmap_fixed(
            &mut m.frames,
            VirtAddr(0x40_0000),
            1 << 20,
            PageSize::Small4K,
            PteFlags::rx(),
            Backing::Anonymous,
            Populate::Eager,
            "code",
        )
        .unwrap();
    let data = asp
        .mmap(
            &mut m.frames,
            8 << 20,
            PageSize::Small4K,
            PteFlags::rw(),
            Backing::Anonymous,
            Populate::Eager,
            "data",
        )
        .unwrap();
    let walker = CodeWalker::new(code, 1 << 20, 64 << 10, 1000);
    let engine = SimEngine::new(m, asp, threads, walker, 64);
    (Team::simulated(engine), data)
}

#[test]
fn more_threads_than_iterations() {
    let (mut team, data) = sim_team(4, opteron_2x2());
    let v: ShVec<u64> = ShVec::new(2, data);
    team.parallel_for(0..2, Schedule::Static, &|ctx, r| {
        for i in r {
            v.set(ctx, i, 7);
        }
    });
    assert_eq!(v.to_vec(), vec![7, 7]);
    // Idle threads still paid the barrier.
    let p = team.profile().unwrap();
    assert_eq!(p.thread(3).get(Event::Barriers), 1);
}

#[test]
fn single_iteration_dynamic_schedule() {
    let (mut team, data) = sim_team(4, opteron_2x2());
    let v: ShVec<u64> = ShVec::new(1, data);
    team.parallel_for(0..1, Schedule::Dynamic(100), &|ctx, r| {
        for i in r {
            v.set(ctx, i, 42);
        }
    });
    assert_eq!(v.get_raw(0), 42);
}

#[test]
fn sim_min_max_reductions() {
    let (mut team, data) = sim_team(3, opteron_2x2());
    let v: ShVec<f64> = ShVec::from_fn(100, data, |i| ((i as f64) - 50.0) * 1.5);
    let mx = team.parallel_for_reduce(0..100, Schedule::Static, Reduction::Max, &|ctx, r| {
        let mut m = f64::NEG_INFINITY;
        for i in r {
            m = m.max(v.get(ctx, i));
        }
        m
    });
    assert_eq!(mx, 49.0 * 1.5);
    let mn = team.parallel_for_reduce(0..100, Schedule::Guided(8), Reduction::Min, &|ctx, r| {
        let mut m = f64::INFINITY;
        for i in r {
            m = m.min(v.get(ctx, i));
        }
        m
    });
    assert_eq!(mn, -75.0);
}

#[test]
fn quantum_size_does_not_change_results() {
    let run = |quantum: usize| {
        let mut m = Machine::new(opteron_2x2());
        let mut asp = AddressSpace::new(&mut m.frames).unwrap();
        let code = asp
            .mmap_fixed(
                &mut m.frames,
                VirtAddr(0x40_0000),
                1 << 20,
                PageSize::Small4K,
                PteFlags::rx(),
                Backing::Anonymous,
                Populate::Eager,
                "code",
            )
            .unwrap();
        let data = asp
            .mmap(
                &mut m.frames,
                4 << 20,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "data",
            )
            .unwrap();
        let walker = CodeWalker::new(code, 1 << 20, 64 << 10, 1000);
        let engine = SimEngine::new(m, asp, 4, walker, quantum);
        let mut team = Team::simulated(engine);
        let v: ShVec<f64> = ShVec::new(5000, data);
        let s = team.parallel_for_reduce(0..5000, Schedule::Static, Reduction::Sum, &|ctx, r| {
            let mut acc = 0.0;
            for i in r {
                v.set(ctx, i, i as f64);
                acc += i as f64;
            }
            acc
        });
        (s, v.to_vec())
    };
    // Functional results are quantum-independent (timing may differ).
    let (s1, v1) = run(1);
    let (s64, v64) = run(64);
    let (s4096, v4096) = run(4096);
    assert_eq!(s1, s64);
    assert_eq!(s64, s4096);
    assert_eq!(v1, v64);
    assert_eq!(v64, v4096);
}

#[test]
fn xeon_eight_threads_share_four_tlbs() {
    // 8 logical threads on the Xeon touch disjoint pages; with private
    // TLBs the misses would be ~pages; shared TLBs add competition. Here
    // we just assert placement put two threads per core and the run is
    // correct.
    let (mut team, data) = sim_team(8, xeon_2x2_ht());
    let e = team.engine().unwrap();
    let mut per_core = [0usize; 4];
    for t in 0..8 {
        per_core[e.core_of(t)] += 1;
    }
    assert_eq!(per_core, [2, 2, 2, 2]);
    let v: ShVec<u64> = ShVec::new(4096, data);
    team.parallel_for(0..4096, Schedule::Static, &|ctx, r| {
        for i in r {
            v.set(ctx, i, 1);
        }
    });
    assert!(v.to_vec().iter().all(|&x| x == 1));
    assert!(team.aggregate_counters().get(Event::SmtFlushes) > 0);
}

#[test]
fn stream_helpers_touch_each_line_once() {
    let (mut team, data) = sim_team(1, opteron_2x2());
    team.parallel_for(0..1, Schedule::Static, &|ctx, _| {
        ctx.stream_read(data, 4096 * 4);
        ctx.stream_write(data.add(1 << 20), 4096 * 2);
        ctx.strided_read(data.add(2 << 20), 4096, 16);
        ctx.strided_write(data.add(3 << 20), 8192, 8);
    });
    let agg = team.aggregate_counters();
    assert_eq!(agg.get(Event::Loads), 4 * 4096 / 64 + 16);
    assert_eq!(agg.get(Event::Stores), 2 * 4096 / 64 + 8);
}

#[test]
fn profile_reports_per_thread_imbalance() {
    let (mut team, data) = sim_team(2, opteron_2x2());
    let v: ShVec<f64> = ShVec::new(1000, data);
    // Thread 1's half does 10x the compute.
    team.parallel_for(0..1000, Schedule::Static, &|ctx, r| {
        for i in r {
            v.set(ctx, i, 1.0);
            ctx.compute(if i >= 500 { 1000 } else { 100 });
        }
    });
    let p = team.profile().unwrap();
    let cycles: Vec<u64> = (0..2).map(|t| p.thread(t).get(Event::Cycles)).collect();
    // Barrier waiting is charged as cycles too, so totals converge; the
    // barrier-cycle counter carries the imbalance signal.
    let waits: Vec<u64> = (0..2)
        .map(|t| p.thread(t).get(Event::BarrierCycles))
        .collect();
    assert!(
        waits[0] > waits[1],
        "thread 0 should wait for thread 1: {waits:?} (cycles {cycles:?})"
    );
    assert!(lpomp::prof::imbalance(&cycles) >= 1.0);
}
