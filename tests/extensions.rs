//! Integration tests for the extension features (the paper's §6 future
//! work, built in this repo): THP promotion, NUMA placement, the mixed
//! policy and the page-walk-cache ablation switch.

use lpomp::core::{run_sim, PagePolicy, RunOpts, System};
use lpomp::machine::{opteron_2x2, NumaConfig, NumaPlacement};
use lpomp::npb::{AppKind, Class};
use lpomp::prof::Event;

#[test]
fn thp_reaches_preallocated_performance() {
    // Reference: the paper's system (preallocated 2 MB pages).
    let prealloc = run_sim(
        AppKind::Cg,
        Class::S,
        opteron_2x2(),
        PagePolicy::Large2M,
        4,
        RunOpts::default(),
    );
    // THP: private 4 KB heap, run, collapse, run again.
    let mut kernel = AppKind::Cg.build(Class::S);
    let mut sys = System::builder(opteron_2x2())
        .threads(4)
        .thp()
        .build(kernel.as_mut())
        .unwrap();
    let cs1 = kernel.run(&mut sys.team);
    let first_run = sys.team.elapsed_seconds();
    let misses_first = sys.team.aggregate_counters().get(Event::DtlbMisses);
    let report = sys.promote_heap().unwrap();
    assert!(report.promoted > 0);
    sys.team.engine_mut().unwrap().reset_timing();
    let cs2 = kernel.run(&mut sys.team);
    assert_eq!(cs1, cs2, "promotion changed the computation");
    assert_eq!(cs1, prealloc.checksum);
    let steady = sys.team.elapsed_seconds();
    let misses_steady = sys.team.aggregate_counters().get(Event::DtlbMisses);
    // After collapse: faster than the 4 KB first run and a large miss
    // reduction. (Tight equality with the preallocated system needs a
    // realistic run length — the ext_thp binary at class W shows <1%.)
    assert!(steady < first_run, "collapse must speed the rerun");
    assert!(
        misses_steady * 2 < misses_first,
        "misses {misses_first} -> {misses_steady}"
    );
    assert!(steady < prealloc.seconds * 1.25);
}

#[test]
fn thp_promotion_charges_migration_time() {
    let mut kernel = AppKind::Cg.build(Class::S);
    let mut sys = System::builder(opteron_2x2())
        .threads(4)
        .thp()
        .build(kernel.as_mut())
        .unwrap();
    kernel.run(&mut sys.team);
    let before = sys.team.elapsed_cycles();
    let report = sys.promote_heap().unwrap();
    let after = sys.team.elapsed_cycles();
    assert!(
        after > before,
        "migration must cost time ({} chunks)",
        report.promoted
    );
}

#[test]
fn numa_master_placement_slows_runs() {
    let uniform = run_sim(
        AppKind::Mg,
        Class::S,
        opteron_2x2(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    let mut numa_machine = opteron_2x2();
    numa_machine.numa = Some(NumaConfig::opteron(NumaPlacement::MasterNode));
    let master = run_sim(
        AppKind::Mg,
        Class::S,
        numa_machine,
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    assert!(
        master.seconds > uniform.seconds,
        "remote accesses must cost time: {} vs {}",
        master.seconds,
        uniform.seconds
    );
    assert_eq!(master.checksum, uniform.checksum);
}

#[test]
fn numa_interleave_beats_master_placement() {
    let run = |placement| {
        let mut m = opteron_2x2();
        m.numa = Some(NumaConfig::opteron(placement));
        run_sim(
            AppKind::Mg,
            Class::S,
            m,
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        )
    };
    let master = run(NumaPlacement::MasterNode);
    let inter = run(NumaPlacement::Interleave4K);
    assert!(inter.seconds < master.seconds);
}

#[test]
fn large_page_benefit_survives_numa() {
    let mut m = opteron_2x2();
    m.numa = Some(NumaConfig::opteron(NumaPlacement::Interleave2M));
    let small = run_sim(
        AppKind::Cg,
        Class::S,
        m.clone(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    let large = run_sim(
        AppKind::Cg,
        Class::S,
        m,
        PagePolicy::Large2M,
        4,
        RunOpts::default(),
    );
    assert!(large.dtlb_misses() < small.dtlb_misses());
    assert!(large.seconds <= small.seconds);
}

#[test]
fn disabling_pwc_increases_walk_cycles() {
    let mut no_pwc = opteron_2x2();
    no_pwc.page_walk_cache = false;
    let with = run_sim(
        AppKind::Sp,
        Class::S,
        opteron_2x2(),
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    let without = run_sim(
        AppKind::Sp,
        Class::S,
        no_pwc,
        PagePolicy::Small4K,
        4,
        RunOpts::default(),
    );
    assert!(
        without.counters.get(Event::WalkCycles) > with.counters.get(Event::WalkCycles),
        "full walks must cost more"
    );
    assert_eq!(with.checksum, without.checksum);
}

#[test]
fn daemon_recovers_preallocated_speed_on_a_fragmented_heap() {
    use lpomp::vm::age_heap;

    // Reference: the paper's boot-time reservation, immune to aging.
    let prealloc = run_sim(
        AppKind::Cg,
        Class::S,
        opteron_2x2(),
        PagePolicy::Large2M,
        4,
        RunOpts::default(),
    );

    // One-shot collapse on a fully aged heap: blocked for lack of
    // order-9 blocks, so the rerun stays at 4 KB speed.
    let mut k1 = AppKind::Cg.build(Class::S);
    let mut s1 = System::builder(opteron_2x2())
        .threads(4)
        .thp()
        .build(k1.as_mut())
        .unwrap();
    {
        let e = s1.team.engine_mut().unwrap();
        age_heap(&mut e.machine.frames, &mut e.aspace, 1.0).unwrap();
    }
    k1.run(&mut s1.team);
    let report = s1.promote_heap().unwrap();
    assert!(
        report.skipped_no_memory > 0,
        "a fully aged heap must block the one-shot collapse"
    );
    s1.team.engine_mut().unwrap().reset_timing();
    k1.run(&mut s1.team);
    let one_shot_rerun = s1.team.elapsed_seconds();

    // The khugepaged daemon with compaction on the same aged heap.
    let mut k2 = AppKind::Cg.build(Class::S);
    let mut s2 = System::builder(opteron_2x2())
        .threads(4)
        .thp_daemon(true)
        .build(k2.as_mut())
        .unwrap();
    {
        let e = s2.team.engine_mut().unwrap();
        age_heap(&mut e.machine.frames, &mut e.aspace, 1.0).unwrap();
    }
    k2.run(&mut s2.team);
    let agg = s2.team.aggregate_counters();
    assert!(
        agg.get(Event::PagesCollapsed) > 0,
        "daemon collapsed nothing"
    );
    assert!(
        agg.get(Event::PagesCompacted) > 0,
        "an aged heap requires compaction before collapse"
    );
    s2.team.engine_mut().unwrap().reset_timing();
    k2.run(&mut s2.team);
    let daemon_rerun = s2.team.elapsed_seconds();

    // Acceptance: the daemon's steady state recovers >= 90% of the
    // preallocated system's speed with no reservation; the blocked
    // one-shot system stays behind it.
    assert!(
        daemon_rerun <= prealloc.seconds / 0.9,
        "daemon steady state {daemon_rerun} vs preallocated {}",
        prealloc.seconds
    );
    assert!(
        daemon_rerun < one_shot_rerun,
        "daemon {daemon_rerun} must beat the blocked one-shot {one_shot_rerun}"
    );
}

#[test]
fn is_extension_behaves_like_a_gather_code() {
    // IS (random histogram scatter) should benefit from large pages like
    // CG does, at test scale at least in misses.
    let small = run_sim(
        AppKind::Is,
        Class::S,
        opteron_2x2(),
        PagePolicy::Small4K,
        4,
        RunOpts { verify: true },
    );
    let large = run_sim(
        AppKind::Is,
        Class::S,
        opteron_2x2(),
        PagePolicy::Large2M,
        4,
        RunOpts::default(),
    );
    assert_eq!(small.verified, Some(true));
    assert!(large.dtlb_misses() < small.dtlb_misses());
    assert_eq!(small.checksum, large.checksum);
}
