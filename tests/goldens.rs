//! Golden-value regression tests: the serial class-S checksum of every
//! kernel, recorded once. The kernels are fully deterministic (seeded NPB
//! LCG, fixed iteration counts, serial order), so these must match to the
//! last bit; any drift means an unintended algorithm change.
//!
//! If a kernel is *deliberately* changed, regenerate with:
//! `run_native(app, Class::S, 1)` and update the constant.

use lpomp::npb::{run_native, AppKind, Class};

const GOLDENS: [(AppKind, f64); 8] = [
    (AppKind::Bt, 2.652_554_475_647_803_8e1),
    (AppKind::Cg, 2.444_260_326_430_914_5e1),
    (AppKind::Ft, 1.999_408_082_544_893_2e3),
    (AppKind::Sp, 4.095_537_131_630_490_5e1),
    (AppKind::Mg, 9.251_660_116_369_598e-1),
    (AppKind::Ep, 8.195_303_889_868_231e4),
    (AppKind::Is, 9.865_2e4),
    (AppKind::Lu, 2.667_321_423_017_07e1),
];

#[test]
fn serial_class_s_checksums_are_bit_stable() {
    for (app, want) in GOLDENS {
        let (got, ok) = run_native(app, Class::S, 1);
        assert!(ok, "{app}: verification failed");
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{app}: {got:.17e} != {want:.17e}"
        );
    }
}

#[test]
fn goldens_cover_every_kernel() {
    assert_eq!(GOLDENS.len(), AppKind::ALL.len());
    for app in AppKind::ALL {
        assert!(GOLDENS.iter().any(|(a, _)| *a == app), "{app} missing");
    }
}

/// Every `results/` file must round-trip byte-identically: rerunning the
/// binary it was captured from reproduces it exactly. This is what makes
/// the committed tables trustworthy — the simulator is deterministic and
/// `fnum` rounds identically everywhere.
///
/// Filenames encode the command: `fig4_W.txt` → `fig4 W`,
/// `table1.txt` / `ext_reach.txt` → no class argument.
///
/// Ignored by default (runs every experiment binary, minutes of work);
/// CI runs it in the bands job via `--ignored`.
#[test]
#[ignore = "reruns every experiment binary; exercised by the CI bands job"]
fn results_files_round_trip_byte_identically() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let results = root.join("results");
    let mut files: Vec<_> = std::fs::read_dir(&results)
        .expect("results/ exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "no goldens found in {}",
        results.display()
    );

    let classes = ["S", "W", "A", "B"];
    let mut failed = Vec::new();
    for path in &files {
        let stem = path.file_stem().unwrap().to_str().unwrap();
        // `<bin>_<class>` when the suffix is a known class, else `<bin>`.
        let (bin, class) = match stem.rsplit_once('_') {
            Some((b, c)) if classes.contains(&c) => (b, Some(c)),
            _ => (stem, None),
        };
        let mut cmd = std::process::Command::new(env!("CARGO"));
        cmd.current_dir(root)
            .args(["run", "--release", "-q", "-p", "lpomp-bench", "--bin", bin]);
        if let Some(c) = class {
            cmd.arg(c);
        }
        let out = cmd.output().expect("cargo run spawns");
        assert!(
            out.status.success(),
            "{bin} {} exited with {}: {}",
            class.unwrap_or(""),
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        let want = std::fs::read(path).unwrap();
        if out.stdout != want {
            failed.push(stem.to_owned());
        }
    }
    assert!(
        failed.is_empty(),
        "goldens drifted (regenerate by rerunning the binary): {failed:?}"
    );
}
