//! Golden-value regression tests: the serial class-S checksum of every
//! kernel, recorded once. The kernels are fully deterministic (seeded NPB
//! LCG, fixed iteration counts, serial order), so these must match to the
//! last bit; any drift means an unintended algorithm change.
//!
//! If a kernel is *deliberately* changed, regenerate with:
//! `run_native(app, Class::S, 1)` and update the constant.

use lpomp::npb::{run_native, AppKind, Class};

const GOLDENS: [(AppKind, f64); 8] = [
    (AppKind::Bt, 2.652_554_475_647_803_8e1),
    (AppKind::Cg, 2.444_260_326_430_914_5e1),
    (AppKind::Ft, 1.999_408_082_544_893_2e3),
    (AppKind::Sp, 4.095_537_131_630_490_5e1),
    (AppKind::Mg, 9.251_660_116_369_598e-1),
    (AppKind::Ep, 8.195_303_889_868_231e4),
    (AppKind::Is, 9.865_2e4),
    (AppKind::Lu, 2.667_321_423_017_07e1),
];

#[test]
fn serial_class_s_checksums_are_bit_stable() {
    for (app, want) in GOLDENS {
        let (got, ok) = run_native(app, Class::S, 1);
        assert!(ok, "{app}: verification failed");
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{app}: {got:.17e} != {want:.17e}"
        );
    }
}

#[test]
fn goldens_cover_every_kernel() {
    assert_eq!(GOLDENS.len(), AppKind::ALL.len());
    for app in AppKind::ALL {
        assert!(GOLDENS.iter().any(|(a, _)| *a == app), "{app} missing");
    }
}
