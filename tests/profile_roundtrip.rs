//! Profile persistence round-trip: a captured reuse profile survives
//! JSON serialization losslessly — not just structurally, but in the
//! strong sense the disk cache relies on: the *analytic predictions*
//! computed from the reloaded profile are byte-identical to those from
//! the original, for every machine preset and page policy.

use lpomp::core::capture_profile;
use lpomp::machine::{evaluate, opteron_2x2, xeon_2x2_ht, AnalyticPoint};
use lpomp::npb::{AppKind, Class, ProfileCache};
use lpomp::prof::reuse::StreamProfile;
use lpomp::vm::PageSize;

/// Every (preset × page size × fault mode) evaluation point.
fn all_points(p: &StreamProfile) -> Vec<lpomp::machine::AnalyticResult> {
    let mut out = Vec::new();
    for machine in [opteron_2x2(), xeon_2x2_ht()] {
        for page_size in [PageSize::Small4K, PageSize::Large2M] {
            for demand_faults in [false, true] {
                out.push(evaluate(&AnalyticPoint {
                    profile: p,
                    config: &machine,
                    page_size,
                    demand_faults,
                }));
            }
        }
    }
    out
}

#[test]
fn reloaded_profile_predicts_byte_identically() {
    let profile = capture_profile(AppKind::Cg, Class::S, 2);
    let json = profile.to_json();
    let reloaded = StreamProfile::from_json(&json).expect("own JSON parses");

    // Structural identity…
    assert_eq!(reloaded.app, profile.app);
    assert_eq!(reloaded.class, profile.class);
    assert_eq!(reloaded.threads, profile.threads);
    assert_eq!(reloaded.checksum.to_bits(), profile.checksum.to_bits());
    assert_eq!(reloaded.phases.len(), profile.phases.len());
    // …and serialization is a fixed point.
    assert_eq!(reloaded.to_json(), json);

    // The strong property: identical predictions everywhere. The
    // evaluator accumulates in f64, so "identical" here means bit-exact
    // seconds and equal counter sheets, via AnalyticResult's PartialEq.
    let before = all_points(&profile);
    let after = all_points(&reloaded);
    assert_eq!(before, after);
    assert!(before.iter().all(|r| r.cycles > 0));
}

#[test]
fn disk_cache_serves_the_same_predictions() {
    // The same property through the ProfileCache disk layer end to end.
    let dir = std::env::temp_dir().join(format!("lpomp-rt-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ProfileCache::with_dir(Some(dir.clone()));
    let captured = cache.get_or_capture(AppKind::Mg, Class::S, 4, || {
        capture_profile(AppKind::Mg, Class::S, 4)
    });

    let cache2 = ProfileCache::with_dir(Some(dir.clone()));
    let reloaded = cache2.get_or_capture(AppKind::Mg, Class::S, 4, || {
        panic!("second cache must load from disk")
    });
    assert_eq!(all_points(&captured), all_points(&reloaded));
    let _ = std::fs::remove_dir_all(&dir);
}
