//! End-to-end coverage of the content-addressed sweep store: incremental
//! runs replay byte-identically, resume after interruption re-runs only
//! the missing configs, sharded + merged sweeps equal a single-process
//! run, and a warm store turns a repeat sweep into pure file reads.

use lpomp::core::store::Shard;
use lpomp::core::{JsonlSink, RunStore};
use lpomp::npb::{AppKind, Class};
use lpomp::prelude::*;
use lpomp::prof::parse_json;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lpomp-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small cycle-exact grid: 2 apps × 2 policies × 2 thread counts.
fn small_spec() -> SweepSpec {
    SweepSpec {
        apps: vec![AppKind::Cg, AppKind::Ep],
        class: Class::S,
        machines: vec![opteron_2x2()],
        policies: vec![PagePolicy::Small4K, PagePolicy::Large2M],
        threads: vec![1, 4],
        opts: RunOpts::default(),
        backend: BackendKind::CycleExact,
    }
}

#[test]
fn repeated_incremental_run_is_all_hits_with_zero_engine_runs() {
    let dir = temp_dir("rerun");
    let store = RunStore::open(&dir).unwrap();
    let spec = small_spec();
    let n = spec.len();

    let cold = spec.run_incremental(&store).unwrap();
    assert_eq!(
        (cold.hits, cold.misses),
        (0, n),
        "cold store runs everything"
    );

    // The tentpole guarantee: unchanged code ⇒ zero engine runs. Every
    // config is a hit, and `misses` — which counts exactly the
    // `run_backend` invocations — is zero.
    let warm = spec.run_incremental(&store).unwrap();
    assert_eq!(
        (warm.hits, warm.misses),
        (n, 0),
        "warm store replays everything"
    );

    // And the replay is byte-identical to both the cold incremental run
    // and a plain in-memory sweep (RunRecord's PartialEq is bit-exact on
    // the f64 fields).
    assert_eq!(warm.results.records(), cold.results.records());
    assert_eq!(warm.results.records(), spec.run().records());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_sweep_resumes_with_only_missing_configs_rerun() {
    let dir = temp_dir("resume");
    let store = RunStore::open(&dir).unwrap();
    let spec = small_spec();
    let n = spec.len();
    let full = spec.run_incremental(&store).unwrap();

    // Simulate an interrupted sweep: 3 of the records never made it to
    // disk. (Deleting files is exactly the state a killed process leaves,
    // since each record is written as its config completes.)
    let keys = spec.store_keys();
    for key in [&keys[1], &keys[4], &keys[6]] {
        std::fs::remove_file(dir.join(key.file_name())).unwrap();
    }

    let resumed = spec.run_incremental(&store).unwrap();
    assert_eq!(
        (resumed.hits, resumed.misses),
        (n - 3, 3),
        "only the gap re-runs"
    );
    assert_eq!(resumed.results.records(), full.results.records());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_axes_partition_the_store() {
    // Cycle and analytic sweeps of the same grid share a directory
    // without colliding: the backend is part of every key.
    let dir = temp_dir("axes");
    let store = RunStore::open(&dir).unwrap();
    let cycle = small_spec();
    let analytic = small_spec().with_backend(BackendKind::Analytic);
    let n = cycle.len();

    assert_eq!(cycle.run_incremental(&store).unwrap().misses, n);
    assert_eq!(analytic.run_incremental(&store).unwrap().misses, n);
    // Both warm independently.
    assert_eq!(cycle.run_incremental(&store).unwrap().hits, n);
    assert_eq!(analytic.run_incremental(&store).unwrap().hits, n);
    assert_eq!(store.len(), 2 * n);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_and_merged_equals_single_process_run_byte_identically() {
    let dir = temp_dir("shards");
    let store = RunStore::open(&dir).unwrap();
    let spec = small_spec();
    let single = spec.run();

    // Run the grid as three cooperating "processes" (any order).
    for index in [2, 0, 1] {
        let shard = Shard { index, count: 3 };
        let m = spec.run_shard(shard, &store, 2, None).unwrap();
        assert_eq!(m.shard, shard);
        assert!(!m.entries.is_empty());
    }
    let merged = spec.merge_shards(&store, 3).unwrap();
    assert_eq!(merged.records(), single.records());

    // Merging with the wrong shard count fails with a diagnostic rather
    // than returning partial results.
    let err = spec.merge_shards(&store, 4).unwrap_err();
    assert!(err.contains("no manifest"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_refuses_incomplete_coverage() {
    let dir = temp_dir("partial");
    let store = RunStore::open(&dir).unwrap();
    let spec = small_spec();
    spec.run_shard(Shard { index: 0, count: 2 }, &store, 2, None)
        .unwrap();
    // Shard 2/2 never ran: its manifest is absent.
    let err = spec.merge_shards(&store, 2).unwrap_err();
    assert!(
        err.contains("shard 2/2") && err.contains("no manifest"),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shards_reuse_cached_records_and_jsonl_streams_every_config() {
    let dir = temp_dir("jsonl");
    let store = RunStore::open(&dir).unwrap();
    let spec = small_spec();
    let n = spec.len();
    // Warm the whole grid first…
    spec.run_incremental(&store).unwrap();

    // …then a sharded pass over the warm store: all hits, so the shards
    // are pure bookkeeping, and the JSONL stream still carries one line
    // per covered config, flagged as cached.
    let jsonl = dir.join("sweep.jsonl");
    let sink = JsonlSink::create(&jsonl).unwrap();
    let mut covered = 0;
    for index in 0..2 {
        let m = spec
            .run_shard(Shard { index, count: 2 }, &store, 2, Some(&sink))
            .unwrap();
        covered += m.entries.len();
    }
    drop(sink);
    assert_eq!(covered, n);
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), n, "one line per config");
    for line in &lines {
        let j = parse_json(line).expect("every line is a standalone object");
        assert_eq!(j.get("cached"), Some(&lpomp::prof::Json::Bool(true)));
        assert!(j
            .get("seconds")
            .and_then(lpomp::prof::Json::as_num)
            .is_some());
    }
    assert_eq!(
        spec.merge_shards(&store, 2).unwrap().records(),
        spec.run().records()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CI observability check (`--ignored`): a warm class-S Figure-4
/// sweep must be at least 10× faster than the cold one that populated
/// the store, with 100% cache hits. Run with
/// `cargo test --release --test store -- --ignored warm_`.
#[test]
#[ignore = "timing assertion; run explicitly (CI cache-warm step)"]
fn warm_store_is_10x_faster_with_full_hits() {
    let dir = temp_dir("warm");
    let store = RunStore::open(&dir).unwrap();
    let spec = SweepSpec::figure4(Class::S);
    let n = spec.len();

    let t0 = std::time::Instant::now();
    let cold = spec.run_incremental(&store).unwrap();
    let cold_s = t0.elapsed().as_secs_f64();
    assert_eq!(cold.misses, n);

    let t0 = std::time::Instant::now();
    let warm = spec.run_incremental(&store).unwrap();
    let warm_s = t0.elapsed().as_secs_f64();
    assert_eq!((warm.hits, warm.misses), (n, 0), "100% cache hits");
    assert_eq!(warm.results.records(), cold.results.records());
    assert!(
        warm_s * 10.0 <= cold_s,
        "warm sweep must be >=10x faster: cold {cold_s:.3}s, warm {warm_s:.3}s"
    );
    eprintln!(
        "cold {cold_s:.3}s, warm {warm_s:.3}s ({:.0}x)",
        cold_s / warm_s
    );
    let _ = std::fs::remove_dir_all(&dir);
}
