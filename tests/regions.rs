//! Properties of the region-attribution profiler at the system level:
//! conservation of every counter across randomized configurations and
//! worker counts, and a round-trip of the Chrome trace export through
//! the in-tree JSON parser.

use lpomp::core::{run_system, PagePolicy, ProfileSpec, RunOpts, System};
use lpomp::machine::opteron_2x2;
use lpomp::npb::{AppKind, Class};
use lpomp::prof::{parse_json, Json};

/// SplitMix64 (same idiom as `tests/properties.rs`): reproducible
/// test-input generation with no external dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

fn profiled(
    app: AppKind,
    policy: PagePolicy,
    threads: usize,
    spec: ProfileSpec,
) -> lpomp::core::RunRecord {
    let b = System::builder(opteron_2x2())
        .policy(policy)
        .threads(threads)
        .profile(spec);
    run_system(app, Class::S, &b, RunOpts::default())
}

/// The tentpole invariant, as a property: for randomized (app, policy)
/// configurations at 1, 2 and 4 workers, the per-region counters sum
/// *exactly* to the run's aggregate counters — every event, no slack.
#[test]
fn region_sums_equal_global_counters() {
    let apps = [AppKind::Cg, AppKind::Mg, AppKind::Sp, AppKind::Ep];
    let policies = [PagePolicy::Small4K, PagePolicy::Large2M];
    let mut rng = Rng::new(0x4e91_7a2f);
    for threads in [1usize, 2, 4] {
        for case in 0..3u64 {
            let app = apps[rng.below(apps.len() as u64) as usize];
            let policy = policies[rng.below(2) as usize];
            let r = profiled(app, policy, threads, ProfileSpec::Regions);
            let sheet = r.regions.as_ref().expect("profiled run returns a sheet");
            assert_eq!(
                sheet.total(),
                r.counters,
                "{app} {policy} threads={threads} case={case}: attribution leaked"
            );
            // The run actually exercised attribution: barriers always run,
            // and the annotated kernels contribute their own regions.
            assert!(sheet.by_name("rt:barrier").is_some());
            if matches!(app, AppKind::Cg | AppKind::Mg | AppKind::Sp) {
                let prefix = format!("{}:", app.to_string().to_lowercase());
                let named = (0..sheet.region_count())
                    .filter(|&r| sheet.name(r).starts_with(&prefix))
                    .count();
                assert!(named >= 4, "{app}: only {named} app regions");
            }
        }
    }
}

/// Profiling is observational: the same run with profiling off, on, and
/// tracing produces identical cycles, counters and checksum.
#[test]
fn profiling_is_free_at_every_worker_count() {
    for threads in [1usize, 2, 4] {
        let bare = profiled(AppKind::Cg, PagePolicy::Small4K, threads, ProfileSpec::Off);
        let reg = profiled(
            AppKind::Cg,
            PagePolicy::Small4K,
            threads,
            ProfileSpec::Regions,
        );
        let tr = profiled(
            AppKind::Cg,
            PagePolicy::Small4K,
            threads,
            ProfileSpec::Trace,
        );
        for r in [&reg, &tr] {
            assert_eq!(bare.cycles, r.cycles, "threads={threads}");
            assert_eq!(bare.counters, r.counters, "threads={threads}");
            assert_eq!(bare.checksum, r.checksum, "threads={threads}");
        }
        assert!(bare.regions.is_none() && bare.trace.is_none());
        assert!(reg.trace.is_none());
        assert!(tr.trace.is_some());
    }
}

/// The Chrome trace export round-trips through the in-tree parser and is
/// well-formed: B/E events balance per thread, timestamps are monotone
/// per thread, and every thread carries a `thread_name` metadata record.
#[test]
fn trace_json_round_trips_and_is_well_formed() {
    let r = profiled(AppKind::Sp, PagePolicy::Small4K, 4, ProfileSpec::Trace);
    let text = r.trace.as_ref().expect("tracing run returns JSON");
    let doc = parse_json(text).expect("trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut depth = std::collections::HashMap::new();
    let mut last_ts = std::collections::HashMap::new();
    let mut named_threads = std::collections::HashSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let tid = ev.get("tid").and_then(Json::as_num).expect("tid") as i64;
        match ph {
            "M" => {
                assert_eq!(ev.get("name").and_then(Json::as_str), Some("thread_name"));
                named_threads.insert(tid);
            }
            "B" | "E" | "i" => {
                let ts = ev.get("ts").and_then(Json::as_num).expect("ts");
                let last = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
                assert!(ts >= *last, "tid {tid}: ts went backwards");
                *last = ts;
                let d = depth.entry(tid).or_insert(0i64);
                match ph {
                    "B" => *d += 1,
                    "E" => {
                        *d -= 1;
                        assert!(*d >= 0, "tid {tid}: E without B");
                    }
                    _ => {}
                }
                // Region names survive the escape/parse round trip.
                let name = ev.get("name").and_then(Json::as_str).expect("name");
                assert!(!name.is_empty());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, d) in depth {
        assert_eq!(d, 0, "tid {tid}: unbalanced B/E");
        assert!(named_threads.contains(&tid), "tid {tid} has no thread_name");
    }
}
