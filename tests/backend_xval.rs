//! Cross-validation of the analytic backend against the cycle engine.
//!
//! Three tiers:
//!
//! * plain tests — a small class-S slice, always on;
//! * `smoke_*` (ignored) — the full class-S Figure 4 grid plus the
//!   host-time budget assertion; CI's `backend-xval` step runs these;
//! * `bands_*` (ignored) — the full class-W golden grid, the
//!   configurations behind `results/fig4_W.txt` / `fig5_W.txt`; CI's
//!   bands job runs these.
//!
//! The tolerance bands are declared once in `lpomp_core`
//! ([`XVAL_SECONDS_BAND_PCT`], [`XVAL_DTLB_BAND_PCT`]) and recorded in
//! the `results/xval_W.txt` golden, so loosening them is a visible,
//! reviewed change.

use lpomp::prelude::*;
use lpomp_core::{
    xval_dtlb_err_pct, xval_seconds_err_pct, XVAL_DTLB_BAND_PCT, XVAL_SECONDS_BAND_PCT,
};

/// Run a spec on both backends and assert every aligned pair of records
/// stays inside the bands. Returns (worst time err, worst dtlb err).
fn assert_within_bands(spec: SweepSpec) -> (f64, f64) {
    let exact = spec.clone().run();
    let fast = spec.with_backend(BackendKind::Analytic).run();
    assert_eq!(exact.records().len(), fast.records().len());
    let (mut wt, mut wd) = (0.0f64, 0.0f64);
    for (e, a) in exact.records().iter().zip(fast.records()) {
        assert_eq!(
            (e.app, e.machine, e.policy, e.threads),
            (a.app, a.machine, a.policy, a.threads)
        );
        assert_eq!(e.backend, "cycle");
        assert_eq!(a.backend, "analytic");
        let te = xval_seconds_err_pct(a.seconds, e.seconds);
        let de = xval_dtlb_err_pct(a.dtlb_misses(), e.dtlb_misses());
        assert!(
            te <= XVAL_SECONDS_BAND_PCT,
            "{} {} {} {}t: analytic {:.6}s vs cycle {:.6}s = {te:.2}% > {XVAL_SECONDS_BAND_PCT}%",
            e.machine,
            e.app,
            e.policy.label(),
            e.threads,
            a.seconds,
            e.seconds
        );
        assert!(
            de <= XVAL_DTLB_BAND_PCT,
            "{} {} {} {}t: analytic {} vs cycle {} dtlb misses = {de:.2}% > {XVAL_DTLB_BAND_PCT}%",
            e.machine,
            e.app,
            e.policy.label(),
            e.threads,
            a.dtlb_misses(),
            e.dtlb_misses()
        );
        wt = wt.max(te);
        wd = wd.max(de);
    }
    (wt, wd)
}

#[test]
fn class_s_slice_stays_in_band() {
    // CG (the headline TLB-bound app) and EP (the control) across both
    // platforms and policies — quick enough for the default test run.
    assert_within_bands(SweepSpec {
        apps: vec![AppKind::Cg, AppKind::Ep],
        class: Class::S,
        machines: vec![opteron_2x2(), xeon_2x2_ht()],
        policies: vec![PagePolicy::Small4K, PagePolicy::Large2M],
        threads: vec![1, 4],
        opts: RunOpts::default(),
        backend: BackendKind::CycleExact,
    });
}

#[test]
fn analytic_ranks_policies_like_the_engine() {
    // Beyond per-cell error: the decision the sweep exists to make
    // (does 2 MB beat 4 KB, and by how much?) must agree in sign.
    let spec = SweepSpec {
        apps: vec![AppKind::Cg, AppKind::Mg],
        class: Class::S,
        machines: vec![opteron_2x2()],
        policies: vec![PagePolicy::Small4K, PagePolicy::Large2M],
        threads: vec![4],
        opts: RunOpts::default(),
        backend: BackendKind::CycleExact,
    };
    let exact = spec.clone().run();
    let fast = spec.with_backend(BackendKind::Analytic).run();
    for app in [AppKind::Cg, AppKind::Mg] {
        let ie = exact.improvement(app, "Opteron", 4).unwrap();
        let ia = fast.improvement(app, "Opteron", 4).unwrap();
        assert_eq!(
            ie > 0.0,
            ia > 0.0,
            "{app}: cycle {ie:.2}% vs analytic {ia:.2}%"
        );
        let re = exact.miss_reduction(app, "Opteron", 4).unwrap();
        let ra = fast.miss_reduction(app, "Opteron", 4).unwrap();
        assert!(
            re > 1.0 && ra > 1.0,
            "{app}: reductions {re:.1}x vs {ra:.1}x"
        );
    }
}

#[test]
#[ignore = "full class-S grid; CI backend-xval step runs with --ignored smoke_"]
fn smoke_class_s_grid_stays_in_band() {
    let (wt, wd) = assert_within_bands(SweepSpec::figure4(Class::S));
    eprintln!("class S worst errors: time {wt:.2}%, dtlb {wd:.2}%");
}

#[test]
#[ignore = "full class-S grid; CI backend-xval step runs with --ignored smoke_"]
fn smoke_analytic_grid_is_fast() {
    use std::time::Instant;
    let spec = SweepSpec::figure4(Class::S);

    let t0 = Instant::now();
    let exact = spec.clone().run();
    let cycle_host = t0.elapsed();

    // Captures amortize across the sweep; time them separately so the
    // budget below measures steady-state evaluation, as BENCH_sweep.json
    // does.
    let t1 = Instant::now();
    for &threads in &spec.threads {
        for &app in &spec.apps {
            if threads <= 8 {
                lpomp_core::cached_profile(app, spec.class, threads);
            }
        }
    }
    let capture_host = t1.elapsed();

    let t2 = Instant::now();
    let fast = spec.clone().with_backend(BackendKind::Analytic).run();
    let analytic_host = t2.elapsed();

    assert_eq!(exact.records().len(), fast.records().len());
    eprintln!(
        "host time: cycle {:.2}s, capture {:.2}s, analytic {:.3}s",
        cycle_host.as_secs_f64(),
        capture_host.as_secs_f64(),
        analytic_host.as_secs_f64()
    );
    // The ISSUE's bar is ≥50× per config at class W; class S runs are so
    // short that fixed overheads dominate, so CI asserts the 5% budget.
    assert!(
        analytic_host.as_secs_f64() < 0.05 * cycle_host.as_secs_f64(),
        "analytic grid took {:.3}s, over 5% of the {:.3}s cycle grid",
        analytic_host.as_secs_f64(),
        cycle_host.as_secs_f64()
    );
}

#[test]
#[ignore = "full class-W golden grid, minutes of work; CI bands job runs it"]
fn bands_class_w_golden_grid_stays_in_band() {
    let (wt, wd) = assert_within_bands(SweepSpec::figure4(Class::W));
    eprintln!("class W worst errors: time {wt:.2}%, dtlb {wd:.2}%");
}
