//! OpenMP-style loop parallelism with the native engine.
//!
//! Reproduces the paper's Algorithm 3.1 — the `#pragma omp parallel for`
//! array sum — and then a 1-D heat-diffusion stencil, both on real OS
//! threads through the same `Team` API the simulated experiments use.
//!
//! ```sh
//! cargo run --release --example loop_parallelism
//! ```

use lpomp::runtime::{BumpAllocator, Reduction, Schedule, ShVec, Team};
use std::time::Instant;

fn main() {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let mut alloc = BumpAllocator::unbounded();

    // --- Algorithm 3.1 from the paper: sum the values of an array. ---
    let n = 4_000_000;
    let array: ShVec<f64> = alloc.alloc_vec_from(n, |i| (i % 100) as f64);
    let mut team = Team::native(threads);
    let t0 = Instant::now();
    // #pragma omp parallel for reduction(+:sum)
    let sum = team.parallel_for_reduce(0..n, Schedule::Static, Reduction::Sum, &|ctx, r| {
        let mut s = 0.0;
        for i in r {
            s += array.get(ctx, i);
        }
        s
    });
    println!(
        "Algorithm 3.1: sum of {n} elements = {sum} ({threads} threads, {:?})",
        t0.elapsed()
    );
    assert_eq!(sum, (n as f64 / 100.0) * (99.0 * 100.0 / 2.0));

    // --- A parallel Jacobi heat-diffusion stencil. ---
    let cells = 1_000_000;
    let cur: ShVec<f64> =
        alloc.alloc_vec_from(cells, |i| if i == cells / 2 { 1000.0 } else { 0.0 });
    let next: ShVec<f64> = alloc.alloc_vec(cells);
    let t0 = Instant::now();
    for step in 0..50 {
        let (src, dst) = if step % 2 == 0 {
            (&cur, &next)
        } else {
            (&next, &cur)
        };
        // #pragma omp parallel for schedule(static)
        team.parallel_for(0..cells, Schedule::Static, &|ctx, r| {
            for i in r {
                let left = if i > 0 { src.get(ctx, i - 1) } else { 0.0 };
                let right = if i + 1 < cells {
                    src.get(ctx, i + 1)
                } else {
                    0.0
                };
                let here = src.get(ctx, i);
                dst.set(ctx, i, here + 0.25 * (left - 2.0 * here + right));
            }
        });
    }
    let total: f64 = cur.to_vec().iter().sum();
    println!(
        "Heat stencil: 50 steps over {cells} cells in {:?}; energy conserved: {:.3}",
        t0.elapsed(),
        total
    );
    assert!(
        (total - 1000.0).abs() < 1e-6,
        "diffusion must conserve energy"
    );

    // --- Schedules compared on an imbalanced loop. ---
    for (name, sched) in [
        ("static          ", Schedule::Static),
        ("dynamic(64)     ", Schedule::Dynamic(64)),
        ("guided(16)      ", Schedule::Guided(16)),
    ] {
        let t0 = Instant::now();
        let s = team.parallel_for_reduce(0..100_000, sched, Reduction::Sum, &|_, r| {
            let mut acc = 0.0;
            for i in r {
                // iteration cost grows with i: static splits poorly
                for _ in 0..(i / 10_000) {
                    acc = (acc + i as f64).sqrt();
                }
            }
            acc
        });
        println!(
            "schedule {name} -> {:>10.2?} (checksum {s:.2})",
            t0.elapsed()
        );
    }
}
