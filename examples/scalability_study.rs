//! A miniature of the paper's Figure 4 for one application: sweep thread
//! counts and page policies for SP on both simulated platforms and print
//! run times, speedups and the large-page improvement.
//!
//! ```sh
//! cargo run --release --example scalability_study [S|W]
//! ```

use lpomp::core::{figure4_thread_counts, run_sim, PagePolicy, RunOpts};
use lpomp::machine::{opteron_2x2, xeon_2x2_ht};
use lpomp::npb::{AppKind, Class};

fn main() {
    let class = match std::env::args().nth(1).as_deref() {
        Some("W") | Some("w") => Class::W,
        _ => Class::S,
    };
    let app = AppKind::Sp;
    println!("Scalability of {app} (class {class}) with 4KB vs 2MB pages\n");
    for machine in [opteron_2x2(), xeon_2x2_ht()] {
        println!("--- {} ---", machine.name);
        println!("threads   4KB (s)   2MB (s)   speedup(4KB)  speedup(2MB)  2MB gain");
        let mut base = (0.0, 0.0);
        for n in figure4_thread_counts(&machine) {
            let small = run_sim(
                app,
                class,
                machine.clone(),
                PagePolicy::Small4K,
                n,
                RunOpts::default(),
            );
            let large = run_sim(
                app,
                class,
                machine.clone(),
                PagePolicy::Large2M,
                n,
                RunOpts::default(),
            );
            if n == 1 {
                base = (small.seconds, large.seconds);
            }
            println!(
                "{n:>7}   {:>7.4}   {:>7.4}   {:>12.2}  {:>12.2}  {:>7.1}%",
                small.seconds,
                large.seconds,
                base.0 / small.seconds,
                base.1 / large.seconds,
                (1.0 - large.seconds / small.seconds) * 100.0
            );
        }
        println!();
    }
    println!(
        "Expected shapes (paper Fig. 4): both platforms scale to 4 threads;\n\
         the Xeon's flush-on-stall hyper-threading prevents 4 -> 8 scaling;\n\
         2MB pages improve SP by ~20% on the Opteron at 4 threads."
    );
}
