//! Quickstart: measure what 2 MB pages buy CG on the simulated Opteron.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lpomp::core::{run_sim, PagePolicy, RunOpts};
use lpomp::machine::opteron_2x2;
use lpomp::npb::{AppKind, Class};
use lpomp::prof::Event;

fn main() {
    println!("lpomp quickstart: CG (class S), 4 threads, simulated Opteron 270\n");

    // One call per configuration: application, class, platform, page
    // policy, thread count.
    let opts = RunOpts { verify: true };
    let small = run_sim(
        AppKind::Cg,
        Class::S,
        opteron_2x2(),
        PagePolicy::Small4K,
        4,
        opts,
    );
    let large = run_sim(
        AppKind::Cg,
        Class::S,
        opteron_2x2(),
        PagePolicy::Large2M,
        4,
        opts,
    );

    for r in [&small, &large] {
        println!(
            "{:>4} pages: {:.4}s  dtlb misses {:>8}  walk cycles {:>9}  verified: {}",
            r.policy,
            r.seconds,
            r.dtlb_misses(),
            r.counters.get(Event::WalkCycles),
            r.verified.unwrap(),
        );
    }
    println!(
        "\nlarge pages: {:.1}% faster, {:.0}x fewer DTLB misses",
        (1.0 - large.seconds / small.seconds) * 100.0,
        small.dtlb_misses() as f64 / large.dtlb_misses().max(1) as f64,
    );
    println!("(run the full evaluation: cargo run --release -p lpomp-bench --bin fig4)");
}
