//! Walk through the OS-level substrate by hand: buddy allocator,
//! hugetlbfs pool, shared mappings, page tables and TLBs — the pieces
//! `System::build` assembles automatically.
//!
//! ```sh
//! cargo run --release --example vm_explorer
//! ```

use lpomp::machine::{opteron_2x2, DataKind, Machine};
use lpomp::prof::{Counters, Event};
use lpomp::tlb::TlbOutcome;
use lpomp::vm::{AccessKind, AddressSpace, Backing, HugePool, PageSize, Populate, PteFlags};

fn main() {
    let mut machine = Machine::new(opteron_2x2());
    println!(
        "machine: {} — {} bytes RAM",
        machine.config().name,
        machine.frames.total_bytes()
    );

    // 1. Boot-time hugetlbfs reservation (the paper's §3.3 design).
    let mut pool = HugePool::reserve(&mut machine.frames, 16).unwrap();
    println!(
        "reserved {} x 2MB pages; buddy free: {} MB",
        pool.available(),
        machine.frames.free_bytes() >> 20
    );

    // 2. A shared map file in the pool, as Omni's global heap.
    let seg = pool
        .create_file("omni-shared-heap", 8 * 1024 * 1024)
        .unwrap();
    println!("created {:?}: {} pages", seg.name(), seg.page_count());

    // 3. Two 'processes' mapping the same file share physical frames.
    let mut proc_a = AddressSpace::new(&mut machine.frames).unwrap();
    let mut proc_b = AddressSpace::new(&mut machine.frames).unwrap();
    let va_a = proc_a
        .mmap(
            &mut machine.frames,
            seg.len_bytes(),
            PageSize::Large2M,
            PteFlags::rw(),
            Backing::Shared(seg.clone()),
            Populate::Eager,
            "heap",
        )
        .unwrap();
    let va_b = proc_b
        .mmap(
            &mut machine.frames,
            seg.len_bytes(),
            PageSize::Large2M,
            PteFlags::rw(),
            Backing::Shared(seg),
            Populate::Eager,
            "heap",
        )
        .unwrap();
    let pa_a = proc_a
        .access(&mut machine.frames, va_a.add(0x1234), AccessKind::Read)
        .unwrap();
    let pa_b = proc_b
        .access(&mut machine.frames, va_b.add(0x1234), AccessKind::Read)
        .unwrap();
    println!(
        "process A {va_a} and process B {va_b} -> same frame: {} ({})",
        pa_a.translation().pa == pa_b.translation().pa,
        pa_a.translation().pa
    );

    // 4. Page walks are one level shorter for 2MB pages.
    println!(
        "walk length: 2MB mapping = {} levels (4KB would be 4)",
        pa_a.trace().len()
    );

    // 5. Drive a page-strided scan through the machine and watch the TLB.
    let mut counters = Counters::new();
    for off in (0..seg_len()).step_by(4096) {
        machine
            .data_access(
                &mut proc_a,
                0,
                va_a.add(off as u64),
                DataKind::Read,
                lpomp::machine::AccessMode::Latency,
                &mut counters,
            )
            .unwrap();
    }
    println!(
        "page-strided scan of 8MB with 2MB pages: {} accesses, {} DTLB misses",
        counters.get(Event::Loads),
        counters.get(Event::DtlbMisses)
    );

    // 6. Inspect the core-0 DTLB directly.
    let outcome = machine.dtlb(0);
    println!("core 0 DTLB stats: {:?}", outcome.stats());
    let probe = machine.dtlb(0).config().coverage_bytes(PageSize::Large2M);
    println!("core 0 DTLB 2MB reach: {} MB", probe >> 20);

    // A lookup outcome, straight from the TLB model:
    let mut machine2 = Machine::new(opteron_2x2());
    let mut tlb = lpomp::tlb::Tlb::new(machine2.config().dtlb.clone());
    let va = lpomp::vm::VirtAddr(0x1234_5000);
    assert_eq!(tlb.lookup(va), TlbOutcome::Miss);
    tlb.fill(va, PageSize::Small4K);
    assert_eq!(tlb.lookup(va), TlbOutcome::L1Hit(PageSize::Small4K));
    println!("manual TLB: miss -> fill -> hit, as expected");
    let _ = &mut machine2;
}

fn seg_len() -> usize {
    8 * 1024 * 1024
}
