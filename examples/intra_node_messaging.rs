//! The §3.3 intra-node message layer in action: single-copy mailboxes
//! between the "processes" of a node — ping-pong latency, a ring
//! exchange, and the mailbox-based all-reduce the runtime's collectives
//! build on.
//!
//! ```sh
//! cargo run --release --example intra_node_messaging
//! ```

use lpomp::runtime::{allreduce_sum, Mailbox, MAX_MSG_BYTES, SLOTS_PER_CHANNEL};
use std::time::Instant;

fn main() {
    let ranks = 4;
    let mb = Mailbox::new(ranks);
    println!(
        "mailbox: {} ranks, {} slots/channel, {} B max message, {} KB shared region\n",
        ranks,
        SLOTS_PER_CHANNEL,
        MAX_MSG_BYTES,
        mb.shared_bytes() / 1024
    );

    // Ping-pong latency between rank 0 and rank 1.
    let iters = 20_000;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..iters {
                mb.send(0, 1, &(i as u64).to_le_bytes()).unwrap();
                mb.recv_with(1, 0, |_| ());
            }
        });
        s.spawn(|| {
            for _ in 0..iters {
                mb.recv_with(0, 1, |m| {
                    debug_assert_eq!(m.len(), 8);
                });
                mb.send(1, 0, b"ack-----").unwrap();
            }
        });
    });
    let rtt = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!("ping-pong: {iters} round trips, {rtt:.0} ns/rtt");

    // Ring: each rank passes a token around once.
    std::thread::scope(|s| {
        for r in 0..ranks {
            let mb = &mb;
            s.spawn(move || {
                let next = (r + 1) % ranks;
                let prev = (r + ranks - 1) % ranks;
                if r == 0 {
                    mb.send(0, next, b"token").unwrap();
                    let t = mb.recv(prev, 0);
                    assert_eq!(t, b"token");
                    println!("ring: token returned to rank 0");
                } else {
                    let t = mb.recv(prev, r);
                    mb.send(r, next, &t).unwrap();
                }
            });
        }
    });

    // The collective behind `reduction(+)`: every rank contributes.
    let mut results = vec![0.0; ranks];
    std::thread::scope(|s| {
        for (rank, out) in results.iter_mut().enumerate() {
            let mb = &mb;
            s.spawn(move || {
                *out = allreduce_sum(mb, rank, (rank + 1) as f64);
            });
        }
    });
    println!("allreduce: every rank sees {:?}", results);
    assert!(results.iter().all(|&v| v == 10.0));
}
