//! Use the sweep API to answer a question the paper doesn't: *how would
//! the result change on an Opteron whose L2 DTLB were half the size?*
//!
//! This is the kind of what-if the library exists for — platform
//! parameters are plain data, so hypothetical hardware is one struct
//! update away.
//!
//! ```sh
//! cargo run --release --example custom_study [S|W]
//! ```

use lpomp::core::{BackendKind, PagePolicy, RunOpts, SweepSpec};
use lpomp::machine::opteron_2x2;
use lpomp::npb::{AppKind, Class};
use lpomp::tlb::{LevelConfig, SizeSlot};

fn main() {
    let class = match std::env::args().nth(1).as_deref() {
        Some("W") | Some("w") => Class::W,
        _ => Class::S,
    };

    // The real Opteron, and a hypothetical one with a 512-entry L2 DTLB.
    let real = opteron_2x2();
    let mut small_l2 = opteron_2x2();
    small_l2.name = "Opteron-512";
    small_l2.dtlb.l2 = Some(LevelConfig::per_rank([
        SizeSlot::ways(512, 4),
        SizeSlot::NONE,
        SizeSlot::NONE,
        SizeSlot::NONE,
    ]));

    let spec = SweepSpec {
        apps: vec![AppKind::Cg, AppKind::Sp, AppKind::Mg],
        class,
        machines: vec![real, small_l2],
        policies: vec![PagePolicy::Small4K, PagePolicy::Large2M],
        threads: vec![4],
        opts: RunOpts::default(),
        backend: BackendKind::CycleExact,
    };
    println!(
        "custom study: halving the Opteron L2 DTLB (class {class}, {} runs)\n",
        spec.len()
    );
    let results = spec.run_with_progress(|done, total| {
        eprint!("\r{done}/{total} runs");
    });
    eprintln!("\rdone.          ");

    println!("machine       app   4KB(s)    2MB(s)    2MB gain");
    for machine in ["Opteron", "Opteron-512"] {
        for app in [AppKind::Cg, AppKind::Sp, AppKind::Mg] {
            let small = results
                .get(app, machine, PagePolicy::Small4K, 4)
                .expect("ran");
            let large = results
                .get(app, machine, PagePolicy::Large2M, 4)
                .expect("ran");
            println!(
                "{machine:<12}  {app:<4}  {:<8.4}  {:<8.4}  {:>5.1}%",
                small.seconds,
                large.seconds,
                results.improvement(app, machine, 4).unwrap()
            );
        }
    }
    println!(
        "\nA smaller 4KB L2 TLB makes the 4KB baseline worse, so the paper's\n\
         large-page improvements would have been even bigger on such a part —\n\
         the 2MB runs are identical on both machines (they never touch the\n\
         L2 DTLB, which holds no 2MB entries)."
    );
}
