//! Tenant scheduling primitives: ASID handling policy and the
//! round-robin timeslice scheduler.
//!
//! The machine itself is tenant-agnostic — it tags TLB entries and cache
//! lines with whatever ASID [`crate::Machine::context_switch`] installed.
//! This module supplies the two policy knobs the multi-tenant runtime
//! builds on:
//!
//! * [`AsidMode`] — whether the hardware preserves TLB entries across a
//!   context switch (PCID/ASID-tagged parts) or flushes everything
//!   (pre-PCID x86, the ablation baseline);
//! * [`SliceScheduler`] — a deterministic round-robin picker that hands
//!   the whole machine to one tenant for a fixed cycle quantum at a time
//!   (gang scheduling: HPC tenants run all their threads together or not
//!   at all).

/// How translation state is handled when a core switches tenants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AsidMode {
    /// TLB entries are tagged with the owning tenant's ASID and survive
    /// context switches; lookups only match the current tenant's tag.
    /// Models PCID-style hardware.
    #[default]
    Tagged,
    /// Every TLB is flushed on each context switch, so a rescheduled
    /// tenant restarts translation-cold. Models untagged hardware and
    /// serves as the ablation baseline for the tagged mode.
    FlushOnSwitch,
}

impl AsidMode {
    /// Short lowercase label used in report tables and store keys.
    pub fn label(self) -> &'static str {
        match self {
            AsidMode::Tagged => "tagged",
            AsidMode::FlushOnSwitch => "flush",
        }
    }
}

/// Deterministic round-robin timeslice scheduler over `tenants` gangs.
///
/// Each call to [`next_slice`](Self::next_slice) picks the next runnable
/// tenant after the previously scheduled one and returns it together
/// with the slice's end time. Fairness is positional, not load-based:
/// a tenant that finishes early simply drops out of the rotation.
#[derive(Debug)]
pub struct SliceScheduler {
    tenants: usize,
    timeslice: u64,
    /// Next rotation position to consider (index of the tenant after the
    /// one most recently granted).
    next: usize,
}

impl SliceScheduler {
    /// A scheduler over `tenants` gangs with a fixed `timeslice` in
    /// cycles. `timeslice` must be non-zero.
    pub fn new(tenants: usize, timeslice: u64) -> Self {
        assert!(tenants > 0, "scheduler needs at least one tenant");
        assert!(timeslice > 0, "a zero timeslice would never progress");
        SliceScheduler {
            tenants,
            timeslice,
            next: 0,
        }
    }

    /// The configured slice length in cycles.
    pub fn timeslice(&self) -> u64 {
        self.timeslice
    }

    /// Pick the next runnable tenant at time `now`. Returns the tenant
    /// index and the cycle at which its slice expires, or `None` when no
    /// tenant in `runnable` is still true (all finished).
    ///
    /// # Panics
    /// Panics if `runnable.len()` differs from the tenant count.
    pub fn next_slice(&mut self, now: u64, runnable: &[bool]) -> Option<(usize, u64)> {
        assert_eq!(runnable.len(), self.tenants, "runnable mask size mismatch");
        for off in 0..self.tenants {
            let idx = (self.next + off) % self.tenants;
            if runnable[idx] {
                self.next = idx + 1;
                return Some((idx, now + self.timeslice));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_tagged() {
        assert_eq!(AsidMode::default(), AsidMode::Tagged);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AsidMode::Tagged.label(), "tagged");
        assert_eq!(AsidMode::FlushOnSwitch.label(), "flush");
    }

    #[test]
    fn round_robin_rotates_through_all_tenants() {
        let mut s = SliceScheduler::new(3, 100);
        let all = [true, true, true];
        assert_eq!(s.next_slice(0, &all), Some((0, 100)));
        assert_eq!(s.next_slice(100, &all), Some((1, 200)));
        assert_eq!(s.next_slice(200, &all), Some((2, 300)));
        assert_eq!(s.next_slice(300, &all), Some((0, 400)));
    }

    #[test]
    fn finished_tenants_drop_out_of_the_rotation() {
        let mut s = SliceScheduler::new(3, 50);
        assert_eq!(s.next_slice(0, &[true, true, true]), Some((0, 50)));
        // Tenant 1 finished during slice 0; the rotation skips it.
        assert_eq!(s.next_slice(50, &[true, false, true]), Some((2, 100)));
        assert_eq!(s.next_slice(100, &[true, false, true]), Some((0, 150)));
        // Everyone done.
        assert_eq!(s.next_slice(150, &[false, false, false]), None);
    }

    #[test]
    fn slice_end_tracks_now_not_schedule_count() {
        let mut s = SliceScheduler::new(2, 1000);
        // A tenant yields late (barrier overrun); the next slice still
        // starts from the actual clock.
        assert_eq!(s.next_slice(0, &[true, true]), Some((0, 1000)));
        assert_eq!(s.next_slice(1375, &[true, true]), Some((1, 2375)));
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_is_rejected() {
        SliceScheduler::new(0, 100);
    }
}
