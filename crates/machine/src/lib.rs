//! # `lpomp-machine` — deterministic multi-core timing model
//!
//! The hardware substrate of the reproduction: the dual dual-core Opteron
//! 270 and the dual dual-core hyper-threaded Xeon of the paper's §4.1,
//! modelled as
//!
//! * [`cache`] — set-associative L1D/L2 caches (private vs chip-shared);
//! * [`cost`] — the cycle cost model (latency ratios, SMT flush penalty);
//! * [`config`] — topology presets and the paper's thread-placement rule
//!   (one thread per core up to four, then a second SMT context);
//! * [`machine`] — the assembled machine: per-core split TLBs shared by
//!   SMT contexts, cache hierarchy, page-walk charging, the Xeon
//!   flush-on-stall rule;
//! * [`ctx`] — [`MemoryCtx`], the instrumentation interface kernels are
//!   written against, with a simulating and a no-op implementation.
//!
//! The model is functional *and* timing: every access returns the cycles
//! it took, so per-thread clocks — and ultimately the Fig. 4 run times —
//! are sums of individually explainable charges, not fitted curves.

#![warn(missing_docs)]

pub mod analytic;
pub mod cache;
pub mod capture;
pub mod config;
pub mod cost;
pub mod ctx;
pub mod machine;
pub mod numa;
pub mod sched;

pub use analytic::{evaluate, AnalyticPoint, AnalyticResult};
pub use cache::{Cache, CacheConfig, CacheStats, LINE_BYTES};
pub use capture::{CaptureCtx, CaptureState};
pub use config::{
    arm64_2x2_16k, arm64_2x2_4k, modern_x86_2x2, opteron_2x2, xeon_2x2_ht, L2Scope, MachineConfig,
};
pub use cost::CostModel;
pub use ctx::{CodeWalker, MemoryCtx, NullCtx, SimCtx};
pub use machine::{AccessMode, DataKind, Machine};
pub use numa::{NumaConfig, NumaPlacement};
pub use sched::{AsidMode, SliceScheduler};
