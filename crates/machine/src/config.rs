//! Machine topology: chips, cores, SMT contexts, cache scopes, and the two
//! platform presets of the paper's §4.1.

use crate::cache::CacheConfig;
use crate::cost::CostModel;
use crate::numa::NumaConfig;
use lpomp_tlb::TlbConfig;
use lpomp_vm::Arch;

/// Which cores share an L2 cache instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L2Scope {
    /// Each core has a private L2 (Opteron).
    PerCore,
    /// All cores of a chip share one L2 (Xeon, per §2.1).
    PerChip,
}

/// Full description of a simulated platform.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Platform name as used in figures ("Opteron", "Xeon").
    pub name: &'static str,
    /// Number of processor chips (sockets).
    pub chips: usize,
    /// Cores per chip.
    pub cores_per_chip: usize,
    /// SMT contexts per core (1 = no SMT; 2 = hyper-threading).
    pub smt_per_core: usize,
    /// Data-TLB geometry (instantiated per core; SMT contexts share it).
    pub dtlb: TlbConfig,
    /// Instruction-TLB geometry (per core, shared by SMT contexts).
    pub itlb: TlbConfig,
    /// L1 data cache (per core).
    pub l1d: CacheConfig,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// Whether L2 is per-core or per-chip.
    pub l2_scope: L2Scope,
    /// Whether the core flushes its pipeline when an SMT context stalls
    /// (the Xeon implementation the paper blames in §4.4).
    pub smt_flush_on_stall: bool,
    /// Cycle costs.
    pub cost: CostModel,
    /// Bytes of simulated physical memory.
    pub ram_bytes: u64,
    /// NUMA model (extension E3). `None` models uniform memory, which is
    /// the paper's implicit assumption; the presets default to `None` so
    /// the headline reproduction is NUMA-free.
    pub numa: Option<NumaConfig>,
    /// Whether the hardware walker's page-walk caches keep the upper
    /// levels of the radix tree resident (true on both platforms; turning
    /// it off charges every level of every walk through the memory
    /// hierarchy — ablation A5).
    pub page_walk_cache: bool,
}

impl MachineConfig {
    /// The platform's translation architecture (page-size ladder and walk
    /// shape). Carried by the TLB geometries; both TLBs of a machine must
    /// agree, which [`crate::machine::Machine::new`] asserts.
    pub fn arch(&self) -> Arch {
        self.dtlb.arch
    }

    /// Total cores.
    pub fn cores(&self) -> usize {
        self.chips * self.cores_per_chip
    }

    /// Total hardware thread contexts.
    pub fn contexts(&self) -> usize {
        self.cores() * self.smt_per_core
    }

    /// Number of L2 cache instances.
    pub fn l2_instances(&self) -> usize {
        match self.l2_scope {
            L2Scope::PerCore => self.cores(),
            L2Scope::PerChip => self.chips,
        }
    }

    /// L2 instance serving a core.
    pub fn l2_of_core(&self, core: usize) -> usize {
        match self.l2_scope {
            L2Scope::PerCore => core,
            L2Scope::PerChip => core / self.cores_per_chip,
        }
    }

    /// NUMA node (chip) of a core.
    pub fn node_of_core(&self, core: usize) -> usize {
        core / self.cores_per_chip
    }

    /// Place `threads` logical threads onto cores the way the paper does
    /// (§4 caption of Fig. 4): one thread per core up to the core count,
    /// then a second SMT context per core. Returns the core index of each
    /// logical thread.
    ///
    /// # Panics
    /// If `threads` exceeds the context count.
    pub fn placement(&self, threads: usize) -> Vec<usize> {
        assert!(
            threads <= self.contexts(),
            "{threads} threads exceed {} hardware contexts",
            self.contexts()
        );
        (0..threads).map(|t| t % self.cores()).collect()
    }

    /// Number of logical threads resident on each core under
    /// [`placement`](Self::placement).
    pub fn residency(&self, threads: usize) -> Vec<usize> {
        let mut r = vec![0usize; self.cores()];
        for c in self.placement(threads) {
            r[c] += 1;
        }
        r
    }
}

/// The paper's Opteron platform: dual dual-core Opteron 270, 4 GB RAM,
/// private 1 MB L2 per core, no SMT.
pub fn opteron_2x2() -> MachineConfig {
    MachineConfig {
        name: "Opteron",
        chips: 2,
        cores_per_chip: 2,
        smt_per_core: 1,
        dtlb: lpomp_tlb::OPTERON_DTLB,
        itlb: lpomp_tlb::OPTERON_ITLB,
        l1d: CacheConfig {
            name: "Opteron L1D",
            capacity_bytes: 64 * 1024,
            ways: 2,
        },
        l2: CacheConfig {
            name: "Opteron L2",
            capacity_bytes: 1024 * 1024,
            ways: 16,
        },
        l2_scope: L2Scope::PerCore,
        smt_flush_on_stall: false,
        cost: CostModel::opteron(),
        ram_bytes: 4 * 1024 * 1024 * 1024,
        numa: None,
        page_walk_cache: true,
    }
}

/// The paper's Xeon platform: dual dual-core Xeon with hyper-threading
/// (8 contexts), 12 GB RAM, shared L2 per chip, flush-on-stall SMT.
pub fn xeon_2x2_ht() -> MachineConfig {
    MachineConfig {
        name: "Xeon",
        chips: 2,
        cores_per_chip: 2,
        smt_per_core: 2,
        dtlb: lpomp_tlb::XEON_DTLB,
        itlb: lpomp_tlb::XEON_ITLB,
        l1d: CacheConfig {
            name: "Xeon L1D",
            capacity_bytes: 16 * 1024,
            ways: 8,
        },
        l2: CacheConfig {
            name: "Xeon L2",
            capacity_bytes: 2 * 1024 * 1024,
            ways: 8,
        },
        l2_scope: L2Scope::PerChip,
        smt_flush_on_stall: true,
        cost: CostModel::xeon(),
        ram_bytes: 12 * 1024 * 1024 * 1024,
        numa: None,
        page_walk_cache: true,
    }
}

/// Extension platform: the paper's Opteron topology (2 × 2 cores, private
/// L2, no SMT) re-equipped with a modern x86-64 translation architecture —
/// 1 GB pages, split per-size L1 TLBs and a large set-associative L2 TLB.
/// Topology, caches and cycle costs are held at the Opteron baseline so
/// the only variable between this preset and [`opteron_2x2`] is the
/// translation architecture itself.
pub fn modern_x86_2x2() -> MachineConfig {
    MachineConfig {
        name: "ModernX86",
        dtlb: lpomp_tlb::MODERN_X86_DTLB,
        itlb: lpomp_tlb::MODERN_X86_ITLB,
        ram_bytes: 16 * 1024 * 1024 * 1024,
        ..opteron_2x2()
    }
}

/// Extension platform: ARM64 with 4 KB granule (4 KB / 2 MB / 64 KB
/// contiguous blocks), same topology/cache/cost baseline as
/// [`opteron_2x2`].
pub fn arm64_2x2_4k() -> MachineConfig {
    MachineConfig {
        name: "ARM64-4K",
        dtlb: lpomp_tlb::ARM64_4K_DTLB,
        itlb: lpomp_tlb::ARM64_4K_ITLB,
        ram_bytes: 8 * 1024 * 1024 * 1024,
        ..opteron_2x2()
    }
}

/// Extension platform: ARM64 with 16 KB granule (16 KB base pages, 2 MB
/// contiguous blocks, 32 MB table blocks), same baseline as
/// [`opteron_2x2`].
pub fn arm64_2x2_16k() -> MachineConfig {
    MachineConfig {
        name: "ARM64-16K",
        dtlb: lpomp_tlb::ARM64_16K_DTLB,
        itlb: lpomp_tlb::ARM64_16K_ITLB,
        ram_bytes: 8 * 1024 * 1024 * 1024,
        ..opteron_2x2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_presets_carry_their_arch() {
        assert_eq!(opteron_2x2().arch(), Arch::X86_64_2007);
        assert_eq!(xeon_2x2_ht().arch(), Arch::X86_64_2007);
        assert_eq!(modern_x86_2x2().arch(), Arch::X86_64_MODERN);
        assert_eq!(arm64_2x2_4k().arch(), Arch::ARM64_4K);
        assert_eq!(arm64_2x2_16k().arch(), Arch::ARM64_16K);
        for cfg in [modern_x86_2x2(), arm64_2x2_4k(), arm64_2x2_16k()] {
            assert_eq!(cfg.dtlb.arch, cfg.itlb.arch, "{}", cfg.name);
            assert_eq!(cfg.cores(), 4, "{}", cfg.name);
        }
    }

    #[test]
    fn topology_counts() {
        let o = opteron_2x2();
        assert_eq!(o.cores(), 4);
        assert_eq!(o.contexts(), 4);
        assert_eq!(o.l2_instances(), 4);
        let x = xeon_2x2_ht();
        assert_eq!(x.cores(), 4);
        assert_eq!(x.contexts(), 8);
        assert_eq!(x.l2_instances(), 2);
    }

    #[test]
    fn l2_of_core_mapping() {
        let x = xeon_2x2_ht();
        assert_eq!(x.l2_of_core(0), 0);
        assert_eq!(x.l2_of_core(1), 0);
        assert_eq!(x.l2_of_core(2), 1);
        assert_eq!(x.l2_of_core(3), 1);
        let o = opteron_2x2();
        assert_eq!(o.l2_of_core(3), 3);
    }

    #[test]
    fn placement_fills_cores_before_smt() {
        let x = xeon_2x2_ht();
        // 4 threads: one per core.
        assert_eq!(x.placement(4), vec![0, 1, 2, 3]);
        assert_eq!(x.residency(4), vec![1, 1, 1, 1]);
        // 8 threads: two per core.
        assert_eq!(x.placement(8), vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(x.residency(8), vec![2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn placement_rejects_oversubscription() {
        opteron_2x2().placement(5);
    }

    #[test]
    fn node_of_core_maps_chips() {
        let o = opteron_2x2();
        assert_eq!(o.node_of_core(0), 0);
        assert_eq!(o.node_of_core(1), 0);
        assert_eq!(o.node_of_core(2), 1);
        assert_eq!(o.node_of_core(3), 1);
    }

    #[test]
    fn presets_match_paper_hardware() {
        let o = opteron_2x2();
        assert!(!o.smt_flush_on_stall);
        assert_eq!(o.ram_bytes, 4 << 30);
        let x = xeon_2x2_ht();
        assert!(x.smt_flush_on_stall);
        assert_eq!(x.ram_bytes, 12 << 30);
        assert_eq!(x.l2_scope, L2Scope::PerChip);
        assert_eq!(o.l2_scope, L2Scope::PerCore);
    }
}
