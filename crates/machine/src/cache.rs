//! Set-associative cache model (L1D and L2).
//!
//! The platforms' cache organisations matter to the paper's story in two
//! ways: page walks triggered by TLB misses are themselves memory accesses
//! that often hit in L2 (making a walk cheaper than a DRAM trip), and the
//! Xeon's two cores *share* their L2 while the Opteron's L2s are private
//! (§2.1) — part of why the two platforms scale differently.
//!
//! Caches here are indexed by address with true LRU per set, at cache-line
//! (64 B) granularity. Indexing is virtual for ordinary data (a VIPT
//! simplification: the simulated job is one shared address space, so no
//! aliasing can arise) and physical for page-walk references, which carry
//! a tag bit to keep the two keyspaces disjoint.

/// Cache line size in bytes on both evaluation platforms.
pub const LINE_BYTES: u64 = 64;
/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// Geometry of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name ("Opteron L1D").
    pub name: &'static str,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u16,
}

impl CacheConfig {
    /// Number of sets (capacity / line / ways). Must be a power of two.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / LINE_BYTES / self.ways as u64) as usize
    }
}

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1].
    pub fn miss_ratio(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

/// A set-associative cache with true LRU (MRU-first vectors per set).
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    set_mask: u64,
    ways: usize,
    /// Per-set line addresses, MRU first.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Instantiate a cache from its geometry.
    pub fn new(config: CacheConfig) -> Self {
        let nsets = config.sets();
        assert!(
            nsets.is_power_of_two(),
            "{}: set count {nsets} must be a power of two",
            config.name
        );
        Cache {
            set_mask: (nsets - 1) as u64,
            ways: config.ways as usize,
            sets: vec![Vec::with_capacity(config.ways as usize); nsets],
            config,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Access the line containing `addr`, filling on miss. Returns `true`
    /// on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> LINE_SHIFT;
        let si = self.set_index(line);
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if pos != 0 {
                let l = set.remove(pos);
                set.insert(0, l);
            }
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            if set.len() == self.ways {
                set.pop();
                self.stats.evictions += 1;
            }
            set.insert(0, line);
            false
        }
    }

    /// Probe without updating LRU or counters.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> LINE_SHIFT;
        self.sets[self.set_index(line)].contains(&line)
    }

    /// Invalidate the whole cache.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: CacheConfig = CacheConfig {
        name: "tiny",
        capacity_bytes: 4 * 64, // 4 lines
        ways: 2,                // 2 sets
    };

    #[test]
    fn config_sets_arithmetic() {
        assert_eq!(TINY.sets(), 2);
        let l2 = CacheConfig {
            name: "l2",
            capacity_bytes: 1024 * 1024,
            ways: 16,
        };
        assert_eq!(l2.sets(), 1024);
    }

    #[test]
    fn miss_then_hit_within_line() {
        let mut c = Cache::new(TINY);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f)); // same 64B line
        assert!(!c.access(0x140)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = Cache::new(TINY);
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        c.access(0 << LINE_SHIFT);
        c.access(2 << LINE_SHIFT);
        c.access(0 << LINE_SHIFT); // 2 is now LRU
        c.access(4 << LINE_SHIFT); // evicts 2
        assert!(c.probe(0 << LINE_SHIFT));
        assert!(!c.probe(2 << LINE_SHIFT));
        assert!(c.probe(4 << LINE_SHIFT));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn flush_clears() {
        let mut c = Cache::new(TINY);
        c.access(0x1000);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe(0x1000));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let cfg = CacheConfig {
            name: "small",
            capacity_bytes: 64 * 64, // 64 lines
            ways: 4,
        };
        let mut c = Cache::new(cfg);
        // Stream 1024 distinct lines twice: second pass still misses
        // (capacity 64 << 1024).
        for pass in 0..2 {
            for i in 0..1024u64 {
                let hit = c.access(i << LINE_SHIFT);
                if pass == 1 {
                    assert!(!hit, "line {i} unexpectedly survived");
                }
            }
        }
    }

    #[test]
    fn small_working_set_fully_hits_on_second_pass() {
        let cfg = CacheConfig {
            name: "small",
            capacity_bytes: 64 * 64,
            ways: 4,
        };
        let mut c = Cache::new(cfg);
        for i in 0..32u64 {
            c.access(i << LINE_SHIFT);
        }
        for i in 0..32u64 {
            assert!(c.access(i << LINE_SHIFT));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        Cache::new(CacheConfig {
            name: "bad",
            capacity_bytes: 3 * 64,
            ways: 1,
        });
    }
}
