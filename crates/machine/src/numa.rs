//! NUMA configuration for the Opteron platform (extension E3).
//!
//! The paper's Opteron testbed is two sockets connected by HyperTransport
//! (§2.1), i.e. a NUMA machine: each chip has its own memory controller,
//! and accesses to the other chip's memory pay the interconnect latency.
//! The paper does not isolate NUMA effects; this extension does, because
//! page size and NUMA *placement granularity* interact — a page is the
//! smallest unit of physical placement, so 2 MB pages cannot be
//! interleaved (or migrated) at 4 KB granularity. Large pages trade TLB
//! reach against placement flexibility.
//!
//! The model is physical: the buddy allocator's extent is split into
//! per-node frame ranges (`BuddyAllocator::with_nodes`), every page lives
//! on the node that owns its frame, and a reference that reaches DRAM
//! pays `remote_extra` cycles when the frame's home differs from the
//! requesting core's node (`remote_stream_extra` for prefetched streams,
//! which pay in bandwidth rather than latency). Page walks are memory
//! references too: a PTE fetched from a remote node's DRAM pays the same
//! hop, unless [`NumaConfig::replicate_pt`] keeps a replica of the page
//! tables on every node (the Mitosis design — Achermann et al., ASPLOS
//! 2020), making every walk node-local at the price of broadcasting
//! every page-table edit.
//!
//! [`NumaPlacement`] decides where pages land: statically at segment
//! creation for the shared heaps (master-node, interleave) or dynamically
//! at fault time for first-touch, where the runtime places each page on
//! the faulting thread's node. The optional balancing daemon
//! (`lpomp_vm::migrate::NumaDaemon`) then migrates pages with persistent
//! remote accessors.

/// How pages are distributed across the nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumaPlacement {
    /// Everything on node 0 — what first-touch gives a runtime that
    /// initializes all shared data on the master thread (the classic
    /// OpenMP NUMA pitfall, and what Omni's startup preallocation does).
    MasterNode,
    /// Round-robin 4 KB chunks across nodes. Only achievable when the
    /// mapping's own pages are 4 KB; 2 MB pages clamp it to 2 MB chunks.
    Interleave4K,
    /// Round-robin 2 MB chunks across nodes.
    Interleave2M,
    /// Place each page on the node of the thread that first touches it —
    /// Linux's default policy, and the only one that can put a thread's
    /// partition of the data next to the thread.
    FirstTouch,
}

impl NumaPlacement {
    /// Placement granularity in bytes (before clamping by page size).
    /// First-touch has no static granularity; like master-node it reports
    /// `u64::MAX` (a page is placed wherever its first toucher runs).
    pub fn granularity(self) -> u64 {
        match self {
            NumaPlacement::MasterNode | NumaPlacement::FirstTouch => u64::MAX,
            NumaPlacement::Interleave4K => 4096,
            NumaPlacement::Interleave2M => 2 * 1024 * 1024,
        }
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            NumaPlacement::MasterNode => "master-node",
            NumaPlacement::Interleave4K => "interleave-4KB",
            NumaPlacement::Interleave2M => "interleave-2MB",
            NumaPlacement::FirstTouch => "first-touch",
        }
    }
}

/// NUMA configuration of a platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NumaConfig {
    /// Number of memory nodes (= chips on the Opteron).
    pub nodes: usize,
    /// Extra cycles a demand DRAM access pays when the line's home node
    /// differs from the requesting core's (one HyperTransport hop).
    pub remote_extra: u64,
    /// Extra cycles per *streamed* line from a remote node (bandwidth
    /// cost of the interconnect, far below the latency cost).
    pub remote_stream_extra: u64,
    /// Page placement policy.
    pub placement: NumaPlacement,
    /// Mitosis-style per-node page-table replication: every node's page
    /// walker reads a local replica, so walks never pay the remote hop.
    /// The price is replica maintenance — every page-table edit is
    /// applied `nodes - 1` extra times, and the same TLB shootdowns that
    /// invalidate stale translations invalidate stale replica entries.
    pub replicate_pt: bool,
}

impl NumaConfig {
    /// The Opteron 270 pair: two nodes, ~70 extra cycles per remote
    /// demand access (one coherent HyperTransport hop at 2 GHz),
    /// shared (non-replicated) page tables.
    pub fn opteron(placement: NumaPlacement) -> Self {
        NumaConfig {
            nodes: 2,
            remote_extra: 70,
            remote_stream_extra: 9,
            placement,
            replicate_pt: false,
        }
    }

    /// This configuration with per-node page-table replication enabled.
    pub fn with_replicated_pt(mut self) -> Self {
        self.replicate_pt = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_granularities_and_labels() {
        assert_eq!(NumaPlacement::Interleave4K.granularity(), 4096);
        assert_eq!(NumaPlacement::Interleave2M.granularity(), 2 << 20);
        assert_eq!(NumaPlacement::MasterNode.granularity(), u64::MAX);
        assert_eq!(NumaPlacement::FirstTouch.granularity(), u64::MAX);
        for p in [
            NumaPlacement::MasterNode,
            NumaPlacement::Interleave4K,
            NumaPlacement::Interleave2M,
            NumaPlacement::FirstTouch,
        ] {
            assert!(!p.label().is_empty());
        }
    }

    #[test]
    fn remote_costs_ordered() {
        let n = NumaConfig::opteron(NumaPlacement::Interleave2M);
        assert!(n.remote_stream_extra < n.remote_extra);
        assert!(n.nodes == 2);
        assert!(!n.replicate_pt);
        assert!(n.with_replicated_pt().replicate_pt);
    }
}
