//! NUMA modelling for the Opteron platform (extension E3).
//!
//! The paper's Opteron testbed is two sockets connected by HyperTransport
//! (§2.1), i.e. a NUMA machine: each chip has its own memory controller,
//! and accesses to the other chip's memory pay the interconnect latency.
//! The paper does not isolate NUMA effects; this extension does, because
//! page size and NUMA *placement granularity* interact — a page is the
//! smallest unit of physical placement, so 2 MB pages cannot be
//! interleaved at 4 KB granularity. Large pages trade TLB reach against
//! placement flexibility, a trade-off that became well known once
//! hugepages met multi-socket machines.
//!
//! The model is analytic: the placement policy determines which node owns
//! each *physical placement chunk* (max of the policy granularity and the
//! mapping's page size — a single page always lives on one node), and
//! DRAM-level accesses from the other chip pay `remote_extra` cycles
//! (full for demand misses, a fraction for prefetched streams, which pay
//! in bandwidth rather than latency).

use lpomp_vm::{PageSize, VirtAddr};

/// How pages are distributed across the nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumaPlacement {
    /// Everything on node 0 — what first-touch gives a runtime that
    /// initializes all shared data on the master thread (the classic
    /// OpenMP NUMA pitfall, and what Omni's startup preallocation does).
    MasterNode,
    /// Round-robin 4 KB chunks across nodes. Only achievable when the
    /// mapping's own pages are 4 KB; 2 MB pages clamp it to 2 MB chunks.
    Interleave4K,
    /// Round-robin 2 MB chunks across nodes.
    Interleave2M,
}

impl NumaPlacement {
    /// Placement granularity in bytes (before clamping by page size).
    pub fn granularity(self) -> u64 {
        match self {
            NumaPlacement::MasterNode => u64::MAX,
            NumaPlacement::Interleave4K => 4096,
            NumaPlacement::Interleave2M => 2 * 1024 * 1024,
        }
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            NumaPlacement::MasterNode => "master-node",
            NumaPlacement::Interleave4K => "interleave-4KB",
            NumaPlacement::Interleave2M => "interleave-2MB",
        }
    }
}

/// NUMA configuration of a platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NumaConfig {
    /// Number of memory nodes (= chips on the Opteron).
    pub nodes: usize,
    /// Extra cycles a demand DRAM access pays when the line's home node
    /// differs from the requesting core's (one HyperTransport hop).
    pub remote_extra: u64,
    /// Extra cycles per *streamed* line from a remote node (bandwidth
    /// cost of the interconnect, far below the latency cost).
    pub remote_stream_extra: u64,
    /// Page placement policy.
    pub placement: NumaPlacement,
}

impl NumaConfig {
    /// The Opteron 270 pair: two nodes, ~70 extra cycles per remote
    /// demand access (one coherent HyperTransport hop at 2 GHz).
    pub fn opteron(placement: NumaPlacement) -> Self {
        NumaConfig {
            nodes: 2,
            remote_extra: 70,
            remote_stream_extra: 9,
            placement,
        }
    }

    /// Home node of the placement chunk containing `va`, for a mapping of
    /// page size `page`. A page is physically contiguous on one node, so
    /// the effective chunk is at least the page.
    pub fn node_of(&self, va: VirtAddr, page: PageSize) -> usize {
        match self.placement {
            NumaPlacement::MasterNode => 0,
            _ => {
                let chunk = self.placement.granularity().max(page.bytes());
                ((va.0 / chunk) as usize) % self.nodes
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_node_pins_everything_to_zero() {
        let n = NumaConfig::opteron(NumaPlacement::MasterNode);
        for a in [0u64, 1 << 12, 1 << 21, 1 << 30] {
            assert_eq!(n.node_of(VirtAddr(a), PageSize::Small4K), 0);
            assert_eq!(n.node_of(VirtAddr(a), PageSize::Large2M), 0);
        }
    }

    #[test]
    fn interleave_4k_alternates_per_page() {
        let n = NumaConfig::opteron(NumaPlacement::Interleave4K);
        assert_eq!(n.node_of(VirtAddr(0), PageSize::Small4K), 0);
        assert_eq!(n.node_of(VirtAddr(4096), PageSize::Small4K), 1);
        assert_eq!(n.node_of(VirtAddr(8192), PageSize::Small4K), 0);
    }

    #[test]
    fn large_pages_clamp_interleave_granularity() {
        // A 2 MB page lives on one node even under 4 KB interleave.
        let n = NumaConfig::opteron(NumaPlacement::Interleave4K);
        let page = PageSize::Large2M;
        let base = VirtAddr(0);
        for off in (0..page.bytes()).step_by(64 * 1024) {
            assert_eq!(n.node_of(base.add(off), page), 0, "offset {off}");
        }
        assert_eq!(n.node_of(VirtAddr(page.bytes()), page), 1);
    }

    #[test]
    fn interleave_2m_alternates_per_large_chunk() {
        let n = NumaConfig::opteron(NumaPlacement::Interleave2M);
        assert_eq!(n.node_of(VirtAddr(0), PageSize::Small4K), 0);
        assert_eq!(n.node_of(VirtAddr(2 << 20), PageSize::Small4K), 1);
        assert_eq!(n.node_of(VirtAddr(1 << 20), PageSize::Small4K), 0);
    }

    #[test]
    fn remote_costs_ordered() {
        let n = NumaConfig::opteron(NumaPlacement::Interleave2M);
        assert!(n.remote_stream_extra < n.remote_extra);
        assert!(n.nodes == 2);
    }
}
