//! The per-thread memory interface kernels are written against.
//!
//! Workload kernels (`lpomp-npb`) perform their real floating-point work
//! on ordinary Rust buffers while narrating their *memory behaviour*
//! through a [`MemoryCtx`]: every instrumented load/store names the
//! virtual address the access would touch in the simulated address space.
//! Two implementations exist:
//!
//! * [`SimCtx`] charges each access through the machine model — TLBs,
//!   caches, walks, faults, the SMT stall rule — and advances the thread's
//!   cycle clock. An embedded [`CodeWalker`] synthesizes the instruction
//!   fetch stream so ITLB behaviour (the paper's Fig. 3) is measured too.
//! * [`NullCtx`] is a no-op used by the native (real-thread) engine, where
//!   the kernels execute for correctness and wall-clock benchmarking.
//!
//! Kernels take `&mut dyn MemoryCtx`, so a single kernel source serves
//! both engines.

use crate::machine::{AccessMode, DataKind, Machine};
use lpomp_prof::{Counters, Event};
use lpomp_vm::{AddressSpace, VirtAddr};

/// Cache-line granularity used by the streaming helpers.
const LINE: u64 = crate::cache::LINE_BYTES;

/// The instrumentation interface kernels call.
///
/// Granularity convention: dense sweeps should use [`stream_read`] /
/// [`stream_write`], which touch one address per cache line (exact for TLB
/// and cache behaviour, ~8× cheaper to simulate than per-element calls);
/// irregular accesses (gathers, stride jumps) use [`read`] / [`write`] per
/// element.
///
/// [`stream_read`]: MemoryCtx::stream_read
/// [`stream_write`]: MemoryCtx::stream_write
/// [`read`]: MemoryCtx::read
/// [`write`]: MemoryCtx::write
pub trait MemoryCtx {
    /// Logical thread id of this context.
    fn thread_id(&self) -> usize;

    /// One data load at `va`.
    fn read(&mut self, va: VirtAddr);

    /// One data store at `va`.
    fn write(&mut self, va: VirtAddr);

    /// One load that is part of a sequential stream (prefetcher-covered;
    /// see [`AccessMode::Stream`]). Defaults to a demand read.
    ///
    /// [`AccessMode::Stream`]: crate::machine::AccessMode::Stream
    fn read_streamed(&mut self, va: VirtAddr) {
        self.read(va);
    }

    /// One load whose address is independent of other in-flight loads
    /// (strided pencil walks): miss latency overlaps. Defaults to a
    /// demand read.
    fn read_pipelined(&mut self, va: VirtAddr) {
        self.read(va);
    }

    /// One independent store (see [`read_pipelined`]).
    ///
    /// [`read_pipelined`]: MemoryCtx::read_pipelined
    fn write_pipelined(&mut self, va: VirtAddr) {
        self.write(va);
    }

    /// One store that is part of a sequential stream.
    fn write_streamed(&mut self, va: VirtAddr) {
        self.write(va);
    }

    /// Charge `instructions` of pure compute (and the matching instruction
    /// fetch behaviour).
    fn compute(&mut self, instructions: u64);

    /// The thread's current cycle clock (0 for non-simulating contexts).
    fn now_cycles(&self) -> u64 {
        0
    }

    /// Dense sequential read of `len` bytes starting at `va`, one access
    /// per cache line.
    fn stream_read(&mut self, va: VirtAddr, len: u64) {
        let mut off = 0;
        while off < len {
            self.read_streamed(va.add(off));
            off += LINE;
        }
    }

    /// Dense sequential write of `len` bytes starting at `va`.
    fn stream_write(&mut self, va: VirtAddr, len: u64) {
        let mut off = 0;
        while off < len {
            self.write_streamed(va.add(off));
            off += LINE;
        }
    }

    /// `count` reads starting at `va`, `stride` bytes apart.
    fn strided_read(&mut self, va: VirtAddr, stride: u64, count: u64) {
        for i in 0..count {
            self.read(va.add(i * stride));
        }
    }

    /// `count` writes starting at `va`, `stride` bytes apart.
    fn strided_write(&mut self, va: VirtAddr, stride: u64, count: u64) {
        for i in 0..count {
            self.write(va.add(i * stride));
        }
    }
}

/// Synthesizes a thread's instruction-fetch stream.
///
/// Loop-dominated OpenMP codes spend almost all fetches inside a hot loop
/// body a few pages long, with occasional excursions into the rest of the
/// binary (runtime calls, next phase). The walker advances a program
/// counter through the hot region, wrapping, and every `cold_period`
/// compute calls jumps to a rotating cold page — producing the tiny but
/// nonzero ITLB miss rates of the paper's Fig. 3.
#[derive(Clone, Debug)]
pub struct CodeWalker {
    /// Base of the code mapping.
    pub base: VirtAddr,
    /// Total binary size (the paper's Table 2 "Instruction" column).
    pub code_bytes: u64,
    /// Bytes of the hot loop region.
    pub hot_bytes: u64,
    /// One cold fetch every this many compute calls.
    pub cold_period: u64,
    pc: u64,
    cold_pos: u64,
    calls: u64,
}

impl CodeWalker {
    /// New walker over a code mapping.
    pub fn new(base: VirtAddr, code_bytes: u64, hot_bytes: u64, cold_period: u64) -> Self {
        assert!(hot_bytes > 0 && hot_bytes <= code_bytes);
        assert!(cold_period > 0);
        CodeWalker {
            base,
            code_bytes,
            hot_bytes,
            cold_period,
            pc: 0,
            cold_pos: 0,
            calls: 0,
        }
    }

    /// Addresses to fetch for a quantum of `instructions` (~4 bytes each):
    /// one fetch per 4 KB page crossed in the hot region, plus the
    /// occasional cold page.
    pub(crate) fn fetch_addrs(&mut self, instructions: u64, out: &mut Vec<VirtAddr>) {
        out.clear();
        self.calls += 1;
        let advance = instructions.saturating_mul(4);
        let pages = (advance / 4096).clamp(1, self.hot_bytes / 4096 + 1);
        for _ in 0..pages {
            out.push(self.base.add(self.pc));
            self.pc = (self.pc + 4096) % self.hot_bytes;
        }
        if self.calls.is_multiple_of(self.cold_period) {
            // Rotate through the cold portion of the binary.
            let cold_span = self.code_bytes.saturating_sub(self.hot_bytes);
            if cold_span > 0 {
                out.push(self.base.add(self.hot_bytes + self.cold_pos));
                self.cold_pos = (self.cold_pos + 4096) % cold_span;
            }
        }
    }
}

/// The simulating context: binds a logical thread to a core of the
/// [`Machine`], the shared [`AddressSpace`], its counter sheet and its
/// cycle clock for the duration of one execution quantum.
pub struct SimCtx<'a> {
    machine: &'a mut Machine,
    aspace: &'a mut AddressSpace,
    counters: &'a mut Counters,
    clock: &'a mut u64,
    code: &'a mut CodeWalker,
    core: usize,
    thread: usize,
    fetch_buf: Vec<VirtAddr>,
}

impl<'a> SimCtx<'a> {
    /// Bind a quantum's context.
    pub fn new(
        machine: &'a mut Machine,
        aspace: &'a mut AddressSpace,
        counters: &'a mut Counters,
        clock: &'a mut u64,
        code: &'a mut CodeWalker,
        core: usize,
        thread: usize,
    ) -> Self {
        SimCtx {
            machine,
            aspace,
            counters,
            clock,
            code,
            core,
            thread,
            fetch_buf: Vec::with_capacity(8),
        }
    }

    #[inline]
    fn charge(&mut self, cycles: u64) {
        let cycles = self.machine.smt_charge_scale(self.core, cycles);
        *self.clock += cycles;
        self.counters.add(Event::Cycles, cycles);
    }

    #[inline]
    fn data(&mut self, va: VirtAddr, kind: DataKind, mode: AccessMode) {
        let cycles = self
            .machine
            .data_access(self.aspace, self.core, va, kind, mode, self.counters)
            .unwrap_or_else(|e| panic!("thread {} at {va}: {e}", self.thread));
        self.charge(cycles);
    }
}

impl MemoryCtx for SimCtx<'_> {
    fn thread_id(&self) -> usize {
        self.thread
    }

    #[inline]
    fn read(&mut self, va: VirtAddr) {
        self.data(va, DataKind::Read, AccessMode::Latency);
    }

    #[inline]
    fn write(&mut self, va: VirtAddr) {
        self.data(va, DataKind::Write, AccessMode::Latency);
    }

    #[inline]
    fn read_streamed(&mut self, va: VirtAddr) {
        self.data(va, DataKind::Read, AccessMode::Stream);
    }

    #[inline]
    fn write_streamed(&mut self, va: VirtAddr) {
        self.data(va, DataKind::Write, AccessMode::Stream);
    }

    #[inline]
    fn read_pipelined(&mut self, va: VirtAddr) {
        self.data(va, DataKind::Read, AccessMode::Pipelined);
    }

    #[inline]
    fn write_pipelined(&mut self, va: VirtAddr) {
        self.data(va, DataKind::Write, AccessMode::Pipelined);
    }

    // Whole-run batched variants of the streaming helpers: one call into
    // the machine charges the full line run, page by page, instead of one
    // `data_access` round-trip per line. `Machine::data_access_run`
    // replicates this context's per-line charge rule exactly (SMT scale →
    // clock → cycle counter), so clock and counters are identical to the
    // default per-line loop — only host time differs.
    fn stream_read(&mut self, va: VirtAddr, len: u64) {
        self.machine
            .data_access_run(
                self.aspace,
                self.core,
                va,
                len,
                DataKind::Read,
                AccessMode::Stream,
                self.counters,
                self.clock,
            )
            .unwrap_or_else(|e| panic!("thread {} stream read at {va}: {e}", self.thread));
    }

    fn stream_write(&mut self, va: VirtAddr, len: u64) {
        self.machine
            .data_access_run(
                self.aspace,
                self.core,
                va,
                len,
                DataKind::Write,
                AccessMode::Stream,
                self.counters,
                self.clock,
            )
            .unwrap_or_else(|e| panic!("thread {} stream write at {va}: {e}", self.thread));
    }

    fn compute(&mut self, instructions: u64) {
        self.counters.add(Event::Instructions, instructions);
        self.charge(instructions); // CPI 1.0 for the compute component
        let mut buf = std::mem::take(&mut self.fetch_buf);
        self.code.fetch_addrs(instructions, &mut buf);
        for &va in &buf {
            let cycles = self
                .machine
                .ifetch(self.aspace, self.core, va, self.counters)
                .unwrap_or_else(|e| panic!("thread {} ifetch at {va}: {e}", self.thread));
            self.charge(cycles);
        }
        self.fetch_buf = buf;
    }

    fn now_cycles(&self) -> u64 {
        *self.clock
    }
}

/// No-op context for native (real-thread) execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullCtx {
    /// Logical thread id reported to the kernel.
    pub thread: usize,
}

impl NullCtx {
    /// Context for logical thread `thread`.
    pub fn new(thread: usize) -> Self {
        NullCtx { thread }
    }
}

impl MemoryCtx for NullCtx {
    fn thread_id(&self) -> usize {
        self.thread
    }

    #[inline]
    fn read(&mut self, _va: VirtAddr) {}

    #[inline]
    fn write(&mut self, _va: VirtAddr) {}

    #[inline]
    fn compute(&mut self, _instructions: u64) {}

    // Override the streaming helpers so native runs skip even the loop.
    fn stream_read(&mut self, _va: VirtAddr, _len: u64) {}
    fn stream_write(&mut self, _va: VirtAddr, _len: u64) {}
    fn strided_read(&mut self, _va: VirtAddr, _stride: u64, _count: u64) {}
    fn strided_write(&mut self, _va: VirtAddr, _stride: u64, _count: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::opteron_2x2;
    use lpomp_vm::{Backing, PageSize, Populate, PteFlags};

    struct Fixture {
        machine: Machine,
        aspace: AddressSpace,
        base: VirtAddr,
        code: CodeWalker,
    }

    fn fixture() -> Fixture {
        let mut machine = Machine::new(opteron_2x2());
        let mut aspace = AddressSpace::new(&mut machine.frames).unwrap();
        let code_base = aspace
            .mmap_fixed(
                &mut machine.frames,
                VirtAddr(0x40_0000),
                1_600_000,
                PageSize::Small4K,
                PteFlags::rx(),
                Backing::Anonymous,
                Populate::Eager,
                "code",
            )
            .unwrap();
        let base = aspace
            .mmap(
                &mut machine.frames,
                8 * 1024 * 1024,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "data",
            )
            .unwrap();
        let code = CodeWalker::new(code_base, 1_600_000, 64 * 1024, 1000);
        Fixture {
            machine,
            aspace,
            base,
            code,
        }
    }

    #[test]
    fn sim_ctx_advances_clock_and_counters() {
        let mut f = fixture();
        let mut counters = Counters::new();
        let mut clock = 0u64;
        let mut ctx = SimCtx::new(
            &mut f.machine,
            &mut f.aspace,
            &mut counters,
            &mut clock,
            &mut f.code,
            0,
            0,
        );
        ctx.read(f.base);
        ctx.write(f.base.add(64));
        ctx.compute(100);
        assert!(ctx.now_cycles() > 100);
        drop(ctx);
        assert_eq!(counters.get(Event::Loads), 1);
        assert_eq!(counters.get(Event::Stores), 1);
        assert_eq!(counters.get(Event::Instructions), 100);
        assert_eq!(clock, counters.get(Event::Cycles));
    }

    #[test]
    fn stream_touches_once_per_line() {
        let mut f = fixture();
        let mut counters = Counters::new();
        let mut clock = 0u64;
        let mut ctx = SimCtx::new(
            &mut f.machine,
            &mut f.aspace,
            &mut counters,
            &mut clock,
            &mut f.code,
            0,
            0,
        );
        ctx.stream_read(f.base, 4096);
        drop(ctx);
        assert_eq!(counters.get(Event::Loads), 4096 / 64);
    }

    #[test]
    fn batched_stream_equals_per_line_loop() {
        // `stream_read`/`stream_write` go through the batched
        // `Machine::data_access_run`; they must leave the counter sheet
        // and clock exactly where the default per-line helper loop would.
        let run = |batched: bool| -> (Counters, u64) {
            let mut f = fixture();
            let mut counters = Counters::new();
            let mut clock = 0u64;
            let mut ctx = SimCtx::new(
                &mut f.machine,
                &mut f.aspace,
                &mut counters,
                &mut clock,
                &mut f.code,
                0,
                0,
            );
            // Unaligned start, multi-page spans, interleaved reads and
            // writes, a revisit (warm caches), and a partial tail.
            let spans = [(96u64, 2 * 4096 + 72), (64 * 1024, 4096), (96, 4096)];
            for &(start, len) in &spans {
                if batched {
                    ctx.stream_read(f.base.add(start), len);
                    ctx.stream_write(f.base.add(start), len);
                } else {
                    let mut off = 0;
                    while off < len {
                        ctx.read_streamed(f.base.add(start + off));
                        off += 64;
                    }
                    let mut off = 0;
                    while off < len {
                        ctx.write_streamed(f.base.add(start + off));
                        off += 64;
                    }
                }
            }
            drop(ctx);
            (counters, clock)
        };
        let (fast, fast_clock) = run(true);
        let (slow, slow_clock) = run(false);
        assert_eq!(fast, slow, "batched stream changed simulated counters");
        assert_eq!(fast_clock, slow_clock, "batched stream changed the clock");
    }

    #[test]
    fn hot_loop_ifetches_rarely_miss_itlb() {
        let mut f = fixture();
        let mut counters = Counters::new();
        let mut clock = 0u64;
        let mut ctx = SimCtx::new(
            &mut f.machine,
            &mut f.aspace,
            &mut counters,
            &mut clock,
            &mut f.code,
            0,
            0,
        );
        for _ in 0..5000 {
            ctx.compute(1024);
        }
        drop(ctx);
        let fetches = counters.get(Event::IFetches);
        let misses = counters.get(Event::ItlbMisses);
        assert!(fetches > 4000);
        // Once the 16-page hot loop is resident, only cold jumps miss.
        assert!(
            (misses as f64) < 0.02 * fetches as f64,
            "ITLB miss rate too high: {misses}/{fetches}"
        );
    }

    #[test]
    fn code_walker_wraps_hot_region() {
        let mut w = CodeWalker::new(VirtAddr(0), 1 << 20, 8192, 10);
        let mut buf = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            w.fetch_addrs(1024, &mut buf);
            for a in &buf {
                seen.insert(a.0 / 4096);
            }
        }
        // Hot region is 2 pages; cold jumps add more over time.
        assert!(seen.contains(&0) && seen.contains(&1));
        assert!(seen.len() > 2, "cold fetches should appear");
    }

    #[test]
    fn null_ctx_is_inert() {
        let mut c = NullCtx::new(3);
        c.read(VirtAddr(0x1000));
        c.write(VirtAddr(0x1000));
        c.compute(1_000_000);
        c.stream_read(VirtAddr(0), u64::MAX); // must not loop
        assert_eq!(c.thread_id(), 3);
        assert_eq!(c.now_cycles(), 0);
    }

    #[test]
    fn dyn_dispatch_works() {
        let mut c = NullCtx::new(0);
        let d: &mut dyn MemoryCtx = &mut c;
        d.read(VirtAddr(8));
        d.compute(5);
        assert_eq!(d.thread_id(), 0);
    }
}
