//! The assembled hardware model: per-core TLBs and L1s, scoped L2s,
//! physical memory, and the cycle-charged access paths.

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::cost::CostModel;
use crate::sched::AsidMode;
use lpomp_prof::{Counters, Event};
use lpomp_tlb::{Tlb, TlbOutcome, TlbStats, ASID_SHIFT};
use lpomp_vm::{
    AccessKind, AddressSpace, BuddyAllocator, HintSamples, PageSize, PhysAddr, VirtAddr, VmResult,
};

/// Tag bit added to physical page-walk addresses before they enter the
/// (virtually indexed) cache model, keeping the PA and VA keyspaces
/// disjoint.
const WALK_TAG: u64 = 1 << 62;

/// Whether a data access is a load or a store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

impl DataKind {
    fn as_vm(self) -> AccessKind {
        match self {
            DataKind::Read => AccessKind::Read,
            DataKind::Write => AccessKind::Write,
        }
    }
}

/// How an access interacts with the memory pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessMode {
    /// Dependent demand access (pointer chase / data-dependent gather): a
    /// miss pays full DRAM latency (and may trigger the Xeon SMT flush,
    /// since the pipeline stalls).
    Latency,
    /// Independent demand access (strided walk with precomputable
    /// addresses): out-of-order overlap amortizes the miss latency, but —
    /// unlike a stream — the pattern is not prefetchable and the TLB cost
    /// is paid in full.
    Pipelined,
    /// Part of a detected sequential stream: the prefetcher hides miss
    /// latency (per-line bandwidth cost, no stall, no SMT flush) — but it
    /// stops at page boundaries, so TLB misses are still paid in full.
    Stream,
}

/// The page of a core's immediately preceding access: the one-entry
/// "micro-TLB" in front of the modelled TLB hierarchy.
///
/// Exactness argument (why the fast path cannot change any simulated
/// counter): this entry describes the *last* translation performed on the
/// core, so it is the most-recently-used entry of its L1 array — every
/// lookup outcome leaves the touched entry MRU (an L1 hit re-fronts it, an
/// L2 hit promote-fills it to the front, a miss fills it to the front).
/// A repeat access to the same page would therefore return
/// `L1Hit(size)` and its move-to-front would be a no-op, so recording the
/// hit via [`Tlb::record_l1_hit_bypass`] is observationally identical to
/// the full lookup. Staleness is detected by comparing `generation`
/// against [`Tlb::generation`], which advances on every flush or
/// invalidation. Debug builds re-check both facts against the real TLB
/// state ([`Tlb::peek`] / [`Tlb::l1_is_mru`]) on every bypassed hit.
#[derive(Clone, Copy, Debug)]
struct MicroEntry {
    page_base: u64,
    page_end: u64,
    size: PageSize,
    generation: u64,
    /// NUMA home node of the page's frame, resolved when the entry was
    /// installed. A page's frame can only change under a TLB shootdown
    /// (collapse, demotion, migration), which bumps the generation and
    /// invalidates this entry — so the cached home can never go stale.
    home: usize,
    /// ASID the entry was installed under. A *tagged* context switch
    /// changes the current ASID without flushing (no generation bump),
    /// so the generation check alone cannot detect that the core now
    /// runs a different tenant — this field does.
    asid: u16,
}

impl MicroEntry {
    #[inline]
    fn covers(&self, tlb: &Tlb, asid: u16, va: VirtAddr) -> bool {
        self.asid == asid
            && self.generation == tlb.generation()
            && self.page_base <= va.0
            && va.0 < self.page_end
    }

    #[inline]
    fn install(
        slot: &mut Option<MicroEntry>,
        tlb: &Tlb,
        asid: u16,
        va: VirtAddr,
        size: PageSize,
        home: usize,
    ) {
        let base = va.page_base(size).0;
        *slot = Some(MicroEntry {
            page_base: base,
            page_end: base + size.bytes(),
            size,
            generation: tlb.generation(),
            home,
            asid,
        });
    }
}

/// The simulated multi-core machine.
///
/// One data and one instruction TLB per core — *shared by that core's SMT
/// contexts*, which is how the paper's §3.2 observation that
/// hyper-threading halves effective TLB capacity emerges. L1 data caches
/// are per core; L2 instances are per core (Opteron) or per chip (Xeon).
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    /// Physical memory of the node.
    pub frames: BuddyAllocator,
    dtlbs: Vec<Tlb>,
    itlbs: Vec<Tlb>,
    l1ds: Vec<Cache>,
    l2s: Vec<Cache>,
    /// Logical threads currently resident per core (set by the engine).
    residency: Vec<usize>,
    /// Per-core last-translation cache for the data side (see
    /// [`MicroEntry`]). Staleness is generation-checked, so TLB flushes
    /// need not clear these.
    micro_data: Vec<Option<MicroEntry>>,
    /// Per-core last-translation cache for the instruction side.
    micro_code: Vec<Option<MicroEntry>>,
    /// NUMA hinting-fault samples (page base → per-node access tallies),
    /// recorded on DTLB misses when sampling is enabled and drained by the
    /// balancing daemon at barriers.
    hint_samples: Option<HintSamples>,
    /// ASID of the tenant currently holding the machine (0 when no
    /// tenancy is in play). Tags cache keys — caches are physically
    /// tagged in hardware, so two tenants at the same VA must *not*
    /// share lines — and stamps micro-TLB entries.
    current_asid: u16,
}

impl Machine {
    /// Build the machine described by `cfg`. With a NUMA configuration the
    /// physical extent is split into per-node frame ranges; otherwise the
    /// whole extent is one node.
    pub fn new(cfg: MachineConfig) -> Self {
        assert_eq!(
            cfg.dtlb.arch, cfg.itlb.arch,
            "a machine's data and instruction TLBs must share one translation architecture"
        );
        let cores = cfg.cores();
        let frames = match &cfg.numa {
            Some(n) => BuddyAllocator::with_nodes(cfg.ram_bytes, n.nodes),
            None => BuddyAllocator::new(cfg.ram_bytes),
        };
        Machine {
            frames,
            dtlbs: (0..cores).map(|_| Tlb::new(cfg.dtlb.clone())).collect(),
            itlbs: (0..cores).map(|_| Tlb::new(cfg.itlb.clone())).collect(),
            l1ds: (0..cores).map(|_| Cache::new(cfg.l1d)).collect(),
            l2s: (0..cfg.l2_instances())
                .map(|_| Cache::new(cfg.l2))
                .collect(),
            residency: vec![0; cores],
            micro_data: vec![None; cores],
            micro_code: vec![None; cores],
            hint_samples: None,
            current_asid: 0,
            cfg,
        }
    }

    /// Start recording NUMA hinting-fault samples (one per DTLB miss:
    /// which node touched which page). The balancing daemon turns these
    /// into migration decisions.
    pub fn enable_hint_sampling(&mut self) {
        self.hint_samples = Some(HintSamples::new());
    }

    /// Take the hint samples accumulated since the last drain, leaving an
    /// empty batch behind. Returns an empty batch when sampling is off.
    pub fn drain_hint_samples(&mut self) -> HintSamples {
        match &mut self.hint_samples {
            Some(s) => std::mem::take(s),
            None => HintSamples::new(),
        }
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The cycle cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cfg.cost
    }

    /// Record how many logical threads are resident on each core (the
    /// engine calls this after placement; it drives the SMT stall rule).
    pub fn set_residency(&mut self, residency: Vec<usize>) {
        assert_eq!(residency.len(), self.cfg.cores());
        self.residency = residency;
    }

    /// Scale a cycle charge for SMT resource sharing: threads co-resident
    /// on one core each run slower than a lone thread.
    #[inline]
    pub fn smt_charge_scale(&self, core: usize, cycles: u64) -> u64 {
        if self.residency[core] > 1 {
            self.cfg.cost.smt_scale(cycles)
        } else {
            cycles
        }
    }

    /// A core's data TLB (for stats inspection).
    pub fn dtlb(&self, core: usize) -> &Tlb {
        &self.dtlbs[core]
    }

    /// A core's instruction TLB.
    pub fn itlb(&self, core: usize) -> &Tlb {
        &self.itlbs[core]
    }

    /// Switch every core to the address space identified by `asid`.
    ///
    /// * [`AsidMode::Tagged`] — PCID-style hardware: the TLBs keep every
    ///   tenant's entries resident and simply stop matching the old
    ///   ASID's. Nothing is flushed; the outgoing tenant's translations
    ///   survive until capacity evicts them.
    /// * [`AsidMode::FlushOnSwitch`] — untagged hardware: every TLB is
    ///   flushed (ASIDs stay 0), so the incoming tenant starts cold.
    ///
    /// Either way the machine's *cache* tag becomes `asid`: caches are
    /// physically tagged in hardware, so distinct tenants at equal VAs
    /// occupy distinct lines regardless of TLB mode.
    pub fn context_switch(&mut self, asid: u16, mode: AsidMode) {
        self.current_asid = asid;
        match mode {
            AsidMode::Tagged => {
                for t in &mut self.dtlbs {
                    t.set_asid(asid);
                }
                for t in &mut self.itlbs {
                    t.set_asid(asid);
                }
            }
            AsidMode::FlushOnSwitch => self.flush_all_tlbs(),
        }
    }

    /// ASID of the tenant currently holding the machine.
    #[inline]
    pub fn current_asid(&self) -> u16 {
        self.current_asid
    }

    /// Element-wise sums of all per-core (data, instruction) TLB stats —
    /// the machine side of the per-tenant counter partition invariant.
    pub fn tlb_totals(&self) -> (TlbStats, TlbStats) {
        let sum = |tlbs: &[Tlb]| {
            let mut t = TlbStats::default();
            for s in tlbs.iter().map(Tlb::stats) {
                t.l1_hits += s.l1_hits;
                t.l2_hits += s.l2_hits;
                t.misses += s.misses;
                t.fills += s.fills;
                t.flushes += s.flushes;
                t.cross_asid_evictions += s.cross_asid_evictions;
            }
            t
        };
        (sum(&self.dtlbs), sum(&self.itlbs))
    }

    /// Flush every core's TLBs only (a global shootdown; caches keep
    /// their data — migration copies through them).
    pub fn flush_all_tlbs(&mut self) {
        for t in &mut self.dtlbs {
            t.flush();
        }
        for t in &mut self.itlbs {
            t.flush();
        }
    }

    /// Flush every TLB and cache (fresh-run state).
    pub fn flush_all(&mut self) {
        for t in &mut self.dtlbs {
            t.flush();
        }
        for t in &mut self.itlbs {
            t.flush();
        }
        for c in &mut self.l1ds {
            c.flush();
        }
        for c in &mut self.l2s {
            c.flush();
        }
    }

    /// Charge one reference through the data-cache hierarchy of `core`.
    /// Returns `(cycles, reached_dram, stalled)`.
    #[inline]
    fn cache_access(
        &mut self,
        core: usize,
        key: u64,
        mode: AccessMode,
        counters: &mut Counters,
    ) -> (u64, bool, bool) {
        // Physically-tagged caches: tag the (virtual) key with the owning
        // tenant so equal VAs in different address spaces are distinct
        // lines. VAs stay far below 2^48 and the walk tag is bit 62, so
        // the keyspaces remain disjoint; ASID 0 leaves keys unchanged.
        let key = key | (u64::from(self.current_asid) << ASID_SHIFT);
        let cost = &self.cfg.cost;
        if self.l1ds[core].access(key) {
            return (cost.l1_hit, false, false);
        }
        counters.bump(Event::L1dMisses);
        let l2 = self.cfg.l2_of_core(core);
        if self.l2s[l2].access(key) {
            (cost.l2_hit, false, false)
        } else {
            counters.bump(Event::L2Misses);
            // A streamed miss is covered by the prefetcher: no stall.
            let stalled = mode != AccessMode::Stream;
            (cost.dram_cycles(mode), true, stalled)
        }
    }

    /// Charge a page-walk reference. Hardware walkers fetch PTEs through
    /// the L2, not the L1D. On a NUMA machine a PTE is data like any
    /// other: when the walk misses to DRAM and the page-table frame lives
    /// on a different node than the walking core, the reference pays the
    /// remote hop — unless per-node page-table replication keeps a local
    /// copy of every table, which makes every walk node-local.
    #[inline]
    fn walk_ref(&mut self, core: usize, pa: u64, counters: &mut Counters) -> u64 {
        let cost = &self.cfg.cost;
        let l2 = self.cfg.l2_of_core(core);
        if self.l2s[l2].access(pa | WALK_TAG) {
            cost.l2_hit
        } else {
            counters.bump(Event::L2Misses);
            let mut cycles = cost.dram;
            if let Some(numa) = &self.cfg.numa {
                let remote = !numa.replicate_pt
                    && self.frames.node_of(PhysAddr(pa)) != self.cfg.node_of_core(core);
                if remote {
                    cycles += numa.remote_extra;
                    counters.add(Event::RemoteWalkCycles, numa.remote_extra);
                    counters.bump(Event::RemoteDramAccesses);
                } else {
                    counters.bump(Event::LocalDramAccesses);
                }
            }
            cycles
        }
    }

    /// The SMT flush rule: a long-latency stall on a core running more
    /// than one thread flushes the pipeline (Xeon only).
    #[inline]
    fn maybe_smt_flush(&self, core: usize, counters: &mut Counters) -> u64 {
        if self.cfg.smt_flush_on_stall && self.residency[core] > 1 {
            counters.bump(Event::SmtFlushes);
            let c = self.cfg.cost.smt_flush;
            counters.add(Event::SmtFlushCycles, c);
            c
        } else {
            0
        }
    }

    /// Charge the post-translation stage of a data access: cache
    /// hierarchy, NUMA remote penalty (DRAM only, against the page's
    /// physical `home` node), SMT stall rule.
    #[inline]
    fn memory_stage(
        &mut self,
        core: usize,
        va: VirtAddr,
        home: usize,
        mode: AccessMode,
        counters: &mut Counters,
    ) -> u64 {
        let (mem_cycles, dram, stalled) = self.cache_access(core, va.0, mode, counters);
        let mut cycles = mem_cycles;
        if dram {
            if let Some(numa) = &self.cfg.numa {
                if home != self.cfg.node_of_core(core) {
                    cycles += match mode {
                        AccessMode::Stream => numa.remote_stream_extra,
                        _ => numa.remote_extra,
                    };
                    counters.bump(Event::RemoteDramAccesses);
                } else {
                    counters.bump(Event::LocalDramAccesses);
                }
            }
        }
        if stalled {
            cycles += self.maybe_smt_flush(core, counters);
        }
        cycles
    }

    /// The NUMA home node of the mapped page containing `va`: the node
    /// owning its physical frame. Returns 0 on non-NUMA machines (where
    /// the distinction never reaches a charge) and for unmapped addresses.
    #[inline]
    fn resolve_home(&self, aspace: &AddressSpace, va: VirtAddr) -> usize {
        if self.cfg.numa.is_none() {
            return 0;
        }
        aspace
            .page_table()
            .probe(va)
            .map(|t| self.frames.node_of(t.pa))
            .unwrap_or(0)
    }

    /// Debug-build proof that a micro-TLB bypass is observationally
    /// identical to a real lookup: the entry must still be resident
    /// (an actual `L1Hit(size)` — in particular no stale other-size entry
    /// shadows it in probe order) and MRU (the move-to-front would be a
    /// no-op).
    #[inline]
    fn debug_check_bypass(tlb: &Tlb, va: VirtAddr, size: PageSize) {
        debug_assert_eq!(
            tlb.peek(va),
            TlbOutcome::L1Hit(size),
            "micro-TLB fast path diverged from the real TLB at {va}"
        );
        debug_assert!(
            tlb.l1_is_mru(va, size),
            "micro-TLB entry for {va} is resident but not MRU"
        );
    }

    /// Perform a data access of `kind` at `va` from a thread on `core`,
    /// returning the cycles it took. Drives: DTLB lookup → (page walk →
    /// fault) → cache hierarchy → SMT stall rule.
    ///
    /// A one-entry micro-TLB (the core's immediately preceding data
    /// translation, see `MicroEntry`) short-circuits the DTLB's LRU
    /// machinery for same-page repeat accesses; counters and cycle charges
    /// are identical either way.
    pub fn data_access(
        &mut self,
        aspace: &mut AddressSpace,
        core: usize,
        va: VirtAddr,
        kind: DataKind,
        mode: AccessMode,
        counters: &mut Counters,
    ) -> VmResult<u64> {
        counters.bump(match kind {
            DataKind::Read => Event::Loads,
            DataKind::Write => Event::Stores,
        });
        if let Some(e) = self.micro_data[core] {
            if e.covers(&self.dtlbs[core], self.current_asid, va) {
                counters.bump(Event::DtlbHits);
                Self::debug_check_bypass(&self.dtlbs[core], va, e.size);
                self.dtlbs[core].record_l1_hit_bypass(e.size);
                return Ok(self.memory_stage(core, va, e.home, mode, counters));
            }
        }
        let mut cycles = 0u64;
        let page_size;
        let home;
        let cross_before = self.dtlbs[core].stats().cross_asid_evictions;
        match self.dtlbs[core].lookup(va) {
            TlbOutcome::L1Hit(s) => {
                page_size = s;
                home = self.resolve_home(aspace, va);
                counters.bump(Event::DtlbHits);
            }
            TlbOutcome::L2Hit(s) => {
                page_size = s;
                home = self.resolve_home(aspace, va);
                counters.bump(Event::DtlbHits);
                counters.bump(Event::DtlbL2Hits);
                cycles += self.cfg.cost.tlb_l2_hit;
            }
            TlbOutcome::Miss => {
                counters.bump(Event::DtlbMisses);
                // First-touch placement: a fault taken here places the
                // page on the faulting core's node.
                let touch = self.cfg.numa.as_ref().map(|_| self.cfg.node_of_core(core));
                let outcome = aspace.access_from(&mut self.frames, va, kind.as_vm(), touch)?;
                let mut walk_cycles = self.cfg.cost.walk_base;
                // Page-walk caches keep the upper levels of the radix
                // tree resident; only the leaf PTE reference goes through
                // the cache hierarchy. Without a PWC every level pays.
                if self.cfg.page_walk_cache {
                    if let Some(leaf) = outcome.trace().steps().last() {
                        walk_cycles += self.walk_ref(core, leaf.0, counters);
                    }
                } else {
                    for step in outcome.trace().steps() {
                        walk_cycles += self.walk_ref(core, step.0, counters);
                    }
                }
                if outcome.faulted() {
                    counters.bump(Event::PageFaults);
                    walk_cycles += self.cfg.cost.page_fault;
                    if let Some(numa) = &self.cfg.numa {
                        // Replicated page tables: the fault's PTE install
                        // is broadcast to every other node's replica.
                        if numa.replicate_pt {
                            walk_cycles += (numa.nodes as u64 - 1) * self.cfg.cost.pt_edit;
                        }
                    }
                }
                counters.add(Event::WalkCycles, walk_cycles);
                cycles += walk_cycles;
                if mode == AccessMode::Stream
                    && va.page_offset(outcome.translation().size) < 2 * crate::cache::LINE_BYTES
                {
                    // The stream just crossed into a new physical
                    // contiguity unit (page): the prefetcher stopped at
                    // the boundary and re-ramps with demand misses. A
                    // TLB capacity miss in the *middle* of a page being
                    // streamed does not restart the prefetcher.
                    counters.bump(Event::PrefetchRestarts);
                    counters.add(Event::PrefetchRestartCycles, self.cfg.cost.stream_restart);
                    cycles += self.cfg.cost.stream_restart;
                }
                page_size = outcome.translation().size;
                home = if self.cfg.numa.is_some() {
                    self.frames.node_of(outcome.translation().pa)
                } else {
                    0
                };
                self.dtlbs[core].fill(va, page_size);
            }
        }
        // Attribute cross-tenant evictions (promote-fills and walk fills
        // landing on another ASID's entry) to the thread that caused
        // them. Zero whenever a single ASID is in use.
        counters.add(
            Event::TlbCrossEvictions,
            self.dtlbs[core].stats().cross_asid_evictions - cross_before,
        );
        // NUMA hinting: every full DTLB lookup (the micro-TLB bypass
        // already folds same-page repeats into one episode) records which
        // node touched the page — the simulator's analogue of AutoNUMA's
        // periodic hinting faults, which fire regardless of TLB residency
        // because the kernel unmaps sampled ranges.
        if let Some(samples) = &mut self.hint_samples {
            samples.record_from(va.page_base(page_size).0, self.cfg.node_of_core(core), core);
            counters.bump(Event::NumaHintFaults);
        }
        // Every outcome above leaves `va`'s entry MRU in its L1 array
        // (re-front, promote-fill, or fill), establishing the bypass
        // precondition for the next same-page access.
        MicroEntry::install(
            &mut self.micro_data[core],
            &self.dtlbs[core],
            self.current_asid,
            va,
            page_size,
            home,
        );
        Ok(cycles + self.memory_stage(core, va, home, mode, counters))
    }

    /// Stream `len` bytes from `va` through the data path, one access per
    /// cache line, charging `clock`/`counters` exactly as the equivalent
    /// per-line [`data_access`]-and-charge loop would (the per-line charge
    /// is SMT-scaled, added to the clock, and counted as
    /// [`Event::Cycles`], in that order — mirroring the engine's charge
    /// rule).
    ///
    /// The first line of each page-run takes the full path (which may
    /// walk, fault, or restart the prefetcher, and leaves the micro-TLB
    /// pointing at that page); subsequent lines of the same page cannot
    /// miss the TLB — the entry is MRU and nothing else touches this
    /// core's TLB in between — so they are charged with one bypassed
    /// translation + one cache reference each, with the page's NUMA home
    /// resolved once.
    ///
    /// [`data_access`]: Machine::data_access
    #[allow(clippy::too_many_arguments)]
    pub fn data_access_run(
        &mut self,
        aspace: &mut AddressSpace,
        core: usize,
        va: VirtAddr,
        len: u64,
        kind: DataKind,
        mode: AccessMode,
        counters: &mut Counters,
        clock: &mut u64,
    ) -> VmResult<()> {
        const LINE: u64 = crate::cache::LINE_BYTES;
        let line_event = match kind {
            DataKind::Read => Event::Loads,
            DataKind::Write => Event::Stores,
        };
        let mut off = 0;
        while off < len {
            // First line of a page-run: full translation path.
            let cycles = self.data_access(aspace, core, va.add(off), kind, mode, counters)?;
            let scaled = self.smt_charge_scale(core, cycles);
            *clock += scaled;
            counters.add(Event::Cycles, scaled);
            off += LINE;
            let e = self.micro_data[core].expect("data_access installs a micro entry");
            // The page's NUMA home is a property of its frame alone, so
            // the remote penalty for DRAM-reaching lines is uniform
            // across the run. The micro entry cached the home when it was
            // installed; a frame change would have bumped the generation.
            let numa_on = self.cfg.numa.is_some();
            let (remote, remote_extra) = match &self.cfg.numa {
                Some(numa) if e.home != self.cfg.node_of_core(core) => (
                    true,
                    match mode {
                        AccessMode::Stream => numa.remote_stream_extra,
                        _ => numa.remote_extra,
                    },
                ),
                _ => (false, 0),
            };
            while off < len && va.add(off).0 < e.page_end {
                let line = va.add(off);
                counters.bump(line_event);
                counters.bump(Event::DtlbHits);
                Self::debug_check_bypass(&self.dtlbs[core], line, e.size);
                self.dtlbs[core].record_l1_hit_bypass(e.size);
                let (mem_cycles, dram, stalled) = self.cache_access(core, line.0, mode, counters);
                let mut cycles = mem_cycles;
                if dram {
                    cycles += remote_extra;
                    if numa_on {
                        counters.bump(if remote {
                            Event::RemoteDramAccesses
                        } else {
                            Event::LocalDramAccesses
                        });
                    }
                }
                if stalled {
                    cycles += self.maybe_smt_flush(core, counters);
                }
                let scaled = self.smt_charge_scale(core, cycles);
                *clock += scaled;
                counters.add(Event::Cycles, scaled);
                off += LINE;
            }
        }
        Ok(())
    }

    /// Perform an instruction fetch at `va` from a thread on `core`. The
    /// L1 instruction cache is assumed to hit (loop-dominated codes); the
    /// ITLB and its walks are modelled.
    pub fn ifetch(
        &mut self,
        aspace: &mut AddressSpace,
        core: usize,
        va: VirtAddr,
        counters: &mut Counters,
    ) -> VmResult<u64> {
        counters.bump(Event::IFetches);
        if let Some(e) = self.micro_code[core] {
            if e.covers(&self.itlbs[core], self.current_asid, va) {
                Self::debug_check_bypass(&self.itlbs[core], va, e.size);
                self.itlbs[core].record_l1_hit_bypass(e.size);
                return Ok(0);
            }
        }
        let cross_before = self.itlbs[core].stats().cross_asid_evictions;
        let (cycles, size) = match self.itlbs[core].lookup(va) {
            TlbOutcome::L1Hit(s) => (0, s),
            TlbOutcome::L2Hit(s) => (self.cfg.cost.tlb_l2_hit, s),
            TlbOutcome::Miss => {
                counters.bump(Event::ItlbMisses);
                let touch = self.cfg.numa.as_ref().map(|_| self.cfg.node_of_core(core));
                let outcome = aspace.access_from(&mut self.frames, va, AccessKind::Fetch, touch)?;
                let mut walk_cycles = self.cfg.cost.walk_base;
                if self.cfg.page_walk_cache {
                    if let Some(leaf) = outcome.trace().steps().last() {
                        walk_cycles += self.walk_ref(core, leaf.0, counters);
                    }
                } else {
                    for step in outcome.trace().steps() {
                        walk_cycles += self.walk_ref(core, step.0, counters);
                    }
                }
                if outcome.faulted() {
                    counters.bump(Event::PageFaults);
                    walk_cycles += self.cfg.cost.page_fault;
                    if let Some(numa) = &self.cfg.numa {
                        if numa.replicate_pt {
                            walk_cycles += (numa.nodes as u64 - 1) * self.cfg.cost.pt_edit;
                        }
                    }
                }
                counters.add(Event::WalkCycles, walk_cycles);
                let size = outcome.translation().size;
                self.itlbs[core].fill(va, size);
                (walk_cycles, size)
            }
        };
        counters.add(
            Event::TlbCrossEvictions,
            self.itlbs[core].stats().cross_asid_evictions - cross_before,
        );
        // The instruction side never classifies its line fetches (the L1I
        // is assumed to hit), so the cached home is unused; 0 keeps the
        // entry well-formed.
        MicroEntry::install(
            &mut self.micro_code[core],
            &self.itlbs[core],
            self.current_asid,
            va,
            size,
            0,
        );
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{opteron_2x2, xeon_2x2_ht};
    use lpomp_vm::{Backing, NodePolicy, PageSize, Populate, PteFlags};

    fn setup(cfg: MachineConfig) -> (Machine, AddressSpace, VirtAddr) {
        let mut m = Machine::new(cfg);
        let mut asp = AddressSpace::new(&mut m.frames).unwrap();
        let base = asp
            .mmap(
                &mut m.frames,
                64 * PageSize::Small4K.bytes(),
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "data",
            )
            .unwrap();
        (m, asp, base)
    }

    #[test]
    fn first_access_misses_tlb_second_hits() {
        let (mut m, mut asp, base) = setup(opteron_2x2());
        let mut c = Counters::new();
        let t1 = m
            .data_access(
                &mut asp,
                0,
                base,
                DataKind::Read,
                AccessMode::Latency,
                &mut c,
            )
            .unwrap();
        let t2 = m
            .data_access(
                &mut asp,
                0,
                base,
                DataKind::Read,
                AccessMode::Latency,
                &mut c,
            )
            .unwrap();
        assert_eq!(c.get(Event::DtlbMisses), 1);
        assert_eq!(c.get(Event::DtlbHits), 1);
        assert!(t1 > t2, "walk ({t1}) must cost more than a TLB hit ({t2})");
    }

    #[test]
    fn tlb_miss_cost_includes_walk_refs() {
        let (mut m, mut asp, base) = setup(opteron_2x2());
        let mut c = Counters::new();
        m.data_access(
            &mut asp,
            0,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert!(c.get(Event::WalkCycles) >= m.cost().walk_base);
    }

    #[test]
    fn eager_population_means_no_faults() {
        let (mut m, mut asp, base) = setup(opteron_2x2());
        let mut c = Counters::new();
        for i in 0..64u64 {
            m.data_access(
                &mut asp,
                0,
                base.add(i * 4096),
                DataKind::Read,
                AccessMode::Latency,
                &mut c,
            )
            .unwrap();
        }
        assert_eq!(c.get(Event::PageFaults), 0);
    }

    #[test]
    fn demand_mapping_pays_fault_once() {
        let mut m = Machine::new(opteron_2x2());
        let mut asp = AddressSpace::new(&mut m.frames).unwrap();
        let base = asp
            .mmap(
                &mut m.frames,
                2 * 4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::OnDemand,
                "lazy",
            )
            .unwrap();
        let mut c = Counters::new();
        let t_fault = m
            .data_access(
                &mut asp,
                0,
                base,
                DataKind::Write,
                AccessMode::Latency,
                &mut c,
            )
            .unwrap();
        assert_eq!(c.get(Event::PageFaults), 1);
        assert!(t_fault > m.cost().page_fault);
        // Second access to the same page: TLB hit, no fault.
        m.data_access(
            &mut asp,
            0,
            base.add(8),
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert_eq!(c.get(Event::PageFaults), 1);
    }

    #[test]
    fn cores_have_private_tlbs() {
        let (mut m, mut asp, base) = setup(opteron_2x2());
        let mut c = Counters::new();
        m.data_access(
            &mut asp,
            0,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        m.data_access(
            &mut asp,
            1,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        // Both cores missed independently.
        assert_eq!(c.get(Event::DtlbMisses), 2);
    }

    #[test]
    fn smt_flush_only_when_core_is_shared_and_stall_reaches_dram() {
        let (mut m, mut asp, base) = setup(xeon_2x2_ht());
        m.set_residency(vec![2, 2, 2, 2]);
        let mut c = Counters::new();
        // First access goes all the way to DRAM: flush charged.
        m.data_access(
            &mut asp,
            0,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert_eq!(c.get(Event::SmtFlushes), 1);
        // Cached access: no DRAM, no flush.
        m.data_access(
            &mut asp,
            0,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert_eq!(c.get(Event::SmtFlushes), 1);
        // Single-resident core: no flush even on DRAM access.
        m.set_residency(vec![1, 1, 1, 1]);
        m.data_access(
            &mut asp,
            1,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert_eq!(c.get(Event::SmtFlushes), 1);
    }

    #[test]
    fn opteron_never_flushes() {
        let (mut m, mut asp, base) = setup(opteron_2x2());
        m.set_residency(vec![1, 1, 1, 1]);
        let mut c = Counters::new();
        m.data_access(
            &mut asp,
            0,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert_eq!(c.get(Event::SmtFlushes), 0);
    }

    #[test]
    fn tlb_flush_invalidates_micro_entry() {
        let (mut m, mut asp, base) = setup(opteron_2x2());
        let mut c = Counters::new();
        for off in [0u64, 64, 128] {
            m.data_access(
                &mut asp,
                0,
                base.add(off),
                DataKind::Read,
                AccessMode::Latency,
                &mut c,
            )
            .unwrap();
        }
        assert_eq!(c.get(Event::DtlbMisses), 1);
        assert_eq!(c.get(Event::DtlbHits), 2);
        m.flush_all_tlbs();
        m.data_access(
            &mut asp,
            0,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert_eq!(
            c.get(Event::DtlbMisses),
            2,
            "a flushed translation must miss even if it was the core's last access"
        );
    }

    #[test]
    fn batched_run_matches_per_line_loop() {
        // The exactness contract of `data_access_run`: identical counters,
        // clock, and TLB statistics to the per-line loop it replaces.
        // Exercised on the harshest config: SMT-shared cores (charge
        // scaling + pipeline flushes) with NUMA interleaving (remote
        // penalties), unaligned start, partial tail line, multi-page span.
        use crate::numa::{NumaConfig, NumaPlacement};
        let mk = |size: PageSize| {
            let mut cfg = xeon_2x2_ht();
            cfg.numa = Some(NumaConfig::opteron(NumaPlacement::Interleave4K));
            let mut m = Machine::new(cfg);
            let mut asp = AddressSpace::new(&mut m.frames).unwrap();
            // Physically interleave the heap so the run crosses pages
            // whose frames alternate between local and remote nodes.
            asp.set_node_policy(2, NodePolicy::Interleave { chunk: 4096 });
            let base = asp
                .mmap(
                    &mut m.frames,
                    4 * PageSize::Large2M.bytes(),
                    size,
                    PteFlags::rw(),
                    Backing::Anonymous,
                    Populate::Eager,
                    "data",
                )
                .unwrap();
            m.set_residency(vec![2, 2, 2, 2]);
            (m, asp, base)
        };
        for size in [PageSize::Small4K, PageSize::Large2M] {
            for kind in [DataKind::Read, DataKind::Write] {
                let start = 96u64; // not line- or page-aligned
                let len = 3 * 4096 + 200; // crosses pages, partial tail
                let (mut m1, mut a1, b1) = mk(size);
                let (mut c1, mut clk1) = (Counters::new(), 0u64);
                m1.data_access_run(
                    &mut a1,
                    0,
                    b1.add(start),
                    len,
                    kind,
                    AccessMode::Stream,
                    &mut c1,
                    &mut clk1,
                )
                .unwrap();
                let (mut m2, mut a2, b2) = mk(size);
                let (mut c2, mut clk2) = (Counters::new(), 0u64);
                let mut off = 0;
                while off < len {
                    let cy = m2
                        .data_access(
                            &mut a2,
                            0,
                            b2.add(start + off),
                            kind,
                            AccessMode::Stream,
                            &mut c2,
                        )
                        .unwrap();
                    let scaled = m2.smt_charge_scale(0, cy);
                    clk2 += scaled;
                    c2.add(Event::Cycles, scaled);
                    off += crate::cache::LINE_BYTES;
                }
                assert_eq!(c1, c2, "counters diverged ({size:?}, {kind:?})");
                assert_eq!(clk1, clk2, "clock diverged ({size:?}, {kind:?})");
                assert_eq!(
                    m1.dtlb(0).stats(),
                    m2.dtlb(0).stats(),
                    "TLB stats diverged ({size:?}, {kind:?})"
                );
                assert_eq!(
                    m1.dtlb(0).array_stats(),
                    m2.dtlb(0).array_stats(),
                    "array stats diverged ({size:?}, {kind:?})"
                );
            }
        }
    }

    #[test]
    fn remote_page_walks_pay_the_hop_unless_replicated() {
        // Satellite regression for the walk-side NUMA charge: page-table
        // frames are allocated on node 0, so a walk from a node-1 core
        // whose leaf PTE fetch reaches DRAM pays `remote_extra` — unless
        // per-node page-table replication keeps the walk local.
        use crate::numa::{NumaConfig, NumaPlacement};
        let numa = NumaConfig::opteron(NumaPlacement::MasterNode);
        let run = |replicate: bool| {
            let mut cfg = opteron_2x2();
            cfg.numa = Some(if replicate {
                numa.with_replicated_pt()
            } else {
                numa
            });
            let (mut m, mut asp, base) = setup(cfg);
            let mut c0 = Counters::new();
            m.data_access(
                &mut asp,
                0,
                base,
                DataKind::Read,
                AccessMode::Latency,
                &mut c0,
            )
            .unwrap();
            // Page 32's leaf PTE is on a different cache line than page
            // 0's, and core 2 (chip 1 = node 1) has its own L2 anyway.
            let mut c2 = Counters::new();
            let cost2 = m
                .data_access(
                    &mut asp,
                    2,
                    base.add(32 * 4096),
                    DataKind::Read,
                    AccessMode::Latency,
                    &mut c2,
                )
                .unwrap();
            (c0, c2, cost2)
        };
        let (c0, c2, cost_shared) = run(false);
        assert_eq!(c0.get(Event::RemoteWalkCycles), 0);
        assert_eq!(c2.get(Event::RemoteWalkCycles), numa.remote_extra);
        // Every DRAM-reaching reference is classified: walk + data line.
        assert_eq!(
            c0.get(Event::LocalDramAccesses) + c0.get(Event::RemoteDramAccesses),
            c0.get(Event::L2Misses)
        );
        assert_eq!(c2.get(Event::RemoteDramAccesses), c2.get(Event::L2Misses));
        let (r0, r2, cost_replicated) = run(true);
        assert_eq!(r0.get(Event::RemoteWalkCycles), 0);
        assert_eq!(r2.get(Event::RemoteWalkCycles), 0);
        // Replication removes exactly the walk's hop; the data line (home
        // node 0, touched from node 1) still pays its own.
        assert_eq!(cost_shared - cost_replicated, numa.remote_extra);
        assert_eq!(r2.get(Event::RemoteDramAccesses), 1);
    }

    #[test]
    fn ifetch_counts_itlb_misses() {
        let mut m = Machine::new(opteron_2x2());
        let mut asp = AddressSpace::new(&mut m.frames).unwrap();
        let code = asp
            .mmap_fixed(
                &mut m.frames,
                VirtAddr(0x40_0000),
                8 * 4096,
                PageSize::Small4K,
                PteFlags::rx(),
                Backing::Anonymous,
                Populate::Eager,
                "code",
            )
            .unwrap();
        let mut c = Counters::new();
        m.ifetch(&mut asp, 0, code, &mut c).unwrap();
        m.ifetch(&mut asp, 0, code.add(16), &mut c).unwrap();
        assert_eq!(c.get(Event::ItlbMisses), 1);
        assert_eq!(c.get(Event::IFetches), 2);
    }

    #[test]
    fn disabling_the_walk_cache_makes_walks_cost_more() {
        let run = |pwc: bool| {
            let mut cfg = opteron_2x2();
            cfg.page_walk_cache = pwc;
            let (mut m, mut asp, base) = setup(cfg);
            let mut c = Counters::new();
            for i in 0..64u64 {
                m.data_access(
                    &mut asp,
                    0,
                    base.add(i * 4096),
                    DataKind::Read,
                    AccessMode::Latency,
                    &mut c,
                )
                .unwrap();
            }
            c.get(Event::WalkCycles)
        };
        assert!(run(false) > run(true));
    }

    #[test]
    fn large_pages_reduce_dtlb_misses_for_page_strided_scan() {
        // The core mechanism of the whole paper, end to end: a scan that
        // touches one cache line per 4 KB page misses the DTLB per page
        // with small pages but per 2 MB region with large pages.
        let run = |size: PageSize| -> u64 {
            let mut m = Machine::new(opteron_2x2());
            let mut asp = AddressSpace::new(&mut m.frames).unwrap();
            let span = 64 * 1024 * 1024u64;
            let base = asp
                .mmap(
                    &mut m.frames,
                    span,
                    size,
                    PteFlags::rw(),
                    Backing::Anonymous,
                    Populate::Eager,
                    "d",
                )
                .unwrap();
            let mut c = Counters::new();
            let mut off = 0;
            while off < span {
                m.data_access(
                    &mut asp,
                    0,
                    base.add(off),
                    DataKind::Read,
                    AccessMode::Latency,
                    &mut c,
                )
                .unwrap();
                off += 4096;
            }
            c.get(Event::DtlbMisses)
        };
        let small = run(PageSize::Small4K);
        let large = run(PageSize::Large2M);
        assert!(
            small > 100 * large.max(1),
            "expected ≥100x reduction, got {small} vs {large}"
        );
    }
}
