//! The assembled hardware model: per-core TLBs and L1s, scoped L2s,
//! physical memory, and the cycle-charged access paths.

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::cost::CostModel;
use lpomp_prof::{Counters, Event};
use lpomp_tlb::{Tlb, TlbOutcome};
use lpomp_vm::{AccessKind, AddressSpace, BuddyAllocator, VirtAddr, VmResult};

/// Tag bit added to physical page-walk addresses before they enter the
/// (virtually indexed) cache model, keeping the PA and VA keyspaces
/// disjoint.
const WALK_TAG: u64 = 1 << 62;

/// Whether a data access is a load or a store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

impl DataKind {
    fn as_vm(self) -> AccessKind {
        match self {
            DataKind::Read => AccessKind::Read,
            DataKind::Write => AccessKind::Write,
        }
    }
}

/// How an access interacts with the memory pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessMode {
    /// Dependent demand access (pointer chase / data-dependent gather): a
    /// miss pays full DRAM latency (and may trigger the Xeon SMT flush,
    /// since the pipeline stalls).
    Latency,
    /// Independent demand access (strided walk with precomputable
    /// addresses): out-of-order overlap amortizes the miss latency, but —
    /// unlike a stream — the pattern is not prefetchable and the TLB cost
    /// is paid in full.
    Pipelined,
    /// Part of a detected sequential stream: the prefetcher hides miss
    /// latency (per-line bandwidth cost, no stall, no SMT flush) — but it
    /// stops at page boundaries, so TLB misses are still paid in full.
    Stream,
}

/// The simulated multi-core machine.
///
/// One data and one instruction TLB per core — *shared by that core's SMT
/// contexts*, which is how the paper's §3.2 observation that
/// hyper-threading halves effective TLB capacity emerges. L1 data caches
/// are per core; L2 instances are per core (Opteron) or per chip (Xeon).
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    /// Physical memory of the node.
    pub frames: BuddyAllocator,
    dtlbs: Vec<Tlb>,
    itlbs: Vec<Tlb>,
    l1ds: Vec<Cache>,
    l2s: Vec<Cache>,
    /// Logical threads currently resident per core (set by the engine).
    residency: Vec<usize>,
}

impl Machine {
    /// Build the machine described by `cfg`.
    pub fn new(cfg: MachineConfig) -> Self {
        let cores = cfg.cores();
        Machine {
            frames: BuddyAllocator::new(cfg.ram_bytes),
            dtlbs: (0..cores).map(|_| Tlb::new(cfg.dtlb.clone())).collect(),
            itlbs: (0..cores).map(|_| Tlb::new(cfg.itlb.clone())).collect(),
            l1ds: (0..cores).map(|_| Cache::new(cfg.l1d)).collect(),
            l2s: (0..cfg.l2_instances())
                .map(|_| Cache::new(cfg.l2))
                .collect(),
            residency: vec![0; cores],
            cfg,
        }
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The cycle cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cfg.cost
    }

    /// Record how many logical threads are resident on each core (the
    /// engine calls this after placement; it drives the SMT stall rule).
    pub fn set_residency(&mut self, residency: Vec<usize>) {
        assert_eq!(residency.len(), self.cfg.cores());
        self.residency = residency;
    }

    /// Scale a cycle charge for SMT resource sharing: threads co-resident
    /// on one core each run slower than a lone thread.
    #[inline]
    pub fn smt_charge_scale(&self, core: usize, cycles: u64) -> u64 {
        if self.residency[core] > 1 {
            self.cfg.cost.smt_scale(cycles)
        } else {
            cycles
        }
    }

    /// A core's data TLB (for stats inspection).
    pub fn dtlb(&self, core: usize) -> &Tlb {
        &self.dtlbs[core]
    }

    /// A core's instruction TLB.
    pub fn itlb(&self, core: usize) -> &Tlb {
        &self.itlbs[core]
    }

    /// Flush every core's TLBs only (a global shootdown; caches keep
    /// their data — migration copies through them).
    pub fn flush_all_tlbs(&mut self) {
        for t in &mut self.dtlbs {
            t.flush();
        }
        for t in &mut self.itlbs {
            t.flush();
        }
    }

    /// Flush every TLB and cache (fresh-run state).
    pub fn flush_all(&mut self) {
        for t in &mut self.dtlbs {
            t.flush();
        }
        for t in &mut self.itlbs {
            t.flush();
        }
        for c in &mut self.l1ds {
            c.flush();
        }
        for c in &mut self.l2s {
            c.flush();
        }
    }

    /// Charge one reference through the data-cache hierarchy of `core`.
    /// Returns `(cycles, reached_dram, stalled)`.
    #[inline]
    fn cache_access(
        &mut self,
        core: usize,
        key: u64,
        mode: AccessMode,
        counters: &mut Counters,
    ) -> (u64, bool, bool) {
        let cost = &self.cfg.cost;
        if self.l1ds[core].access(key) {
            return (cost.l1_hit, false, false);
        }
        counters.bump(Event::L1dMisses);
        let l2 = self.cfg.l2_of_core(core);
        if self.l2s[l2].access(key) {
            (cost.l2_hit, false, false)
        } else {
            counters.bump(Event::L2Misses);
            match mode {
                AccessMode::Latency => (cost.dram, true, true),
                AccessMode::Pipelined => (cost.dram_pipelined, true, true),
                AccessMode::Stream => (cost.dram_stream, true, false),
            }
        }
    }

    /// Charge a page-walk reference. Hardware walkers fetch PTEs through
    /// the L2, not the L1D.
    #[inline]
    fn walk_ref(&mut self, core: usize, pa: u64, counters: &mut Counters) -> u64 {
        let cost = &self.cfg.cost;
        let l2 = self.cfg.l2_of_core(core);
        if self.l2s[l2].access(pa | WALK_TAG) {
            cost.l2_hit
        } else {
            counters.bump(Event::L2Misses);
            cost.dram
        }
    }

    /// The SMT flush rule: a long-latency stall on a core running more
    /// than one thread flushes the pipeline (Xeon only).
    #[inline]
    fn maybe_smt_flush(&self, core: usize, counters: &mut Counters) -> u64 {
        if self.cfg.smt_flush_on_stall && self.residency[core] > 1 {
            counters.bump(Event::SmtFlushes);
            let c = self.cfg.cost.smt_flush;
            counters.add(Event::SmtFlushCycles, c);
            c
        } else {
            0
        }
    }

    /// Perform a data access of `kind` at `va` from a thread on `core`,
    /// returning the cycles it took. Drives: DTLB lookup → (page walk →
    /// fault) → cache hierarchy → SMT stall rule.
    pub fn data_access(
        &mut self,
        aspace: &mut AddressSpace,
        core: usize,
        va: VirtAddr,
        kind: DataKind,
        mode: AccessMode,
        counters: &mut Counters,
    ) -> VmResult<u64> {
        counters.bump(match kind {
            DataKind::Read => Event::Loads,
            DataKind::Write => Event::Stores,
        });
        let mut cycles = 0u64;
        let page_size;
        match self.dtlbs[core].lookup(va) {
            TlbOutcome::L1Hit(s) => {
                page_size = s;
                counters.bump(Event::DtlbHits);
            }
            TlbOutcome::L2Hit(s) => {
                page_size = s;
                counters.bump(Event::DtlbHits);
                counters.bump(Event::DtlbL2Hits);
                cycles += self.cfg.cost.tlb_l2_hit;
            }
            TlbOutcome::Miss => {
                counters.bump(Event::DtlbMisses);
                let outcome = aspace.access(&mut self.frames, va, kind.as_vm())?;
                let mut walk_cycles = self.cfg.cost.walk_base;
                // Page-walk caches keep the upper levels of the radix
                // tree resident; only the leaf PTE reference goes through
                // the cache hierarchy. Without a PWC every level pays.
                if self.cfg.page_walk_cache {
                    if let Some(leaf) = outcome.trace().steps().last() {
                        walk_cycles += self.walk_ref(core, leaf.0, counters);
                    }
                } else {
                    for step in outcome.trace().steps() {
                        walk_cycles += self.walk_ref(core, step.0, counters);
                    }
                }
                if outcome.faulted() {
                    counters.bump(Event::PageFaults);
                    walk_cycles += self.cfg.cost.page_fault;
                }
                counters.add(Event::WalkCycles, walk_cycles);
                cycles += walk_cycles;
                if mode == AccessMode::Stream
                    && va.page_offset(outcome.translation().size) < 2 * crate::cache::LINE_BYTES
                {
                    // The stream just crossed into a new physical
                    // contiguity unit (page): the prefetcher stopped at
                    // the boundary and re-ramps with demand misses. A
                    // TLB capacity miss in the *middle* of a page being
                    // streamed does not restart the prefetcher.
                    counters.bump(Event::PrefetchRestarts);
                    counters.add(Event::PrefetchRestartCycles, self.cfg.cost.stream_restart);
                    cycles += self.cfg.cost.stream_restart;
                }
                page_size = outcome.translation().size;
                self.dtlbs[core].fill(va, page_size);
            }
        }
        let (mem_cycles, dram, stalled) = self.cache_access(core, va.0, mode, counters);
        cycles += mem_cycles;
        if dram {
            if let Some(numa) = &self.cfg.numa {
                if numa.node_of(va, page_size) != self.cfg.node_of_core(core) {
                    cycles += match mode {
                        AccessMode::Stream => numa.remote_stream_extra,
                        _ => numa.remote_extra,
                    };
                }
            }
        }
        if stalled {
            cycles += self.maybe_smt_flush(core, counters);
        }
        Ok(cycles)
    }

    /// Perform an instruction fetch at `va` from a thread on `core`. The
    /// L1 instruction cache is assumed to hit (loop-dominated codes); the
    /// ITLB and its walks are modelled.
    pub fn ifetch(
        &mut self,
        aspace: &mut AddressSpace,
        core: usize,
        va: VirtAddr,
        counters: &mut Counters,
    ) -> VmResult<u64> {
        counters.bump(Event::IFetches);
        match self.itlbs[core].lookup(va) {
            TlbOutcome::L1Hit(_) => Ok(0),
            TlbOutcome::L2Hit(_) => Ok(self.cfg.cost.tlb_l2_hit),
            TlbOutcome::Miss => {
                counters.bump(Event::ItlbMisses);
                let outcome = aspace.access(&mut self.frames, va, AccessKind::Fetch)?;
                let mut walk_cycles = self.cfg.cost.walk_base;
                if self.cfg.page_walk_cache {
                    if let Some(leaf) = outcome.trace().steps().last() {
                        walk_cycles += self.walk_ref(core, leaf.0, counters);
                    }
                } else {
                    for step in outcome.trace().steps() {
                        walk_cycles += self.walk_ref(core, step.0, counters);
                    }
                }
                if outcome.faulted() {
                    counters.bump(Event::PageFaults);
                    walk_cycles += self.cfg.cost.page_fault;
                }
                counters.add(Event::WalkCycles, walk_cycles);
                self.itlbs[core].fill(va, outcome.translation().size);
                Ok(walk_cycles)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{opteron_2x2, xeon_2x2_ht};
    use lpomp_vm::{Backing, PageSize, Populate, PteFlags};

    fn setup(cfg: MachineConfig) -> (Machine, AddressSpace, VirtAddr) {
        let mut m = Machine::new(cfg);
        let mut asp = AddressSpace::new(&mut m.frames).unwrap();
        let base = asp
            .mmap(
                &mut m.frames,
                64 * PageSize::Small4K.bytes(),
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "data",
            )
            .unwrap();
        (m, asp, base)
    }

    #[test]
    fn first_access_misses_tlb_second_hits() {
        let (mut m, mut asp, base) = setup(opteron_2x2());
        let mut c = Counters::new();
        let t1 = m
            .data_access(
                &mut asp,
                0,
                base,
                DataKind::Read,
                AccessMode::Latency,
                &mut c,
            )
            .unwrap();
        let t2 = m
            .data_access(
                &mut asp,
                0,
                base,
                DataKind::Read,
                AccessMode::Latency,
                &mut c,
            )
            .unwrap();
        assert_eq!(c.get(Event::DtlbMisses), 1);
        assert_eq!(c.get(Event::DtlbHits), 1);
        assert!(t1 > t2, "walk ({t1}) must cost more than a TLB hit ({t2})");
    }

    #[test]
    fn tlb_miss_cost_includes_walk_refs() {
        let (mut m, mut asp, base) = setup(opteron_2x2());
        let mut c = Counters::new();
        m.data_access(
            &mut asp,
            0,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert!(c.get(Event::WalkCycles) >= m.cost().walk_base);
    }

    #[test]
    fn eager_population_means_no_faults() {
        let (mut m, mut asp, base) = setup(opteron_2x2());
        let mut c = Counters::new();
        for i in 0..64u64 {
            m.data_access(
                &mut asp,
                0,
                base.add(i * 4096),
                DataKind::Read,
                AccessMode::Latency,
                &mut c,
            )
            .unwrap();
        }
        assert_eq!(c.get(Event::PageFaults), 0);
    }

    #[test]
    fn demand_mapping_pays_fault_once() {
        let mut m = Machine::new(opteron_2x2());
        let mut asp = AddressSpace::new(&mut m.frames).unwrap();
        let base = asp
            .mmap(
                &mut m.frames,
                2 * 4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::OnDemand,
                "lazy",
            )
            .unwrap();
        let mut c = Counters::new();
        let t_fault = m
            .data_access(
                &mut asp,
                0,
                base,
                DataKind::Write,
                AccessMode::Latency,
                &mut c,
            )
            .unwrap();
        assert_eq!(c.get(Event::PageFaults), 1);
        assert!(t_fault > m.cost().page_fault);
        // Second access to the same page: TLB hit, no fault.
        m.data_access(
            &mut asp,
            0,
            base.add(8),
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert_eq!(c.get(Event::PageFaults), 1);
    }

    #[test]
    fn cores_have_private_tlbs() {
        let (mut m, mut asp, base) = setup(opteron_2x2());
        let mut c = Counters::new();
        m.data_access(
            &mut asp,
            0,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        m.data_access(
            &mut asp,
            1,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        // Both cores missed independently.
        assert_eq!(c.get(Event::DtlbMisses), 2);
    }

    #[test]
    fn smt_flush_only_when_core_is_shared_and_stall_reaches_dram() {
        let (mut m, mut asp, base) = setup(xeon_2x2_ht());
        m.set_residency(vec![2, 2, 2, 2]);
        let mut c = Counters::new();
        // First access goes all the way to DRAM: flush charged.
        m.data_access(
            &mut asp,
            0,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert_eq!(c.get(Event::SmtFlushes), 1);
        // Cached access: no DRAM, no flush.
        m.data_access(
            &mut asp,
            0,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert_eq!(c.get(Event::SmtFlushes), 1);
        // Single-resident core: no flush even on DRAM access.
        m.set_residency(vec![1, 1, 1, 1]);
        m.data_access(
            &mut asp,
            1,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert_eq!(c.get(Event::SmtFlushes), 1);
    }

    #[test]
    fn opteron_never_flushes() {
        let (mut m, mut asp, base) = setup(opteron_2x2());
        m.set_residency(vec![1, 1, 1, 1]);
        let mut c = Counters::new();
        m.data_access(
            &mut asp,
            0,
            base,
            DataKind::Read,
            AccessMode::Latency,
            &mut c,
        )
        .unwrap();
        assert_eq!(c.get(Event::SmtFlushes), 0);
    }

    #[test]
    fn ifetch_counts_itlb_misses() {
        let mut m = Machine::new(opteron_2x2());
        let mut asp = AddressSpace::new(&mut m.frames).unwrap();
        let code = asp
            .mmap_fixed(
                &mut m.frames,
                VirtAddr(0x40_0000),
                8 * 4096,
                PageSize::Small4K,
                PteFlags::rx(),
                Backing::Anonymous,
                Populate::Eager,
                "code",
            )
            .unwrap();
        let mut c = Counters::new();
        m.ifetch(&mut asp, 0, code, &mut c).unwrap();
        m.ifetch(&mut asp, 0, code.add(16), &mut c).unwrap();
        assert_eq!(c.get(Event::ItlbMisses), 1);
        assert_eq!(c.get(Event::IFetches), 2);
    }

    #[test]
    fn disabling_the_walk_cache_makes_walks_cost_more() {
        let run = |pwc: bool| {
            let mut cfg = opteron_2x2();
            cfg.page_walk_cache = pwc;
            let (mut m, mut asp, base) = setup(cfg);
            let mut c = Counters::new();
            for i in 0..64u64 {
                m.data_access(
                    &mut asp,
                    0,
                    base.add(i * 4096),
                    DataKind::Read,
                    AccessMode::Latency,
                    &mut c,
                )
                .unwrap();
            }
            c.get(Event::WalkCycles)
        };
        assert!(run(false) > run(true));
    }

    #[test]
    fn large_pages_reduce_dtlb_misses_for_page_strided_scan() {
        // The core mechanism of the whole paper, end to end: a scan that
        // touches one cache line per 4 KB page misses the DTLB per page
        // with small pages but per 2 MB region with large pages.
        let run = |size: PageSize| -> u64 {
            let mut m = Machine::new(opteron_2x2());
            let mut asp = AddressSpace::new(&mut m.frames).unwrap();
            let span = 64 * 1024 * 1024u64;
            let base = match size {
                PageSize::Small4K => asp
                    .mmap(
                        &mut m.frames,
                        span,
                        size,
                        PteFlags::rw(),
                        Backing::Anonymous,
                        Populate::Eager,
                        "d",
                    )
                    .unwrap(),
                PageSize::Large2M => asp
                    .mmap(
                        &mut m.frames,
                        span,
                        size,
                        PteFlags::rw(),
                        Backing::Anonymous,
                        Populate::Eager,
                        "d",
                    )
                    .unwrap(),
            };
            let mut c = Counters::new();
            let mut off = 0;
            while off < span {
                m.data_access(
                    &mut asp,
                    0,
                    base.add(off),
                    DataKind::Read,
                    AccessMode::Latency,
                    &mut c,
                )
                .unwrap();
                off += 4096;
            }
            c.get(Event::DtlbMisses)
        };
        let small = run(PageSize::Small4K);
        let large = run(PageSize::Large2M);
        assert!(
            small > 100 * large.max(1),
            "expected ≥100x reduction, got {small} vs {large}"
        );
    }
}
