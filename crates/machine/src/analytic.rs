//! The analytic backend: evaluate a captured [`StreamProfile`] against a
//! machine preset, page policy and placement — in microseconds, not
//! simulated-access-by-access.
//!
//! The model mirrors the cycle engine's charge rules exactly, replacing
//! the stateful structures (TLBs, caches) with reuse-distance queries:
//!
//! * **Caches** — when the geometry is one of the capture's
//!   [`CONFLICT_SHAPES`](lpomp_prof::reuse::CONFLICT_SHAPES), misses come from the per-set stack-distance
//!   histogram: an access hits a `w`-way set iff fewer than `w` distinct
//!   lines of the same set intervened. That is the simulated array's
//!   exact replacement rule (the engine's caches are VA-indexed, as is
//!   the capture), and it sees the conflict misses of power-of-two
//!   strides that a fully-associative model hides (SP's pencil walks).
//!   Unknown geometries fall back to the fully-associative LRU
//!   approximation — hit iff line reuse distance `d < C` effective
//!   lines, capacity divided among co-resident sharers. DRAM-bound
//!   misses charge [`CostModel::dram_cycles`](crate::cost::CostModel::dram_cycles) by access mode — the same
//!   table the cycle engine's `cache_access` reads.
//! * **TLBs** — the same query at page granularity, using the policy's
//!   mapping size (4 KB or 2 MB) against [`TlbConfig`](lpomp_tlb::TlbConfig) reach: L1 hit if
//!   `d < e1`, L2 hit if `d < e1 + e2` (4 KB only where the preset has a
//!   unified L2 TLB), else a full miss charging
//!   [`CostModel::walk_cached_cycles`](crate::cost::CostModel::walk_cached_cycles). A set-associative L2 TLB (the
//!   Opteron's 4-way array) additionally misses any access whose per-set
//!   distance reaches its ways, via the matching conflict shape.
//!   Streamed walks under 4 KB pages add the cold-PTE-line fraction (one
//!   DRAM leaf fetch per 8 pages).
//!
//!   Shared structures (SMT-shared L1/TLBs, chip-shared L2) use their
//!   full capacity per thread rather than a divided share: the engine
//!   interleaves threads in coarse batched quanta, so cross-context
//!   interference is second-order — cross-validation at class W confirms
//!   full capacity tracks the engine far better than a 1/share model.
//! * **Prefetch restarts** — `min(stream-mode full misses, stream
//!   accesses in a page's first two lines)`: the cycle engine restarts
//!   only when a TLB miss lands at a page boundary mid-stream.
//! * **SMT** — co-resident threads scale their whole charge by
//!   [`CostModel::smt_scale`](crate::cost::CostModel::smt_scale) and, on flush-on-stall parts, add one
//!   flush per stalling DRAM access, exactly like `maybe_smt_flush`.
//! * **NUMA** — a per-thread remote fraction from the placement policy
//!   (all-remote off node 0 for `MasterNode`, `(n-1)/n` for interleave,
//!   local for first-touch) applied to DRAM-bound misses.
//! * **Critical path** — phases are barrier-delimited in the engine, so
//!   total cycles = Σ over phases of the slowest thread plus the phase's
//!   barrier costs, the same rule `barrier_sync` applies.
//!
//! Everything is plain `f64` arithmetic over the profile's integer
//! counts: evaluating the same profile twice — or a profile round-tripped
//! through JSON — yields bit-identical results.

use crate::config::MachineConfig;
use crate::machine::AccessMode;
use lpomp_prof::reuse::{
    conflict_shape_index, PhaseThread, StreamProfile, GRAN_LINE, GRAN_PAGE4K, MODES, MODE_LATENCY,
    MODE_PIPELINED, MODE_STREAM,
};
use lpomp_prof::{Counters, Event};
use lpomp_tlb::Assoc;
use lpomp_vm::{MMArch, PageSize};

/// One evaluation point: a profile against a machine and page policy.
pub struct AnalyticPoint<'a> {
    /// The captured reference stream.
    pub profile: &'a StreamProfile,
    /// Machine preset to evaluate against.
    pub config: &'a MachineConfig,
    /// Mapping granularity of the shared heap under the page policy.
    pub page_size: PageSize,
    /// Whether pages fault on first touch (demand population) instead of
    /// being prefaulted.
    pub demand_faults: bool,
}

/// Predicted run outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalyticResult {
    /// Critical-path cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the preset's frequency.
    pub seconds: f64,
    /// Predicted aggregate counter sheet.
    pub counters: Counters,
}

struct ThreadEnv {
    /// Fallback fully-associative capacities (unknown geometries only).
    l1_lines: u64,
    l2_lines: u64,
    /// Captured conflict shape `(index, ways)` per structure, if any.
    l1_shape: Option<(usize, u64)>,
    l2_shape: Option<(usize, u64)>,
    dtlb_l2_shape: Option<(usize, u64)>,
    de1: u64,
    de2: Option<u64>,
    ie1: u64,
    ie2: Option<u64>,
    smt_coresident: bool,
    remote_frac: f64,
}

/// Per-set misses of a captured conflict shape, if this profile has it.
#[inline]
fn conflict_misses(pt: &PhaseThread, shape: Option<(usize, u64)>, m: usize) -> Option<f64> {
    let (i, ways) = shape?;
    Some(pt.conflict.get(i)?[m].misses_beyond(ways))
}

/// Evaluate one point. Cost: one histogram walk per (phase, thread,
/// mode) — microseconds for real profiles.
pub fn evaluate(point: &AnalyticPoint) -> AnalyticResult {
    let cfg = point.config;
    let cost = &cfg.cost;
    let profile = point.profile;
    let threads = profile.threads;
    let placement = cfg.placement(threads);
    let residency = cfg.residency(threads);
    let size = point.page_size;

    // Geometry → captured conflict shape (shared by all threads).
    let cache_shape = |c: &crate::cache::CacheConfig| {
        conflict_shape_index(GRAN_LINE, c.sets() as u32, u32::from(c.ways))
            .map(|i| (i, u64::from(c.ways)))
    };
    let l1_shape = cache_shape(&cfg.l1d);
    let l2_shape = cache_shape(&cfg.l2);
    let arch = cfg.arch();
    let rank = arch
        .rank_of(size)
        .expect("policy page size is on the machine's ladder");
    // The per-set conflict capture keys pages at 4 KB, so the conflict
    // view of a set-associative L2 TLB applies only to 4 KB mappings.
    let dtlb_l2_shape = cfg.dtlb.l2.and_then(|l| {
        let slot = l.slot(0);
        match slot.assoc {
            Assoc::Ways(w) if size == PageSize::Small4K && w > 0 && slot.entries >= w => {
                conflict_shape_index(GRAN_PAGE4K, u32::from(slot.entries / w), u32::from(w))
                    .map(|i| (i, u64::from(w)))
            }
            _ => None,
        }
    });

    let envs: Vec<ThreadEnv> = (0..threads)
        .map(|t| {
            let core = placement[t];
            let share = residency[core] as u64;
            let l2_sharers = (0..threads)
                .filter(|&u| cfg.l2_of_core(placement[u]) == cfg.l2_of_core(core))
                .count() as u64;
            let level = |entries: u16| -> u64 { u64::from(entries) };
            let de1 = level(cfg.dtlb.l1.entries_at(rank)).max(1);
            let de2 = cfg
                .dtlb
                .l2
                .map(|l| level(l.entries_at(rank)))
                .filter(|&e| e > 0);
            // Code maps at the architecture's base granule: ladder rank 0.
            let ie1 = level(cfg.itlb.l1.entries_at(0)).max(1);
            let ie2 = cfg
                .itlb
                .l2
                .map(|l| level(l.entries_at(0)))
                .filter(|&e| e > 0);
            let remote_frac = match &cfg.numa {
                None => 0.0,
                Some(n) => match n.placement {
                    crate::numa::NumaPlacement::MasterNode => {
                        if cfg.node_of_core(core) == 0 {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    crate::numa::NumaPlacement::Interleave4K
                    | crate::numa::NumaPlacement::Interleave2M => {
                        (n.nodes as f64 - 1.0) / n.nodes as f64
                    }
                    crate::numa::NumaPlacement::FirstTouch => 0.0,
                },
            };
            ThreadEnv {
                l1_lines: (cfg.l1d.capacity_bytes / crate::cache::LINE_BYTES / share).max(1),
                l2_lines: (cfg.l2.capacity_bytes / crate::cache::LINE_BYTES / l2_sharers).max(1),
                l1_shape,
                l2_shape,
                dtlb_l2_shape,
                de1,
                de2,
                ie1,
                ie2,
                smt_coresident: share > 1,
                remote_frac,
            }
        })
        .collect();

    // Accumulators (f64 until the final rounding; u64 where exact).
    let mut total = 0.0f64; // synchronized clock = critical path
    let mut work_sum = 0.0f64; // Σ per-thread charged cycles (pre-barrier-wait)
    let mut c = CounterAcc::default();
    let barrier_cost = cost.barrier_cycles(threads) as f64;

    for phase in &profile.phases {
        let mut slowest = 0.0f64;
        for (t, pt) in phase.threads.iter().enumerate() {
            let cyc = eval_thread(point, &envs[t], pt, &mut c);
            work_sum += cyc;
            if cyc > slowest {
                slowest = cyc;
            }
        }
        total += slowest + phase.barriers as f64 * barrier_cost;
        c.barriers += phase.barriers * threads as u64;
    }

    let cycles = total.round() as u64;
    let counters = c.into_counters(threads, total, work_sum);
    AnalyticResult {
        cycles,
        seconds: cost.seconds(cycles),
        counters,
    }
}

#[derive(Default)]
struct CounterAcc {
    loads: u64,
    stores: u64,
    instructions: u64,
    ifetches: u64,
    l1d_misses: f64,
    l2_misses: f64,
    dtlb_misses: f64,
    dtlb_l2_hits: f64,
    itlb_misses: f64,
    walk_cycles: f64,
    restarts: f64,
    restart_cycles: f64,
    faults: f64,
    smt_flushes: f64,
    smt_flush_cycles: f64,
    local_dram: f64,
    remote_dram: f64,
    barriers: u64,
    numa: bool,
}

impl CounterAcc {
    fn into_counters(self, threads: usize, total: f64, work_sum: f64) -> Counters {
        let mut c = Counters::new();
        let r = |x: f64| x.round() as u64;
        c.add(Event::Loads, self.loads);
        c.add(Event::Stores, self.stores);
        c.add(Event::Instructions, self.instructions);
        c.add(Event::IFetches, self.ifetches);
        let accesses = self.loads + self.stores;
        c.add(Event::DtlbMisses, r(self.dtlb_misses));
        c.add(
            Event::DtlbHits,
            accesses.saturating_sub(r(self.dtlb_misses)),
        );
        c.add(Event::DtlbL2Hits, r(self.dtlb_l2_hits));
        c.add(Event::ItlbMisses, r(self.itlb_misses));
        c.add(Event::L1dMisses, r(self.l1d_misses));
        c.add(Event::L2Misses, r(self.l2_misses));
        c.add(Event::WalkCycles, r(self.walk_cycles));
        c.add(Event::PrefetchRestarts, r(self.restarts));
        c.add(Event::PrefetchRestartCycles, r(self.restart_cycles));
        c.add(Event::PageFaults, r(self.faults));
        c.add(Event::SmtFlushes, r(self.smt_flushes));
        c.add(Event::SmtFlushCycles, r(self.smt_flush_cycles));
        c.add(Event::Barriers, self.barriers);
        if self.numa {
            c.add(Event::LocalDramAccesses, r(self.local_dram));
            c.add(Event::RemoteDramAccesses, r(self.remote_dram));
        }
        // Every thread's clock ends at the synchronized total; the Cycles
        // counter collects all charges including barrier waits.
        let all = threads as f64 * total;
        c.add(Event::Cycles, r(all));
        c.add(Event::BarrierCycles, r((all - work_sum).max(0.0)));
        c
    }
}

/// Per-(phase, thread) charge, mirroring the engine's per-access rules.
fn eval_thread(
    point: &AnalyticPoint,
    env: &ThreadEnv,
    pt: &PhaseThread,
    c: &mut CounterAcc,
) -> f64 {
    let cfg = point.config;
    let cost = &cfg.cost;
    let size = point.page_size;
    let mut cyc = 0.0f64;

    c.loads += pt.loads;
    c.stores += pt.stores;
    c.instructions += pt.instructions;
    c.ifetches += pt.ifetches;
    c.numa |= cfg.numa.is_some();

    // Compute: CPI 1.
    cyc += pt.instructions as f64;

    // Data caches, per access mode.
    let mut dram = [0.0f64; MODES];
    for m in 0..MODES {
        let n = pt.acc[m] as f64;
        // Latency-mode accesses are issued op-by-op, so a co-resident
        // SMT sibling interleaves finely with them and claims its share
        // of the cache ways; batched stream/pipelined runs execute as
        // single engine ops and see the full array.
        let smt_ways = |w: u64| -> u64 {
            if env.smt_coresident && m == MODE_LATENCY {
                (w / 2).max(1)
            } else {
                w
            }
        };
        let m1 = match env.l1_shape.map(|(i, w)| (i, smt_ways(w))) {
            Some(s) => match conflict_misses(pt, Some(s), m) {
                Some(cm) => cm.min(n),
                None => pt.line[m].misses_beyond(env.l1_lines).min(n),
            },
            None => pt.line[m].misses_beyond(env.l1_lines).min(n),
        };
        let m2 = match env.l2_shape.map(|(i, w)| (i, smt_ways(w))) {
            Some(s) => match conflict_misses(pt, Some(s), m) {
                Some(cm) => cm.min(m1),
                None => pt.line[m].misses_beyond(env.l2_lines).min(m1),
            },
            None => pt.line[m].misses_beyond(env.l2_lines).min(m1),
        };
        let mode = [
            AccessMode::Latency,
            AccessMode::Pipelined,
            AccessMode::Stream,
        ][m];
        cyc += (n - m1) * cost.l1_hit as f64
            + (m1 - m2) * cost.l2_hit as f64
            + m2 * cost.dram_cycles(mode) as f64;
        c.l1d_misses += m1;
        c.l2_misses += m2;
        dram[m] = m2;
    }

    // DTLB at the mapping size.
    let arch = cfg.arch();
    let hist = pt
        .page_hist(size.shift())
        .expect("mapping size is a captured page granularity");
    let mut stream_full = 0.0f64;
    for (m, hm) in hist.iter().enumerate() {
        let n = pt.acc[m] as f64;
        let miss1 = hm.misses_beyond(env.de1).min(n);
        // L2 reach: capacity view (fully-associative over e1+e2), raised
        // by the set-conflict view where the L2 is set-associative — an
        // access whose per-set distance reaches the ways misses the L2
        // regardless of total footprint.
        let chain = match env.de2 {
            Some(e2) => hm.misses_beyond(env.de1 + e2).min(miss1),
            None => miss1,
        };
        let full = match conflict_misses(pt, env.dtlb_l2_shape, m) {
            Some(cm) => cm.min(miss1).max(chain),
            None => chain,
        };
        let l2_hits = miss1 - full;
        // Leaf PTE fetch: resident in the L2 except when a 4 KB stream
        // sweeps fresh PTE lines — 8 leaf entries per line, so one DRAM
        // leaf fetch per 8 page walks.
        let leaf = if size == PageSize::Small4K && m == MODE_STREAM {
            cost.l2_hit as f64 + (cost.dram as f64 - cost.l2_hit as f64) / 8.0
        } else {
            cost.l2_hit as f64
        };
        let walk_levels = if cfg.page_walk_cache {
            1.0
        } else {
            // No page-walk cache: every radix level references memory —
            // fewer for rungs whose leaf sits higher in the tree.
            let rung = arch.rung_of(size).expect("mapping size is on the ladder");
            f64::from(rung.walk_levels(&arch.walk_shape()))
        };
        let walk = cost.walk_base as f64 + leaf * walk_levels;
        let w = l2_hits * cost.tlb_l2_hit as f64 + full * walk;
        cyc += w;
        c.walk_cycles += full * walk;
        c.dtlb_misses += full;
        c.dtlb_l2_hits += l2_hits;
        if m == MODE_STREAM {
            stream_full = full;
        }
    }

    // Prefetch restarts: a stream-mode TLB miss landing in a page's
    // first two lines.
    let stream_pages = pt.stream_pages_at(size.shift()) as f64;
    let restarts = stream_full.min(stream_pages);
    cyc += restarts * cost.stream_restart as f64;
    c.restarts += restarts;
    c.restart_cycles += restarts * cost.stream_restart as f64;

    // Demand faults: each thread's first touch of a page (overlapping
    // first touches of shared pages make this an upper bound).
    if point.demand_faults {
        let cold: u64 = hist.iter().map(|h| h.cold).sum();
        cyc += cold as f64 * cost.page_fault as f64;
        c.faults += cold as f64;
    }

    // ITLB over the fetch stream (code maps at the base granule).
    {
        let code = pt
            .code_hist(arch.base().shift())
            .expect("base granule is a captured code granularity");
        let n = pt.ifetches as f64;
        let miss1 = code.misses_beyond(env.ie1).min(n);
        let full = match env.ie2 {
            Some(e2) => code.misses_beyond(env.ie1 + e2).min(miss1),
            None => miss1,
        };
        cyc += (miss1 - full) * cost.tlb_l2_hit as f64 + full * cost.walk_cached_cycles() as f64;
        c.walk_cycles += full * cost.walk_cached_cycles() as f64;
        c.itlb_misses += full;
    }

    // NUMA remote penalty on DRAM-bound misses.
    if let Some(numa) = &cfg.numa {
        let f = env.remote_frac;
        let dram_total = dram[MODE_LATENCY] + dram[MODE_PIPELINED] + dram[MODE_STREAM];
        cyc += f
            * ((dram[MODE_LATENCY] + dram[MODE_PIPELINED]) * numa.remote_extra as f64
                + dram[MODE_STREAM] * numa.remote_stream_extra as f64);
        c.remote_dram += f * dram_total;
        c.local_dram += (1.0 - f) * dram_total;
    }

    // SMT flush on stalling (latency/pipelined) DRAM accesses.
    if cfg.smt_flush_on_stall && env.smt_coresident {
        let flushes = dram[MODE_LATENCY] + dram[MODE_PIPELINED];
        cyc += flushes * cost.smt_flush as f64;
        c.smt_flushes += flushes;
        c.smt_flush_cycles += flushes * cost.smt_flush as f64;
    }

    // Co-resident SMT contexts scale every charge.
    if env.smt_coresident {
        cyc = cyc * cost.smt_share_num as f64 / cost.smt_share_den as f64;
    }
    cyc
}
