//! The cycle cost model.
//!
//! All latencies are in core cycles. Absolute values are era-appropriate
//! for the 2006/2007 platforms (the paper quotes "several hundred cycles"
//! for a memory access and assumes a ~200-cycle ITLB miss at 2.0 GHz in
//! §4.3); what the reproduction actually depends on is the *ratios* —
//! DRAM ≫ L2 ≫ L1, and a page walk costing a few cache accesses.

/// Cycle charges for every modelled event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Core clock frequency in Hz (used only to convert cycles → seconds).
    pub hz: f64,
    /// L1 data-cache hit latency.
    pub l1_hit: u64,
    /// L2 hit latency (total, not additional).
    pub l2_hit: u64,
    /// DRAM access latency (total) for a demand (latency-bound) miss.
    pub dram: u64,
    /// Effective cost of an *independent* demand miss: out-of-order
    /// hardware overlaps several in-flight misses when their addresses do
    /// not depend on each other (strided pencil walks), so each costs a
    /// fraction of the full latency. Dependent (pointer-chasing) misses
    /// pay `dram` in full.
    pub dram_pipelined: u64,
    /// Effective per-line cost of a *streamed* miss: sequential sweeps are
    /// covered by the hardware prefetcher, so consecutive lines cost
    /// bandwidth rather than latency. Crucially, prefetchers of this era
    /// stop at 4 KB page boundaries and cannot hide the TLB walk — which
    /// is why stream-heavy codes still gain from large pages.
    pub dram_stream: u64,
    /// Penalty paid when a *streamed* sweep crosses into a page whose
    /// translation missed the TLB: hardware prefetchers do not cross page
    /// boundaries, so the stream restarts — the first lines of the new
    /// page are demand misses while the prefetcher re-ramps. Charged once
    /// per streamed TLB miss, on top of the walk. This is the principal
    /// reason large pages speed up stream-dominated codes (MG, SP): a
    /// 2 MB page restarts the prefetcher 512x less often.
    pub stream_restart: u64,
    /// Additional latency of a DTLB lookup that is satisfied by the L2 TLB
    /// rather than L1 (the L1 TLB hit itself is folded into the pipeline).
    pub tlb_l2_hit: u64,
    /// Fixed overhead of starting a page walk (fault into the walker);
    /// each walk step additionally pays the cache-hierarchy cost of its
    /// PTE reference.
    pub walk_base: u64,
    /// Kernel cost of taking and resolving a minor page fault (allocate /
    /// look up a frame, install a PTE). Paid only on demand-populated
    /// mappings — the paper's preallocation avoids it entirely.
    pub page_fault: u64,
    /// Pipeline-flush penalty the Xeon pays when an SMT context stalls on
    /// a long-latency access and the core switches threads (§4.4 blames
    /// this for the 4→8-thread collapse). Zero on non-flushing designs.
    pub smt_flush: u64,
    /// Fixed cost of one barrier episode.
    pub barrier_base: u64,
    /// Additional barrier cost per participating thread.
    pub barrier_per_thread: u64,
    /// Cycle-charge multiplier (numerator) applied to a thread whose core
    /// hosts more than one resident SMT context: the two contexts share
    /// execution resources, so neither runs at full speed. 1/1 on
    /// non-SMT parts.
    pub smt_share_num: u64,
    /// Denominator of the SMT charge multiplier.
    pub smt_share_den: u64,
    /// Kernel cost of migrating one 4 KB page: copy 64 cache lines at
    /// streaming bandwidth (read + write), as promotion/compaction does.
    pub migrate_page: u64,
    /// Cost of editing one page-table entry under the page-table lock
    /// (locked read-modify-write plus bookkeeping).
    pub pt_edit: u64,
    /// Per-core cost of a broadcast TLB-shootdown IPI round: send the
    /// interrupt, take it on the remote core, invalidate, acknowledge.
    pub shootdown_ipi: u64,
    /// Direct cost of switching a core between tenant processes: trap
    /// into the kernel, save/restore register state, switch CR3, return.
    /// The *indirect* cost (cold TLBs and caches, or the full flush in
    /// the untagged-hardware mode) emerges from the simulation itself.
    pub context_switch: u64,
    /// Cost of one local deque operation in the hierarchical scheduler
    /// (pop a chunk from your own queue — an uncontended cached access).
    pub queue_op: u64,
    /// Cost of stealing a chunk from another core on the *same* node:
    /// a compare-and-swap on a line in the shared on-chip domain.
    pub steal_local: u64,
    /// Cost of stealing from a core on a *remote* node: the CAS line
    /// crosses the interconnect (and usually bounces back), so the
    /// scheduler amortizes it by taking a larger chunk batch.
    pub steal_remote: u64,
}

impl CostModel {
    /// Cost model of the dual dual-core Opteron 270 platform: on-chip
    /// memory controller (lower DRAM latency), private 1 MB L2s.
    pub const fn opteron() -> Self {
        CostModel {
            hz: 2.0e9,
            l1_hit: 3,
            l2_hit: 12,
            dram: 180,
            dram_pipelined: 72,
            dram_stream: 26,
            // The prefetcher re-ramps over several lines: a handful of
            // demand-latency misses before full streaming resumes.
            stream_restart: 600,
            // A K8 L2 DTLB hit costs ~10 cycles of translation latency
            // plus an AGU replay bubble; ~14 cycles end to end.
            tlb_l2_hit: 14,
            // The hardware walker serializes the pipeline for tens of
            // cycles even when PTEs are cached.
            walk_base: 50,
            page_fault: 2500,
            smt_flush: 0,
            barrier_base: 120,
            barrier_per_thread: 40,
            smt_share_num: 1,
            smt_share_den: 1,
            // 64 cache lines read + written at streaming bandwidth.
            migrate_page: 64 * 2 * 26,
            pt_edit: 80,
            shootdown_ipi: 1200,
            // ~1.3 µs at 2 GHz: the classic lmbench-style direct cost of
            // a kernel context switch on this era's hardware.
            context_switch: 2600,
            // A local deque pop stays in the owner's cache.
            queue_op: 6,
            // An intra-node steal CASes a line another core owns.
            steal_local: 40,
            // A cross-node steal bounces the line over HyperTransport
            // both ways — roughly a remote DRAM round trip.
            steal_remote: 220,
        }
    }

    /// Cost model of the dual dual-core Xeon (Netburst) platform:
    /// front-side-bus memory (higher DRAM latency), deep pipeline whose
    /// SMT implementation flushes on a thread switch.
    pub const fn xeon() -> Self {
        CostModel {
            hz: 2.0e9,
            l1_hit: 4,
            l2_hit: 18,
            dram: 280,
            dram_pipelined: 112,
            dram_stream: 38,
            stream_restart: 780,
            tlb_l2_hit: 14,
            // Netburst's hardware walker is fast when PTEs are cached.
            walk_base: 25,
            page_fault: 2500,
            // Netburst's ~31-stage pipeline refills after each flush; the
            // effective penalty per long-latency switch is tens of cycles.
            smt_flush: 48,
            barrier_base: 150,
            barrier_per_thread: 50,
            // Netburst hyper-threading shares one set of execution
            // resources between contexts; for these saturating HPC codes
            // the measured aggregate speedup from the second context was
            // near zero (paper Fig. 4), i.e. each co-resident thread runs
            // at about half speed.
            smt_share_num: 2,
            smt_share_den: 1,
            migrate_page: 64 * 2 * 38,
            pt_edit: 80,
            // Interrupt delivery over the front-side bus is slower than
            // HyperTransport's.
            shootdown_ipi: 1500,
            // Netburst's deep pipeline drains and refills around the
            // kernel round-trip, so the switch costs more than the K8's.
            context_switch: 3400,
            queue_op: 8,
            steal_local: 55,
            // Cross-socket line transfers ride the front-side bus.
            steal_remote: 320,
        }
    }

    /// Convert a cycle count to seconds at this model's frequency.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.hz
    }

    /// Cost of one barrier episode with `threads` participants.
    pub fn barrier_cycles(&self, threads: usize) -> u64 {
        self.barrier_base + self.barrier_per_thread * threads as u64
    }

    /// Scale a cycle charge for a thread co-resident with another SMT
    /// context on its core.
    pub fn smt_scale(&self, cycles: u64) -> u64 {
        cycles * self.smt_share_num / self.smt_share_den
    }

    /// DRAM access latency by access mode — the one charging table both
    /// the cycle engine's cache hierarchy and the analytic backend read.
    pub fn dram_cycles(&self, mode: crate::machine::AccessMode) -> u64 {
        match mode {
            crate::machine::AccessMode::Latency => self.dram,
            crate::machine::AccessMode::Pipelined => self.dram_pipelined,
            crate::machine::AccessMode::Stream => self.dram_stream,
        }
    }

    /// Cycles of a DTLB/ITLB miss whose walk finds every upper level in
    /// the page-walk cache and the leaf PTE in the L2 — the common case
    /// both backends charge.
    pub fn walk_cached_cycles(&self) -> u64 {
        self.walk_base + self.l2_hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering_invariants() {
        for m in [CostModel::opteron(), CostModel::xeon()] {
            assert!(m.l1_hit < m.l2_hit, "L1 must be faster than L2");
            assert!(m.l2_hit < m.dram, "L2 must be faster than DRAM");
            assert!(m.page_fault > m.dram, "faults dwarf memory accesses");
        }
    }

    #[test]
    fn platform_differences_match_the_paper() {
        let o = CostModel::opteron();
        let x = CostModel::xeon();
        // Opteron's integrated memory controller beats the Xeon FSB.
        assert!(o.dram < x.dram);
        // Only the Xeon flushes its pipeline on SMT switches.
        assert_eq!(o.smt_flush, 0);
        assert!(x.smt_flush > 0);
    }

    #[test]
    fn stream_cost_is_far_below_latency_cost() {
        for m in [CostModel::opteron(), CostModel::xeon()] {
            assert!(m.dram_stream * 4 < m.dram);
            assert!(m.dram_stream >= m.l1_hit);
        }
    }

    #[test]
    fn pipelined_cost_sits_between_stream_and_latency() {
        for m in [CostModel::opteron(), CostModel::xeon()] {
            assert!(m.dram_pipelined < m.dram);
            assert!(m.dram_pipelined > m.dram_stream);
        }
    }

    #[test]
    fn stream_restart_is_a_few_demand_latencies() {
        for m in [CostModel::opteron(), CostModel::xeon()] {
            assert!(m.stream_restart >= m.dram);
            assert!(m.stream_restart <= 4 * m.dram);
        }
    }

    #[test]
    fn smt_scale_only_slows_xeon() {
        let o = CostModel::opteron();
        assert_eq!(o.smt_scale(100), 100);
        let x = CostModel::xeon();
        // Each co-resident context runs at about half speed: 8 threads do
        // no better than 4 (the paper's Fig. 4 Xeon collapse).
        assert_eq!(x.smt_scale(100), 200);
    }

    #[test]
    fn daemon_costs_are_sane() {
        for m in [CostModel::opteron(), CostModel::xeon()] {
            // A page copy is two 4 KB transfers at streaming bandwidth.
            assert_eq!(m.migrate_page, 64 * 2 * m.dram_stream);
            // A PT edit is cheaper than a fault but dearer than DRAM
            // access; a shootdown round costs several DRAM latencies.
            assert!(m.pt_edit < m.page_fault);
            assert!(m.shootdown_ipi > m.dram);
            assert!(m.shootdown_ipi < m.page_fault);
        }
    }

    #[test]
    fn context_switch_cost_is_sane() {
        let o = CostModel::opteron();
        let x = CostModel::xeon();
        for m in [o, x] {
            // A switch is kernel work: dearer than any single memory
            // access, cheaper than servicing a page fault plus its I/O.
            assert!(m.context_switch > m.dram);
            assert!(m.context_switch > m.shootdown_ipi);
            assert!(m.context_switch <= 2 * m.page_fault);
        }
        // The deep-pipeline Netburst pays more per switch.
        assert!(x.context_switch > o.context_switch);
    }

    #[test]
    fn steal_costs_follow_the_topology() {
        for m in [CostModel::opteron(), CostModel::xeon()] {
            // Own queue < same-node steal < cross-node steal; the remote
            // steal is interconnect-bound, i.e. DRAM-latency scale.
            assert!(m.queue_op < m.steal_local);
            assert!(m.steal_local < m.steal_remote);
            assert!(m.steal_remote >= m.dram / 2);
            assert!(m.steal_remote < m.page_fault);
        }
    }

    #[test]
    fn seconds_conversion() {
        let m = CostModel::opteron();
        assert!((m.seconds(2_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_scales_with_threads() {
        let m = CostModel::opteron();
        assert!(m.barrier_cycles(8) > m.barrier_cycles(2));
        assert_eq!(m.barrier_cycles(0), m.barrier_base);
    }
}
