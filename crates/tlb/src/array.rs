//! A single TLB entry array: one page size, set-associative or fully
//! associative, true LRU.
//!
//! Real TLBs keep *separate* entry arrays per page size (the paper's
//! Table 1 lists "L1DTLB (4KB) Size" and "L1DTLB (2MB) Size" as distinct
//! rows, and notes the 2 MB arrays are much smaller — 32 vs 128 on the
//! Xeon, 8 vs 32 on the Opteron L1, and *zero* 2 MB entries in the Opteron
//! L2). [`TlbArray`] models one such array.
//!
//! Fully associative arrays use a move-to-front vector, which makes a hit
//! under high temporal locality O(1)–O(small) and is exactly true LRU.
//! Set-associative arrays index by the low VPN bits and keep LRU per set.

use lpomp_vm::PageSize;

/// Associativity of a TLB array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Assoc {
    /// Every entry can hold any page (CAM-style, as in most L1 TLBs).
    Full,
    /// `n`-way set associative (as in the Opteron's large L2 DTLB).
    Ways(u16),
}

/// Hit/miss counters for one array.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArrayStats {
    /// Lookups that found the VPN.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries displaced by fills.
    pub evictions: u64,
    /// Whole-array invalidations.
    pub flushes: u64,
}

impl ArrayStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; 0 when no lookups occurred.
    pub fn miss_ratio(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

/// One TLB entry array for a single page size.
#[derive(Debug)]
pub struct TlbArray {
    page_size: PageSize,
    capacity: u16,
    ways: u16,
    set_mask: u64,
    /// `sets[s]` holds up to `ways` VPNs, MRU first (true LRU order).
    sets: Vec<Vec<u64>>,
    stats: ArrayStats,
}

impl TlbArray {
    /// Create an array with `capacity` entries of `page_size` pages.
    /// A zero-capacity array is legal and never hits (the Opteron L2 DTLB's
    /// 2 MB row). For `Assoc::Ways(w)`, `capacity` must divide evenly into
    /// sets of `w` ways.
    pub fn new(page_size: PageSize, capacity: u16, assoc: Assoc) -> Self {
        let ways = match assoc {
            Assoc::Full => capacity.max(1),
            Assoc::Ways(w) => {
                assert!(w > 0, "ways must be positive");
                assert!(
                    capacity.is_multiple_of(w),
                    "capacity {capacity} not divisible by ways {w}"
                );
                w
            }
        };
        let nsets = if capacity == 0 {
            0
        } else {
            (capacity / ways).max(1) as usize
        };
        assert!(
            nsets == 0 || nsets.is_power_of_two(),
            "set count {nsets} must be a power of two for masking"
        );
        TlbArray {
            page_size,
            capacity,
            ways,
            set_mask: nsets.saturating_sub(1) as u64,
            sets: vec![Vec::with_capacity(ways as usize); nsets],
            stats: ArrayStats::default(),
        }
    }

    /// Page size this array caches translations for.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> u16 {
        self.capacity
    }

    /// Bytes of address space this array can cover when full ("TLB reach").
    pub fn coverage_bytes(&self) -> u64 {
        self.capacity as u64 * self.page_size.bytes()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ArrayStats {
        self.stats
    }

    /// Current number of live entries across all sets.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    #[inline]
    fn set_index(&self, vpn: u64) -> usize {
        (vpn & self.set_mask) as usize
    }

    /// Look up a VPN, updating LRU order and counters.
    #[inline]
    pub fn lookup(&mut self, vpn: u64) -> bool {
        if self.capacity == 0 {
            self.stats.misses += 1;
            return false;
        }
        let si = self.set_index(vpn);
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|&e| e == vpn) {
            // Move to front: position 0 is MRU.
            if pos != 0 {
                let e = set.remove(pos);
                set.insert(0, e);
            }
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Probe without disturbing LRU order or counters.
    pub fn probe(&self, vpn: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.sets[self.set_index(vpn)].contains(&vpn)
    }

    /// True when `vpn` is the most-recently-used entry of its set — i.e.
    /// a [`lookup`] of it would hit *and* its move-to-front would be a
    /// no-op. The condition under which a hit may be recorded via
    /// [`record_hit_bypass`] without changing any future eviction.
    ///
    /// [`lookup`]: TlbArray::lookup
    /// [`record_hit_bypass`]: TlbArray::record_hit_bypass
    pub fn is_mru(&self, vpn: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.sets[self.set_index(vpn)].first() == Some(&vpn)
    }

    /// Record a hit without searching or reordering the set.
    ///
    /// Correct only when the caller has proven the entry is resident and
    /// already MRU (see [`is_mru`]) — then `lookup` would bump
    /// `stats.hits` and leave the array state untouched, which is exactly
    /// what this does without the O(ways) scan.
    ///
    /// [`is_mru`]: TlbArray::is_mru
    #[inline]
    pub fn record_hit_bypass(&mut self) {
        self.stats.hits += 1;
    }

    /// Install a VPN (after a miss + walk), evicting the set's LRU entry if
    /// full. Returns the evicted VPN, if any.
    pub fn fill(&mut self, vpn: u64) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        let ways = self.ways as usize;
        let si = self.set_index(vpn);
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|&e| e == vpn) {
            // Already present (e.g. filled by the other SMT context between
            // our miss and our fill): refresh LRU only.
            if pos != 0 {
                let e = set.remove(pos);
                set.insert(0, e);
            }
            return None;
        }
        let evicted = if set.len() == ways {
            self.stats.evictions += 1;
            set.pop()
        } else {
            None
        };
        set.insert(0, vpn);
        evicted
    }

    /// Invalidate every entry.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats.flushes += 1;
    }

    /// Invalidate one page if present (e.g. on munmap).
    pub fn invalidate(&mut self, vpn: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let si = self.set_index(vpn);
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|&e| e == vpn) {
            set.remove(pos);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut a = TlbArray::new(PageSize::Small4K, 4, Assoc::Full);
        assert!(!a.lookup(7));
        a.fill(7);
        assert!(a.lookup(7));
        assert_eq!(a.stats().hits, 1);
        assert_eq!(a.stats().misses, 1);
    }

    #[test]
    fn true_lru_eviction_order() {
        let mut a = TlbArray::new(PageSize::Small4K, 3, Assoc::Full);
        a.fill(1);
        a.fill(2);
        a.fill(3);
        // Touch 1 so 2 becomes LRU.
        assert!(a.lookup(1));
        let evicted = a.fill(4);
        assert_eq!(evicted, Some(2));
        assert!(a.probe(1) && a.probe(3) && a.probe(4));
        assert!(!a.probe(2));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut a = TlbArray::new(PageSize::Large2M, 0, Assoc::Full);
        assert!(!a.lookup(1));
        assert_eq!(a.fill(1), None);
        assert!(!a.lookup(1));
        assert_eq!(a.coverage_bytes(), 0);
    }

    #[test]
    fn set_associative_conflicts() {
        // 8 entries, 2-way: 4 sets. VPNs 0,4,8 all map to set 0.
        let mut a = TlbArray::new(PageSize::Small4K, 8, Assoc::Ways(2));
        a.fill(0);
        a.fill(4);
        a.fill(8); // evicts 0 (LRU of set 0)
        assert!(!a.probe(0));
        assert!(a.probe(4) && a.probe(8));
        // Other sets unaffected.
        a.fill(1);
        assert!(a.probe(1));
    }

    #[test]
    fn fill_of_present_entry_does_not_duplicate() {
        let mut a = TlbArray::new(PageSize::Small4K, 4, Assoc::Full);
        a.fill(9);
        a.fill(9);
        assert_eq!(a.occupancy(), 1);
    }

    #[test]
    fn flush_empties_and_counts() {
        let mut a = TlbArray::new(PageSize::Small4K, 4, Assoc::Full);
        a.fill(1);
        a.fill(2);
        a.flush();
        assert_eq!(a.occupancy(), 0);
        assert!(!a.probe(1));
        assert_eq!(a.stats().flushes, 1);
    }

    #[test]
    fn invalidate_single_entry() {
        let mut a = TlbArray::new(PageSize::Small4K, 4, Assoc::Full);
        a.fill(1);
        a.fill(2);
        assert!(a.invalidate(1));
        assert!(!a.invalidate(1));
        assert!(a.probe(2));
    }

    #[test]
    fn coverage_matches_table1_arithmetic() {
        // Xeon DTLB: 128 × 4 KB = 512 KB; 32 × 2 MB = 64 MB.
        let small = TlbArray::new(PageSize::Small4K, 128, Assoc::Full);
        let large = TlbArray::new(PageSize::Large2M, 32, Assoc::Full);
        assert_eq!(small.coverage_bytes(), 512 * 1024);
        assert_eq!(large.coverage_bytes(), 64 * 1024 * 1024);
    }

    #[test]
    fn miss_ratio_computation() {
        let mut a = TlbArray::new(PageSize::Small4K, 2, Assoc::Full);
        a.lookup(1); // miss
        a.fill(1);
        a.lookup(1); // hit
        assert!((a.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_ways_config_panics() {
        TlbArray::new(PageSize::Small4K, 10, Assoc::Ways(4));
    }
}
