//! Multi-level TLB hierarchies and the split instruction/data TLB.
//!
//! A [`Tlb`] is one or two levels of [`TlbArray`]s — one array per rung of
//! the translation architecture's page-size ladder per level. Lookups probe
//! every size array of a level in parallel — hardware does not know the
//! page size of an address until it hits or walks — then fall through to
//! the next level; an L2 hit promotes the entry into L1. This mirrors the
//! Opteron's two-level DTLB, whose L2 notably has **no 2 MB entries**
//! (paper §3.2), so large-page translations live only in the 8-entry L1
//! array. On ladders with more rungs (modern x86-64 with 1 GB pages, ARM64
//! granule/contiguous-block ladders) the same structure simply grows more
//! arrays per level.

use crate::array::{ArrayStats, Assoc, TlbArray};
use lpomp_vm::{Arch, MMArch, PageSize, VirtAddr, MAX_LADDER};

/// Geometry of one TLB entry array: entry count and associativity for one
/// ladder rung.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeSlot {
    /// Entry count (may be zero: the rung has no array at this level).
    pub entries: u16,
    /// Associativity of the array.
    pub assoc: Assoc,
}

impl SizeSlot {
    /// No entries for this rung at this level.
    pub const NONE: SizeSlot = SizeSlot {
        entries: 0,
        assoc: Assoc::Full,
    };

    /// Fully associative array of `entries` entries.
    pub const fn full(entries: u16) -> Self {
        SizeSlot {
            entries,
            assoc: Assoc::Full,
        }
    }

    /// `ways`-way set-associative array of `entries` entries.
    pub const fn ways(entries: u16, ways: u16) -> Self {
        SizeSlot {
            entries,
            assoc: Assoc::Ways(ways),
        }
    }
}

/// Geometry of one TLB level: one [`SizeSlot`] per ladder rank. Ranks past
/// the architecture's ladder length are ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelConfig {
    /// Per-rank geometry, indexed by ladder rank (rank 0 = base pages).
    pub slots: [SizeSlot; MAX_LADDER],
}

impl LevelConfig {
    /// Convenience for the classic two-size shape: fully associative
    /// arrays for rank 0 (4 KB) and rank 1 (2 MB), nothing above.
    pub const fn full(small_entries: u16, large_entries: u16) -> Self {
        LevelConfig {
            slots: [
                SizeSlot::full(small_entries),
                SizeSlot::full(large_entries),
                SizeSlot::NONE,
                SizeSlot::NONE,
            ],
        }
    }

    /// A level from explicit per-rank slots.
    pub const fn per_rank(slots: [SizeSlot; MAX_LADDER]) -> Self {
        LevelConfig { slots }
    }

    /// Geometry for one ladder rank.
    pub fn slot(&self, rank: usize) -> SizeSlot {
        self.slots[rank]
    }

    /// Entry count for a ladder rank.
    pub fn entries_at(&self, rank: usize) -> u16 {
        self.slots[rank].entries
    }

    /// Reach of this level for the rung at `rank` (entries × page bytes).
    pub fn coverage_at(&self, rank: usize, size: PageSize) -> u64 {
        self.entries_at(rank) as u64 * size.bytes()
    }
}

/// Geometry of a complete (possibly multi-level) TLB, tied to the
/// translation architecture whose ladder indexes its per-rank slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Human-readable name ("Opteron DTLB").
    pub name: &'static str,
    /// Translation architecture whose ladder this geometry is indexed by.
    pub arch: Arch,
    /// L1 geometry.
    pub l1: LevelConfig,
    /// Optional L2 geometry.
    pub l2: Option<LevelConfig>,
}

impl TlbConfig {
    /// Reach of the *last* level holding entries of `size` — the "memory
    /// coverage" quantity of the paper's Table 1, generalized to any rung
    /// of the architecture's ladder. Zero for sizes outside the ladder.
    pub fn coverage_bytes(&self, size: PageSize) -> u64 {
        let Some(rank) = self.arch.rank_of(size) else {
            return 0;
        };
        match self.l2 {
            Some(l2) if l2.entries_at(rank) > 0 => l2.coverage_at(rank, size),
            _ => self.l1.coverage_at(rank, size),
        }
    }
}

/// Where a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the first level.
    L1Hit(PageSize),
    /// Missed L1, hit L2 (entry promoted to L1).
    L2Hit(PageSize),
    /// Missed every level; a page walk is required.
    Miss,
}

impl TlbOutcome {
    /// True unless a walk is required.
    pub fn is_hit(&self) -> bool {
        !matches!(self, TlbOutcome::Miss)
    }
}

/// Aggregate counters for a [`Tlb`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (L1 misses that L2 absorbed).
    pub l2_hits: u64,
    /// Full misses (walks).
    pub misses: u64,
    /// Fills performed after walks.
    pub fills: u64,
    /// Whole-TLB flushes.
    pub flushes: u64,
    /// Fills that evicted an entry belonging to a *different* ASID —
    /// the cross-tenant interference signal. Always zero while only one
    /// ASID is in use.
    pub cross_asid_evictions: u64,
}

impl TlbStats {
    /// All lookups.
    pub fn lookups(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.misses
    }

    /// Full-miss ratio in [0, 1].
    pub fn miss_ratio(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

/// One level's per-rung arrays, indexed by ladder rank.
#[derive(Debug)]
struct Level {
    arrays: Vec<TlbArray>,
}

impl Level {
    fn new(cfg: &LevelConfig, arch: Arch) -> Self {
        Level {
            arrays: arch
                .ladder()
                .iter()
                .enumerate()
                .map(|(rank, rung)| {
                    let s = cfg.slot(rank);
                    TlbArray::new(rung.size, s.entries, s.assoc)
                })
                .collect(),
        }
    }

    fn array(&self, size: PageSize) -> &TlbArray {
        self.arrays
            .iter()
            .find(|a| a.page_size() == size)
            .unwrap_or_else(|| panic!("page size {size} is not a rung of this TLB's ladder"))
    }

    fn array_mut(&mut self, size: PageSize) -> &mut TlbArray {
        self.arrays
            .iter_mut()
            .find(|a| a.page_size() == size)
            .unwrap_or_else(|| panic!("page size {size} is not a rung of this TLB's ladder"))
    }

    /// Non-mutating twin of [`Level::lookup`]: same probe order
    /// (ascending ladder rank), no LRU movement, no stats.
    fn peek(&self, va: VirtAddr, tag: u64) -> Option<PageSize> {
        self.arrays
            .iter()
            .find(|a| a.probe(va.vpn(a.page_size()) | tag))
            .map(|a| a.page_size())
    }

    /// Probe every size array for the address; returns the hitting size.
    fn lookup(&mut self, va: VirtAddr, tag: u64) -> Option<PageSize> {
        // Hardware probes all arrays concurrently; to keep the LRU state of
        // the miss path realistic we only update the array that hits, so
        // probe first (ascending rank) and promote second.
        match self
            .arrays
            .iter()
            .position(|a| a.probe(va.vpn(a.page_size()) | tag))
        {
            Some(i) => {
                let size = self.arrays[i].page_size();
                self.arrays[i].lookup(va.vpn(size) | tag);
                Some(size)
            }
            None => {
                // Record the miss in every array's local stats.
                for a in &mut self.arrays {
                    a.lookup(va.vpn(a.page_size()) | tag);
                }
                None
            }
        }
    }

    fn flush(&mut self) {
        for a in &mut self.arrays {
            a.flush();
        }
    }
}

/// Bit position where the ASID tag joins the VPN in an entry key.
/// Simulated virtual addresses stay far below 2^48 (the mmap region
/// starts at 2^32 and heaps are megabytes), so VPNs never reach bit 48
/// for either page size and the tag cannot collide with address bits.
pub const ASID_SHIFT: u32 = 48;
const TAG_MASK: u64 = !0u64 << ASID_SHIFT;

/// A complete one- or two-level TLB.
///
/// Entries are tagged with the [ASID](Tlb::set_asid) that was current
/// when they were filled, PCID-style: lookups only match entries of the
/// current ASID, so a context switch that *changes* the ASID hides (but
/// preserves) the previous tenant's translations, while untagged
/// hardware is modelled by keeping ASID 0 and [flushing](Tlb::flush) on
/// every switch.
#[derive(Debug)]
pub struct Tlb {
    config: TlbConfig,
    l1: Level,
    l2: Option<Level>,
    stats: TlbStats,
    /// Current ASID, pre-shifted to the tag position.
    tag: u64,
    /// Bumped by every operation that removes entries ([`flush`] /
    /// [`invalidate`]). Callers caching "this translation is resident"
    /// facts outside the TLB (the machine's last-translation micro-TLB)
    /// compare generations to find out their cache is stale.
    ///
    /// [`flush`]: Tlb::flush
    /// [`invalidate`]: Tlb::invalidate
    generation: u64,
}

impl Tlb {
    /// Instantiate a TLB from its geometry (the geometry names its
    /// translation architecture, which fixes the per-level array set).
    pub fn new(config: TlbConfig) -> Self {
        Tlb {
            l1: Level::new(&config.l1, config.arch),
            l2: config.l2.as_ref().map(|l| Level::new(l, config.arch)),
            config,
            stats: TlbStats::default(),
            tag: 0,
            generation: 0,
        }
    }

    /// Set the current address-space identifier. Entries filled under
    /// other ASIDs stay resident (occupying capacity, visible to
    /// [`TlbStats::cross_asid_evictions`]) but stop matching lookups.
    #[inline]
    pub fn set_asid(&mut self, asid: u16) {
        self.tag = u64::from(asid) << ASID_SHIFT;
    }

    /// The current ASID.
    #[inline]
    pub fn asid(&self) -> u16 {
        (self.tag >> ASID_SHIFT) as u16
    }

    /// Count a fill's eviction against the interference stat when the
    /// victim belonged to a different ASID.
    #[inline]
    fn note_eviction(stats: &mut TlbStats, tag: u64, evicted: Option<u64>) {
        if let Some(key) = evicted {
            if key & TAG_MASK != tag {
                stats.cross_asid_evictions += 1;
            }
        }
    }

    /// Invalidation epoch: changes whenever [`flush`] or [`invalidate`]
    /// may have removed an entry. See the `generation` field.
    ///
    /// [`flush`]: Tlb::flush
    /// [`invalidate`]: Tlb::invalidate
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The geometry this TLB was built from.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Per-array statistics: `(level, page size, stats)` tuples, in
    /// ascending ladder-rank order within each level.
    pub fn array_stats(&self) -> Vec<(u8, PageSize, ArrayStats)> {
        let mut v: Vec<_> = self
            .l1
            .arrays
            .iter()
            .map(|a| (1, a.page_size(), a.stats()))
            .collect();
        if let Some(l2) = &self.l2 {
            v.extend(l2.arrays.iter().map(|a| (2, a.page_size(), a.stats())));
        }
        v
    }

    /// Translate-lookup for `va`. On an L2 hit the entry is promoted into
    /// L1 (possibly evicting an L1 entry).
    pub fn lookup(&mut self, va: VirtAddr) -> TlbOutcome {
        if let Some(size) = self.l1.lookup(va, self.tag) {
            self.stats.l1_hits += 1;
            return TlbOutcome::L1Hit(size);
        }
        if let Some(l2) = &mut self.l2 {
            if let Some(size) = l2.lookup(va, self.tag) {
                self.stats.l2_hits += 1;
                let evicted = self.l1.array_mut(size).fill(va.vpn(size) | self.tag);
                Self::note_eviction(&mut self.stats, self.tag, evicted);
                return TlbOutcome::L2Hit(size);
            }
        }
        self.stats.misses += 1;
        TlbOutcome::Miss
    }

    /// Non-mutating twin of [`lookup`]: what a lookup *would* return,
    /// with no LRU reordering, no L2→L1 promotion and no stats. (An
    /// `L2Hit` answer therefore describes the lookup's outcome, not its
    /// side effects.)
    ///
    /// [`lookup`]: Tlb::lookup
    pub fn peek(&self, va: VirtAddr) -> TlbOutcome {
        if let Some(size) = self.l1.peek(va, self.tag) {
            return TlbOutcome::L1Hit(size);
        }
        if let Some(l2) = &self.l2 {
            if let Some(size) = l2.peek(va, self.tag) {
                return TlbOutcome::L2Hit(size);
            }
        }
        TlbOutcome::Miss
    }

    /// True when `va`'s translation of `size` is the most-recently-used
    /// entry of its L1 set — the precondition for
    /// [`record_l1_hit_bypass`].
    ///
    /// [`record_l1_hit_bypass`]: Tlb::record_l1_hit_bypass
    #[inline]
    pub fn l1_is_mru(&self, va: VirtAddr, size: PageSize) -> bool {
        self.l1.array(size).is_mru(va.vpn(size) | self.tag)
    }

    /// Record an L1 hit of `size` without performing the lookup.
    ///
    /// The fast-path contract (enforced by the caller, checked by debug
    /// assertions against [`peek`] / [`l1_is_mru`]): the entry is
    /// resident in L1 and already MRU, and no other array would have
    /// answered first — so a real [`lookup`] would return `L1Hit(size)`
    /// and change nothing but the hit counters. This method applies
    /// exactly those counter updates ([`TlbStats::l1_hits`] and the
    /// array's [`ArrayStats::hits`]) in O(1).
    ///
    /// [`peek`]: Tlb::peek
    /// [`l1_is_mru`]: Tlb::l1_is_mru
    /// [`lookup`]: Tlb::lookup
    #[inline]
    pub fn record_l1_hit_bypass(&mut self, size: PageSize) {
        self.stats.l1_hits += 1;
        self.l1.array_mut(size).record_hit_bypass();
    }

    /// Install a translation after a page walk determined its size.
    /// Fills L1 and, when the level has entries for the size, L2.
    pub fn fill(&mut self, va: VirtAddr, size: PageSize) {
        self.stats.fills += 1;
        let key = va.vpn(size) | self.tag;
        let evicted = self.l1.array_mut(size).fill(key);
        Self::note_eviction(&mut self.stats, self.tag, evicted);
        if let Some(l2) = &mut self.l2 {
            let evicted = l2.array_mut(size).fill(key);
            Self::note_eviction(&mut self.stats, self.tag, evicted);
        }
    }

    /// Invalidate everything (context switch with address-space change).
    pub fn flush(&mut self) {
        self.l1.flush();
        if let Some(l2) = &mut self.l2 {
            l2.flush();
        }
        self.stats.flushes += 1;
        self.generation += 1;
    }

    /// Invalidate one translation of the *current* ASID (munmap /
    /// protection change; invlpg is ASID-scoped on PCID hardware).
    pub fn invalidate(&mut self, va: VirtAddr, size: PageSize) {
        let key = va.vpn(size) | self.tag;
        self.l1.array_mut(size).invalidate(key);
        if let Some(l2) = &mut self.l2 {
            l2.array_mut(size).invalidate(key);
        }
        self.generation += 1;
    }
}

/// A split instruction/data TLB, as on every platform in the paper.
#[derive(Debug)]
pub struct SplitTlb {
    /// Instruction-side TLB.
    pub itlb: Tlb,
    /// Data-side TLB.
    pub dtlb: Tlb,
}

impl SplitTlb {
    /// Build from the two geometries.
    pub fn new(itlb: TlbConfig, dtlb: TlbConfig) -> Self {
        SplitTlb {
            itlb: Tlb::new(itlb),
            dtlb: Tlb::new(dtlb),
        }
    }

    /// Flush both sides.
    pub fn flush(&mut self) {
        self.itlb.flush();
        self.dtlb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level() -> Tlb {
        Tlb::new(TlbConfig {
            name: "test",
            arch: Arch::X86_64_2007,
            l1: LevelConfig::full(2, 1),
            l2: Some(LevelConfig::full(8, 0)),
        })
    }

    #[test]
    fn miss_then_fill_then_l1_hit() {
        let mut t = two_level();
        let va = VirtAddr(0x1234);
        assert_eq!(t.lookup(va), TlbOutcome::Miss);
        t.fill(va, PageSize::Small4K);
        assert_eq!(t.lookup(va), TlbOutcome::L1Hit(PageSize::Small4K));
        // Same 4 KB page, different offset: still a hit.
        assert_eq!(
            t.lookup(VirtAddr(0x1ff0)),
            TlbOutcome::L1Hit(PageSize::Small4K)
        );
        // Different 4 KB page: miss.
        assert_eq!(t.lookup(VirtAddr(0x2000)), TlbOutcome::Miss);
    }

    #[test]
    fn l2_absorbs_l1_capacity_misses_and_promotes() {
        let mut t = two_level();
        // Fill three distinct small pages; L1 holds 2, L2 holds all.
        for p in 0..3u64 {
            let va = VirtAddr(p * 4096);
            t.lookup(va);
            t.fill(va, PageSize::Small4K);
        }
        // Page 0 was evicted from L1 (capacity 2) but lives in L2.
        assert_eq!(t.lookup(VirtAddr(0)), TlbOutcome::L2Hit(PageSize::Small4K));
        // And is now promoted back into L1.
        assert_eq!(t.lookup(VirtAddr(0)), TlbOutcome::L1Hit(PageSize::Small4K));
    }

    #[test]
    fn large_pages_do_not_reach_l2_when_it_has_no_large_entries() {
        // Opteron-like: L2 has zero 2 MB entries, L1 has 1.
        let mut t = two_level();
        let a = VirtAddr(0);
        let b = VirtAddr(2 * 1024 * 1024);
        t.lookup(a);
        t.fill(a, PageSize::Large2M);
        t.lookup(b);
        t.fill(b, PageSize::Large2M); // evicts `a` from the only L1 slot
                                      // `a` must be a full miss: no L2 backing for large pages.
        assert_eq!(t.lookup(a), TlbOutcome::Miss);
    }

    #[test]
    fn one_large_entry_covers_512_small_pages_worth() {
        let mut t = two_level();
        let base = VirtAddr(0x4000_0000);
        t.lookup(base);
        t.fill(base, PageSize::Large2M);
        // Every 4 KB-aligned offset within the 2 MB page hits.
        for k in [0u64, 1, 100, 511] {
            assert_eq!(
                t.lookup(base.add(k * 4096)),
                TlbOutcome::L1Hit(PageSize::Large2M),
                "offset {k}"
            );
        }
    }

    #[test]
    fn flush_forces_full_misses() {
        let mut t = two_level();
        let va = VirtAddr(0x9000);
        t.lookup(va);
        t.fill(va, PageSize::Small4K);
        t.flush();
        assert_eq!(t.lookup(va), TlbOutcome::Miss);
        assert_eq!(t.stats().flushes, 1);
    }

    #[test]
    fn invalidate_one_translation() {
        let mut t = two_level();
        let va = VirtAddr(0x9000);
        t.lookup(va);
        t.fill(va, PageSize::Small4K);
        t.invalidate(va, PageSize::Small4K);
        assert_eq!(t.lookup(va), TlbOutcome::Miss);
    }

    #[test]
    fn stats_accumulate() {
        let mut t = two_level();
        let va = VirtAddr(0x1000);
        t.lookup(va); // miss
        t.fill(va, PageSize::Small4K);
        t.lookup(va); // l1 hit
        let s = t.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.fills, 1);
        assert_eq!(s.lookups(), 2);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coverage_uses_last_level_with_entries() {
        let cfg = TlbConfig {
            name: "opteron-ish",
            arch: Arch::X86_64_2007,
            l1: LevelConfig::full(32, 8),
            l2: Some(LevelConfig::per_rank([
                SizeSlot::ways(1024, 4),
                SizeSlot::NONE,
                SizeSlot::NONE,
                SizeSlot::NONE,
            ])),
        };
        assert_eq!(cfg.coverage_bytes(PageSize::Small4K), 1024 * 4096);
        // Large pages fall back to L1 coverage: 8 × 2 MB = 16 MB (Table 1).
        assert_eq!(cfg.coverage_bytes(PageSize::Large2M), 16 * 1024 * 1024);
    }

    #[test]
    fn per_size_coverage_generalizes_to_a_three_rung_ladder() {
        // Satellite regression: a modern three-rung ladder (4 KB / 2 MB /
        // 1 GB) must report per-size coverage from the right level and
        // return zero for sizes outside the ladder.
        let cfg = TlbConfig {
            name: "modern-ish",
            arch: Arch::X86_64_MODERN,
            l1: LevelConfig::per_rank([
                SizeSlot::full(64),
                SizeSlot::full(32),
                SizeSlot::full(4),
                SizeSlot::NONE,
            ]),
            l2: Some(LevelConfig::per_rank([
                SizeSlot::ways(1024, 8),
                SizeSlot::ways(256, 8),
                SizeSlot::NONE, // 1 GB entries live only in L1
                SizeSlot::NONE,
            ])),
        };
        assert_eq!(cfg.coverage_bytes(PageSize::Small4K), 1024 * 4096);
        assert_eq!(cfg.coverage_bytes(PageSize::Large2M), 256 * 2 * 1024 * 1024);
        assert_eq!(
            cfg.coverage_bytes(PageSize::Page1G),
            4 * 1024 * 1024 * 1024u64,
            "1 GB rung falls back to its L1 array"
        );
        assert_eq!(
            cfg.coverage_bytes(PageSize::Page64K),
            0,
            "64 KB is not an x86-64 rung"
        );
    }

    #[test]
    fn three_rung_tlb_hits_on_every_rung() {
        let mut t = Tlb::new(TlbConfig {
            name: "modern",
            arch: Arch::X86_64_MODERN,
            l1: LevelConfig::per_rank([
                SizeSlot::full(2),
                SizeSlot::full(2),
                SizeSlot::full(2),
                SizeSlot::NONE,
            ]),
            l2: None,
        });
        let cases = [
            (VirtAddr(0x1000), PageSize::Small4K),
            (VirtAddr(0x20_0000), PageSize::Large2M),
            (VirtAddr(1u64 << 30), PageSize::Page1G),
        ];
        for (va, size) in cases {
            assert_eq!(t.lookup(va), TlbOutcome::Miss);
            t.fill(va, size);
            assert_eq!(t.lookup(va), TlbOutcome::L1Hit(size));
        }
        // One 1 GB entry covers any offset inside the gigabyte.
        assert_eq!(
            t.lookup(VirtAddr((1u64 << 30) + 123 * 4096)),
            TlbOutcome::L1Hit(PageSize::Page1G)
        );
    }

    #[test]
    fn peek_matches_lookup_without_side_effects() {
        let mut t = two_level();
        let va = VirtAddr(0x3000);
        assert_eq!(t.peek(va), TlbOutcome::Miss);
        t.lookup(va);
        t.fill(va, PageSize::Small4K);
        let stats_before = t.stats();
        assert_eq!(t.peek(va), TlbOutcome::L1Hit(PageSize::Small4K));
        assert_eq!(t.peek(va), TlbOutcome::L1Hit(PageSize::Small4K));
        assert_eq!(t.stats(), stats_before, "peek must not count");
        // Evict from L1 (capacity 2 small entries) but keep in L2.
        for p in 1..3u64 {
            let v = VirtAddr(0x3000 + p * 4096);
            t.lookup(v);
            t.fill(v, PageSize::Small4K);
        }
        assert_eq!(t.peek(va), TlbOutcome::L2Hit(PageSize::Small4K));
        // peek performed no promotion: still an L2 answer.
        assert_eq!(t.peek(va), TlbOutcome::L2Hit(PageSize::Small4K));
    }

    #[test]
    fn bypass_hit_recording_equals_real_lookup() {
        // Two TLBs driven identically, except one records repeat hits of
        // the MRU entry through the bypass: stats and eviction behaviour
        // must stay identical.
        let mut real = two_level();
        let mut fast = two_level();
        let va = VirtAddr(0x7000);
        for t in [&mut real, &mut fast] {
            t.lookup(va);
            t.fill(va, PageSize::Small4K);
        }
        for _ in 0..5 {
            assert_eq!(real.lookup(va), TlbOutcome::L1Hit(PageSize::Small4K));
            assert!(fast.l1_is_mru(va, PageSize::Small4K));
            fast.record_l1_hit_bypass(PageSize::Small4K);
        }
        assert_eq!(real.stats(), fast.stats());
        assert_eq!(real.array_stats(), fast.array_stats());
        // Future behaviour identical: fill pressure evicts the same way.
        for p in 1..3u64 {
            let v = VirtAddr(0x7000 + p * 4096);
            for t in [&mut real, &mut fast] {
                t.lookup(v);
                t.fill(v, PageSize::Small4K);
            }
        }
        assert_eq!(real.peek(va), fast.peek(va));
    }

    #[test]
    fn generation_changes_only_on_invalidation() {
        let mut t = two_level();
        let g0 = t.generation();
        let va = VirtAddr(0x9000);
        t.lookup(va);
        t.fill(va, PageSize::Small4K);
        t.lookup(va);
        assert_eq!(t.generation(), g0, "lookups and fills keep generation");
        t.invalidate(va, PageSize::Small4K);
        let g1 = t.generation();
        assert_ne!(g1, g0);
        t.flush();
        assert_ne!(t.generation(), g1);
    }

    #[test]
    fn asid_switch_hides_but_preserves_entries() {
        let mut t = two_level();
        let va = VirtAddr(0x5000);
        t.lookup(va);
        t.fill(va, PageSize::Small4K);
        assert_eq!(t.lookup(va), TlbOutcome::L1Hit(PageSize::Small4K));
        // Another tenant's ASID: same VA must not match.
        t.set_asid(7);
        assert_eq!(t.asid(), 7);
        assert_eq!(t.peek(va), TlbOutcome::Miss);
        assert_eq!(t.lookup(va), TlbOutcome::Miss);
        // Switching back finds the original entry still resident.
        t.set_asid(0);
        assert_eq!(t.lookup(va), TlbOutcome::L1Hit(PageSize::Small4K));
    }

    #[test]
    fn flush_clears_every_asid() {
        let mut t = two_level();
        let va = VirtAddr(0x5000);
        t.lookup(va);
        t.fill(va, PageSize::Small4K);
        t.set_asid(3);
        t.lookup(va);
        t.fill(va, PageSize::Small4K);
        t.flush(); // non-PCID global flush: both tenants' entries go
        assert_eq!(t.lookup(va), TlbOutcome::Miss);
        t.set_asid(0);
        assert_eq!(t.lookup(va), TlbOutcome::Miss);
    }

    #[test]
    fn cross_asid_evictions_are_counted() {
        // L1 small capacity is 2 and L2 has 8 entries; two tenants
        // fighting over L1 slots must trip the interference stat.
        let mut t = two_level();
        for p in 0..2u64 {
            let va = VirtAddr(p * 4096);
            t.lookup(va);
            t.fill(va, PageSize::Small4K);
        }
        assert_eq!(t.stats().cross_asid_evictions, 0);
        t.set_asid(1);
        for p in 0..2u64 {
            let va = VirtAddr(p * 4096);
            t.lookup(va);
            t.fill(va, PageSize::Small4K);
        }
        assert!(
            t.stats().cross_asid_evictions > 0,
            "tenant 1 filled over tenant 0's entries: {:?}",
            t.stats()
        );
        // Same-ASID capacity pressure never counts.
        let before = t.stats().cross_asid_evictions;
        for p in 2..6u64 {
            let va = VirtAddr(p * 4096);
            t.lookup(va);
            t.fill(va, PageSize::Small4K);
        }
        let evictions_now = t.stats().cross_asid_evictions;
        // Later same-ASID fills may still evict tenant 0 leftovers, but
        // re-filling tenant 1's own working set repeatedly must not add.
        for _ in 0..3 {
            for p in 2..6u64 {
                let va = VirtAddr(p * 4096);
                t.lookup(va);
                t.fill(va, PageSize::Small4K);
            }
        }
        assert_eq!(t.stats().cross_asid_evictions, evictions_now);
        assert!(evictions_now >= before);
    }

    #[test]
    fn asid_zero_behaviour_matches_untagged() {
        // Driving a TLB without ever touching set_asid must behave as
        // before tagging existed: keys are plain VPNs (tag 0).
        let mut t = two_level();
        let va = VirtAddr(0x1234);
        assert_eq!(t.lookup(va), TlbOutcome::Miss);
        t.fill(va, PageSize::Small4K);
        assert_eq!(t.lookup(va), TlbOutcome::L1Hit(PageSize::Small4K));
        assert_eq!(t.stats().cross_asid_evictions, 0);
    }

    #[test]
    fn split_tlb_sides_are_independent() {
        let cfg = TlbConfig {
            name: "t",
            arch: Arch::X86_64_2007,
            l1: LevelConfig::full(4, 2),
            l2: None,
        };
        let mut s = SplitTlb::new(cfg.clone(), cfg);
        let va = VirtAddr(0x5000);
        s.itlb.lookup(va);
        s.itlb.fill(va, PageSize::Small4K);
        assert_eq!(s.itlb.lookup(va), TlbOutcome::L1Hit(PageSize::Small4K));
        assert_eq!(s.dtlb.lookup(va), TlbOutcome::Miss);
    }
}
