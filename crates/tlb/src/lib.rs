//! # `lpomp-tlb` — translation lookaside buffer simulator
//!
//! Structural models of the TLBs on the paper's two platforms:
//!
//! * [`mod@array`] — a single entry array (one page size), fully or
//!   set-associative, true LRU;
//! * [`hierarchy`] — one- and two-level TLBs with one entry array per rung
//!   of the translation architecture's page-size ladder, L2→L1 promotion,
//!   and a split I/D wrapper;
//! * [`presets`] — the Xeon and Opteron 270 geometries of the paper's
//!   Table 1 (including the reach/"coverage" computation and the table
//!   regeneration used by `lpomp-bench --bin table1`), plus modern-x86 and
//!   ARM64 extension geometries.
//!
//! The machine model (`lpomp-machine`) owns one [`SplitTlb`] per core; on
//! the Xeon preset the *same* instance serves both SMT contexts, modelling
//! the §3.2 observation that hyper-threading effectively halves the number
//! of TLB entries available to each thread.

#![warn(missing_docs)]

pub mod array;
pub mod hierarchy;
pub mod presets;

pub use array::{ArrayStats, Assoc, TlbArray};
pub use hierarchy::{
    LevelConfig, SizeSlot, SplitTlb, Tlb, TlbConfig, TlbOutcome, TlbStats, ASID_SHIFT,
};
pub use presets::{
    default_tlbs, table1, Table1Row, ARM64_16K_DTLB, ARM64_16K_ITLB, ARM64_4K_DTLB, ARM64_4K_ITLB,
    MODERN_X86_DTLB, MODERN_X86_ITLB, OPTERON_DTLB, OPTERON_ITLB, XEON_DTLB, XEON_ITLB,
};
