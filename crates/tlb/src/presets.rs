//! TLB geometries of the paper's two evaluation platforms (its Table 1).
//!
//! The numbers follow the paper's prose, which is the most explicit source
//! (§2.1 and §3.2):
//!
//! * *"The Intel Xeon processor has 128 entries for 4KB pages and 32
//!   entries for 2MB pages"* — a single-level DTLB (and ITLB, which the
//!   paper treats symmetrically).
//! * *"the Opteron processor has 32 entries for 4KB pages in L1DTLB and 8
//!   entries for 2MB pages in D1TLB. The D2TLB in the Opteron does not
//!   have any entries for large pages"*; *"an L2DTLB size of 1024 for 4KB
//!   pages"*.
//!
//! The printed Table 1 in the paper is partially garbled by typesetting;
//! where it conflicts with the prose we follow the prose and record the
//! discrepancy in `EXPERIMENTS.md`. The derived coverage values reproduce
//! the table's legible coverage rows exactly: Xeon 4 KB DTLB reach 512 KB
//! and 2 MB reach 64 MB; Opteron 2 MB reach 16 MB.

use crate::array::Assoc;
use crate::hierarchy::{LevelConfig, TlbConfig};
use lpomp_vm::PageSize;

/// Intel Xeon (Netburst, HyperThreading) data TLB: single level,
/// 128 × 4 KB + 32 × 2 MB, fully associative, **shared between the two SMT
/// contexts of a core** (sharing is applied by the machine model).
pub const XEON_DTLB: TlbConfig = TlbConfig {
    name: "Xeon DTLB",
    l1: LevelConfig {
        small_entries: 128,
        small_assoc: Assoc::Full,
        large_entries: 32,
        large_assoc: Assoc::Full,
    },
    l2: None,
};

/// Intel Xeon instruction TLB. The paper's ITLB row is garbled; we mirror
/// the DTLB geometry, which is immaterial to its conclusions because §4.3
/// finds ITLB misses negligible either way.
pub const XEON_ITLB: TlbConfig = TlbConfig {
    name: "Xeon ITLB",
    l1: LevelConfig {
        small_entries: 128,
        small_assoc: Assoc::Full,
        large_entries: 32,
        large_assoc: Assoc::Full,
    },
    l2: None,
};

/// AMD Opteron 270 data TLB: L1 32 × 4 KB + 8 × 2 MB fully associative,
/// L2 1024 × 4 KB 4-way with **zero 2 MB entries** (paper §3.2). Private
/// per core.
pub const OPTERON_DTLB: TlbConfig = TlbConfig {
    name: "Opteron DTLB",
    l1: LevelConfig {
        small_entries: 32,
        small_assoc: Assoc::Full,
        large_entries: 8,
        large_assoc: Assoc::Full,
    },
    l2: Some(LevelConfig {
        small_entries: 1024,
        small_assoc: Assoc::Ways(4),
        large_entries: 0,
        large_assoc: Assoc::Full,
    }),
};

/// AMD Opteron 270 instruction TLB: L1 32 × 4 KB + 8 × 2 MB, L2 512 × 4 KB.
pub const OPTERON_ITLB: TlbConfig = TlbConfig {
    name: "Opteron ITLB",
    l1: LevelConfig {
        small_entries: 32,
        small_assoc: Assoc::Full,
        large_entries: 8,
        large_assoc: Assoc::Full,
    },
    l2: Some(LevelConfig {
        small_entries: 512,
        small_assoc: Assoc::Ways(4),
        large_entries: 0,
        large_assoc: Assoc::Full,
    }),
};

/// One row of the reproduced Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// Row label, matching the paper.
    pub label: &'static str,
    /// Xeon cell (entries, or bytes for coverage rows).
    pub xeon: u64,
    /// Opteron cell.
    pub opteron: u64,
    /// True when the cells are byte counts rather than entry counts.
    pub is_bytes: bool,
}

/// Reproduce the paper's Table 1 ("Processor TLB Sizes and Coverage") from
/// the preset geometries.
pub fn table1() -> Vec<Table1Row> {
    let x = &XEON_DTLB;
    let o = &OPTERON_DTLB;
    let xi = &XEON_ITLB;
    let oi = &OPTERON_ITLB;
    vec![
        Table1Row {
            label: "ITLB (4KB) Size",
            xeon: xi.l1.small_entries as u64,
            opteron: oi.l1.small_entries as u64,
            is_bytes: false,
        },
        Table1Row {
            label: "L1DTLB (4KB) Size",
            xeon: x.l1.small_entries as u64,
            opteron: o.l1.small_entries as u64,
            is_bytes: false,
        },
        Table1Row {
            label: "L1DTLB (2MB) Size",
            xeon: x.l1.large_entries as u64,
            opteron: o.l1.large_entries as u64,
            is_bytes: false,
        },
        Table1Row {
            label: "L2DTLB (4KB) Size",
            xeon: x.l2.map_or(0, |l| l.small_entries as u64),
            opteron: o.l2.map_or(0, |l| l.small_entries as u64),
            is_bytes: false,
        },
        Table1Row {
            label: "L2DTLB (2MB) Size",
            xeon: x.l2.map_or(0, |l| l.large_entries as u64),
            opteron: o.l2.map_or(0, |l| l.large_entries as u64),
            is_bytes: false,
        },
        Table1Row {
            label: "DTLB (4KB) Coverage",
            xeon: x.coverage_bytes(PageSize::Small4K),
            opteron: o.coverage_bytes(PageSize::Small4K),
            is_bytes: true,
        },
        Table1Row {
            label: "DTLB (2MB) Coverage",
            xeon: x.coverage_bytes(PageSize::Large2M),
            opteron: o.coverage_bytes(PageSize::Large2M),
            is_bytes: true,
        },
    ]
}

/// Format a byte count the way the paper's table does (KB/MB).
pub fn format_bytes(b: u64) -> String {
    const MB: u64 = 1024 * 1024;
    const KB: u64 = 1024;
    if b >= MB && b.is_multiple_of(MB) {
        format!("{}MB", b / MB)
    } else if b >= KB && b.is_multiple_of(KB) {
        format!("{}KB", b / KB)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_coverage_matches_paper_table1() {
        // "L2DTLB (4KB) Coverage 512KB" / "L2DTLB (2MB) Coverage 64MB"
        // (the Xeon has one DTLB level, so its last-level coverage is L1's).
        assert_eq!(XEON_DTLB.coverage_bytes(PageSize::Small4K), 512 * 1024);
        assert_eq!(
            XEON_DTLB.coverage_bytes(PageSize::Large2M),
            64 * 1024 * 1024
        );
    }

    #[test]
    fn opteron_coverage_matches_paper_table1() {
        // 2 MB pages only live in the 8-entry L1: 16 MB reach.
        assert_eq!(
            OPTERON_DTLB.coverage_bytes(PageSize::Large2M),
            16 * 1024 * 1024
        );
        // 4 KB pages reach the 1024-entry L2: 4 MB.
        assert_eq!(
            OPTERON_DTLB.coverage_bytes(PageSize::Small4K),
            4 * 1024 * 1024
        );
    }

    #[test]
    fn opteron_l2_has_no_large_entries() {
        assert_eq!(OPTERON_DTLB.l2.unwrap().large_entries, 0);
        assert_eq!(OPTERON_ITLB.l2.unwrap().large_entries, 0);
    }

    #[test]
    fn table1_has_all_rows() {
        let t = table1();
        assert_eq!(t.len(), 7);
        assert!(t.iter().any(|r| r.label.contains("ITLB")));
        let cov: Vec<_> = t.iter().filter(|r| r.is_bytes).collect();
        assert_eq!(cov.len(), 2);
    }

    #[test]
    fn format_bytes_rendering() {
        assert_eq!(format_bytes(512 * 1024), "512KB");
        assert_eq!(format_bytes(64 * 1024 * 1024), "64MB");
        assert_eq!(format_bytes(100), "100B");
    }

    #[test]
    fn presets_instantiate() {
        use crate::hierarchy::Tlb;
        for cfg in [XEON_DTLB, XEON_ITLB, OPTERON_DTLB, OPTERON_ITLB] {
            let t = Tlb::new(cfg);
            assert!(!t.config().name.is_empty());
        }
    }
}
