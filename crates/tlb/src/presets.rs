//! TLB geometries of the paper's two evaluation platforms (its Table 1),
//! plus extension geometries for the modern-x86 and ARM64 translation
//! architectures.
//!
//! The 2007 numbers follow the paper's prose, which is the most explicit
//! source (§2.1 and §3.2):
//!
//! * *"The Intel Xeon processor has 128 entries for 4KB pages and 32
//!   entries for 2MB pages"* — a single-level DTLB (and ITLB, which the
//!   paper treats symmetrically).
//! * *"the Opteron processor has 32 entries for 4KB pages in L1DTLB and 8
//!   entries for 2MB pages in D1TLB. The D2TLB in the Opteron does not
//!   have any entries for large pages"*; *"an L2DTLB size of 1024 for 4KB
//!   pages"*.
//!
//! The printed Table 1 in the paper is partially garbled by typesetting;
//! where it conflicts with the prose we follow the prose and record the
//! discrepancy in `EXPERIMENTS.md`. The derived coverage values reproduce
//! the table's legible coverage rows exactly: Xeon 4 KB DTLB reach 512 KB
//! and 2 MB reach 64 MB; Opteron 2 MB reach 16 MB.
//!
//! The extension geometries are Skylake-class (x86-64 with 1 GB pages and
//! a large second-level TLB — modelled as per-size partitions, since this
//! model keeps one array per rung) and Cortex-A76-class (ARM64, 4 KB and
//! 16 KB granules with contiguous-bit blocks).

use crate::hierarchy::{LevelConfig, SizeSlot, TlbConfig};
use lpomp_vm::{Arch, PageSize};

/// Intel Xeon (Netburst, HyperThreading) data TLB: single level,
/// 128 × 4 KB + 32 × 2 MB, fully associative, **shared between the two SMT
/// contexts of a core** (sharing is applied by the machine model).
pub const XEON_DTLB: TlbConfig = TlbConfig {
    name: "Xeon DTLB",
    arch: Arch::X86_64_2007,
    l1: LevelConfig::full(128, 32),
    l2: None,
};

/// Intel Xeon instruction TLB. The paper's ITLB row is garbled; we mirror
/// the DTLB geometry, which is immaterial to its conclusions because §4.3
/// finds ITLB misses negligible either way.
pub const XEON_ITLB: TlbConfig = TlbConfig {
    name: "Xeon ITLB",
    arch: Arch::X86_64_2007,
    l1: LevelConfig::full(128, 32),
    l2: None,
};

/// AMD Opteron 270 data TLB: L1 32 × 4 KB + 8 × 2 MB fully associative,
/// L2 1024 × 4 KB 4-way with **zero 2 MB entries** (paper §3.2). Private
/// per core.
pub const OPTERON_DTLB: TlbConfig = TlbConfig {
    name: "Opteron DTLB",
    arch: Arch::X86_64_2007,
    l1: LevelConfig::full(32, 8),
    l2: Some(LevelConfig::per_rank([
        SizeSlot::ways(1024, 4),
        SizeSlot::NONE,
        SizeSlot::NONE,
        SizeSlot::NONE,
    ])),
};

/// AMD Opteron 270 instruction TLB: L1 32 × 4 KB + 8 × 2 MB, L2 512 × 4 KB.
pub const OPTERON_ITLB: TlbConfig = TlbConfig {
    name: "Opteron ITLB",
    arch: Arch::X86_64_2007,
    l1: LevelConfig::full(32, 8),
    l2: Some(LevelConfig::per_rank([
        SizeSlot::ways(512, 4),
        SizeSlot::NONE,
        SizeSlot::NONE,
        SizeSlot::NONE,
    ])),
};

/// Modern (Skylake-class) x86-64 data TLB: three-rung ladder with 1 GB
/// pages and a large second-level TLB. The hardware's STLB is shared
/// across 4 KB/2 MB entries; with one array per rung we model it as
/// per-size partitions of comparable reach.
pub const MODERN_X86_DTLB: TlbConfig = TlbConfig {
    name: "Modern x86-64 DTLB",
    arch: Arch::X86_64_MODERN,
    l1: LevelConfig::per_rank([
        SizeSlot::ways(64, 4),
        SizeSlot::ways(32, 4),
        SizeSlot::full(4),
        SizeSlot::NONE,
    ]),
    l2: Some(LevelConfig::per_rank([
        SizeSlot::ways(1024, 8),
        SizeSlot::ways(256, 8),
        SizeSlot::ways(16, 4),
        SizeSlot::NONE,
    ])),
};

/// Modern x86-64 instruction TLB (code rarely uses 1 GB mappings, so the
/// gigabyte rung gets no instruction entries).
pub const MODERN_X86_ITLB: TlbConfig = TlbConfig {
    name: "Modern x86-64 ITLB",
    arch: Arch::X86_64_MODERN,
    l1: LevelConfig::per_rank([
        SizeSlot::ways(128, 8),
        SizeSlot::full(8),
        SizeSlot::NONE,
        SizeSlot::NONE,
    ]),
    l2: Some(LevelConfig::per_rank([
        SizeSlot::ways(1024, 8),
        SizeSlot::ways(256, 8),
        SizeSlot::NONE,
        SizeSlot::NONE,
    ])),
};

/// ARM64 (Cortex-A76-class) data TLB on the 4 KB granule: fully
/// associative L1 micro-TLB backed by a large set-associative L2, with
/// entries for the contiguous-bit 64 KB blocks on their own rung.
pub const ARM64_4K_DTLB: TlbConfig = TlbConfig {
    name: "ARM64-4K DTLB",
    arch: Arch::ARM64_4K,
    l1: LevelConfig::per_rank([
        SizeSlot::full(32),
        SizeSlot::full(8),
        SizeSlot::full(8),
        SizeSlot::NONE,
    ]),
    l2: Some(LevelConfig::per_rank([
        SizeSlot::ways(1024, 4),
        SizeSlot::ways(128, 4),
        SizeSlot::ways(128, 4),
        SizeSlot::NONE,
    ])),
};

/// ARM64 instruction TLB on the 4 KB granule.
pub const ARM64_4K_ITLB: TlbConfig = TlbConfig {
    name: "ARM64-4K ITLB",
    arch: Arch::ARM64_4K,
    l1: LevelConfig::per_rank([
        SizeSlot::full(32),
        SizeSlot::full(8),
        SizeSlot::full(8),
        SizeSlot::NONE,
    ]),
    l2: Some(LevelConfig::per_rank([
        SizeSlot::ways(512, 4),
        SizeSlot::ways(64, 4),
        SizeSlot::ways(64, 4),
        SizeSlot::NONE,
    ])),
};

/// ARM64 data TLB on the 16 KB granule (16 KB base, 2 MB contiguous
/// blocks, 32 MB level-1 blocks).
pub const ARM64_16K_DTLB: TlbConfig = TlbConfig {
    name: "ARM64-16K DTLB",
    arch: Arch::ARM64_16K,
    l1: LevelConfig::per_rank([
        SizeSlot::full(32),
        SizeSlot::full(8),
        SizeSlot::full(8),
        SizeSlot::NONE,
    ]),
    l2: Some(LevelConfig::per_rank([
        SizeSlot::ways(1024, 4),
        SizeSlot::ways(128, 4),
        SizeSlot::ways(64, 4),
        SizeSlot::NONE,
    ])),
};

/// ARM64 instruction TLB on the 16 KB granule.
pub const ARM64_16K_ITLB: TlbConfig = TlbConfig {
    name: "ARM64-16K ITLB",
    arch: Arch::ARM64_16K,
    l1: LevelConfig::per_rank([
        SizeSlot::full(32),
        SizeSlot::full(8),
        SizeSlot::full(8),
        SizeSlot::NONE,
    ]),
    l2: Some(LevelConfig::per_rank([
        SizeSlot::ways(512, 4),
        SizeSlot::ways(64, 4),
        SizeSlot::ways(64, 4),
        SizeSlot::NONE,
    ])),
};

/// The canonical (data, instruction) TLB geometry for each translation
/// architecture — what a builder swaps in when re-equipping a platform
/// with a different architecture. The 2007 x86-64 pair is the Opteron's
/// (the reproduction's reference platform; the Xeon keeps its own
/// geometry by constructing its config directly).
pub fn default_tlbs(arch: Arch) -> (TlbConfig, TlbConfig) {
    match arch {
        Arch::X86_64_2007 => (OPTERON_DTLB, OPTERON_ITLB),
        Arch::X86_64_MODERN => (MODERN_X86_DTLB, MODERN_X86_ITLB),
        Arch::ARM64_4K => (ARM64_4K_DTLB, ARM64_4K_ITLB),
        Arch::ARM64_16K => (ARM64_16K_DTLB, ARM64_16K_ITLB),
    }
}

/// One row of the reproduced Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// Row label, matching the paper.
    pub label: &'static str,
    /// Xeon cell (entries, or bytes for coverage rows).
    pub xeon: u64,
    /// Opteron cell.
    pub opteron: u64,
    /// True when the cells are byte counts rather than entry counts.
    pub is_bytes: bool,
}

/// Reproduce the paper's Table 1 ("Processor TLB Sizes and Coverage") from
/// the preset geometries. Ranks 0 and 1 of the x86-64-2007 ladder are the
/// table's 4 KB and 2 MB rows.
pub fn table1() -> Vec<Table1Row> {
    let x = &XEON_DTLB;
    let o = &OPTERON_DTLB;
    let xi = &XEON_ITLB;
    let oi = &OPTERON_ITLB;
    vec![
        Table1Row {
            label: "ITLB (4KB) Size",
            xeon: xi.l1.entries_at(0) as u64,
            opteron: oi.l1.entries_at(0) as u64,
            is_bytes: false,
        },
        Table1Row {
            label: "L1DTLB (4KB) Size",
            xeon: x.l1.entries_at(0) as u64,
            opteron: o.l1.entries_at(0) as u64,
            is_bytes: false,
        },
        Table1Row {
            label: "L1DTLB (2MB) Size",
            xeon: x.l1.entries_at(1) as u64,
            opteron: o.l1.entries_at(1) as u64,
            is_bytes: false,
        },
        Table1Row {
            label: "L2DTLB (4KB) Size",
            xeon: x.l2.map_or(0, |l| l.entries_at(0) as u64),
            opteron: o.l2.map_or(0, |l| l.entries_at(0) as u64),
            is_bytes: false,
        },
        Table1Row {
            label: "L2DTLB (2MB) Size",
            xeon: x.l2.map_or(0, |l| l.entries_at(1) as u64),
            opteron: o.l2.map_or(0, |l| l.entries_at(1) as u64),
            is_bytes: false,
        },
        Table1Row {
            label: "DTLB (4KB) Coverage",
            xeon: x.coverage_bytes(PageSize::Small4K),
            opteron: o.coverage_bytes(PageSize::Small4K),
            is_bytes: true,
        },
        Table1Row {
            label: "DTLB (2MB) Coverage",
            xeon: x.coverage_bytes(PageSize::Large2M),
            opteron: o.coverage_bytes(PageSize::Large2M),
            is_bytes: true,
        },
    ]
}

/// Format a byte count the way the paper's table does (KB/MB).
pub fn format_bytes(b: u64) -> String {
    const MB: u64 = 1024 * 1024;
    const KB: u64 = 1024;
    if b >= MB && b.is_multiple_of(MB) {
        format!("{}MB", b / MB)
    } else if b >= KB && b.is_multiple_of(KB) {
        format!("{}KB", b / KB)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_coverage_matches_paper_table1() {
        // "L2DTLB (4KB) Coverage 512KB" / "L2DTLB (2MB) Coverage 64MB"
        // (the Xeon has one DTLB level, so its last-level coverage is L1's).
        assert_eq!(XEON_DTLB.coverage_bytes(PageSize::Small4K), 512 * 1024);
        assert_eq!(
            XEON_DTLB.coverage_bytes(PageSize::Large2M),
            64 * 1024 * 1024
        );
    }

    #[test]
    fn opteron_coverage_matches_paper_table1() {
        // 2 MB pages only live in the 8-entry L1: 16 MB reach.
        assert_eq!(
            OPTERON_DTLB.coverage_bytes(PageSize::Large2M),
            16 * 1024 * 1024
        );
        // 4 KB pages reach the 1024-entry L2: 4 MB.
        assert_eq!(
            OPTERON_DTLB.coverage_bytes(PageSize::Small4K),
            4 * 1024 * 1024
        );
    }

    #[test]
    fn opteron_l2_has_no_large_entries() {
        assert_eq!(OPTERON_DTLB.l2.unwrap().entries_at(1), 0);
        assert_eq!(OPTERON_ITLB.l2.unwrap().entries_at(1), 0);
    }

    #[test]
    fn table1_has_all_rows() {
        let t = table1();
        assert_eq!(t.len(), 7);
        assert!(t.iter().any(|r| r.label.contains("ITLB")));
        let cov: Vec<_> = t.iter().filter(|r| r.is_bytes).collect();
        assert_eq!(cov.len(), 2);
    }

    #[test]
    fn format_bytes_rendering() {
        assert_eq!(format_bytes(512 * 1024), "512KB");
        assert_eq!(format_bytes(64 * 1024 * 1024), "64MB");
        assert_eq!(format_bytes(100), "100B");
    }

    #[test]
    fn presets_instantiate() {
        use crate::hierarchy::Tlb;
        for cfg in [
            XEON_DTLB,
            XEON_ITLB,
            OPTERON_DTLB,
            OPTERON_ITLB,
            MODERN_X86_DTLB,
            MODERN_X86_ITLB,
            ARM64_4K_DTLB,
            ARM64_4K_ITLB,
            ARM64_16K_DTLB,
            ARM64_16K_ITLB,
        ] {
            let t = Tlb::new(cfg);
            assert!(!t.config().name.is_empty());
        }
    }

    #[test]
    fn extension_preset_slots_match_their_ladders() {
        use lpomp_vm::MMArch;
        // Every preset must leave slots past its ladder empty, and give
        // the base rung entries at L1 (a TLB that can't cache base pages
        // is nonsense).
        for cfg in [
            XEON_DTLB,
            OPTERON_DTLB,
            MODERN_X86_DTLB,
            ARM64_4K_DTLB,
            ARM64_16K_DTLB,
        ] {
            let rungs = cfg.arch.ladder().len();
            assert!(cfg.l1.entries_at(0) > 0, "{}", cfg.name);
            for rank in rungs..lpomp_vm::MAX_LADDER {
                assert_eq!(cfg.l1.entries_at(rank), 0, "{} rank {rank}", cfg.name);
                if let Some(l2) = cfg.l2 {
                    assert_eq!(l2.entries_at(rank), 0, "{} L2 rank {rank}", cfg.name);
                }
            }
        }
    }
}
