//! Ablation **A5**: the page-walk cache.
//!
//! Both evaluation platforms cache the upper levels of the page-table
//! radix tree inside the walker, so a TLB miss usually costs one PTE
//! reference, not four. This ablation disables that assumption and
//! re-measures the paper's headline comparison: without walk caches, 4 KB
//! pages get even slower (walks dominate), so the large-page win grows —
//! i.e. the reproduction's calibrated walk costs are, if anything,
//! conservative about the paper's effect.
//!
//! The PWC toggle is a machine-config edit shared by both platforms'
//! names, so the runs fan out with [`lpomp_core::par_map`] directly
//! (`LPOMP_WORKERS` overrides the worker count).
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ablation_pwc [S|W|A]`

use lpomp::prelude::*;
use lpomp_bench::class_from_args;

fn main() {
    let class = class_from_args();
    println!("Ablation A5: page-walk cache (class {class}, 4 threads, Opteron)\n");
    let mut t = TextTable::new(vec!["app", "PWC", "4KB (s)", "2MB (s)", "2MB gain"]);
    let grid: Vec<(AppKind, bool, PagePolicy)> = [AppKind::Cg, AppKind::Sp]
        .into_iter()
        .flat_map(|app| {
            [true, false].into_iter().flat_map(move |pwc| {
                [PagePolicy::Small4K, PagePolicy::Large2M]
                    .into_iter()
                    .map(move |policy| (app, pwc, policy))
            })
        })
        .collect();
    let records = par_map(&grid, default_workers(), |_, &(app, pwc, policy)| {
        let mut machine = opteron_2x2();
        machine.page_walk_cache = pwc;
        run_sim(app, class, machine, policy, 4, RunOpts::default())
    });
    for (chunk, &(app, pwc, _)) in records.chunks(2).zip(grid.iter().step_by(2)) {
        let (small, large) = (&chunk[0], &chunk[1]);
        t.row(vec![
            app.to_string(),
            if pwc { "on" } else { "off" }.to_owned(),
            fnum(small.seconds, 4),
            fnum(large.seconds, 4),
            format!(
                "{}%",
                fnum((1.0 - large.seconds / small.seconds) * 100.0, 1)
            ),
        ]);
    }
    println!("{}", t.render());
}
