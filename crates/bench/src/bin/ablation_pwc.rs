//! Ablation **A5**: the page-walk cache.
//!
//! Both evaluation platforms cache the upper levels of the page-table
//! radix tree inside the walker, so a TLB miss usually costs one PTE
//! reference, not four. This ablation disables that assumption and
//! re-measures the paper's headline comparison: without walk caches, 4 KB
//! pages get even slower (walks dominate), so the large-page win grows —
//! i.e. the reproduction's calibrated walk costs are, if anything,
//! conservative about the paper's effect.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ablation_pwc [S|W|A]`

use lpomp_bench::class_from_args;
use lpomp_core::{run_sim, PagePolicy, RunOpts};
use lpomp_machine::opteron_2x2;
use lpomp_npb::AppKind;
use lpomp_prof::table::fnum;
use lpomp_prof::TextTable;

fn main() {
    let class = class_from_args();
    println!("Ablation A5: page-walk cache (class {class}, 4 threads, Opteron)\n");
    let mut t = TextTable::new(vec!["app", "PWC", "4KB (s)", "2MB (s)", "2MB gain"]);
    for app in [AppKind::Cg, AppKind::Sp] {
        for pwc in [true, false] {
            let mut machine = opteron_2x2();
            machine.page_walk_cache = pwc;
            let small = run_sim(
                app,
                class,
                machine.clone(),
                PagePolicy::Small4K,
                4,
                RunOpts::default(),
            );
            let large = run_sim(
                app,
                class,
                machine,
                PagePolicy::Large2M,
                4,
                RunOpts::default(),
            );
            t.row(vec![
                app.to_string(),
                if pwc { "on" } else { "off" }.to_owned(),
                fnum(small.seconds, 4),
                fnum(large.seconds, 4),
                format!(
                    "{}%",
                    fnum((1.0 - large.seconds / small.seconds) * 100.0, 1)
                ),
            ]);
        }
    }
    println!("{}", t.render());
}
