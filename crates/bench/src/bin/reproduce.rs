//! One-command reproduction driver: regenerates every table, figure,
//! ablation and extension of the evaluation into `results/`.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin reproduce [S|W|A]`
//!
//! Equivalent to running each `table*` / `fig*` / `ablation_*` / `ext_*`
//! binary by hand with its output redirected. Expect several minutes at
//! class W.

use std::io::Write as _;
use std::process::Command;

fn main() {
    let class = std::env::args().nth(1).unwrap_or_else(|| "W".to_owned());
    let out_dir = std::path::Path::new("results");
    std::fs::create_dir_all(out_dir).expect("create results/");
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    // (target, takes_class_arg)
    let targets: &[(&str, bool)] = &[
        ("table1", false),
        ("table2", false),
        ("fig3", true),
        ("fig4", true),
        ("fig5", true),
        ("ablation_prealloc", true),
        ("ablation_pwc", true),
        ("ext_mixed", true),
        ("ext_thp", true),
        ("ext_numa", true),
        ("ext_reach", false),
        ("ext_frag", true),
        ("ext_tenant", true),
        ("ext_arch", true),
        ("profile", true),
        ("diag", true),
        ("xval", true),
    ];
    let mut failures = 0;
    for (target, takes_class) in targets {
        let exe = exe_dir.join(target);
        let mut cmd = Command::new(&exe);
        if *takes_class {
            cmd.arg(&class);
        }
        print!("running {target} ... ");
        std::io::stdout().flush().ok();
        let start = std::time::Instant::now();
        match cmd.output() {
            Ok(out) if out.status.success() => {
                let suffix = if *takes_class {
                    format!("_{class}")
                } else {
                    String::new()
                };
                let path = out_dir.join(format!("{target}{suffix}.txt"));
                if let Err(e) = std::fs::write(&path, &out.stdout) {
                    println!("FAILED to write {}: {e}", path.display());
                    failures += 1;
                    continue;
                }
                println!(
                    "ok ({:.1}s) -> {}",
                    start.elapsed().as_secs_f64(),
                    path.display()
                );
            }
            Ok(out) => {
                println!("FAILED (status {})", out.status);
                failures += 1;
            }
            Err(e) => {
                println!("FAILED to launch: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} target(s) failed");
        std::process::exit(1);
    }
    println!(
        "\nall outputs in {}/ — compare against EXPERIMENTS.md",
        out_dir.display()
    );
}
