//! Regenerates the paper's **Table 2**: "Application Memory Footprint" —
//! instruction and data bytes per application.
//!
//! By default prints class B (the paper's class) next to the simulated
//! evaluation class W. The paper's measured numbers (its Table 2) are
//! shown for comparison; they were taken on Omni/SCASH, whose startup
//! preallocation and work arrays inflate the raw array bytes.
//!
//! Usage: `cargo run -p lpomp-bench --bin table2`

use lpomp_npb::{AppKind, Class};
use lpomp_prof::TextTable;

fn human(bytes: u64) -> String {
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.1}GB", b / GB)
    } else {
        format!("{:.0}MB", b / MB)
    }
}

/// The paper's Table 2 data column (class B), for side-by-side context.
fn paper_data_mb(app: AppKind) -> &'static str {
    match app {
        AppKind::Bt => "371MB",
        AppKind::Cg => "725MB",
        AppKind::Ft => "2.4GB",
        AppKind::Sp => "387MB",
        AppKind::Mg => "884MB",
        AppKind::Ep | AppKind::Is | AppKind::Lu => "-",
    }
}

fn main() {
    println!("Table 2: Application Memory Footprint\n");
    let mut t = TextTable::new(vec![
        "app",
        "instruction",
        "data (B, ours)",
        "data (B, paper)",
        "data (W, simulated)",
    ]);
    for app in AppKind::PAPER_FIVE {
        let b = app.footprint(Class::B);
        let w = app.footprint(Class::W);
        t.row(vec![
            format!("{app} (B)"),
            format!("{:.1}MB", b.instruction_bytes as f64 / (1024.0 * 1024.0)),
            human(b.data_bytes),
            paper_data_mb(app).to_owned(),
            human(w.data_bytes),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(Paper values measured on Omni/SCASH include the runtime's shared-\n\
         region preallocation and work arrays; ours count the raw NPB arrays.)"
    );
}
