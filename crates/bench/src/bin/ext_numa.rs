//! Extension **E3**: page size × NUMA placement on the (two-socket)
//! Opteron platform.
//!
//! The paper's Opteron testbed is NUMA, but the paper treats memory as
//! uniform. This experiment adds the HyperTransport hop and asks how the
//! placement policy interacts with page size:
//!
//! * `master-node` — all pages on node 0 (what naive first-touch startup
//!   initialization gives): threads on chip 1 pay remote latency;
//! * `interleave-4KB` — fine round-robin striping: balanced for 4 KB
//!   pages, but **physically impossible** for 2 MB pages, which clamp the
//!   stripe to 2 MB chunks;
//! * `interleave-2MB` — coarse striping, achievable at either page size.
//!
//! The four placement variants share one machine name, so this binary
//! fans the eight runs out with [`lpomp_core::par_map`] directly rather
//! than through `SweepSpec` (`LPOMP_WORKERS` overrides the worker count).
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ext_numa [S|W|A]`

use lpomp_bench::class_from_args;
use lpomp_core::{default_workers, par_map, run_sim, PagePolicy, RunOpts};
use lpomp_machine::{opteron_2x2, NumaConfig, NumaPlacement};
use lpomp_npb::AppKind;
use lpomp_prof::table::fnum;
use lpomp_prof::TextTable;

fn main() {
    let class = class_from_args();
    let app = AppKind::Mg;
    println!(
        "Extension E3: page size x NUMA placement ({app}, class {class}, 4 threads, Opteron)\n"
    );
    let mut t = TextTable::new(vec!["placement", "4KB (s)", "2MB (s)", "2MB gain"]);
    let placements = [
        None,
        Some(NumaPlacement::MasterNode),
        Some(NumaPlacement::Interleave4K),
        Some(NumaPlacement::Interleave2M),
    ];
    let grid: Vec<(Option<NumaPlacement>, PagePolicy)> = placements
        .iter()
        .flat_map(|&p| {
            [PagePolicy::Small4K, PagePolicy::Large2M]
                .into_iter()
                .map(move |policy| (p, policy))
        })
        .collect();
    let records = par_map(&grid, default_workers(), |_, &(p, policy)| {
        let mut machine = opteron_2x2();
        machine.numa = p.map(NumaConfig::opteron);
        run_sim(app, class, machine, policy, 4, RunOpts::default())
    });
    for (i, p) in placements.iter().enumerate() {
        let small = &records[2 * i];
        let large = &records[2 * i + 1];
        t.row(vec![
            p.map_or("uniform (paper)".to_owned(), |p| p.label().to_owned()),
            fnum(small.seconds, 4),
            fnum(large.seconds, 4),
            format!(
                "{}%",
                fnum((1.0 - large.seconds / small.seconds) * 100.0, 1)
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(master-node placement slows both page sizes — the classic OpenMP\n\
         first-touch pitfall; interleaving recovers it. 4KB interleave and\n\
         2MB interleave behave alike here because the working arrays are\n\
         large and sequentially swept, so coarse striping balances too.)"
    );
}
