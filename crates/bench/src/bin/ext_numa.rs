//! Extension **E3v2**: physical NUMA — placement × page size × page
//! tables on the (two-socket) Opteron platform.
//!
//! The paper's Opteron testbed is NUMA, but the paper treats memory as
//! uniform. With the physical NUMA subsystem (per-node frame pools,
//! first-touch faulting, the balancing daemon, replicated page walks)
//! this experiment asks how placement interacts with page size:
//!
//! * `master-node` — all pages on node 0 (what master-thread startup
//!   initialization gives): threads on chip 1 pay remote latency on
//!   every DRAM access *and* on their page walks;
//! * `interleave-4KB` — fine round-robin striping: balanced on average,
//!   ~50% remote for everyone; physically clamped to 2 MB chunks when
//!   the pages themselves are 2 MB;
//! * `first-touch` — each demand-faulted page lands on the faulting
//!   thread's node: static partitions become node-local;
//! * `first-touch+numad` — first-touch plus the AutoNUMA-style daemon
//!   migrating pages with persistently remote accessors. Here the
//!   paper's granularity trade-off is mechanical: a 2 MB page shared
//!   across nodes can only bounce or stay, while a 4 KB heap gives the
//!   balancer 512× finer placement freedom.
//!
//! The second table isolates the page-*walk* side: PTE fetches from a
//! remote node's DRAM pay the hop too, unless Mitosis-style per-node
//! page-table replication keeps every walk node-local
//! (`NumaConfig::with_replicated_pt`).
//!
//! Every row demand-faults (`OnDemand`): placement, not prefault cost,
//! is under test — and first-touch is only meaningful when the touching
//! thread takes the fault. The grid runs through a [`KeyedGrid`]
//! (`LPOMP_WORKERS` overrides the worker count), so the sweep-store
//! flags work here too: `--store DIR` replays cached cells,
//! `--shard i/n` / `--merge n` split the grid across processes,
//! `--jsonl FILE` streams cells as they complete.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ext_numa
//!         [S|W|A] [--store DIR] [--shard i/n | --merge n] [--jsonl FILE]`

use lpomp::prelude::*;
use lpomp_bench::{class_from_args, maybe_write_csv, sweep_cli_from_args};
use lpomp_vm::NumaDaemonConfig;

/// One cell of the run grid.
#[derive(Clone, Copy, PartialEq)]
struct Cfg {
    app: AppKind,
    placement: Option<NumaPlacement>,
    daemon: bool,
    replicate: bool,
    policy: PagePolicy,
}

fn label(p: Option<NumaPlacement>, daemon: bool) -> String {
    match (p, daemon) {
        (None, _) => "uniform (paper)".to_owned(),
        (Some(p), false) => p.label().to_owned(),
        (Some(p), true) => format!("{}+numad", p.label()),
    }
}

/// Remote share of all DRAM-reaching references.
fn remote_pct(r: &RunRecord) -> String {
    let local = r.counters.get(Event::LocalDramAccesses);
    let remote = r.counters.get(Event::RemoteDramAccesses);
    if local + remote == 0 {
        "-".to_owned()
    } else {
        format!(
            "{}%",
            fnum(remote as f64 / (local + remote) as f64 * 100.0, 1)
        )
    }
}

/// The `MachineConfig` a cell's builder ends up with: `.numa()` writes
/// the placement (and replication) into the machine itself, so those
/// axes land in the typed key via the machine fingerprint.
fn cell_machine(c: &Cfg) -> MachineConfig {
    let mut m = opteron_2x2();
    if let Some(p) = c.placement {
        let n = NumaConfig::opteron(p);
        m.numa = Some(if c.replicate {
            n.with_replicated_pt()
        } else {
            n
        });
    }
    m
}

fn main() {
    let class = class_from_args();
    let cli = sweep_cli_from_args();
    println!(
        "Extension E3v2: physical NUMA -- placement x page size x page tables\n\
         (class {class}, 4 threads, Opteron, demand faulting)\n"
    );
    const APPS: [AppKind; 2] = [AppKind::Mg, AppKind::Cg];
    let placements: [(Option<NumaPlacement>, bool); 5] = [
        (None, false),
        (Some(NumaPlacement::MasterNode), false),
        (Some(NumaPlacement::Interleave4K), false),
        (Some(NumaPlacement::FirstTouch), false),
        (Some(NumaPlacement::FirstTouch), true),
    ];
    let mut grid: Vec<Cfg> = Vec::new();
    for app in APPS {
        for &(placement, daemon) in &placements {
            for replicate in [false, true] {
                if replicate && placement.is_none() {
                    continue; // no page tables to replicate across nodes
                }
                for policy in [PagePolicy::Small4K, PagePolicy::Large2M] {
                    grid.push(Cfg {
                        app,
                        placement,
                        daemon,
                        replicate,
                        policy,
                    });
                }
            }
        }
    }
    // The daemon and demand-faulting knobs live outside the typed key
    // axes, so they ride in the variant descriptor.
    let keys: Vec<StoreKey> = grid
        .iter()
        .map(|c| {
            StoreKey::new(
                &cell_machine(c),
                c.app,
                class,
                c.policy,
                4,
                RunOpts::default(),
                BackendKind::CycleExact,
            )
            .with_variant(&format!("numa:daemon={},populate=ondemand", c.daemon))
        })
        .collect();
    let kgrid = KeyedGrid::new(keys, |i, _key| {
        let c = &grid[i];
        let mut b = System::builder(cell_machine(c))
            .policy(c.policy)
            .threads(4)
            .populate(PopulatePolicy::OnDemand);
        if c.daemon {
            b = b.numa_daemon(NumaDaemonConfig::default());
        }
        run_system(c.app, class, &b, RunOpts::default())
    });
    let sink = cli.sink();
    let Some(records) = cli.execute_keyed(&kgrid, sink.as_ref()) else {
        return; // shard mode: the slice and its manifest are in the store
    };
    let find = |cfg: Cfg| -> &RunRecord {
        let i = grid.iter().position(|c| *c == cfg).expect("cell in grid");
        &records[i]
    };

    for app in APPS {
        let mut t = TextTable::new(vec![
            "placement",
            "4KB (s)",
            "2MB (s)",
            "2MB gain",
            "rem% 4KB",
            "rem% 2MB",
            "migr 4KB",
            "migr 2MB",
        ]);
        for &(placement, daemon) in &placements {
            let cell = |policy| Cfg {
                app,
                placement,
                daemon,
                replicate: false,
                policy,
            };
            let small = find(cell(PagePolicy::Small4K));
            let large = find(cell(PagePolicy::Large2M));
            t.row(vec![
                label(placement, daemon),
                fnum(small.seconds, 4),
                fnum(large.seconds, 4),
                format!(
                    "{}%",
                    fnum((1.0 - large.seconds / small.seconds) * 100.0, 1)
                ),
                remote_pct(small),
                remote_pct(large),
                small.counters.get(Event::PagesMigrated).to_string(),
                large.counters.get(Event::PagesMigrated).to_string(),
            ]);
        }
        println!("{app}:\n{}", t.render());
        maybe_write_csv(&format!("ext_numa_{app}").to_lowercase(), &t);
    }

    let mut t = TextTable::new(vec![
        "app",
        "placement",
        "4KB shared",
        "4KB repl",
        "2MB shared",
        "2MB repl",
    ]);
    for app in APPS {
        for &(placement, daemon) in &placements[1..] {
            let walk_rem = |replicate, policy| {
                find(Cfg {
                    app,
                    placement,
                    daemon,
                    replicate,
                    policy,
                })
                .counters
                .get(Event::RemoteWalkCycles)
                .to_string()
            };
            t.row(vec![
                app.to_string(),
                label(placement, daemon),
                walk_rem(false, PagePolicy::Small4K),
                walk_rem(true, PagePolicy::Small4K),
                walk_rem(false, PagePolicy::Large2M),
                walk_rem(true, PagePolicy::Large2M),
            ]);
        }
    }
    println!(
        "Remote page-walk cycles, shared vs replicated page tables:\n{}",
        t.render()
    );
    maybe_write_csv("ext_numa_replication", &t);
    println!(
        "(master-node placement makes chip-1 threads fully remote — the\n\
         classic OpenMP first-touch pitfall; interleaving spreads the pain\n\
         at ~50% remote; first-touch makes static partitions node-local and\n\
         beats both. Under first-touch+numad the 4KB heap lets the balancer\n\
         relocate stragglers page by page, while 2MB pages straddle thread\n\
         partitions and can only stay put — placement flexibility is what\n\
         large pages trade away. Replicated page tables zero the remote\n\
         walk cycles without touching checksums.)"
    );
}
