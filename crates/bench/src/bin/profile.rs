//! Phase-attributed profile: which loops pay the 4 KB-page TLB tax?
//!
//! The paper reports whole-run improvements (Figs. 4–5); this experiment
//! drills into *where* the DTLB misses live. Each run is executed with
//! [`ProfileSpec::Regions`], so every counter increment is charged to the
//! innermost active region — the named application loops (`cg:matvec`,
//! `sp:y-solve`, …), the runtime's barrier wait (`rt:barrier`) and any
//! OS episodes (`os:*`). Per app the table ranks regions by 4 KB-page
//! DTLB misses and shows what 2 MB pages do to each: the gather and the
//! strided solves collapse by orders of magnitude while streamed phases
//! barely move — the per-loop version of the paper's §4.2 story.
//!
//! Attribution is exactly conservative: per-region counters sum to the
//! aggregate sheet (checked here for every cell).
//!
//! Usage: `cargo run --release -p lpomp-bench --bin profile [S|W|A]`

use lpomp::prelude::*;
use lpomp_bench::{class_from_args, maybe_write_csv};

const APPS: [AppKind; 3] = [AppKind::Cg, AppKind::Mg, AppKind::Sp];
const POLICIES: [PagePolicy; 2] = [PagePolicy::Small4K, PagePolicy::Large2M];

fn main() {
    let class = class_from_args();
    println!(
        "Phase-attributed profile: top regions by DTLB misses, 4KB vs 2MB\n\
         (class {class}, 4 threads, Opteron)\n"
    );

    let mut grid = Vec::new();
    for app in APPS {
        for policy in POLICIES {
            grid.push((app, policy));
        }
    }
    let records = par_map(&grid, default_workers(), |_, &(app, policy)| {
        let b = System::builder(opteron_2x2())
            .policy(policy)
            .threads(4)
            .profile(ProfileSpec::Regions);
        run_system(app, class, &b, RunOpts::default())
    });
    let find = |app, policy| {
        let i = grid
            .iter()
            .position(|&c| c == (app, policy))
            .expect("cell in grid");
        &records[i]
    };

    for app in APPS {
        let small = find(app, PagePolicy::Small4K);
        let large = find(app, PagePolicy::Large2M);
        let ssheet = small.regions.as_ref().expect("profiled run has a sheet");
        let lsheet = large.regions.as_ref().expect("profiled run has a sheet");
        // Attribution must be exactly conservative in release builds too.
        for (sheet, rec) in [(ssheet, small), (lsheet, large)] {
            assert_eq!(
                sheet.total(),
                rec.counters,
                "{app}: per-region sums diverge from the aggregate counters"
            );
        }

        let total_small = small.counters.get(Event::DtlbMisses).max(1);
        let mut t = TextTable::new(vec![
            "region",
            "dtlb 4KB",
            "share",
            "dtlb 2MB",
            "reduction",
            "cycles 4KB",
        ]);
        for (region, misses) in ssheet.top_by(Event::DtlbMisses) {
            let name = ssheet.name(region);
            let large_misses = lsheet
                .by_name(name)
                .map(|r| lsheet.region_total(r).get(Event::DtlbMisses))
                .unwrap_or(0);
            let reduction = if large_misses > 0 {
                format!("{}x", fnum(misses as f64 / large_misses as f64, 1))
            } else {
                "inf".to_owned()
            };
            t.row(vec![
                name.to_owned(),
                misses.to_string(),
                format!("{}%", fnum(misses as f64 / total_small as f64 * 100.0, 1)),
                large_misses.to_string(),
                reduction,
                ssheet.region_total(region).get(Event::Cycles).to_string(),
            ]);
        }
        println!("{app}:\n{}", t.render());
        maybe_write_csv(&format!("profile_{app}").to_lowercase(), &t);

        // Scheduler attribution: only work-stealing schedules
        // (`Schedule::Hierarchical`) record steals, so for the default
        // grid this section is silent; profile a stealing run and the
        // steal machinery's time shows up next to the barrier wait.
        for (rec, sheet, policy) in [
            (small, ssheet, PagePolicy::Small4K),
            (large, lsheet, PagePolicy::Large2M),
        ] {
            let local = rec.counters.get(Event::LocalSteals);
            let remote = rec.counters.get(Event::RemoteSteals);
            if local + remote == 0 {
                continue;
            }
            let mut st = TextTable::new(vec!["region", "cycles", "steals l/r", "rehomes"]);
            for name in ["rt:steal", "rt:barrier"] {
                let cycles = sheet
                    .by_name(name)
                    .map(|r| sheet.region_total(r).get(Event::Cycles))
                    .unwrap_or(0);
                let (lr, rh) = if name == "rt:steal" {
                    (
                        format!("{local}/{remote}"),
                        rec.counters.get(Event::ChunkRehomes).to_string(),
                    )
                } else {
                    ("-".to_owned(), "-".to_owned())
                };
                st.row(vec![name.to_owned(), cycles.to_string(), lr, rh]);
            }
            println!("{app} steal attribution ({policy}):\n{}", st.render());
        }
    }

    println!(
        "(the gather/strided phases own nearly all 4KB DTLB misses and are\n\
         the ones 2MB pages collapse; streamed sweeps and the runtime's\n\
         rt:barrier wait barely move. Shares are of the app's total 4KB\n\
         misses; every sheet is checked to sum exactly to the aggregate\n\
         counters.)"
    );
}
