//! Extension **E2**: transparent huge-page promotion — the §6 wish
//! (*"transparent native kernel support for large pages is still not
//! present in the Linux kernel"*), which Linux later shipped as
//! THP/khugepaged.
//!
//! Three scenarios for CG on the Opteron at 4 threads:
//!
//! 1. **4KB static** — the baseline;
//! 2. **2MB preallocated** — the paper's system (boot-time reservation);
//! 3. **THP** — start on 4 KB pages, run one iteration, let the
//!    khugepaged-style daemon collapse the heap (paying the stop-the-world
//!    migration), then run again: steady state matches the preallocated
//!    system without any boot-time reservation.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ext_thp [S|W|A]`

use lpomp::prelude::*;
use lpomp_bench::class_from_args;

fn main() {
    let class = class_from_args();
    let app = AppKind::Cg;
    println!("Extension E2: THP-style promotion ({app}, class {class}, 4 threads, Opteron)\n");

    // The two static baselines run in parallel; the THP scenario below is
    // inherently sequential (run → promote → run on one system).
    let baselines = par_map(
        &[PagePolicy::Small4K, PagePolicy::Large2M],
        default_workers(),
        |_, &policy| run_sim(app, class, opteron_2x2(), policy, 4, RunOpts::default()),
    );
    let (small, large) = (&baselines[0], &baselines[1]);

    // THP scenario: private 4 KB heap, promote after the first run.
    let mut kernel = app.build(class);
    let mut sys = System::builder(opteron_2x2())
        .threads(4)
        .thp()
        .build(kernel.as_mut())
        .unwrap();
    kernel.run(&mut sys.team);
    let first_run = sys.team.elapsed_seconds();
    let misses_first = sys.team.aggregate_counters().get(Event::DtlbMisses);
    let pre_promote = sys.team.elapsed_cycles();
    let report = sys.promote_heap().unwrap();
    let promote_cost = sys.team.elapsed_cycles() - pre_promote;
    sys.team.engine_mut().unwrap().reset_timing();
    kernel.run(&mut sys.team);
    let second_run = sys.team.elapsed_seconds();
    let misses_second = sys.team.aggregate_counters().get(Event::DtlbMisses);

    let mut t = TextTable::new(vec!["scenario", "run time (s)", "dtlb misses"]);
    t.row(vec![
        "4KB static".to_owned(),
        fnum(small.seconds, 4),
        small.dtlb_misses().to_string(),
    ]);
    t.row(vec![
        "2MB preallocated".to_owned(),
        fnum(large.seconds, 4),
        large.dtlb_misses().to_string(),
    ]);
    t.row(vec![
        "THP: run 1 (4KB)".to_owned(),
        fnum(first_run, 4),
        misses_first.to_string(),
    ]);
    t.row(vec![
        "THP: run 2 (collapsed)".to_owned(),
        fnum(second_run, 4),
        misses_second.to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "promotion: {} chunks collapsed ({} MB), {} chunks blocked by fragmentation,\n\
         one-time migration cost {:.4}s\n",
        report.promoted,
        report.promoted_bytes() >> 20,
        report.skipped_no_memory,
        promote_cost as f64 / 2.0e9,
    );
    println!(
        "Steady state after collapse tracks the preallocated 2MB system\n\
         ({}s vs {}s) — transparent support recovers the paper's benefit,\n\
         at the cost of the migration pause and fragmentation risk.",
        fnum(second_run, 4),
        fnum(large.seconds, 4)
    );
}
