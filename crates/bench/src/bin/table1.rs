//! Regenerates the paper's **Table 1**: "Processor TLB Sizes and
//! Coverage" for the Xeon and Opteron platforms, derived from the
//! `lpomp-tlb` presets.
//!
//! Usage: `cargo run -p lpomp-bench --bin table1`

use lpomp_prof::TextTable;
use lpomp_tlb::presets::{format_bytes, table1};

fn main() {
    println!("Table 1: Processor TLB Sizes and Coverage\n");
    let mut t = TextTable::new(vec!["", "Xeon", "Opteron"]);
    for row in table1() {
        let render = |v: u64| {
            if row.is_bytes {
                format_bytes(v)
            } else if v == 0 {
                "-".to_owned()
            } else {
                v.to_string()
            }
        };
        t.row(vec![
            row.label.to_owned(),
            render(row.xeon),
            render(row.opteron),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(2MB-page coverage: Xeon 32 x 2MB = 64MB; Opteron 8 x 2MB = 16MB,\n\
         matching the paper's coverage rows. The Opteron L2 DTLB holds no\n\
         2MB entries, so its large-page reach is set by the 8-entry L1.)"
    );
}
