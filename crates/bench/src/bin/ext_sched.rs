//! Extension **E8**: topology-aware hierarchical scheduling with
//! locality-preferring work stealing, negotiated with the NUMA daemon.
//!
//! The paper schedules every loop statically, so large pages only ever
//! fight the TLB. On a workload with a *skewed* iteration profile (the
//! SKEW sawtooth mat-vec: row weight ramps 1 → nzmax within each half,
//! equal totals across halves) static scheduling leaves each node's
//! second thread with almost twice its node-mate's work; plain
//! self-scheduling fixes the imbalance but is topology-blind — rows
//! execute far from the pages they first-touched, and on a NUMA
//! Opteron every stream and gather pays the interconnect, even though
//! the imbalance could have been settled entirely on-node. The
//! hierarchical scheduler starts from the static partition (preserving
//! first-touch affinity), cuts it into per-thread deques, and lets
//! idle threads steal — own node first, remote nodes in larger batches
//! — with two negotiation channels to the memory system, each
//! separately ablatable:
//!
//! * **work-follows-pages** (`-wfp` rows disable it): chunk completion
//!   consumes NUMA hint-fault samples and re-homes chunks toward the
//!   node that actually serves their pages;
//! * **pages-follow-work** (`-pfw` rows disable it): chunk footprints
//!   are published to the NUMA daemon, which weighs them when judging
//!   page migrations, so pages drift toward the work.
//!
//! The grid crosses schedule × page size × daemon on/off at 4 threads
//! under first-touch placement with demand faulting. Watch three
//! things at 4 KB: simulated time (hierarchical beats blind stealing),
//! the steal mix (remote steals collapse to ~0 — the sawtooth balances
//! on-node), and the remote-DRAM share (blind stealing drags streams
//! across the die). At 2 MB the picture inverts instructively: one big
//! page straddles thread partitions, so work-follows-pages re-homes
//! chunks toward wherever the straddling page landed — the `-wfp`
//! ablation wins there, the scheduling cousin of E3v2's "2 MB pages
//! trade away placement flexibility". The engine orders steals by
//! simulated time, so every cell is byte-identical at any
//! `LPOMP_WORKERS`.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ext_sched
//!         [S|W|A] [--store DIR] [--shard i/n | --merge n] [--jsonl FILE]`

use lpomp::prelude::*;
use lpomp_bench::{class_from_args, maybe_write_csv, sweep_cli_from_args};
use lpomp_prof::Json;
use lpomp_vm::NumaDaemonConfig;

/// Deque chunk granularity (iterations) for dynamic and hierarchical
/// cells: 64 chunks per thread at class W — fine enough to balance the
/// triangular profile, coarse enough that queue traffic stays small.
const CHUNK: usize = 256;

/// The schedule axis.
#[derive(Clone, Copy, PartialEq)]
enum Sched {
    /// OpenMP default: the paper's (imbalanced) baseline.
    Static,
    /// Topology-blind self-scheduling off one shared queue.
    Queue,
    /// Topology-blind work stealing: same deques and chunk costs as the
    /// hierarchical scheduler, but victims in plain id order, steals one
    /// chunk at a time, no negotiation — the baseline the locality
    /// mechanism is measured against.
    Blind,
    /// Hierarchical stealing, both negotiation channels on.
    Hier,
    /// Ablation: no work-follows-pages re-homing.
    HierNoWfp,
    /// Ablation: no pages-follow-work daemon hints.
    HierNoPfw,
}

const SCHEDS: [Sched; 6] = [
    Sched::Static,
    Sched::Queue,
    Sched::Blind,
    Sched::Hier,
    Sched::HierNoWfp,
    Sched::HierNoPfw,
];

impl Sched {
    fn label(self) -> &'static str {
        match self {
            Sched::Static => "static (paper)",
            Sched::Queue => "dynamic (queue)",
            Sched::Blind => "blind stealing",
            Sched::Hier => "hierarchical",
            Sched::HierNoWfp => "hier -wfp",
            Sched::HierNoPfw => "hier -pfw",
        }
    }

    /// Canonical descriptor for the store key ([`StoreKey::with_schedule`]).
    /// `Static` is the kernel default — no override, no marker.
    fn descriptor(self) -> Option<String> {
        let d = |wfp: bool, pfw: bool| {
            format!(
                "hier:chunk={CHUNK}:rb=2:wfp={}:pfw={}",
                wfp as u8, pfw as u8
            )
        };
        match self {
            Sched::Static => None,
            Sched::Queue => Some(format!("dyn:chunk={CHUNK}")),
            Sched::Blind => Some(format!("steal:chunk={CHUNK}:blind")),
            Sched::Hier => Some(d(true, true)),
            Sched::HierNoWfp => Some(d(false, true)),
            Sched::HierNoPfw => Some(d(true, false)),
        }
    }

    fn apply(self, b: SystemBuilder) -> SystemBuilder {
        let steal = |b: SystemBuilder, pol: StealPolicy| {
            b.schedule(Schedule::Hierarchical { chunk: CHUNK })
                .steal_policy(pol)
        };
        let hier = |b, wfp, pfw| {
            steal(
                b,
                StealPolicy {
                    work_follows_pages: wfp,
                    pages_follow_work: pfw,
                    ..StealPolicy::default()
                },
            )
        };
        match self {
            Sched::Static => b,
            Sched::Queue => b.schedule(Schedule::Dynamic(CHUNK)),
            Sched::Blind => steal(
                b,
                StealPolicy {
                    remote_batch: 1,
                    work_follows_pages: false,
                    pages_follow_work: false,
                    topology_aware: false,
                },
            ),
            Sched::Hier => hier(b, true, true),
            Sched::HierNoWfp => hier(b, false, true),
            Sched::HierNoPfw => hier(b, true, false),
        }
    }
}

/// One cell of the E8 grid.
#[derive(Clone, Copy, PartialEq)]
struct Cfg {
    sched: Sched,
    daemon: bool,
    policy: PagePolicy,
}

/// The measured cell payload (SKEW is not an [`AppKind`], so cells are
/// custom rows rather than [`RunRecord`]s).
struct Row {
    seconds: f64,
    cycles: u64,
    checksum: f64,
    verified: bool,
    steal_local: u64,
    steal_remote: u64,
    rehomes: u64,
    affinity_hits: u64,
    dram_local: u64,
    dram_remote: u64,
    migrated: u64,
}

impl GridCell for Row {
    fn to_store_json(&self) -> String {
        format!(
            "{{\"seconds\":{},\"cycles\":{},\"checksum\":{},\"verified\":{},\
             \"steal_local\":{},\"steal_remote\":{},\"rehomes\":{},\
             \"affinity_hits\":{},\"dram_local\":{},\"dram_remote\":{},\
             \"migrated\":{}}}",
            self.seconds,
            self.cycles,
            self.checksum,
            self.verified,
            self.steal_local,
            self.steal_remote,
            self.rehomes,
            self.affinity_hits,
            self.dram_local,
            self.dram_remote,
            self.migrated
        )
    }

    fn from_store_json(j: &Json, _key: &StoreKey) -> Option<Self> {
        let num = |k: &str| j.get(k).and_then(Json::as_num);
        let int = |k: &str| num(k).map(|n| n as u64);
        Some(Row {
            seconds: num("seconds")?,
            cycles: int("cycles")?,
            checksum: num("checksum")?,
            verified: match j.get("verified")? {
                Json::Bool(b) => *b,
                _ => return None,
            },
            steal_local: int("steal_local")?,
            steal_remote: int("steal_remote")?,
            rehomes: int("rehomes")?,
            affinity_hits: int("affinity_hits")?,
            dram_local: int("dram_local")?,
            dram_remote: int("dram_remote")?,
            migrated: int("migrated")?,
        })
    }
}

fn cell_machine() -> MachineConfig {
    let mut m = opteron_2x2();
    m.numa = Some(NumaConfig::opteron(NumaPlacement::FirstTouch));
    m
}

fn run_cell(c: &Cfg, class: Class) -> Row {
    let mut kernel = Skew::new(class);
    let mut b = System::builder(cell_machine())
        .policy(c.policy)
        .threads(4)
        .populate(PopulatePolicy::OnDemand);
    if c.daemon {
        b = b.numa_daemon(NumaDaemonConfig::default());
    }
    b = c.sched.apply(b);
    let mut sys = b
        .build(&mut kernel)
        .unwrap_or_else(|e| panic!("SKEW {class} system build failed: {e}"));
    let checksum = kernel.run(&mut sys.team);
    let verified = kernel.verify(checksum);
    let cycles = sys.team.elapsed_cycles();
    let seconds = sys.team.engine().unwrap().machine.cost().seconds(cycles);
    let counters = sys.team.aggregate_counters();
    Row {
        seconds,
        cycles,
        checksum,
        verified,
        steal_local: counters.get(Event::LocalSteals),
        steal_remote: counters.get(Event::RemoteSteals),
        rehomes: counters.get(Event::ChunkRehomes),
        affinity_hits: counters.get(Event::AffinityHits),
        dram_local: counters.get(Event::LocalDramAccesses),
        dram_remote: counters.get(Event::RemoteDramAccesses),
        migrated: counters.get(Event::PagesMigrated),
    }
}

fn remote_pct(r: &Row) -> String {
    if r.dram_local + r.dram_remote == 0 {
        "-".to_owned()
    } else {
        format!(
            "{}%",
            fnum(
                r.dram_remote as f64 / (r.dram_local + r.dram_remote) as f64 * 100.0,
                1
            )
        )
    }
}

fn main() {
    let class = class_from_args();
    let cli = sweep_cli_from_args();
    println!(
        "Extension E8: topology-aware hierarchical scheduling on SKEW\n\
         (class {class}, 4 threads, Opteron, first-touch, demand faulting)\n"
    );
    let mut grid: Vec<Cfg> = Vec::new();
    for daemon in [false, true] {
        for sched in SCHEDS {
            for policy in [PagePolicy::Small4K, PagePolicy::Large2M] {
                grid.push(Cfg {
                    sched,
                    daemon,
                    policy,
                });
            }
        }
    }
    // SKEW has no AppKind slot, so the typed app axis is a placeholder
    // and the workload rides in the variant; the schedule knobs land in
    // the key via the canonical descriptor.
    let keys: Vec<StoreKey> = grid
        .iter()
        .map(|c| {
            let k = StoreKey::new(
                &cell_machine(),
                AppKind::Cg,
                class,
                c.policy,
                4,
                RunOpts::default(),
                BackendKind::CycleExact,
            )
            .with_variant(&format!(
                "sched:app=skew,daemon={},populate=ondemand",
                c.daemon
            ));
            match c.sched.descriptor() {
                Some(d) => k.with_schedule(&d),
                None => k,
            }
        })
        .collect();
    let kgrid = KeyedGrid::new(keys, |i, _key| run_cell(&grid[i], class));
    let sink = cli.sink();
    let Some(rows) = cli.execute_keyed(&kgrid, sink.as_ref()) else {
        return; // shard mode: the slice and its manifest are in the store
    };
    for (c, r) in grid.iter().zip(&rows) {
        assert!(
            r.verified,
            "SKEW failed verification: sched={} daemon={} policy={}",
            c.sched.label(),
            c.daemon,
            c.policy
        );
    }
    let find = |cfg: Cfg| -> &Row {
        let i = grid.iter().position(|c| *c == cfg).expect("cell in grid");
        &rows[i]
    };

    for daemon in [false, true] {
        let mut t = TextTable::new(vec![
            "schedule",
            "4KB (Mcyc)",
            "2MB (Mcyc)",
            "2MB gain",
            "rem% 4KB",
            "rem% 2MB",
            "steals l/r",
            "rehome",
            "migr",
        ]);
        for sched in SCHEDS {
            let cell = |policy| Cfg {
                sched,
                daemon,
                policy,
            };
            let small = find(cell(PagePolicy::Small4K));
            let large = find(cell(PagePolicy::Large2M));
            t.row(vec![
                sched.label().to_owned(),
                fnum(small.cycles as f64 / 1e6, 3),
                fnum(large.cycles as f64 / 1e6, 3),
                format!(
                    "{}%",
                    fnum((1.0 - large.seconds / small.seconds) * 100.0, 1)
                ),
                remote_pct(small),
                remote_pct(large),
                format!("{}/{}", small.steal_local, small.steal_remote),
                small.rehomes.to_string(),
                small.migrated.to_string(),
            ]);
        }
        let tag = if daemon { "numad on" } else { "numad off" };
        println!("{tag}:\n{}", t.render());
        maybe_write_csv(
            &format!("ext_sched_{}", if daemon { "numad" } else { "base" }),
            &t,
        );
    }

    let pick = |sched, daemon| {
        find(Cfg {
            sched,
            daemon,
            policy: PagePolicy::Small4K,
        })
    };
    let blind = pick(Sched::Blind, true);
    let hier = pick(Sched::Hier, true);
    println!(
        "headline (4KB, numad on): hierarchical {} Mcyc vs blind stealing {} \
         Mcyc ({}% faster); remote steals {} vs {}; remote DRAM {} vs {}",
        fnum(hier.cycles as f64 / 1e6, 3),
        fnum(blind.cycles as f64 / 1e6, 3),
        fnum((1.0 - hier.seconds / blind.seconds) * 100.0, 1),
        hier.steal_remote,
        blind.steal_remote,
        hier.dram_remote,
        blind.dram_remote,
    );
    println!(
        "\n(static gives each node's second thread ~2x its node-mate's work\n\
         and every barrier waits for the heavy pair; the sawtooth keeps\n\
         node totals equal, so all rebalancing could stay on-node. Blind\n\
         stealing hauls chunks across the die anyway — remote streams,\n\
         remote steals, daemon churn — while the hierarchical scheduler\n\
         settles the imbalance with local steals and keeps chunks with\n\
         their first-touch pages. The negotiation runs both ways: chunks\n\
         re-home toward their pages (-wfp ablates this) and pages migrate\n\
         toward their chunks (-pfw ablates this). At 2MB the -wfp ablation\n\
         wins instead: a straddling 2MB page pulls chunks to whichever\n\
         node holds it — large pages trade away scheduling flexibility\n\
         exactly as they trade away placement flexibility in E3v2.)"
    );
}
