//! **Extension E7 — translation architectures**: the Figure-4 scalability
//! grid rerun across page-size ladders the 2007 paper's Opterons did not
//! have. Four machine presets share the Opteron 270's topology, caches
//! and cost model, so the translation architecture is the only variable:
//!
//! * `Opteron270-2x2` — the paper's x86-64 ladder (4 KB, 2 MB);
//! * `ModernX86-2x2` — adds the 1 GB third rung (`Rung(2)`);
//! * `ARM64-2x2-4K` — 4 KB granule with 64 KB contiguous-bit blocks and
//!   2 MB L2 blocks;
//! * `ARM64-2x2-16K` — 16 KB granule with 2 MB contiguous-bit blocks and
//!   32 MB L2 blocks.
//!
//! Every rung of each machine's ladder runs as its own page policy
//! (`PagePolicy::Rung(r)`), so each table has one run-time column per
//! rung plus the improvement of the ladder's *top* rung over the base
//! granule — directly comparable to Figure 4's 4 KB-vs-2 MB column
//! (whose ladder has exactly those two rungs).
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ext_arch [S|W|A]
//! [--backend=cycle|analytic]`, plus the sweep-store flags of
//! [`lpomp_bench::SweepCli`] (`--store`, `--shard i/n`, `--merge n`,
//! `--jsonl FILE`).

use lpomp::prelude::*;
use lpomp_bench::{backend_from_args, class_from_args, improvement_pct, sweep_cli_from_args};

fn main() {
    let class = class_from_args();
    let backend = backend_from_args();
    let cli = sweep_cli_from_args();
    let sink = cli.sink();
    let tag = match backend {
        BackendKind::CycleExact => String::new(),
        other => format!(", backend {other}"),
    };
    println!("Extension E7: Figure-4 scalability across translation architectures (class {class}{tag})\n");

    let machines = [
        opteron_2x2(),
        modern_x86_2x2(),
        arm64_2x2_4k(),
        arm64_2x2_16k(),
    ];
    for machine in machines {
        let arch = machine.arch();
        let ladder = arch.ladder();
        // One policy per rung of this machine's ladder — a per-machine
        // sweep, because a rank is only meaningful against its ladder.
        let policies: Vec<PagePolicy> = (0..ladder.len())
            .map(|r| PagePolicy::Rung(r as u8))
            .collect();
        let spec = SweepSpec {
            apps: AppKind::PAPER_FIVE.to_vec(),
            class,
            machines: vec![machine.clone()],
            policies: policies.clone(),
            threads: figure4_thread_counts(&machine),
            opts: RunOpts::default(),
            backend,
        };
        let Some(results) = cli.execute(&spec, sink.as_ref()) else {
            continue; // shard mode: this slice is in the store
        };
        println!(
            "== {} (arch {}: {} ladder) ==\n",
            machine.name,
            arch.descriptor(),
            ladder
                .iter()
                .map(|r| r.size.to_string())
                .collect::<Vec<_>>()
                .join("/")
        );
        for app in AppKind::PAPER_FIVE {
            let mut headers = vec!["machine".to_owned(), "app".to_owned(), "threads".to_owned()];
            for rung in ladder {
                headers.push(format!("{} (s)", rung.size));
            }
            headers.push("improvement".to_owned());
            let mut t = TextTable::new(headers);
            for &n in &spec.threads {
                let mut row = vec![machine.name.to_string(), app.to_string(), n.to_string()];
                let per_rung: Vec<&RunRecord> = policies
                    .iter()
                    .map(|&p| {
                        results
                            .get(app, machine.name, p, n)
                            .expect("grid covers config")
                    })
                    .collect();
                for rec in &per_rung {
                    row.push(fnum(rec.seconds, 3));
                }
                row.push(format!(
                    "{}%",
                    fnum(
                        improvement_pct(per_rung[0], per_rung[per_rung.len() - 1]),
                        1
                    )
                ));
                t.row(row);
            }
            println!("{}", t.render());
            lpomp_bench::maybe_write_csv(
                &format!(
                    "ext_arch_{}_{}",
                    arch.descriptor(),
                    app.name().to_lowercase()
                ),
                &t,
            );
        }
    }
}
