//! Regenerates the paper's **Figure 3**: aggregate instruction-TLB misses
//! per second of run time for BT, CG, FT, SP, MG at 4 threads on the
//! Opteron, with the binary in 4 KB pages.
//!
//! The paper's point (§4.3): the highest rate (MG, ≈0.45 misses/second)
//! corresponds to a penalty of well under a microsecond per second of run
//! time, so ITLB misses are negligible and large pages for *code* are not
//! worth pursuing. The harness verifies the same conclusion holds here:
//! every application's ITLB-miss cycle overhead is below 0.1% of run time.
//!
//! The five runs execute through the parallel sweep harness
//! (`LPOMP_WORKERS` overrides the worker count).
//!
//! Usage: `cargo run --release -p lpomp-bench --bin fig3 [S|W|A]`
//!
//! Sweep-store flags (see [`lpomp_bench::SweepCli`]): `--store DIR`,
//! `--shard i/n`, `--merge n`, `--jsonl FILE`.

use lpomp::prelude::*;
use lpomp_bench::{class_from_args, sweep_cli_from_args};

fn main() {
    let class = class_from_args();
    let cli = sweep_cli_from_args();
    let sink = cli.sink();
    println!(
        "Figure 3: Aggregate ITLB misses/second, 4 threads, Opteron,\n\
         binary in 4KB pages (class {class})\n"
    );
    let spec = SweepSpec {
        apps: AppKind::PAPER_FIVE.to_vec(),
        class,
        machines: vec![opteron_2x2()],
        policies: vec![PagePolicy::Small4K],
        threads: vec![4],
        opts: RunOpts::default(),
        backend: BackendKind::CycleExact,
    };
    let Some(results) = cli.execute(&spec, sink.as_ref()) else {
        return; // shard mode: this slice is in the store; nothing to render
    };
    let mut t = TextTable::new(vec![
        "app",
        "itlb misses",
        "run time (s)",
        "misses/second",
        "est. overhead",
    ]);
    for app in AppKind::PAPER_FIVE {
        let r = results
            .get(app, "Opteron", PagePolicy::Small4K, 4)
            .expect("grid covers config");
        // Paper's arithmetic: misses/second x ~200 cycles per miss at
        // 2 GHz ⇒ fraction of each second lost to ITLB misses.
        let rate = r.itlb_miss_rate();
        let overhead = rate * 200.0 / 2.0e9;
        t.row(vec![
            app.to_string(),
            r.itlb_misses().to_string(),
            fnum(r.seconds, 4),
            fnum(rate, 2),
            format!("{:.6}%", overhead * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(Conclusion, as in the paper: ITLB misses are not a significant\n\
         source of overhead; large pages for code are not pursued.)"
    );
}
