//! Harness benchmark: host wall-clock of the paper's Figure 4 sweep,
//! emitted as machine-readable JSON (`BENCH_sweep.json`).
//!
//! Three timed passes over the same grid:
//!
//! 1. the cycle engine on a single worker (the serial baseline);
//! 2. the cycle engine on [`default_workers`] workers (`LPOMP_WORKERS`
//!    overrides) — byte-identical records, asserted here;
//! 3. the analytic backend, after a separately-timed one-time capture
//!    pass — each config entry records its `host_seconds` under both
//!    backends and the per-config `speedup` of analytic evaluation over
//!    cycle simulation (the ISSUE's ≥50× bar at class W).
//!
//! On hosts with a single CPU the parallel speedup is necessarily ~1.0;
//! the JSON carries `host_cpus` so readers can interpret the number. On
//! a 4-core host the class-W sweep is expected to run ≥2× faster in
//! parallel.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin bench_json [S|W|A]`
//! (writes `BENCH_sweep.json` in the current directory).

use std::time::Instant;

use lpomp::prelude::*;
use lpomp_bench::class_from_args;
use lpomp_core::cached_profile;

/// Minimal JSON string escaping for the identifiers we emit.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let class = class_from_args();
    let spec = SweepSpec::figure4(class);
    // The sweep's own grid, flattened here so each cell can be timed on
    // the worker that runs it.
    let grid: Vec<(lpomp_machine::MachineConfig, AppKind, PagePolicy, usize)> = spec
        .machines
        .iter()
        .flat_map(|machine| {
            let (apps, policies, threads) = (&spec.apps, &spec.policies, &spec.threads);
            apps.iter().flat_map(move |&app| {
                policies.iter().flat_map(move |&policy| {
                    threads
                        .iter()
                        .filter(|&&t| t <= machine.contexts())
                        .map(move |&t| (machine.clone(), app, policy, t))
                })
            })
        })
        .collect();

    let workers = default_workers();
    let mut sweeps = Vec::new();
    let mut all_records = Vec::new();
    for &w in &[1, workers] {
        let t0 = Instant::now();
        let timed = par_map(&grid, w, |_, (machine, app, policy, threads)| {
            let r0 = Instant::now();
            let rec = run_sim(
                *app,
                class,
                machine.clone(),
                *policy,
                *threads,
                RunOpts::default(),
            );
            (rec, r0.elapsed().as_secs_f64())
        });
        let total = t0.elapsed().as_secs_f64();
        all_records.push(timed.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>());
        sweeps.push((w, total, timed));
        eprintln!("workers={w}: {total:.2}s");
    }
    assert_eq!(
        all_records[0], all_records[1],
        "parallel sweep records must be byte-identical to the serial run"
    );

    // Analytic backend: capture once per (app, threads), timed apart so
    // the per-config numbers measure steady-state evaluation.
    let t0 = Instant::now();
    let mut seen = std::collections::BTreeSet::new();
    for (_, app, _, threads) in &grid {
        if seen.insert((app.name(), *threads)) {
            cached_profile(*app, class, *threads);
        }
    }
    let capture_total = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let analytic: Vec<(RunRecord, f64)> = grid
        .iter()
        .map(|(machine, app, policy, threads)| {
            let r0 = Instant::now();
            let rec = run_backend(
                BackendKind::Analytic,
                *app,
                class,
                machine.clone(),
                *policy,
                *threads,
                RunOpts::default(),
            );
            (rec, r0.elapsed().as_secs_f64())
        })
        .collect();
    let analytic_total = t0.elapsed().as_secs_f64();
    eprintln!("analytic: capture {capture_total:.2}s, evaluate {analytic_total:.3}s");

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (serial_total, parallel_total) = (sweeps[0].1, sweeps[1].1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fig4_sweep\",\n");
    out.push_str(&format!("  \"class\": \"{class}\",\n"));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!(
        "  \"serial_workers\": 1,\n  \"parallel_workers\": {workers},\n"
    ));
    out.push_str(&format!(
        "  \"serial_total_seconds\": {serial_total:.3},\n  \"parallel_total_seconds\": {parallel_total:.3},\n"
    ));
    out.push_str(&format!(
        "  \"parallel_speedup\": {:.3},\n",
        serial_total / parallel_total
    ));
    // Per-config backend speedup: serial cycle host time over analytic
    // host time, the like-for-like single-worker comparison.
    let serial_timed = &sweeps[0].2;
    let speedups: Vec<f64> = serial_timed
        .iter()
        .zip(&analytic)
        .map(|((_, cyc_s), (_, ana_s))| cyc_s / ana_s.max(1e-9))
        .collect();
    let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let min_speedup = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "  \"analytic_capture_seconds\": {capture_total:.3},\n  \
         \"analytic_total_seconds\": {analytic_total:.6},\n  \
         \"analytic_mean_config_speedup\": {mean_speedup:.1},\n  \
         \"analytic_min_config_speedup\": {min_speedup:.1},\n"
    ));
    out.push_str(&format!(
        "  \"records_identical\": true,\n  \"note\": \"each config is an independent deterministic simulation; \
         worker count changes host time only. Speedup is bounded by host_cpus ({host_cpus} here); \
         a >=2x class-W speedup is expected on >=4 cores. Analytic speedups compare one config's serial \
         cycle simulation against its analytic evaluation, after the one-time capture pass.\",\n"
    ));
    out.push_str("  \"configs\": [\n");
    let (_, _, timed) = &sweeps[1];
    for (i, ((machine, app, policy, threads), (rec, host_s))) in
        grid.iter().zip(timed.iter()).enumerate()
    {
        let (ana_rec, ana_s) = &analytic[i];
        let head = format!(
            "\"machine\": \"{}\", \"app\": \"{}\", \"policy\": \"{}\", \"threads\": {}",
            esc(machine.name),
            esc(app.name()),
            esc(policy.label()),
            threads,
        );
        out.push_str(&format!(
            "    {{{head}, \"backend\": \"cycle\", \"host_seconds\": {:.3}, \"sim_seconds\": {:.6}}},\n",
            host_s, rec.seconds,
        ));
        out.push_str(&format!(
            "    {{{head}, \"backend\": \"analytic\", \"host_seconds\": {:.6}, \"sim_seconds\": {:.6}, \
             \"speedup\": {:.1}}}{}\n",
            ana_s,
            ana_rec.seconds,
            speedups[i],
            if i + 1 == grid.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write("BENCH_sweep.json", &out) {
        eprintln!("error: could not write BENCH_sweep.json: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote BENCH_sweep.json: serial {serial_total:.2}s, {workers} workers {parallel_total:.2}s"
    );
}
