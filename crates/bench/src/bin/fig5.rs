//! Regenerates the paper's **Figure 5**: data-TLB misses at 4 threads on
//! the Opteron, with 4 KB and 2 MB pages, normalized to the 4 KB run of
//! each application.
//!
//! Paper shape: CG, SP and MG are reduced by a factor of 10 or more
//! (normalized 2 MB bars near zero); BT and FT see much smaller
//! reductions.
//!
//! Runs the 5-app × 2-policy grid through the parallel sweep harness
//! (`LPOMP_WORKERS` overrides the worker count); output is identical to
//! the serial loop.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin fig5 [S|W|A]`
//!
//! Sweep-store flags (see [`lpomp_bench::SweepCli`]): `--store DIR`,
//! `--shard i/n`, `--merge n`, `--jsonl FILE`.

use lpomp::prelude::*;
use lpomp_bench::{class_from_args, sweep_cli_from_args};

fn main() {
    let class = class_from_args();
    let cli = sweep_cli_from_args();
    let sink = cli.sink();
    println!("Figure 5: Normalized DTLB misses at 4 threads, Opteron (class {class})\n");
    let spec = SweepSpec {
        apps: AppKind::PAPER_FIVE.to_vec(),
        class,
        machines: vec![opteron_2x2()],
        policies: vec![PagePolicy::Small4K, PagePolicy::Large2M],
        threads: vec![4],
        opts: RunOpts::default(),
        backend: BackendKind::CycleExact,
    };
    let Some(results) = cli.execute(&spec, sink.as_ref()) else {
        return; // shard mode: this slice is in the store; nothing to render
    };
    let mut t = TextTable::new(vec![
        "app",
        "4KB misses",
        "2MB misses",
        "normalized 4KB",
        "normalized 2MB",
        "reduction",
    ]);
    for app in AppKind::PAPER_FIVE {
        let small = results
            .get(app, "Opteron", PagePolicy::Small4K, 4)
            .expect("grid covers config");
        let large = results
            .get(app, "Opteron", PagePolicy::Large2M, 4)
            .expect("grid covers config");
        let n = normalized(small.dtlb_misses(), large.dtlb_misses());
        t.row(vec![
            app.to_string(),
            small.dtlb_misses().to_string(),
            large.dtlb_misses().to_string(),
            "1.00".to_owned(),
            fnum(n.normalized_variant(), 3),
            format!("{}x", fnum(n.reduction_factor(), 1)),
        ]);
    }
    println!("{}", t.render());
    lpomp_bench::maybe_write_csv("fig5", &t);
}
