//! Regenerates the paper's **Figure 5**: data-TLB misses at 4 threads on
//! the Opteron, with 4 KB and 2 MB pages, normalized to the 4 KB run of
//! each application.
//!
//! Paper shape: CG, SP and MG are reduced by a factor of 10 or more
//! (normalized 2 MB bars near zero); BT and FT see much smaller
//! reductions.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin fig5 [S|W|A]`

use lpomp_bench::{class_from_args, run_pair};
use lpomp_machine::opteron_2x2;
use lpomp_npb::AppKind;
use lpomp_prof::report::normalized;
use lpomp_prof::table::fnum;
use lpomp_prof::TextTable;

fn main() {
    let class = class_from_args();
    println!("Figure 5: Normalized DTLB misses at 4 threads, Opteron (class {class})\n");
    let mut t = TextTable::new(vec![
        "app",
        "4KB misses",
        "2MB misses",
        "normalized 4KB",
        "normalized 2MB",
        "reduction",
    ]);
    for app in AppKind::PAPER_FIVE {
        let (small, large) = run_pair(app, class, opteron_2x2(), 4);
        let n = normalized(small.dtlb_misses(), large.dtlb_misses());
        t.row(vec![
            app.to_string(),
            small.dtlb_misses().to_string(),
            large.dtlb_misses().to_string(),
            "1.00".to_owned(),
            fnum(n.normalized_variant(), 3),
            format!("{}x", fnum(n.reduction_factor(), 1)),
        ]);
    }
    println!("{}", t.render());
    lpomp_bench::maybe_write_csv("fig5", &t);
}
