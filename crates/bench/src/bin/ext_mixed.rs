//! Extension **E1**: the paper's §6 future-work proposal — *"the kernel
//! and memory allocation library should be able to allocate a mix of
//! large pages for the bigger allocation and the typical 4KB pages for
//! the smaller allocations"*.
//!
//! Compares all three policies on every application: 4 KB everywhere,
//! 2 MB everywhere, and Mixed (2 MB for allocations ≥ 256 KB, 4 KB below).
//! Mixed should track the 2 MB policy's run time while consuming fewer
//! reserved large pages.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ext_mixed [S|W|A]`

use lpomp_bench::class_from_args;
use lpomp_core::{run_sim, PagePolicy, RunOpts};
use lpomp_machine::opteron_2x2;
use lpomp_npb::AppKind;
use lpomp_prof::table::fnum;
use lpomp_prof::TextTable;

fn main() {
    let class = class_from_args();
    println!("Extension E1: mixed page policy (class {class}, 4 threads, Opteron)\n");
    let mixed = PagePolicy::Mixed {
        threshold_bytes: 256 * 1024,
    };
    let mut t = TextTable::new(vec![
        "app",
        "4KB (s)",
        "2MB (s)",
        "mixed (s)",
        "mixed vs 2MB",
    ]);
    for app in AppKind::PAPER_FIVE {
        let small = run_sim(
            app,
            class,
            opteron_2x2(),
            PagePolicy::Small4K,
            4,
            RunOpts::default(),
        );
        let large = run_sim(
            app,
            class,
            opteron_2x2(),
            PagePolicy::Large2M,
            4,
            RunOpts::default(),
        );
        let mix = run_sim(app, class, opteron_2x2(), mixed, 4, RunOpts::default());
        t.row(vec![
            app.to_string(),
            fnum(small.seconds, 4),
            fnum(large.seconds, 4),
            fnum(mix.seconds, 4),
            format!("{}%", fnum((mix.seconds / large.seconds - 1.0) * 100.0, 2)),
        ]);
    }
    println!("{}", t.render());
}
