//! Extension **E1**: the paper's §6 future-work proposal — *"the kernel
//! and memory allocation library should be able to allocate a mix of
//! large pages for the bigger allocation and the typical 4KB pages for
//! the smaller allocations"*.
//!
//! Compares all three policies on every application: 4 KB everywhere,
//! 2 MB everywhere, and Mixed (2 MB for allocations ≥ 256 KB, 4 KB below).
//! Mixed should track the 2 MB policy's run time while consuming fewer
//! reserved large pages.
//!
//! The 5-app × 3-policy grid executes through the parallel sweep harness
//! (`LPOMP_WORKERS` overrides the worker count).
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ext_mixed [S|W|A]`

use lpomp::prelude::*;
use lpomp_bench::class_from_args;

fn main() {
    let class = class_from_args();
    println!("Extension E1: mixed page policy (class {class}, 4 threads, Opteron)\n");
    let mixed = PagePolicy::Mixed {
        threshold_bytes: 256 * 1024,
    };
    let results = SweepSpec {
        apps: AppKind::PAPER_FIVE.to_vec(),
        class,
        machines: vec![opteron_2x2()],
        policies: vec![PagePolicy::Small4K, PagePolicy::Large2M, mixed],
        threads: vec![4],
        opts: RunOpts::default(),
        backend: BackendKind::CycleExact,
    }
    .run();
    let mut t = TextTable::new(vec![
        "app",
        "4KB (s)",
        "2MB (s)",
        "mixed (s)",
        "mixed vs 2MB",
    ]);
    for app in AppKind::PAPER_FIVE {
        let small = results
            .get(app, "Opteron", PagePolicy::Small4K, 4)
            .expect("grid covers config");
        let large = results
            .get(app, "Opteron", PagePolicy::Large2M, 4)
            .expect("grid covers config");
        let mix = results
            .get(app, "Opteron", mixed, 4)
            .expect("grid covers config");
        t.row(vec![
            app.to_string(),
            fnum(small.seconds, 4),
            fnum(large.seconds, 4),
            fnum(mix.seconds, 4),
            format!("{}%", fnum((mix.seconds / large.seconds - 1.0) * 100.0, 2)),
        ]);
    }
    println!("{}", t.render());
}
