//! Ablation **A1**: startup preallocation vs demand faulting of the
//! large-page shared heap — the §3.3 design decision.
//!
//! The paper argues that because an OpenMP job owns its node, the runtime
//! should prefault the entire shared region at startup: the faults move
//! out of the timed region and the allocator stays trivial. This ablation
//! quantifies it: with `OnDemand`, every first touch during the run pays
//! a page-fault (and the walk behind it); with `Prefault` the run itself
//! takes zero faults.
//!
//! The populate policy is a [`SystemBuilder`] axis outside `SweepSpec`,
//! so the eight runs fan out with [`lpomp_core::par_map`] directly
//! (`LPOMP_WORKERS` overrides the worker count).
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ablation_prealloc [S|W|A]`

use lpomp::prelude::*;
use lpomp_bench::class_from_args;

fn main() {
    let class = class_from_args();
    println!("Ablation A1: preallocation vs demand faulting (class {class}, CG + MG, 4 threads, Opteron)\n");
    let mut t = TextTable::new(vec![
        "app",
        "pages",
        "populate",
        "run time (s)",
        "faults in run",
        "fault cycles",
        "slowdown",
    ]);
    let grid: Vec<(AppKind, PagePolicy)> = [AppKind::Cg, AppKind::Mg]
        .into_iter()
        .flat_map(|app| {
            [PagePolicy::Small4K, PagePolicy::Large2M]
                .into_iter()
                .map(move |policy| (app, policy))
        })
        .collect();
    let pairs = par_map(&grid, default_workers(), |_, &(app, policy)| {
        let run = |populate| {
            let b = System::builder(opteron_2x2())
                .policy(policy)
                .threads(4)
                .populate(populate);
            run_system(app, class, &b, RunOpts::default())
        };
        (run(PopulatePolicy::Prefault), run(PopulatePolicy::OnDemand))
    });
    for (&(app, policy), (pre, lazy)) in grid.iter().zip(&pairs) {
        for (label, r) in [("prefault", pre), ("on-demand", lazy)] {
            t.row(vec![
                app.to_string(),
                policy.to_string(),
                label.to_owned(),
                fnum(r.seconds, 4),
                r.counters.get(Event::PageFaults).to_string(),
                r.counters
                    .get(Event::PageFaults)
                    .saturating_mul(2500)
                    .to_string(),
                format!("{}%", fnum((r.seconds / pre.seconds - 1.0) * 100.0, 2)),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "(The paper's choice: preallocate at startup — the faults leave the\n\
         timed region entirely, and a batch HPC node has the memory to spare.\n\
         Note how 2MB pages need 512x fewer faults even on demand: large\n\
         pages also amortize fault overhead, a secondary benefit.)"
    );
}
