//! Cross-validates the **analytic backend** against the cycle engine on
//! the full Figure 4 grid: every (machine × app × policy × thread count)
//! cell is evaluated by both backends and the relative errors reported
//! against the declared tolerance bands
//! ([`lpomp_core::XVAL_SECONDS_BAND_PCT`] /
//! [`lpomp_core::XVAL_DTLB_BAND_PCT`]).
//!
//! Both backends are deterministic, so this output is a golden
//! (`results/xval_W.txt`): the measured errors are part of the repo's
//! regression surface, not just a pass/fail bit. The process exits
//! nonzero if any cell leaves its band.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin xval [S|W|A]`
//!
//! Sweep-store flags (see [`lpomp_bench::SweepCli`]): `--store DIR`,
//! `--shard i/n`, `--merge n`, `--jsonl FILE`. The binary runs *two*
//! sweeps (cycle-exact and analytic) with distinct sweep ids; shard and
//! merge handle both, sharing one store directory.

use lpomp::prelude::*;
use lpomp_bench::{class_from_args, sweep_cli_from_args};
use lpomp_core::{
    xval_dtlb_err_pct, xval_seconds_err_pct, XVAL_DTLB_BAND_PCT, XVAL_SECONDS_BAND_PCT,
};

fn main() {
    let class = class_from_args();
    let cli = sweep_cli_from_args();
    let sink = cli.sink();
    println!("Cross-validation: analytic backend vs cycle engine, Figure 4 grid (class {class})\n");
    let spec = SweepSpec::figure4(class);
    let exact = cli.execute(&spec, sink.as_ref());
    let fast = cli.execute(
        &spec.clone().with_backend(BackendKind::Analytic),
        sink.as_ref(),
    );
    let (Some(exact), Some(fast)) = (exact, fast) else {
        return; // shard mode: both sweeps' slices are in the store
    };

    let mut t = TextTable::new(vec![
        "machine",
        "app",
        "policy",
        "threads",
        "cycle (s)",
        "analytic (s)",
        "time err",
        "cycle dtlb",
        "analytic dtlb",
        "dtlb err",
    ]);
    let mut worst_time = (0.0f64, String::new());
    let mut worst_dtlb = (0.0f64, String::new());
    for (e, a) in exact.records().iter().zip(fast.records()) {
        assert!(
            e.app == a.app
                && e.machine == a.machine
                && e.policy == a.policy
                && e.threads == a.threads,
            "grids must align"
        );
        let te = xval_seconds_err_pct(a.seconds, e.seconds);
        let de = xval_dtlb_err_pct(a.dtlb_misses(), e.dtlb_misses());
        let tag = format!(
            "{} {} {} {}t",
            e.machine,
            e.app,
            e.policy.label(),
            e.threads
        );
        if te > worst_time.0 {
            worst_time = (te, tag.clone());
        }
        if de > worst_dtlb.0 {
            worst_dtlb = (de, tag);
        }
        t.row(vec![
            e.machine.to_string(),
            e.app.to_string(),
            e.policy.label().to_string(),
            e.threads.to_string(),
            fnum(e.seconds, 3),
            fnum(a.seconds, 3),
            format!("{}%", fnum(te, 2)),
            e.dtlb_misses().to_string(),
            a.dtlb_misses().to_string(),
            format!("{}%", fnum(de, 2)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "worst run-time error:  {}% at {} (band {}%)",
        fnum(worst_time.0, 2),
        worst_time.1,
        fnum(XVAL_SECONDS_BAND_PCT, 1)
    );
    println!(
        "worst DTLB-miss error: {}% at {} (band {}%)",
        fnum(worst_dtlb.0, 2),
        worst_dtlb.1,
        fnum(XVAL_DTLB_BAND_PCT, 1)
    );
    let pass = worst_time.0 <= XVAL_SECONDS_BAND_PCT && worst_dtlb.0 <= XVAL_DTLB_BAND_PCT;
    println!("{}", if pass { "PASS" } else { "FAIL" });
    lpomp_bench::maybe_write_csv(&format!("xval_{class}"), &t);
    if !pass {
        std::process::exit(1);
    }
}
