//! Diagnostic: per-app cycle/miss breakdown under both page policies.
//! Not a paper figure — a calibration and debugging aid.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin diag [class] [APP]`

use lpomp::prelude::*;
use lpomp_bench::run_pair;

fn main() {
    let class = match std::env::args().nth(1).as_deref() {
        Some("S") => Class::S,
        Some("A") => Class::A,
        _ => Class::W,
    };
    let filter = std::env::args().nth(2);
    let mut t = TextTable::new(vec![
        "app",
        "pages",
        "seconds",
        "Gcycles",
        "loads",
        "stores",
        "dtlb_miss",
        "miss%",
        "walk_cyc%",
        "l2_miss",
        "itlb_miss",
        "faults",
    ]);
    for app in AppKind::ALL {
        if let Some(f) = &filter {
            if !app.name().eq_ignore_ascii_case(f) {
                continue;
            }
        }
        let (small, large) = run_pair(app, class, opteron_2x2(), 4);
        for r in [&small, &large] {
            let c = &r.counters;
            let accesses = c.get(Event::Loads) + c.get(Event::Stores);
            let cycles = c.get(Event::Cycles);
            t.row(vec![
                r.app.to_string(),
                r.policy.to_string(),
                fnum(r.seconds, 4),
                fnum(cycles as f64 / 1e9, 3),
                format!("{:.1}M", c.get(Event::Loads) as f64 / 1e6),
                format!("{:.1}M", c.get(Event::Stores) as f64 / 1e6),
                format!("{}", c.get(Event::DtlbMisses)),
                fnum(
                    100.0 * c.get(Event::DtlbMisses) as f64 / accesses.max(1) as f64,
                    2,
                ),
                fnum(
                    100.0 * c.get(Event::WalkCycles) as f64 / cycles.max(1) as f64,
                    2,
                ),
                format!("{}", c.get(Event::L2Misses)),
                format!("{}", c.get(Event::ItlbMisses)),
                format!("{}", c.get(Event::PageFaults)),
            ]);
        }
    }
    println!("{}", t.render());
}
