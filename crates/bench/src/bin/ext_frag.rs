//! Extension **E5**: external fragmentation vs. promotion strategy.
//!
//! The paper's boot-time reservation exists because a long-running
//! system's buddy heap fragments: free memory abounds, free *2 MB blocks*
//! do not. This experiment ages the heap to a chosen severity (the
//! fraction of free order-9 blocks fragmented — each left holding one
//! live, movable 4 KB page) and compares, for CG on the Opteron at 4
//! threads:
//!
//! 1. **2MB preallocated** — the paper's system; reservation happens at
//!    boot, *before* fragmentation, so aging cannot touch it;
//! 2. **one-shot THP** — run on 4 KB pages, then a single stop-the-world
//!    collapse: on an aged heap it finds no order-9 blocks and reports
//!    `blocked` chunks, so the rerun stays at 4 KB speed;
//! 3. **khugepaged + compaction** — the incremental daemon scans at
//!    barriers, migrates the movable pages out of aged blocks
//!    (compaction), collapses chunk by chunk within its cycle budget, and
//!    reaches preallocated-class steady state with no reservation at all.
//!
//! The grid runs through a [`KeyedGrid`], so the sweep-store flags work
//! here too: `--store DIR` replays cached cells, `--shard i/n` /
//! `--merge n` split the grid across processes, `--jsonl FILE` streams
//! cells as they complete.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ext_frag
//!         [S|W|A] [--store DIR] [--shard i/n | --merge n] [--jsonl FILE]`

use lpomp::prelude::*;
use lpomp_bench::{class_from_args, sweep_cli_from_args};
use lpomp_prof::Json;
use lpomp_vm::{age_heap, PageSize};

const SEVERITIES: [f64; 3] = [0.0, 0.5, 1.0];

struct Aged {
    label: &'static str,
    severity: f64,
    frag_index: f64,
    run1: f64,
    run2: f64,
    misses2: u64,
    blocked: u64,
    collapsed: u64,
    compacted: u64,
    shootdowns: u64,
}

/// One cell of the E5 grid: the unaged preallocated baseline or an aged
/// scenario row.
enum Cell {
    Prealloc(Box<RunRecord>),
    Aged(Aged),
}

impl GridCell for Cell {
    fn to_store_json(&self) -> String {
        match self {
            Cell::Prealloc(r) => {
                format!("{{\"kind\":\"prealloc\",\"record\":{}}}", r.to_store_json())
            }
            Cell::Aged(a) => format!(
                "{{\"kind\":\"aged\",\"label\":\"{}\",\"severity\":{},\"frag_index\":{},\
                 \"run1\":{},\"run2\":{},\"misses2\":{},\"blocked\":{},\"collapsed\":{},\
                 \"compacted\":{},\"shootdowns\":{}}}",
                a.label,
                a.severity,
                a.frag_index,
                a.run1,
                a.run2,
                a.misses2,
                a.blocked,
                a.collapsed,
                a.compacted,
                a.shootdowns
            ),
        }
    }

    fn from_store_json(j: &Json, key: &StoreKey) -> Option<Self> {
        let num = |k: &str| j.get(k).and_then(Json::as_num);
        let int = |k: &str| num(k).map(|n| n as u64);
        match j.get("kind").and_then(Json::as_str)? {
            "prealloc" => Some(Cell::Prealloc(Box::new(RunRecord::from_store_json(
                j.get("record")?,
                key,
            )?))),
            "aged" => {
                let label = match j.get("label").and_then(Json::as_str)? {
                    "one-shot THP" => "one-shot THP",
                    "daemon+compaction" => "daemon+compaction",
                    _ => return None,
                };
                Some(Cell::Aged(Aged {
                    label,
                    severity: num("severity")?,
                    frag_index: num("frag_index")?,
                    run1: num("run1")?,
                    run2: num("run2")?,
                    misses2: int("misses2")?,
                    blocked: int("blocked")?,
                    collapsed: int("collapsed")?,
                    compacted: int("compacted")?,
                    shootdowns: int("shootdowns")?,
                }))
            }
            _ => None,
        }
    }
}

/// Build a THP system, age its free memory, and return the system plus
/// the post-aging fragmentation index at order 9.
fn aged_system(builder: &SystemBuilder, kernel: &mut dyn Kernel, severity: f64) -> (System, f64) {
    let mut sys = builder.build(kernel).unwrap();
    let e = sys.team.engine_mut().unwrap();
    age_heap(&mut e.machine.frames, &mut e.aspace, severity).unwrap();
    let frag_index = e
        .machine
        .frames
        .fragmentation_index(PageSize::Large2M.buddy_order());
    (sys, frag_index)
}

/// Scenario 2: one-shot stop-the-world collapse on an aged heap.
fn one_shot(app: AppKind, class: Class, severity: f64) -> Aged {
    let mut kernel = app.build(class);
    let b = System::builder(opteron_2x2()).threads(4).thp();
    let (mut sys, frag_index) = aged_system(&b, kernel.as_mut(), severity);
    kernel.run(&mut sys.team);
    let run1 = sys.team.elapsed_seconds();
    let report = sys.promote_heap().unwrap();
    sys.team.engine_mut().unwrap().reset_timing();
    kernel.run(&mut sys.team);
    Aged {
        label: "one-shot THP",
        severity,
        frag_index,
        run1,
        run2: sys.team.elapsed_seconds(),
        misses2: sys.team.aggregate_counters().get(Event::DtlbMisses),
        blocked: report.skipped_no_memory,
        collapsed: report.promoted,
        compacted: 0,
        shootdowns: 0,
    }
}

/// Scenario 3: the incremental khugepaged daemon with compaction.
fn daemon(app: AppKind, class: Class, severity: f64) -> Aged {
    let mut kernel = app.build(class);
    let b = System::builder(opteron_2x2()).threads(4).thp_daemon(true);
    let (mut sys, frag_index) = aged_system(&b, kernel.as_mut(), severity);
    kernel.run(&mut sys.team);
    let run1 = sys.team.elapsed_seconds();
    let agg1 = sys.team.aggregate_counters();
    sys.team.engine_mut().unwrap().reset_timing();
    kernel.run(&mut sys.team);
    Aged {
        label: "daemon+compaction",
        severity,
        frag_index,
        run1,
        run2: sys.team.elapsed_seconds(),
        misses2: sys.team.aggregate_counters().get(Event::DtlbMisses),
        blocked: 0,
        collapsed: agg1.get(Event::PagesCollapsed),
        compacted: agg1.get(Event::PagesCompacted),
        shootdowns: agg1.get(Event::TlbShootdowns),
    }
}

fn main() {
    let class = class_from_args();
    let cli = sweep_cli_from_args();
    let app = AppKind::Cg;
    println!(
        "Extension E5: fragmentation vs promotion strategy ({app}, class {class}, \
         4 threads, Opteron)\n"
    );
    println!(
        "severity = fraction of free 2MB blocks aged before the app starts\n\
         (each aged block keeps one live movable 4KB page; the rest is free)\n"
    );

    // Every cell is an independent system; run the grid in parallel.
    enum Job {
        Prealloc,
        OneShot(f64),
        Daemon(f64),
    }
    let mut jobs = vec![Job::Prealloc];
    for &s in &SEVERITIES {
        jobs.push(Job::OneShot(s));
        jobs.push(Job::Daemon(s));
    }
    // The typed key axes cover (machine, app, class, policy, threads);
    // the aging scenario rides in the variant descriptor.
    let keys: Vec<StoreKey> = jobs
        .iter()
        .map(|job| {
            let (policy, variant) = match job {
                Job::Prealloc => (PagePolicy::Large2M, "frag=prealloc".to_owned()),
                Job::OneShot(s) => (PagePolicy::Small4K, format!("frag=oneshot:severity={s}")),
                Job::Daemon(s) => (PagePolicy::Small4K, format!("frag=daemon:severity={s}")),
            };
            StoreKey::new(
                &opteron_2x2(),
                app,
                class,
                policy,
                4,
                RunOpts::default(),
                BackendKind::CycleExact,
            )
            .with_variant(&variant)
        })
        .collect();
    let grid = KeyedGrid::new(keys, |i, _key| match jobs[i] {
        Job::Prealloc => Cell::Prealloc(Box::new(run_sim(
            app,
            class,
            opteron_2x2(),
            PagePolicy::Large2M,
            4,
            RunOpts::default(),
        ))),
        Job::OneShot(s) => Cell::Aged(one_shot(app, class, s)),
        Job::Daemon(s) => Cell::Aged(daemon(app, class, s)),
    });
    let sink = cli.sink();
    let Some(cells) = cli.execute_keyed(&grid, sink.as_ref()) else {
        return; // shard mode: the slice and its manifest are in the store
    };

    let mut prealloc = None;
    let mut aged: Vec<Aged> = Vec::new();
    for c in cells {
        match c {
            Cell::Prealloc(r) => prealloc = Some(r),
            Cell::Aged(a) => aged.push(a),
        }
    }
    let prealloc = prealloc.expect("prealloc job ran");

    let mut t = TextTable::new(vec![
        "scenario",
        "severity",
        "frag idx",
        "run 1 (s)",
        "run 2 (s)",
        "dtlb miss 2",
        "blocked",
        "collapsed",
        "compacted",
        "shootdowns",
    ]);
    t.row(vec![
        "2MB preallocated".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        fnum(prealloc.seconds, 4),
        fnum(prealloc.seconds, 4),
        prealloc.dtlb_misses().to_string(),
        "0".to_owned(),
        "0".to_owned(),
        "0".to_owned(),
        "0".to_owned(),
    ]);
    for a in &aged {
        t.row(vec![
            a.label.to_owned(),
            fnum(a.severity, 1),
            fnum(a.frag_index, 2),
            fnum(a.run1, 4),
            fnum(a.run2, 4),
            a.misses2.to_string(),
            a.blocked.to_string(),
            a.collapsed.to_string(),
            a.compacted.to_string(),
            a.shootdowns.to_string(),
        ]);
    }
    println!("{}", t.render());

    let worst_one_shot = aged
        .iter()
        .find(|a| a.label == "one-shot THP" && a.severity == 1.0)
        .unwrap();
    let worst_daemon = aged
        .iter()
        .find(|a| a.label == "daemon+compaction" && a.severity == 1.0)
        .unwrap();
    println!(
        "At full severity the one-shot collapse is blocked on {} chunks and its\n\
         rerun stays at 4KB speed; the daemon compacts {} pages, collapses {}\n\
         chunks at barriers, and its steady state reaches {}% of the\n\
         preallocated system's speed ({}s vs {}s) with zero boot-time reservation.",
        worst_one_shot.blocked,
        worst_daemon.compacted,
        worst_daemon.collapsed,
        fnum(100.0 * prealloc.seconds / worst_daemon.run2, 1),
        fnum(worst_daemon.run2, 4),
        fnum(prealloc.seconds, 4),
    );
}
