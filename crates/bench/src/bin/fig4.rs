//! Regenerates the paper's **Figure 4**: run time vs thread count for BT,
//! CG, FT, SP, MG on the Opteron (1, 2, 4 threads) and Xeon (1, 2, 4, 8
//! threads with hyper-threading), each with 4 KB and 2 MB pages.
//!
//! The whole grid is executed up front by the parallel sweep harness
//! (`LPOMP_WORKERS` overrides the worker count), then rendered in the
//! original order — the tables are byte-identical to the serial runner.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin fig4 [S|W|A]
//! [--backend=cycle|analytic]` — the analytic backend replays cached
//! reuse profiles (one capture per app × thread count) instead of
//! simulating every cell; golden output is the cycle-exact default.
//!
//! Sweep-store flags (see [`lpomp_bench::SweepCli`]): `--store DIR`
//! runs incrementally against a content-addressed result store (a
//! repeat run on unchanged code replays every record from disk),
//! `--shard i/n` runs one slice of the grid into the shared store,
//! `--merge n` assembles the shards, and `--jsonl FILE` streams one
//! record line per configuration as it completes.

use lpomp::prelude::*;
use lpomp_bench::{backend_from_args, class_from_args, improvement_pct, sweep_cli_from_args};

fn main() {
    let class = class_from_args();
    let backend = backend_from_args();
    let cli = sweep_cli_from_args();
    let sink = cli.sink();
    let tag = match backend {
        BackendKind::CycleExact => String::new(),
        other => format!(", backend {other}"),
    };
    println!("Figure 4: scalability with 4KB vs 2MB pages (class {class}{tag})\n");
    let spec = SweepSpec::figure4(class).with_backend(backend);
    let Some(results) = cli.execute(&spec, sink.as_ref()) else {
        return; // shard mode: this slice is in the store; nothing to render
    };
    for machine in [opteron_2x2(), xeon_2x2_ht()] {
        let threads = figure4_thread_counts(&machine);
        for app in AppKind::PAPER_FIVE {
            let mut t = TextTable::new(vec![
                "machine",
                "app",
                "threads",
                "4KB (s)",
                "2MB (s)",
                "improvement",
                "speedup 4KB",
                "speedup 2MB",
            ]);
            let mut base = (0.0f64, 0.0f64);
            for &n in &threads {
                let small = results
                    .get(app, machine.name, PagePolicy::Small4K, n)
                    .expect("grid covers config");
                let large = results
                    .get(app, machine.name, PagePolicy::Large2M, n)
                    .expect("grid covers config");
                if n == 1 {
                    base = (small.seconds, large.seconds);
                }
                t.row(vec![
                    machine.name.to_string(),
                    app.to_string(),
                    n.to_string(),
                    fnum(small.seconds, 3),
                    fnum(large.seconds, 3),
                    format!("{}%", fnum(improvement_pct(small, large), 1)),
                    fnum(base.0 / small.seconds, 2),
                    fnum(base.1 / large.seconds, 2),
                ]);
            }
            println!("{}", t.render());
            lpomp_bench::maybe_write_csv(
                &format!(
                    "fig4_{}_{}",
                    machine.name.to_lowercase(),
                    app.name().to_lowercase()
                ),
                &t,
            );
        }
    }
}
