//! Extension **E4**: the TLB-reach crossover map.
//!
//! A synthetic experiment the paper implies but never plots: sweep a
//! random-gather working set from 1 MB to 64 MB on the Opteron model and
//! measure the per-access cost under each page size. Table 1 predicts the
//! regimes:
//!
//! * ≤ 4 MB — inside the 4 KB L2-TLB reach: both page sizes fine (4 KB
//!   pays the L1-TLB-miss/L2-hit tax above 128 KB);
//! * 4–16 MB — past the 4 KB reach, inside the 16 MB 2 MB reach: the
//!   large-page window, where the paper's CG/SP/MG class-B working sets
//!   live;
//! * > 16 MB — past both reaches: 2 MB pages thrash their 8-entry L1
//!   > (no L2 backing!) and the advantage narrows again.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ext_reach`

use lpomp::prelude::*;
use lpomp_machine::{AccessMode, DataKind, Machine};
use lpomp_npb::Nprng;
use lpomp_vm::{AddressSpace, Backing, PageSize, Populate, PteFlags};

const ACCESSES: u64 = 200_000;

fn gather_cost(ws_bytes: u64, size: PageSize) -> (f64, u64) {
    let mut m = Machine::new(opteron_2x2());
    let mut asp = AddressSpace::new(&mut m.frames).unwrap();
    let base = asp
        .mmap(
            &mut m.frames,
            size.round_up(ws_bytes),
            size,
            PteFlags::rw(),
            Backing::Anonymous,
            Populate::Eager,
            "ws",
        )
        .unwrap();
    let mut c = Counters::new();
    let mut rng = Nprng::new_default();
    let mut cycles = 0u64;
    for _ in 0..ACCESSES {
        let off = (rng.next_f64() * ws_bytes as f64) as u64 & !7;
        cycles += m
            .data_access(
                &mut asp,
                0,
                base.add(off),
                DataKind::Read,
                AccessMode::Latency,
                &mut c,
            )
            .unwrap();
    }
    (cycles as f64 / ACCESSES as f64, c.get(Event::DtlbMisses))
}

fn main() {
    println!(
        "Extension E4: random-gather cost vs working-set size, Opteron\n\
         ({} accesses per point; reach boundaries: 4KB pages = 4MB, 2MB pages = 16MB)\n",
        ACCESSES
    );
    let mut t = TextTable::new(vec![
        "working set",
        "4KB cyc/access",
        "2MB cyc/access",
        "2MB gain",
        "4KB misses",
        "2MB misses",
    ]);
    for mb in [1u64, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64] {
        let ws = mb * 1024 * 1024;
        let (c4, m4) = gather_cost(ws, PageSize::Small4K);
        let (c2, m2) = gather_cost(ws, PageSize::Large2M);
        t.row(vec![
            format!("{mb}MB"),
            fnum(c4, 1),
            fnum(c2, 1),
            format!("{}%", fnum((1.0 - c2 / c4) * 100.0, 1)),
            m4.to_string(),
            m2.to_string(),
        ]);
    }
    println!("{}", t.render());
    lpomp_bench::maybe_write_csv("ext_reach", &t);
    println!(
        "(The gain peaks in the 4-16MB window and narrows beyond 16MB as the\n\
         8-entry 2MB L1 TLB starts thrashing — the paper's FT regime.)"
    );
}
