//! Extension **E6**: colocated mixed traffic on the multi-tenant machine.
//!
//! The paper evaluates one dedicated application per machine. Real
//! large-page deployments share the machine: a latency-sensitive small
//! job colocated with batch work sees its TLB state evicted — or, with
//! untagged TLBs, outright flushed — every time the scheduler switches
//! tenants. This experiment gang-schedules one batch CG job (2 threads,
//! the class given on the command line) with one or three
//! latency-sensitive CG class-S singletons on the Opteron, round-robin
//! with a 200 k-cycle timeslice, and sweeps:
//!
//! * **page size** — 4 KB vs preallocated 2 MB heaps for every tenant;
//! * **ASID mode** — `tagged` keeps each tenant's TLB entries live
//!   across switches under ASID tags (cross-tenant capacity pressure
//!   shows up as `cross-evict`); `flush` models untagged TLBs that
//!   lose everything on every switch (the interference shows up as
//!   extra DTLB misses instead);
//! * **tenant count** — 2 vs 4 tenants sharing the machine.
//!
//! Each tenant's *slowdown* is its colocated finish time (including
//! time spent descheduled) over its solo run time on the same page
//! size; the *tail* is the worst latency tenant. Per-tenant counters
//! partition exactly — the scheduler asserts that their sums equal the
//! machine totals after every timeslice.
//!
//! Usage: `cargo run --release -p lpomp-bench --bin ext_tenant [S|W|A]`

use lpomp::prelude::*;
use lpomp_bench::class_from_args;

/// Short enough that the class-S latency tenants are descheduled many
/// times per run (DEFAULT_TIMESLICE would let them finish in one slice).
const TIMESLICE: u64 = 200_000;

fn specs(batch_class: Class, tenants: usize) -> Vec<TenantSpec> {
    let mut v = vec![TenantSpec::new("batch", AppKind::Cg, batch_class, 2)];
    for i in 0..tenants - 1 {
        v.push(TenantSpec::new(
            &format!("lat-{i}"),
            AppKind::Cg,
            Class::S,
            1,
        ));
    }
    v
}

fn run_multi(policy: PagePolicy, mode: AsidMode, specs: Vec<TenantSpec>) -> MultiRunReport {
    let report = System::builder(opteron_2x2())
        .policy(policy)
        .tenants(specs)
        .timeslice(TIMESLICE)
        .asid_mode(mode)
        .build_tenants()
        .unwrap()
        .run();
    for t in &report.tenants {
        assert!(t.verified, "{} failed verification when colocated", t.name);
    }
    report
}

fn mode_label(mode: AsidMode) -> &'static str {
    match mode {
        AsidMode::Tagged => "tagged",
        AsidMode::FlushOnSwitch => "flush",
    }
}

fn mcyc(cycles: u64) -> String {
    fnum(cycles as f64 / 1e6, 2)
}

fn main() {
    let class = class_from_args();
    println!(
        "Extension E6: colocated tenants -- page size x ASID mode x tenant count\n\
         (batch: CG class {class} x2 threads; latency: CG class S x1 thread;\n\
         Opteron, round-robin timeslice {TIMESLICE} cycles)\n"
    );

    const POLICIES: [PagePolicy; 2] = [PagePolicy::Small4K, PagePolicy::Large2M];
    const MODES: [AsidMode; 2] = [AsidMode::Tagged, AsidMode::FlushOnSwitch];
    const COUNTS: [usize; 2] = [2, 4];

    // Solo baselines: each distinct tenant running alone on the same
    // page size (a single-tenant machine is byte-identical to a plain
    // dedicated system; asserted in lpomp-core's tests).
    let solo_specs: Vec<(PagePolicy, TenantSpec)> = POLICIES
        .iter()
        .flat_map(|&p| {
            [
                (p, TenantSpec::new("batch", AppKind::Cg, class, 2)),
                (p, TenantSpec::new("lat-0", AppKind::Cg, Class::S, 1)),
            ]
        })
        .collect();
    let solo_cycles = par_map(&solo_specs, default_workers(), |_, (p, spec)| {
        run_multi(*p, AsidMode::Tagged, vec![spec.clone()]).tenants[0].finish_cycles
    });
    let solo = |p: PagePolicy, batch: bool| -> u64 {
        let i = solo_specs
            .iter()
            .position(|(sp, s)| *sp == p && (s.threads == 2) == batch)
            .unwrap();
        solo_cycles[i]
    };

    let mut grid: Vec<(PagePolicy, AsidMode, usize)> = Vec::new();
    for policy in POLICIES {
        for mode in MODES {
            for count in COUNTS {
                grid.push((policy, mode, count));
            }
        }
    }
    let reports = par_map(&grid, default_workers(), |_, &(policy, mode, count)| {
        run_multi(policy, mode, specs(class, count))
    });

    let mut t = TextTable::new(vec![
        "pages",
        "asid",
        "tenants",
        "batch Mcyc",
        "batch slow",
        "tail Mcyc",
        "tail slow",
        "lat dtlb miss",
        "cross-evict",
        "tail desched Mcyc",
        "ctx switches",
    ]);
    let tail_slow = |policy: PagePolicy, mode: AsidMode, count: usize| -> f64 {
        let i = grid
            .iter()
            .position(|&c| c == (policy, mode, count))
            .unwrap();
        let r = &reports[i];
        let tail = r.tenants[1..]
            .iter()
            .max_by_key(|t| t.finish_cycles)
            .unwrap();
        tail.finish_cycles as f64 / solo(policy, false) as f64
    };
    for (c, r) in grid.iter().zip(&reports) {
        let (policy, mode, _count) = *c;
        let batch = &r.tenants[0];
        let tail = r.tenants[1..]
            .iter()
            .max_by_key(|t| t.finish_cycles)
            .unwrap();
        let lat_misses: u64 = r.tenants[1..]
            .iter()
            .map(|t| t.counters.get(Event::DtlbMisses))
            .sum();
        let cross: u64 = r
            .tenants
            .iter()
            .map(|t| t.counters.get(Event::TlbCrossEvictions))
            .sum();
        t.row(vec![
            policy.label().to_owned(),
            mode_label(mode).to_owned(),
            r.tenants.len().to_string(),
            mcyc(batch.finish_cycles),
            format!(
                "{}x",
                fnum(batch.finish_cycles as f64 / solo(policy, true) as f64, 2)
            ),
            mcyc(tail.finish_cycles),
            format!(
                "{}x",
                fnum(tail.finish_cycles as f64 / solo(policy, false) as f64, 2)
            ),
            lat_misses.to_string(),
            cross.to_string(),
            mcyc(tail.counters.get(Event::DeschedCycles)),
            r.tenants
                .iter()
                .map(|t| t.counters.get(Event::ContextSwitches))
                .sum::<u64>()
                .to_string(),
        ]);
    }
    println!("{}", t.render());

    let best = tail_slow(PagePolicy::Large2M, AsidMode::Tagged, 4);
    let worst = tail_slow(PagePolicy::Small4K, AsidMode::FlushOnSwitch, 4);
    let flush_2m = tail_slow(PagePolicy::Large2M, AsidMode::FlushOnSwitch, 4);
    println!(
        "At 4 tenants, ASID-tagged 2MB tenants bound the tail at {}x its solo\n\
         run time, vs {}x for flush-on-switch 4KB tenants (and {}x for 2MB\n\
         pages alone, without tags): large pages shrink what a tenant has to\n\
         re-fault after losing the TLB, and ASID tags let it keep the TLB in\n\
         the first place. Cross-tenant eviction counters are nonzero only in\n\
         tagged mode -- with flushing, the same interference reappears as\n\
         extra DTLB misses. Per-tenant counters partition exactly; the\n\
         scheduler asserts the sums against the machine totals at every\n\
         timeslice.",
        fnum(best, 2),
        fnum(worst, 2),
        fnum(flush_2m, 2),
    );
}
