//! # `lpomp-bench` — experiment regeneration harness
//!
//! One binary per table/figure of the paper:
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — TLB sizes and coverage |
//! | `table2` | Table 2 — application memory footprints |
//! | `fig3`   | Fig. 3 — aggregate ITLB miss rates |
//! | `fig4`   | Fig. 4 — scalability, 4 KB vs 2 MB, both platforms |
//! | `fig5`   | Fig. 5 — normalized DTLB misses at 4 threads |
//! | `ablation_prealloc` | A1 — preallocation vs demand faulting |
//! | `ext_mixed` | E1 — the §6 mixed page policy |
//!
//! Wall-clock benches (`cargo bench -p lpomp-bench --features bench`)
//! cover the runtime primitives: barriers, the mailbox, loop schedules,
//! and shared-array access. They use the in-tree `harness` module, so
//! the default build carries no benchmarking dependency.
//!
//! The library half holds the sweep helpers the binaries share. Binaries
//! accept an optional class argument (`S`, `W`, `A`) — default `W`, the
//! simulated-evaluation class.

use lpomp_core::{run_sim, BackendKind, PagePolicy, RunOpts, RunRecord};
use lpomp_machine::MachineConfig;
use lpomp_npb::{AppKind, Class};

#[cfg(feature = "bench")]
pub mod harness;

/// Parse the class argument (first non-flag CLI arg), defaulting to `W`.
pub fn class_from_args() -> Class {
    let positional = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    match positional.as_deref() {
        Some("S") | Some("s") => Class::S,
        Some("A") | Some("a") => Class::A,
        Some("B") | Some("b") => Class::B,
        Some("W") | Some("w") | None => Class::W,
        Some(other) => {
            eprintln!("unknown class {other:?}; expected S, W, A or B — using W");
            Class::W
        }
    }
}

/// Parse the `--backend=cycle|analytic` flag, defaulting to cycle-exact
/// (the golden outputs are cycle-exact; the flag is the fast path).
pub fn backend_from_args() -> BackendKind {
    for arg in std::env::args().skip(1) {
        if let Some(name) = arg.strip_prefix("--backend=") {
            match BackendKind::parse(name) {
                Some(kind) => return kind,
                None => {
                    eprintln!("unknown backend {name:?}; expected cycle or analytic — using cycle")
                }
            }
        }
    }
    BackendKind::CycleExact
}

/// Run one app under both page policies at a thread count.
pub fn run_pair(
    app: AppKind,
    class: Class,
    machine: MachineConfig,
    threads: usize,
) -> (RunRecord, RunRecord) {
    let small = run_sim(
        app,
        class,
        machine.clone(),
        PagePolicy::Small4K,
        threads,
        RunOpts::default(),
    );
    let large = run_sim(
        app,
        class,
        machine,
        PagePolicy::Large2M,
        threads,
        RunOpts::default(),
    );
    (small, large)
}

/// Percentage improvement of `large` over `small` run time.
pub fn improvement_pct(small: &RunRecord, large: &RunRecord) -> f64 {
    lpomp_prof::report::percent_improvement(small.seconds, large.seconds)
}

/// If `LPOMP_CSV=<dir>` is set, write the table as `<dir>/<name>.csv`
/// (for plotting); errors are reported but never fatal.
pub fn maybe_write_csv(name: &str, table: &lpomp_prof::TextTable) {
    if let Ok(dir) = std::env::var("LPOMP_CSV") {
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpomp_machine::opteron_2x2;

    #[test]
    fn run_pair_is_consistent() {
        let (s, l) = run_pair(AppKind::Ep, Class::S, opteron_2x2(), 2);
        assert_eq!(s.policy, PagePolicy::Small4K);
        assert_eq!(l.policy, PagePolicy::Large2M);
        assert_eq!(s.checksum, l.checksum);
    }
}
