//! # `lpomp-bench` — experiment regeneration harness
//!
//! One binary per table/figure of the paper:
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — TLB sizes and coverage |
//! | `table2` | Table 2 — application memory footprints |
//! | `fig3`   | Fig. 3 — aggregate ITLB miss rates |
//! | `fig4`   | Fig. 4 — scalability, 4 KB vs 2 MB, both platforms |
//! | `fig5`   | Fig. 5 — normalized DTLB misses at 4 threads |
//! | `ablation_prealloc` | A1 — preallocation vs demand faulting |
//! | `ext_mixed` | E1 — the §6 mixed page policy |
//!
//! Wall-clock benches (`cargo bench -p lpomp-bench --features bench`)
//! cover the runtime primitives: barriers, the mailbox, loop schedules,
//! and shared-array access. They use the in-tree `harness` module, so
//! the default build carries no benchmarking dependency.
//!
//! The library half holds the sweep helpers the binaries share. Binaries
//! accept an optional class argument (`S`, `W`, `A`) — default `W`, the
//! simulated-evaluation class.

use lpomp_core::{
    default_workers, run_sim, BackendKind, GridCell, JsonlSink, KeyedGrid, PagePolicy, RunOpts,
    RunRecord, RunStore, Shard, SweepResults, SweepSpec,
};
use lpomp_machine::MachineConfig;
use lpomp_npb::{AppKind, Class};
use std::path::PathBuf;

#[cfg(feature = "bench")]
pub mod harness;

/// Flags that consume the following argument when not written `--flag=value`.
const VALUE_FLAGS: [&str; 4] = ["--store", "--shard", "--merge", "--jsonl"];

/// The positional (non-flag) CLI arguments, with value-taking flags'
/// space-form values excluded (so `--shard 1/4` does not leave `1/4`
/// looking like a class argument).
fn positional_args() -> Vec<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if VALUE_FLAGS.contains(&a.as_str()) {
            i += 2;
            continue;
        }
        if !a.starts_with("--") {
            out.push(a.clone());
        }
        i += 1;
    }
    out
}

/// Parse the class argument (first non-flag CLI arg), defaulting to `W`.
pub fn class_from_args() -> Class {
    let positional = positional_args().into_iter().next();
    match positional.as_deref() {
        Some("S") | Some("s") => Class::S,
        Some("A") | Some("a") => Class::A,
        Some("B") | Some("b") => Class::B,
        Some("W") | Some("w") | None => Class::W,
        Some(other) => {
            eprintln!("unknown class {other:?}; expected S, W, A or B — using W");
            Class::W
        }
    }
}

/// Parse the `--backend=cycle|analytic` flag, defaulting to cycle-exact
/// (the golden outputs are cycle-exact; the flag is the fast path).
pub fn backend_from_args() -> BackendKind {
    for arg in std::env::args().skip(1) {
        if let Some(name) = arg.strip_prefix("--backend=") {
            match BackendKind::parse(name) {
                Some(kind) => return kind,
                None => {
                    eprintln!("unknown backend {name:?}; expected cycle or analytic — using cycle")
                }
            }
        }
    }
    BackendKind::CycleExact
}

/// The sweep-store flags shared by the `SweepSpec`-shaped binaries
/// (`fig3`, `fig4`, `fig5`, `xval`):
///
/// * `--store DIR` — run incrementally against the content-addressed
///   [`RunStore`] at `DIR`: cached configs replay from disk, misses run
///   the engine and are persisted (hit/miss counts go to stderr);
/// * `--shard i/n` — run only this process's slice of the grid into the
///   shared store and write a coverage manifest (requires `--store`);
/// * `--merge n` — assemble a previously sharded sweep from the store,
///   validating coverage and key collisions (requires `--store`);
/// * `--jsonl FILE` — stream one JSON record line per configuration as
///   it completes.
///
/// Both `--flag value` and `--flag=value` spellings are accepted.
#[derive(Clone, Debug, Default)]
pub struct SweepCli {
    /// Store directory (`--store`).
    pub store: Option<PathBuf>,
    /// This process's shard (`--shard i/n`).
    pub shard: Option<Shard>,
    /// Merge a sweep previously run as this many shards (`--merge n`).
    pub merge: Option<usize>,
    /// JSON-lines output path (`--jsonl`).
    pub jsonl: Option<PathBuf>,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: [S|W|A|B] [--backend=cycle|analytic] [--store DIR] [--shard i/n | --merge n] [--jsonl FILE]");
    std::process::exit(2)
}

/// Parse (and cross-validate) the sweep-store flags. Usage errors print
/// a message plus the flag summary and exit with status 2.
pub fn sweep_cli_from_args() -> SweepCli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = SweepCli::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let mut value = |name: &str| -> Option<String> {
            let rest = arg.strip_prefix(name)?;
            if let Some(v) = rest.strip_prefix('=') {
                return Some(v.to_owned());
            }
            if rest.is_empty() {
                i += 1;
                return Some(
                    args.get(i)
                        .unwrap_or_else(|| usage_error(&format!("{name} needs a value")))
                        .clone(),
                );
            }
            None
        };
        if let Some(dir) = value("--store") {
            cli.store = Some(PathBuf::from(dir));
        } else if let Some(s) = value("--shard") {
            cli.shard = Some(Shard::parse(&s).unwrap_or_else(|| {
                usage_error(&format!("--shard {s:?}: expected i/n with 1 <= i <= n"))
            }));
        } else if let Some(n) = value("--merge") {
            match n.parse::<usize>() {
                Ok(n) if n >= 1 => cli.merge = Some(n),
                _ => usage_error(&format!("--merge {n:?}: expected a shard count >= 1")),
            }
        } else if let Some(path) = value("--jsonl") {
            cli.jsonl = Some(PathBuf::from(path));
        }
        i += 1;
    }
    if cli.shard.is_some() && cli.merge.is_some() {
        usage_error("--shard and --merge are mutually exclusive");
    }
    if (cli.shard.is_some() || cli.merge.is_some()) && cli.store.is_none() {
        usage_error("--shard/--merge need --store DIR (the shards share it)");
    }
    cli
}

impl SweepCli {
    /// Open the `--jsonl` sink, if requested. Call once per process (a
    /// second open would truncate the file) and pass the sink to every
    /// [`execute`](SweepCli::execute).
    pub fn sink(&self) -> Option<JsonlSink> {
        let path = self.jsonl.as_ref()?;
        match JsonlSink::create(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("error: could not create {}: {e}", path.display());
                std::process::exit(1)
            }
        }
    }

    /// Run `spec` the way the flags ask: merge, shard, incremental, or a
    /// plain in-memory sweep. Returns `None` in shard mode — the grid
    /// slice and its manifest are on disk, and the caller has no full
    /// results to render — and the results otherwise. Failures print an
    /// error and exit nonzero (2 for usage, 1 for store/merge errors).
    pub fn execute(&self, spec: &SweepSpec, sink: Option<&JsonlSink>) -> Option<SweepResults> {
        let store = self.store.as_ref().map(|dir| {
            RunStore::open(dir).unwrap_or_else(|e| {
                eprintln!("error: could not open store {}: {e}", dir.display());
                std::process::exit(1)
            })
        });
        if let Some(count) = self.merge {
            let results = spec
                .merge_shards(store.as_ref().expect("validated at parse"), count)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1)
                });
            if let Some(sink) = sink {
                for rec in results.records() {
                    sink.emit(rec, true);
                }
            }
            eprintln!(
                "merged {} records from {count} shards of sweep {}",
                results.records().len(),
                spec.sweep_id()
            );
            return Some(results);
        }
        if let Some(shard) = self.shard {
            let store = store.as_ref().expect("validated at parse");
            let manifest = spec
                .run_shard(shard, store, default_workers(), sink)
                .unwrap_or_else(|e| {
                    eprintln!("error: shard {shard} failed: {e}");
                    std::process::exit(1)
                });
            eprintln!(
                "shard {shard} of sweep {} complete ({} configs); after all {} shards, \
                 rerun with `--store {} --merge {}`",
                manifest.sweep,
                manifest.entries.len(),
                shard.count,
                store.dir().display(),
                shard.count
            );
            return None;
        }
        if let Some(store) = store {
            let inc = spec
                .run_incremental_with(&store, default_workers(), sink)
                .unwrap_or_else(|e| {
                    eprintln!("error: incremental sweep failed: {e}");
                    std::process::exit(1)
                });
            return Some(inc.results);
        }
        let results = spec.run();
        if let Some(sink) = sink {
            for rec in results.records() {
                sink.emit(rec, false);
            }
        }
        Some(results)
    }

    /// [`execute`](SweepCli::execute) for a [`KeyedGrid`] — the same
    /// merge / shard / incremental / plain dispatch for binaries whose
    /// grids are not `SweepSpec`-shaped (`ext_frag`, `ext_numa`).
    /// Returns `None` in shard mode, the cells in key order otherwise.
    pub fn execute_keyed<T: GridCell>(
        &self,
        grid: &KeyedGrid<'_, T>,
        sink: Option<&JsonlSink>,
    ) -> Option<Vec<T>> {
        let store = self.store.as_ref().map(|dir| {
            RunStore::open(dir).unwrap_or_else(|e| {
                eprintln!("error: could not open store {}: {e}", dir.display());
                std::process::exit(1)
            })
        });
        if let Some(count) = self.merge {
            let cells = grid
                .merge_shards(store.as_ref().expect("validated at parse"), count)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1)
                });
            if let Some(sink) = sink {
                for cell in &cells {
                    sink.emit_line(&cell.to_store_json(), true);
                }
            }
            eprintln!(
                "merged {} cells from {count} shards of grid {}",
                cells.len(),
                grid.sweep_id()
            );
            return Some(cells);
        }
        if let Some(shard) = self.shard {
            let store = store.as_ref().expect("validated at parse");
            let manifest = grid
                .run_shard(shard, store, default_workers(), sink)
                .unwrap_or_else(|e| {
                    eprintln!("error: shard {shard} failed: {e}");
                    std::process::exit(1)
                });
            eprintln!(
                "shard {shard} of grid {} complete ({} cells); after all {} shards, \
                 rerun with `--store {} --merge {}`",
                manifest.sweep,
                manifest.entries.len(),
                shard.count,
                store.dir().display(),
                shard.count
            );
            return None;
        }
        if let Some(store) = store {
            let (cells, _, _) = grid
                .run_incremental(&store, default_workers(), sink)
                .unwrap_or_else(|e| {
                    eprintln!("error: incremental grid failed: {e}");
                    std::process::exit(1)
                });
            return Some(cells);
        }
        let cells = grid.run_all(default_workers());
        if let Some(sink) = sink {
            for cell in &cells {
                sink.emit_line(&cell.to_store_json(), false);
            }
        }
        Some(cells)
    }
}

/// Run one app under both page policies at a thread count.
pub fn run_pair(
    app: AppKind,
    class: Class,
    machine: MachineConfig,
    threads: usize,
) -> (RunRecord, RunRecord) {
    let small = run_sim(
        app,
        class,
        machine.clone(),
        PagePolicy::Small4K,
        threads,
        RunOpts::default(),
    );
    let large = run_sim(
        app,
        class,
        machine,
        PagePolicy::Large2M,
        threads,
        RunOpts::default(),
    );
    (small, large)
}

/// Percentage improvement of `large` over `small` run time.
pub fn improvement_pct(small: &RunRecord, large: &RunRecord) -> f64 {
    lpomp_prof::report::percent_improvement(small.seconds, large.seconds)
}

/// If `LPOMP_CSV=<dir>` is set, write the table as `<dir>/<name>.csv`
/// (for plotting); errors are reported but never fatal.
pub fn maybe_write_csv(name: &str, table: &lpomp_prof::TextTable) {
    if let Ok(dir) = std::env::var("LPOMP_CSV") {
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpomp_machine::opteron_2x2;

    #[test]
    fn run_pair_is_consistent() {
        let (s, l) = run_pair(AppKind::Ep, Class::S, opteron_2x2(), 2);
        assert_eq!(s.policy, PagePolicy::Small4K);
        assert_eq!(l.policy, PagePolicy::Large2M);
        assert_eq!(s.checksum, l.checksum);
    }
}
