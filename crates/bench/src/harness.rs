//! Minimal wall-clock benchmarking harness for the `[[bench]]` targets.
//!
//! Replaces the external criterion dependency so the workspace builds
//! offline. Each benchmark runs a warm-up, then a fixed number of timed
//! samples; the report prints the median, min and max nanoseconds per
//! iteration. Numbers are comparable run-to-run on the same host — good
//! enough for the regression-guard role these benches play.

use std::time::{Duration, Instant};

/// Default sample count per benchmark.
const SAMPLES: usize = 10;
/// Minimum time each sample should cover, so cheap bodies are batched.
const MIN_SAMPLE: Duration = Duration::from_millis(20);

/// Keep a value (and its computation) alive past the optimizer.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named group of benchmarks, printed as one table section.
pub struct Group {
    name: String,
}

impl Group {
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("\n== {name} ==");
        Group { name }
    }

    /// Time `body`, printing one line `group/id  median [min .. max]`.
    pub fn bench(&self, id: impl AsRef<str>, mut body: impl FnMut()) {
        let id = id.as_ref();
        // Warm-up and batch-size calibration: grow the batch until one
        // batch covers MIN_SAMPLE.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                body();
            }
            let el = t.elapsed();
            if el >= MIN_SAMPLE {
                break;
            }
            // At least double; scale toward the target in one step when
            // the measurement is meaningful.
            let scale = if el.as_nanos() > 1000 {
                (MIN_SAMPLE.as_nanos() / el.as_nanos()).max(2) as u64
            } else {
                16
            };
            batch = batch.saturating_mul(scale).min(1 << 30);
        }
        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    body();
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{:<40} {:>12}/iter  [{} .. {}]  ({batch} iters/sample)",
            format!("{}/{id}", self.name),
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}
