//! Simulator throughput: how many instrumented accesses per second the
//! machine model sustains, per page policy — the cost of reproducing the
//! paper's measurements, and a regression guard for the harness itself.

use lpomp_bench::harness::{black_box, Group};
use lpomp_core::{run_sim, PagePolicy, RunOpts};
use lpomp_machine::opteron_2x2;
use lpomp_npb::{AppKind, Class};

fn main() {
    let g = Group::new("sim_run_class_s");
    for policy in [PagePolicy::Small4K, PagePolicy::Large2M] {
        for app in [AppKind::Cg, AppKind::Mg] {
            g.bench(format!("{}/{}", app.name(), policy.label()), || {
                black_box(run_sim(
                    app,
                    Class::S,
                    opteron_2x2(),
                    policy,
                    4,
                    RunOpts::default(),
                ));
            });
        }
    }
}
