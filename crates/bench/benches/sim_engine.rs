//! Simulator throughput: how many instrumented accesses per second the
//! machine model sustains, per page policy — the cost of reproducing the
//! paper's measurements, and a regression guard for the harness itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lpomp_core::{run_sim, PagePolicy, RunOpts};
use lpomp_machine::opteron_2x2;
use lpomp_npb::{AppKind, Class};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_run_class_s");
    g.throughput(Throughput::Elements(1));
    for policy in [PagePolicy::Small4K, PagePolicy::Large2M] {
        for app in [AppKind::Cg, AppKind::Mg] {
            g.bench_with_input(
                BenchmarkId::new(app.name(), policy.label()),
                &(app, policy),
                |b, &(app, policy)| {
                    b.iter(|| run_sim(app, Class::S, opteron_2x2(), policy, 4, RunOpts::default()))
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sim
}
criterion_main!(benches);
