//! Microbenchmark of the shared-array substrate: `ShVec` relaxed-atomic
//! access vs a plain `Vec` baseline, sequential and strided — quantifying
//! the cost of the runtime's data-race-free storage.

use lpomp_bench::harness::{black_box, Group};
use lpomp_runtime::ShVec;
use lpomp_vm::VirtAddr;

const N: usize = 1 << 16;

fn main() {
    let sh: ShVec<f64> = ShVec::from_fn(N, VirtAddr(0x1000), |i| i as f64);
    let plain: Vec<f64> = (0..N).map(|i| i as f64).collect();

    let g = Group::new("shared_array_sum");
    g.bench("plain_vec_sequential", || {
        black_box(plain.iter().sum::<f64>());
    });
    g.bench("shvec_sequential", || {
        let mut s = 0.0;
        for i in 0..N {
            s += sh.get_raw(i);
        }
        black_box(s);
    });
    g.bench("shvec_strided_64", || {
        let mut s = 0.0;
        let mut i = 0;
        while i < N {
            s += sh.get_raw(i);
            i += 64;
        }
        black_box(s);
    });
    g.bench("shvec_write_sequential", || {
        for i in 0..N {
            sh.set_raw(i, i as f64);
        }
    });
}
