//! Microbenchmark of the shared-array substrate: `ShVec` relaxed-atomic
//! access vs a plain `Vec` baseline, sequential and strided — quantifying
//! the cost of the runtime's data-race-free storage.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lpomp_runtime::ShVec;
use lpomp_vm::VirtAddr;

const N: usize = 1 << 16;

fn bench_shvec(c: &mut Criterion) {
    let sh: ShVec<f64> = ShVec::from_fn(N, VirtAddr(0x1000), |i| i as f64);
    let plain: Vec<f64> = (0..N).map(|i| i as f64).collect();

    let mut g = c.benchmark_group("shared_array_sum");
    g.bench_function("plain_vec_sequential", |b| {
        b.iter(|| black_box(plain.iter().sum::<f64>()))
    });
    g.bench_function("shvec_sequential", |b| {
        b.iter(|| {
            let mut s = 0.0;
            for i in 0..N {
                s += sh.get_raw(i);
            }
            black_box(s)
        })
    });
    g.bench_function("shvec_strided_64", |b| {
        b.iter(|| {
            let mut s = 0.0;
            let mut i = 0;
            while i < N {
                s += sh.get_raw(i);
                i += 64;
            }
            black_box(s)
        })
    });
    g.bench_function("shvec_write_sequential", |b| {
        b.iter(|| {
            for i in 0..N {
                sh.set_raw(i, i as f64);
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_shvec
}
criterion_main!(benches);
