//! Ablation A4: loop schedules on the native engine under an irregular
//! workload (per-iteration cost varies 1–64x), the case dynamic and
//! guided scheduling exist for.

use lpomp_bench::harness::{black_box, Group};
use lpomp_runtime::{Schedule, Team};

const N: usize = 1 << 14;

/// Deliberately imbalanced work: iteration i costs ~(i % 64) + 1 units.
fn work(i: usize) -> f64 {
    let reps = (i % 64) + 1;
    let mut acc = i as f64;
    for _ in 0..reps * 20 {
        acc = (acc * 1.000001).sqrt() + 1.0;
    }
    acc
}

fn main() {
    // Run 1-4 threads even on small hosts (oversubscription is fine
    // for these synchronization benches); 8 only on big machines.
    let max = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .max(4);
    let threads = 4.min(max);
    let g = Group::new(format!("irregular_loop_{threads}threads"));
    let cases = [
        ("static", Schedule::Static),
        ("static_chunk64", Schedule::StaticChunk(64)),
        ("dynamic64", Schedule::Dynamic(64)),
        ("guided16", Schedule::Guided(16)),
    ];
    for (name, sched) in cases {
        g.bench(name, || {
            let mut team = Team::native(threads);
            black_box(team.parallel_for_reduce(
                0..N,
                sched,
                lpomp_runtime::Reduction::Sum,
                &|_, r| r.map(work).sum(),
            ));
        });
    }
}
