//! Ablation A2: barrier algorithms on real threads.
//!
//! Omni/SCASH implements barriers over its intra-node communication layer
//! (paper §3.3); the native engine offers a centralized sense-reversing
//! barrier and a combining tree. This bench measures episodes/second at
//! 1–8 threads for both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lpomp_runtime::{NativeBarrier, SenseBarrier, TreeBarrier};

const EPISODES: usize = 1000;

fn run_episodes(b: &dyn NativeBarrier) {
    let n = b.participants();
    std::thread::scope(|s| {
        for tid in 0..n {
            s.spawn(move || {
                for _ in 0..EPISODES {
                    b.wait(tid);
                }
            });
        }
    });
}

fn bench_barriers(c: &mut Criterion) {
    // Run 1-4 threads even on small hosts (oversubscription is fine
    // for these synchronization benches); 8 only on big machines.
    let max = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .max(4);
    let mut g = c.benchmark_group("barrier_1000_episodes");
    for threads in [1, 2, 4, 8] {
        if threads > max {
            continue;
        }
        g.bench_with_input(
            BenchmarkId::new("sense_reversing", threads),
            &threads,
            |bench, &t| {
                bench.iter(|| run_episodes(&SenseBarrier::new(t)));
            },
        );
        g.bench_with_input(BenchmarkId::new("tree", threads), &threads, |bench, &t| {
            bench.iter(|| run_episodes(&TreeBarrier::new(t)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_barriers
}
criterion_main!(benches);
