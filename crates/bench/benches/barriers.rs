//! Ablation A2: barrier algorithms on real threads.
//!
//! Omni/SCASH implements barriers over its intra-node communication layer
//! (paper §3.3); the native engine offers a centralized sense-reversing
//! barrier and a combining tree. This bench measures episodes/second at
//! 1–8 threads for both.

use lpomp_bench::harness::Group;
use lpomp_runtime::{NativeBarrier, SenseBarrier, TreeBarrier};

const EPISODES: usize = 1000;

fn run_episodes(b: &dyn NativeBarrier) {
    let n = b.participants();
    std::thread::scope(|s| {
        for tid in 0..n {
            s.spawn(move || {
                for _ in 0..EPISODES {
                    b.wait(tid);
                }
            });
        }
    });
}

fn main() {
    // Run 1-4 threads even on small hosts (oversubscription is fine
    // for these synchronization benches); 8 only on big machines.
    let max = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .max(4);
    let g = Group::new("barrier_1000_episodes");
    for threads in [1, 2, 4, 8] {
        if threads > max {
            continue;
        }
        g.bench(format!("sense_reversing/{threads}"), || {
            run_episodes(&SenseBarrier::new(threads))
        });
        g.bench(format!("tree/{threads}"), || {
            run_episodes(&TreeBarrier::new(threads))
        });
    }
}
