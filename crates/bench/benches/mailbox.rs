//! Ablation A3: the §3.3 intra-node mailbox — single-copy latency and the
//! all-reduce collective built on it.

use lpomp_bench::harness::Group;
use lpomp_runtime::{allreduce_sum, Mailbox};

fn bench_pingpong() {
    let g = Group::new("mailbox_pingpong");
    for size in [8usize, 64, 1024] {
        let mb = Mailbox::new(2);
        let msg = vec![0u8; size];
        g.bench(format!("bytes/{size}"), || {
            std::thread::scope(|s| {
                s.spawn(|| {
                    for _ in 0..100 {
                        mb.send(0, 1, &msg).unwrap();
                        mb.recv_with(1, 0, |_| ());
                    }
                });
                s.spawn(|| {
                    for _ in 0..100 {
                        mb.recv_with(0, 1, |_| ());
                        mb.send(1, 0, &msg).unwrap();
                    }
                });
            });
        });
    }
}

fn bench_allreduce() {
    // Run 1-4 threads even on small hosts (oversubscription is fine
    // for these synchronization benches); 8 only on big machines.
    let max = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .max(4);
    let g = Group::new("mailbox_allreduce");
    for ranks in [2usize, 4, 8] {
        if ranks > max {
            continue;
        }
        let mb = Mailbox::new(ranks);
        g.bench(format!("ranks/{ranks}"), || {
            std::thread::scope(|s| {
                for rank in 0..ranks {
                    let mb = &mb;
                    s.spawn(move || {
                        for _ in 0..50 {
                            allreduce_sum(mb, rank, rank as f64);
                        }
                    });
                }
            });
        });
    }
}

fn main() {
    bench_pingpong();
    bench_allreduce();
}
