//! Ablation A3: the §3.3 intra-node mailbox — single-copy latency and the
//! all-reduce collective built on it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lpomp_runtime::{allreduce_sum, Mailbox};

fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("mailbox_pingpong");
    for size in [8usize, 64, 1024] {
        g.bench_with_input(BenchmarkId::new("bytes", size), &size, |bench, &sz| {
            let mb = Mailbox::new(2);
            let msg = vec![0u8; sz];
            bench.iter(|| {
                std::thread::scope(|s| {
                    s.spawn(|| {
                        for _ in 0..100 {
                            mb.send(0, 1, &msg).unwrap();
                            mb.recv_with(1, 0, |_| ());
                        }
                    });
                    s.spawn(|| {
                        for _ in 0..100 {
                            mb.recv_with(0, 1, |_| ());
                            mb.send(1, 0, &msg).unwrap();
                        }
                    });
                });
            });
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    // Run 1-4 threads even on small hosts (oversubscription is fine
    // for these synchronization benches); 8 only on big machines.
    let max = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .max(4);
    let mut g = c.benchmark_group("mailbox_allreduce");
    for ranks in [2usize, 4, 8] {
        if ranks > max {
            continue;
        }
        g.bench_with_input(BenchmarkId::new("ranks", ranks), &ranks, |bench, &n| {
            let mb = Mailbox::new(n);
            bench.iter(|| {
                std::thread::scope(|s| {
                    for rank in 0..n {
                        let mb = &mb;
                        s.spawn(move || {
                            for _ in 0..50 {
                                allreduce_sum(mb, rank, rank as f64);
                            }
                        });
                    }
                });
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pingpong, bench_allreduce
}
criterion_main!(benches);
