//! Hardware-event enumeration and counter sheets.

use core::fmt;

/// The hardware events the simulator counts. These mirror the OProfile
/// events the paper reads (DTLB/ITLB misses, cycles) plus the cache and
/// runtime events needed to explain where time goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Event {
    /// Core clock cycles consumed.
    Cycles,
    /// Retired instructions (approximated as one per modelled operation).
    Instructions,
    /// Data loads issued.
    Loads,
    /// Data stores issued.
    Stores,
    /// Instruction fetches issued.
    IFetches,
    /// Data-TLB lookups that hit any level.
    DtlbHits,
    /// Data-TLB lookups that hit only in the L2 TLB.
    DtlbL2Hits,
    /// Data-TLB lookups that missed every level (page walks).
    DtlbMisses,
    /// Instruction-TLB misses.
    ItlbMisses,
    /// L1 data-cache misses.
    L1dMisses,
    /// L2 cache misses (DRAM accesses).
    L2Misses,
    /// Cycles spent in hardware page walks.
    WalkCycles,
    /// Prefetcher restarts at page boundaries of streamed sweeps.
    PrefetchRestarts,
    /// Cycles lost to prefetcher restarts.
    PrefetchRestartCycles,
    /// Page faults taken (demand population).
    PageFaults,
    /// SMT pipeline flushes (the Xeon's flush-on-stall implementation).
    SmtFlushes,
    /// Cycles lost to SMT pipeline flushes.
    SmtFlushCycles,
    /// Barrier episodes entered.
    Barriers,
    /// Cycles spent waiting at barriers.
    BarrierCycles,
    /// 2 MB chunks collapsed to large pages by the khugepaged daemon.
    PagesCollapsed,
    /// 4 KB pages migrated by memory compaction.
    PagesCompacted,
    /// 2 MB pages split back to 4 KB under memory pressure.
    PagesDemoted,
    /// Broadcast TLB shootdowns (one IPI round each).
    TlbShootdowns,
    /// Cycles of khugepaged daemon work charged to the cores.
    DaemonCycles,
    /// DRAM accesses served by the requesting core's own node (only
    /// counted on NUMA machines; zero otherwise).
    LocalDramAccesses,
    /// DRAM accesses that crossed the interconnect to a remote node
    /// (only counted on NUMA machines; zero otherwise).
    RemoteDramAccesses,
    /// Extra cycles page walks spent fetching PTEs from a remote node.
    RemoteWalkCycles,
    /// NUMA hinting-fault samples recorded for the migration daemon.
    NumaHintFaults,
    /// Pages migrated between nodes by the NUMA daemon.
    PagesMigrated,
    /// Context switches between tenants (charged on the scheduler's
    /// behalf to logical thread 0 of the incoming tenant).
    ContextSwitches,
    /// Cycles a tenant's threads sat descheduled while other tenants
    /// held the machine (wall-clock advanced, no work retired).
    DeschedCycles,
    /// TLB entries evicted by a fill whose ASID differed from the
    /// evicted entry's — cross-tenant TLB interference.
    TlbCrossEvictions,
    /// Hierarchical-scheduler steals from a core on the thief's own
    /// NUMA node.
    LocalSteals,
    /// Hierarchical-scheduler steals that crossed to a remote node
    /// (these take larger chunk batches to amortize the migration).
    RemoteSteals,
    /// Chunks re-homed to another node by the scheduler after NUMA
    /// hint-fault samples showed their pages live elsewhere.
    ChunkRehomes,
    /// Chunks that started executing on the node the scheduler had
    /// them homed to (the locality mechanism working as intended).
    AffinityHits,
}

impl Event {
    /// Number of distinct events.
    pub const COUNT: usize = 36;

    /// All events in declaration order.
    pub const ALL: [Event; Event::COUNT] = [
        Event::Cycles,
        Event::Instructions,
        Event::Loads,
        Event::Stores,
        Event::IFetches,
        Event::DtlbHits,
        Event::DtlbL2Hits,
        Event::DtlbMisses,
        Event::ItlbMisses,
        Event::L1dMisses,
        Event::L2Misses,
        Event::WalkCycles,
        Event::PrefetchRestarts,
        Event::PrefetchRestartCycles,
        Event::PageFaults,
        Event::SmtFlushes,
        Event::SmtFlushCycles,
        Event::Barriers,
        Event::BarrierCycles,
        Event::PagesCollapsed,
        Event::PagesCompacted,
        Event::PagesDemoted,
        Event::TlbShootdowns,
        Event::DaemonCycles,
        Event::LocalDramAccesses,
        Event::RemoteDramAccesses,
        Event::RemoteWalkCycles,
        Event::NumaHintFaults,
        Event::PagesMigrated,
        Event::ContextSwitches,
        Event::DeschedCycles,
        Event::TlbCrossEvictions,
        Event::LocalSteals,
        Event::RemoteSteals,
        Event::ChunkRehomes,
        Event::AffinityHits,
    ];

    /// Short mnemonic used in reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Event::Cycles => "cycles",
            Event::Instructions => "inst",
            Event::Loads => "loads",
            Event::Stores => "stores",
            Event::IFetches => "ifetch",
            Event::DtlbHits => "dtlb_hit",
            Event::DtlbL2Hits => "dtlb_l2_hit",
            Event::DtlbMisses => "dtlb_miss",
            Event::ItlbMisses => "itlb_miss",
            Event::L1dMisses => "l1d_miss",
            Event::L2Misses => "l2_miss",
            Event::WalkCycles => "walk_cyc",
            Event::PrefetchRestarts => "pf_restart",
            Event::PrefetchRestartCycles => "pf_restart_cyc",
            Event::PageFaults => "faults",
            Event::SmtFlushes => "smt_flush",
            Event::SmtFlushCycles => "smt_flush_cyc",
            Event::Barriers => "barriers",
            Event::BarrierCycles => "barrier_cyc",
            Event::PagesCollapsed => "collapsed",
            Event::PagesCompacted => "compacted",
            Event::PagesDemoted => "demoted",
            Event::TlbShootdowns => "shootdowns",
            Event::DaemonCycles => "daemon_cyc",
            Event::LocalDramAccesses => "dram_local",
            Event::RemoteDramAccesses => "dram_remote",
            Event::RemoteWalkCycles => "remote_walk_cyc",
            Event::NumaHintFaults => "hint_faults",
            Event::PagesMigrated => "migrated",
            Event::ContextSwitches => "ctx_switch",
            Event::DeschedCycles => "desched_cyc",
            Event::TlbCrossEvictions => "tlb_cross_evict",
            Event::LocalSteals => "steal_local",
            Event::RemoteSteals => "steal_remote",
            Event::ChunkRehomes => "chunk_rehome",
            Event::AffinityHits => "affinity_hit",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A fixed-size bank of event counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counters {
    vals: [u64; Event::COUNT],
}

// Not derived: `Default` for arrays is only implemented up to 32 lanes.
impl Default for Counters {
    fn default() -> Self {
        Counters {
            vals: [0; Event::COUNT],
        }
    }
}

impl Counters {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to an event.
    #[inline]
    pub fn add(&mut self, e: Event, n: u64) {
        self.vals[e as usize] += n;
    }

    /// Increment an event by one.
    #[inline]
    pub fn bump(&mut self, e: Event) {
        self.vals[e as usize] += 1;
    }

    /// Read an event's count.
    #[inline]
    pub fn get(&self, e: Event) -> u64 {
        self.vals[e as usize]
    }

    /// Set an event's count (used for clock snapshots).
    #[inline]
    pub fn set(&mut self, e: Event, v: u64) {
        self.vals[e as usize] = v;
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &Counters) {
        for i in 0..Event::COUNT {
            self.vals[i] += other.vals[i];
        }
    }

    /// Element-wise difference against an earlier snapshot of the same
    /// counter bank: what happened *since* `baseline`.
    ///
    /// Counters are monotone within a run (they only ever `add`/`bump`;
    /// resets replace the whole bank), so a negative delta means the
    /// baseline is not actually earlier — debug-asserted.
    pub fn diff(&self, baseline: &Counters) -> Counters {
        let mut d = Counters::new();
        for i in 0..Event::COUNT {
            debug_assert!(
                self.vals[i] >= baseline.vals[i],
                "counter {} went backwards: {} -> {}",
                Event::ALL[i],
                baseline.vals[i],
                self.vals[i]
            );
            d.vals[i] = self.vals[i].wrapping_sub(baseline.vals[i]);
        }
        d
    }

    /// Add `n` to an event, returning `false` (and leaving the counter
    /// unchanged) on overflow instead of panicking or wrapping.
    #[inline]
    pub fn checked_add(&mut self, e: Event, n: u64) -> bool {
        match self.vals[e as usize].checked_add(n) {
            Some(v) => {
                self.vals[e as usize] = v;
                true
            }
            None => false,
        }
    }

    /// Iterate `(event, count)` pairs with nonzero counts.
    pub fn nonzero(&self) -> impl Iterator<Item = (Event, u64)> + '_ {
        Event::ALL
            .iter()
            .copied()
            .filter_map(move |e| (self.get(e) > 0).then_some((e, self.get(e))))
    }
}

/// Counters for one logical thread.
#[derive(Clone, Debug, Default)]
pub struct ThreadSheet {
    /// Logical thread id.
    pub thread: usize,
    /// The thread's counters.
    pub counters: Counters,
}

/// A whole run's profile: one sheet per logical thread.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    sheets: Vec<ThreadSheet>,
}

impl Profile {
    /// Profile with `threads` zeroed sheets.
    pub fn new(threads: usize) -> Self {
        Profile {
            sheets: (0..threads)
                .map(|thread| ThreadSheet {
                    thread,
                    counters: Counters::new(),
                })
                .collect(),
        }
    }

    /// Number of threads profiled.
    pub fn threads(&self) -> usize {
        self.sheets.len()
    }

    /// Mutable access to a thread's counters.
    pub fn thread_mut(&mut self, t: usize) -> &mut Counters {
        &mut self.sheets[t].counters
    }

    /// Shared access to a thread's counters.
    pub fn thread(&self, t: usize) -> &Counters {
        &self.sheets[t].counters
    }

    /// All sheets.
    pub fn sheets(&self) -> &[ThreadSheet] {
        &self.sheets
    }

    /// Sum across threads (OProfile's "aggregate" view).
    pub fn aggregate(&self) -> Counters {
        let mut total = Counters::new();
        for s in &self.sheets {
            total.merge(&s.counters);
        }
        total
    }

    /// Maximum of an event across threads — for `Cycles` this is the
    /// parallel run's critical path.
    pub fn max(&self, e: Event) -> u64 {
        self.sheets
            .iter()
            .map(|s| s.counters.get(e))
            .max()
            .unwrap_or(0)
    }

    /// Sum of an event across threads.
    pub fn sum(&self, e: Event) -> u64 {
        self.sheets.iter().map(|s| s.counters.get(e)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_get() {
        let mut c = Counters::new();
        c.add(Event::DtlbMisses, 5);
        c.bump(Event::DtlbMisses);
        assert_eq!(c.get(Event::DtlbMisses), 6);
        assert_eq!(c.get(Event::ItlbMisses), 0);
    }

    #[test]
    fn diff_is_elementwise_since_baseline() {
        let mut base = Counters::new();
        base.add(Event::Loads, 10);
        base.add(Event::Cycles, 100);
        let mut now = base.clone();
        now.add(Event::Loads, 5);
        now.add(Event::Stores, 3);
        let d = now.diff(&base);
        assert_eq!(d.get(Event::Loads), 5);
        assert_eq!(d.get(Event::Stores), 3);
        assert_eq!(d.get(Event::Cycles), 0);
        // diff against self is all-zero; merging the diff back restores.
        assert_eq!(now.diff(&now), Counters::new());
        let mut rebuilt = base.clone();
        rebuilt.merge(&d);
        assert_eq!(rebuilt, now);
    }

    #[test]
    fn checked_add_saturates_on_overflow() {
        let mut c = Counters::new();
        assert!(c.checked_add(Event::Loads, u64::MAX - 1));
        assert!(!c.checked_add(Event::Loads, 2), "overflow must be refused");
        assert_eq!(c.get(Event::Loads), u64::MAX - 1, "refused add is a no-op");
        assert!(c.checked_add(Event::Loads, 1));
        assert_eq!(c.get(Event::Loads), u64::MAX);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Counters::new();
        a.add(Event::Loads, 3);
        let mut b = Counters::new();
        b.add(Event::Loads, 4);
        b.add(Event::Stores, 1);
        a.merge(&b);
        assert_eq!(a.get(Event::Loads), 7);
        assert_eq!(a.get(Event::Stores), 1);
    }

    #[test]
    fn nonzero_iterates_only_touched_events() {
        let mut c = Counters::new();
        c.add(Event::Cycles, 10);
        c.add(Event::L2Misses, 2);
        let v: Vec<_> = c.nonzero().collect();
        assert_eq!(v, vec![(Event::Cycles, 10), (Event::L2Misses, 2)]);
    }

    #[test]
    fn profile_aggregate_and_max() {
        let mut p = Profile::new(3);
        p.thread_mut(0).add(Event::Cycles, 100);
        p.thread_mut(1).add(Event::Cycles, 250);
        p.thread_mut(2).add(Event::Cycles, 200);
        assert_eq!(p.aggregate().get(Event::Cycles), 550);
        assert_eq!(p.max(Event::Cycles), 250);
        assert_eq!(p.sum(Event::Cycles), 550);
        assert_eq!(p.threads(), 3);
    }

    #[test]
    fn event_all_is_complete_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for e in Event::ALL {
            assert!(seen.insert(e as usize));
            assert!(!e.mnemonic().is_empty());
        }
        assert_eq!(seen.len(), Event::COUNT);
    }
}
