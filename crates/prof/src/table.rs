//! Minimal aligned text tables for the experiment binaries.
//!
//! The `fig*` / `table*` binaries print paper-shaped tables to stdout;
//! this keeps the formatting in one tested place instead of ad-hoc
//! `println!` layouts in each binary.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; it must have the same arity as the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (header + rows), for downstream plotting. Cells
    /// containing commas or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn cell(c: &str) -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Render with aligned columns: first column left-aligned, the rest
    /// right-aligned (numeric convention).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{c:<w$}", w = widths[i]);
                } else {
                    let _ = write!(out, "{c:>w$}", w = widths[i]);
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Format a float with `digits` decimal places (report convention).
///
/// Rounding is **half away from zero on the exact decimal expansion** of
/// the value, spelled out digit by digit rather than delegated to the
/// platform's float formatter. Every finite `f64` has a finite decimal
/// expansion (at most 1074 fractional digits), so "the first dropped
/// digit is ≥ 5" is an exact ≥-half test, not an approximation — the
/// result is bit-for-bit reproducible everywhere, which the byte-identical
/// `results/` goldens depend on.
pub fn fnum(x: f64, digits: usize) -> String {
    if x.is_nan() {
        return "nan".to_owned();
    }
    if x.is_infinite() {
        return if x < 0.0 { "-inf" } else { "inf" }.to_owned();
    }
    // Exact expansion of |x|; split into integer and fractional digits.
    let exact = format!("{:.1074}", x.abs());
    let (int_part, frac_part) = exact.split_once('.').expect("{:.1074} always has a point");
    let mut ds: Vec<u8> = int_part
        .bytes()
        .chain(frac_part.bytes().take(digits))
        .map(|b| b - b'0')
        .collect();
    let mut int_len = int_part.len();
    let first_dropped = frac_part.as_bytes().get(digits).map_or(0, |b| b - b'0');
    if first_dropped >= 5 {
        // Round away from zero: propagate the carry leftwards.
        let mut i = ds.len();
        loop {
            if i == 0 {
                ds.insert(0, 1);
                int_len += 1;
                break;
            }
            i -= 1;
            if ds[i] == 9 {
                ds[i] = 0;
            } else {
                ds[i] += 1;
                break;
            }
        }
    }
    let mut out = String::with_capacity(ds.len() + 2);
    if x.is_sign_negative() {
        out.push('-');
    }
    for (i, d) in ds.iter().enumerate() {
        if i == int_len {
            out.push('.');
        }
        out.push((b'0' + d) as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["app", "threads", "time"]);
        t.row(vec!["CG", "4", "12.5"]);
        t.row(vec!["MG", "8", "3.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].starts_with("app"));
        assert!(lines[2].contains("CG"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["plain", "with,comma"]);
        t.row(vec!["has\"quote", "x"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"has\"\"quote\",x");
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(f64::INFINITY, 2), "inf");
    }

    #[test]
    fn fnum_rounds_ties_away_from_zero() {
        // 0.125, 2.5 and 0.0625 are exact in binary, so these really are
        // ties / below-half cases, not artifacts of the nearest double.
        assert_eq!(fnum(0.125, 2), "0.13");
        assert_eq!(fnum(-0.125, 2), "-0.13");
        assert_eq!(fnum(2.5, 0), "3");
        assert_eq!(fnum(0.0625, 3), "0.063");
        assert_eq!(fnum(0.0624, 3), "0.062");
    }

    #[test]
    fn fnum_carry_propagation_and_edges() {
        assert_eq!(fnum(0.999951, 4), "1.0000");
        assert_eq!(fnum(9.99999, 2), "10.00");
        assert_eq!(fnum(-0.99999, 1), "-1.0");
        assert_eq!(fnum(0.0, 3), "0.000");
        assert_eq!(fnum(0.0004, 3), "0.000");
        assert_eq!(fnum(42.0, 0), "42");
        assert_eq!(fnum(f64::NEG_INFINITY, 1), "-inf");
        assert_eq!(fnum(f64::NAN, 1), "nan");
        // Values with long exact expansions truncate/round correctly.
        assert_eq!(fnum(1.0 / 3.0, 5), "0.33333");
        assert_eq!(fnum(2.0 / 3.0, 5), "0.66667");
    }

    #[test]
    fn empty_table_is_header_only() {
        let t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }
}
