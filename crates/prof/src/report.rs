//! Rate and normalization arithmetic for the paper's figures.
//!
//! Fig. 3 reports *aggregate ITLB misses per second of application run
//! time*; Fig. 5 reports DTLB misses *normalized to the 4 KB-page run* of
//! each application. Both are small, easy-to-get-wrong divisions, so they
//! live here with tests.

/// Events per second of run time, given a cycle count and clock frequency.
///
/// The paper's example: ~0.45 ITLB misses/second at 2.0 GHz.
pub fn rate_per_second(events: u64, cycles: u64, hz: f64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let seconds = cycles as f64 / hz;
    events as f64 / seconds
}

/// A (baseline, variant) pair normalized to the baseline, as in Fig. 5
/// where every application's 4 KB bar is 1.0.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NormalizedSeries {
    /// Baseline count (normalizes to 1.0).
    pub baseline: u64,
    /// Variant count.
    pub variant: u64,
}

impl NormalizedSeries {
    /// The variant's normalized value (baseline = 1.0). Zero baseline with
    /// a zero variant normalizes to 0; zero baseline otherwise is reported
    /// as infinity.
    pub fn normalized_variant(&self) -> f64 {
        if self.baseline == 0 {
            if self.variant == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.variant as f64 / self.baseline as f64
        }
    }

    /// The reduction factor baseline/variant (the paper's "factor of 10 or
    /// more"). Infinite when the variant is zero.
    pub fn reduction_factor(&self) -> f64 {
        if self.variant == 0 {
            if self.baseline == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.baseline as f64 / self.variant as f64
        }
    }
}

/// Normalize a `(baseline, variant)` pair.
pub fn normalized(baseline: u64, variant: u64) -> NormalizedSeries {
    NormalizedSeries { baseline, variant }
}

/// Percentage improvement of `new` over `old` for a lower-is-better metric
/// (run time): `(old - new) / old * 100`. The paper's "improvement of
/// approximately 25%" for CG uses this form.
pub fn percent_improvement(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        return 0.0;
    }
    (old - new) / old * 100.0
}

/// Load-imbalance summary of a per-thread cycle distribution: the ratio
/// of the slowest thread to the mean. 1.0 is perfectly balanced; the
/// fork-join run time is set by the slowest thread, so imbalance directly
/// inflates the critical path.
pub fn imbalance(per_thread_cycles: &[u64]) -> f64 {
    if per_thread_cycles.is_empty() {
        return 1.0;
    }
    let max = *per_thread_cycles.iter().max().unwrap() as f64;
    let mean = per_thread_cycles.iter().sum::<u64>() as f64 / per_thread_cycles.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Parallel speedup of `time_n` relative to `time_1`.
pub fn speedup(time_1: f64, time_n: f64) -> f64 {
    if time_n == 0.0 {
        return 0.0;
    }
    time_1 / time_n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_matches_paper_example() {
        // 0.9 misses over 2 seconds at 2 GHz = 0.45 misses/second.
        let r = rate_per_second(9, 4_000_000_000 * 10 / 10, 2.0e9);
        assert!((r - 4.5).abs() < 1e-9);
    }

    #[test]
    fn rate_zero_cycles_is_zero() {
        assert_eq!(rate_per_second(100, 0, 2.0e9), 0.0);
    }

    #[test]
    fn normalization_basics() {
        let n = normalized(1000, 100);
        assert!((n.normalized_variant() - 0.1).abs() < 1e-12);
        assert!((n.reduction_factor() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_edge_cases() {
        assert_eq!(normalized(0, 0).normalized_variant(), 0.0);
        assert_eq!(normalized(0, 5).normalized_variant(), f64::INFINITY);
        assert_eq!(normalized(5, 0).reduction_factor(), f64::INFINITY);
        assert_eq!(normalized(0, 0).reduction_factor(), 1.0);
    }

    #[test]
    fn percent_improvement_form() {
        // 100s → 75s is a 25% improvement (the paper's CG number).
        assert!((percent_improvement(100.0, 75.0) - 25.0).abs() < 1e-12);
        assert_eq!(percent_improvement(0.0, 10.0), 0.0);
        // Regressions are negative.
        assert!(percent_improvement(100.0, 110.0) < 0.0);
    }

    #[test]
    fn imbalance_measures_skew() {
        assert!((imbalance(&[100, 100, 100, 100]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[200, 100, 100, 100]) - 1.6).abs() < 1e-12);
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0, 0]), 1.0);
    }

    #[test]
    fn speedup_form() {
        assert!((speedup(100.0, 25.0) - 4.0).abs() < 1e-12);
        assert_eq!(speedup(100.0, 0.0), 0.0);
    }
}
