//! Reuse-distance capture and the compact stream profile the analytic
//! backend evaluates.
//!
//! A one-time cycle-exact run records, per logical thread, the LRU stack
//! distance of every data access at 64 B cache-line granularity and at
//! every page granularity in [`PAGE_SHIFTS`] — the union of all supported
//! translation architectures' ladders — plus the instruction-fetch page
//! stream. Distances are binned into sparse sub-logarithmic histograms
//! and aggregated per *phase* (the innermost `cg:matvec`-style region
//! annotation), so iterative kernels collapse thousands of barrier
//! episodes into a few dozen phases. The result, [`StreamProfile`], is a
//! few-MB machine-independent summary: because the runtime schedules
//! loops statically, each thread's access *sequence* is a property of the
//! program, not of the machine preset it was captured on — which is what
//! lets one profile answer any (machine × page policy × placement) point
//! analytically.
//!
//! Everything here is dependency-free; serialization round-trips through
//! [`crate::trace::parse_json`].

use crate::trace::{parse_json, Json};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{BuildHasherDefault, Hasher};

/// Access-mode index: demand (latency-bound) accesses.
pub const MODE_LATENCY: usize = 0;
/// Access-mode index: pipelined (overlapped-miss) accesses.
pub const MODE_PIPELINED: usize = 1;
/// Access-mode index: streamed (prefetcher-covered) accesses.
pub const MODE_STREAM: usize = 2;
/// Number of access modes tracked.
pub const MODES: usize = 3;

/// Page-granularity shifts the capture records reuse distances at: the
/// union of every supported translation architecture's ladder rungs —
/// 4 KB, 16 KB, 64 KB, 2 MB, 32 MB and 1 GB. One captured profile can
/// therefore be evaluated under any architecture's page policy; the
/// analytic backend selects the entry matching the mapping size by shift.
pub const PAGE_SHIFTS: [u8; NUM_SHIFTS] = [12, 14, 16, 21, 25, 30];
/// Number of page-granularity capture shifts.
pub const NUM_SHIFTS: usize = 6;

/// Index into [`PAGE_SHIFTS`] for a page shift, if captured.
pub fn shift_index(shift: u32) -> Option<usize> {
    PAGE_SHIFTS.iter().position(|&s| u32::from(s) == shift)
}

/// Instruction-fetch capture granularities: code maps at the base granule
/// of the translation architecture, so the fetch stream is captured at
/// every supported base-granule shift (4 KB and 16 KB).
pub const CODE_SHIFTS: [u8; NUM_CODE_SHIFTS] = [12, 14];
/// Number of code-granularity capture shifts.
pub const NUM_CODE_SHIFTS: usize = 2;

/// Index into [`CODE_SHIFTS`] for a base-granule shift, if captured.
pub fn code_shift_index(shift: u32) -> Option<usize> {
    CODE_SHIFTS.iter().position(|&s| u32::from(s) == shift)
}

/// Number of histogram buckets. Distances below 16 get exact buckets;
/// above, 8 sub-buckets per power of two — enough to resolve capacities
/// up to ~2^33 distinct keys with <12.5% bucket width.
pub const NUM_BUCKETS: usize = 256;

const SMALL: u64 = 16;

// ---------------------------------------------------------------------
// Set-associative (conflict) capture.

/// Conflict-shape key granularity: 64 B cache lines.
pub const GRAN_LINE: u8 = 0;
/// Conflict-shape key granularity: 4 KB pages.
pub const GRAN_PAGE4K: u8 = 1;

/// A set-associative geometry the capture tracks *per set*, so the
/// analytic backend can see conflict misses a fully-associative model
/// hides (power-of-two strides hammering a few sets — SP's pencil
/// walks). Keys are indexed by their low bits (`key & (sets-1)`),
/// exactly like the simulated caches and TLB arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictShape {
    /// Key granularity (`GRAN_LINE` or `GRAN_PAGE4K`).
    pub granularity: u8,
    /// Number of sets (power of two).
    pub sets: u32,
    /// Native associativity of the structure this shape mirrors (only
    /// informational here; queries may probe any way count up to
    /// [`CONFLICT_DEPTH`]).
    pub ways: u32,
}

/// The geometries of both platform presets' set-associative structures:
/// Opteron L1D (64 KB / 2-way), Opteron L2 (1 MB / 16-way), Xeon L1D
/// (16 KB / 8-way), Xeon L2 (2 MB / 8-way), and the Opteron's 4-way
/// 1024-entry L2 DTLB. Other geometries fall back to the
/// fully-associative histograms.
pub const CONFLICT_SHAPES: &[ConflictShape] = &[
    ConflictShape {
        granularity: GRAN_LINE,
        sets: 512,
        ways: 2,
    },
    ConflictShape {
        granularity: GRAN_LINE,
        sets: 1024,
        ways: 16,
    },
    ConflictShape {
        granularity: GRAN_LINE,
        sets: 32,
        ways: 8,
    },
    ConflictShape {
        granularity: GRAN_LINE,
        sets: 4096,
        ways: 8,
    },
    ConflictShape {
        granularity: GRAN_PAGE4K,
        sets: 256,
        ways: 4,
    },
];

/// Per-set LRU depth tracked exactly; deeper reuse lands in the `far`
/// bin, which misses at every realistic associativity (≤ 16 ways).
pub const CONFLICT_DEPTH: usize = 32;

/// Index into [`CONFLICT_SHAPES`] for a geometry, if captured.
pub fn conflict_shape_index(granularity: u8, sets: u32, ways: u32) -> Option<usize> {
    CONFLICT_SHAPES
        .iter()
        .position(|s| s.granularity == granularity && s.sets == sets && s.ways == ways)
}

/// Per-set true-LRU stack distances for one [`ConflictShape`].
struct SetTracker {
    mask: u64,
    /// Per-set MRU-first key lists, truncated at [`CONFLICT_DEPTH`].
    sets: Vec<Vec<u64>>,
}

impl SetTracker {
    fn new(shape: &ConflictShape) -> Self {
        SetTracker {
            mask: u64::from(shape.sets - 1),
            sets: vec![Vec::new(); shape.sets as usize],
        }
    }

    /// Distance = distinct keys of the same set touched since this key's
    /// previous access; `None` when cold or deeper than the tracked LRU
    /// depth (either way a miss at any associativity ≤ the depth).
    #[inline]
    fn access(&mut self, key: u64) -> Option<usize> {
        let set = &mut self.sets[(key & self.mask) as usize];
        if let Some(pos) = set.iter().position(|&k| k == key) {
            let k = set.remove(pos);
            set.insert(0, k);
            Some(pos)
        } else {
            if set.len() == CONFLICT_DEPTH {
                set.pop();
            }
            set.insert(0, key);
            None
        }
    }
}

/// Sparse per-set-distance histogram for one conflict shape: a `w`-way
/// structure of this geometry misses exactly the accesses with per-set
/// distance ≥ `w`, plus all of `far`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConflictHist {
    /// Cold accesses and reuses deeper than [`CONFLICT_DEPTH`].
    pub far: u64,
    /// `(per-set distance, count)` pairs, distance < depth, sorted.
    pub d: Vec<(u32, u64)>,
}

impl ConflictHist {
    /// Misses of a `ways`-associative structure of this shape.
    pub fn misses_beyond(&self, ways: u64) -> f64 {
        let mut m = self.far as f64;
        for &(dist, n) in &self.d {
            if u64::from(dist) >= ways {
                m += n as f64;
            }
        }
        m
    }

    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.far + self.d.iter().map(|&(_, n)| n).sum::<u64>()
    }

    /// Add another histogram into this one.
    pub fn merge(&mut self, other: &ConflictHist) {
        self.far += other.far;
        for &(dist, n) in &other.d {
            match self.d.binary_search_by_key(&dist, |&(x, _)| x) {
                Ok(i) => self.d[i].1 += n,
                Err(i) => self.d.insert(i, (dist, n)),
            }
        }
    }
}

/// Dense capture-side counterpart of [`ConflictHist`].
#[derive(Clone, Debug)]
struct DenseConflict {
    counts: [u64; CONFLICT_DEPTH],
    far: u64,
}

impl DenseConflict {
    fn new() -> Self {
        DenseConflict {
            counts: [0; CONFLICT_DEPTH],
            far: 0,
        }
    }

    #[inline]
    fn add(&mut self, dist: Option<usize>) {
        match dist {
            Some(d) => self.counts[d] += 1,
            None => self.far += 1,
        }
    }

    fn drain(&mut self) -> ConflictHist {
        let d = self
            .counts
            .iter_mut()
            .enumerate()
            .filter(|(_, n)| **n != 0)
            .map(|(i, n)| (i as u32, std::mem::take(n)))
            .collect();
        ConflictHist {
            far: std::mem::take(&mut self.far),
            d,
        }
    }
}

/// Histogram bucket index for a reuse distance.
#[inline]
pub fn bucket_of(d: u64) -> usize {
    if d < SMALL {
        d as usize
    } else {
        let k = 63 - u64::from(d.leading_zeros());
        let sub = (d >> (k - 3)) & 7;
        ((16 + (k - 4) * 8 + sub) as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive `(lo, hi)` distance range a bucket covers.
#[inline]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 16 {
        (idx as u64, idx as u64)
    } else {
        let k = 4 + ((idx - 16) / 8) as u64;
        let sub = ((idx - 16) % 8) as u64;
        let w = 1u64 << (k - 3);
        let lo = (1u64 << k) + sub * w;
        (lo, lo + w - 1)
    }
}

// ---------------------------------------------------------------------
// Fast hashing (multiply-mix; the std SipHash would dominate capture).

#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut v = [0u8; 8];
            v[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(v));
        }
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

// ---------------------------------------------------------------------
// Exact LRU stack-distance tracking.

/// Exact per-thread LRU stack distances over a key stream (keys are
/// line/page numbers). `access` returns the number of *distinct other*
/// keys touched since the key's previous access (`None` on first touch),
/// so a fully-associative LRU structure of capacity `C` hits iff the
/// distance is `< C`.
///
/// Implementation: each key's latest access occupies one time slot; a
/// Fenwick tree over slots counts, in `O(log n)`, how many keys were
/// last accessed after a given slot. Slots are renumbered (compacted)
/// when exhausted, amortizing to near-constant per access.
pub struct ReuseTracker {
    last: FxMap<u64, u32>,
    tree: Vec<u32>,
    cap: u32,
    time: u32,
}

impl Default for ReuseTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ReuseTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        let cap = 1 << 16;
        ReuseTracker {
            last: FxMap::default(),
            tree: vec![0; cap as usize + 1],
            cap,
            time: 0,
        }
    }

    #[inline]
    fn inc(&mut self, mut i: u32) {
        while i <= self.cap {
            self.tree[i as usize] += 1;
            i += i & i.wrapping_neg();
        }
    }

    #[inline]
    fn dec(&mut self, mut i: u32) {
        while i <= self.cap {
            self.tree[i as usize] -= 1;
            i += i & i.wrapping_neg();
        }
    }

    #[inline]
    fn prefix(&self, mut i: u32) -> u32 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i as usize];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Record an access; returns the reuse distance, `None` when cold.
    pub fn access(&mut self, key: u64) -> Option<u64> {
        if self.time == self.cap {
            self.compact();
        }
        let dist = self.last.get(&key).copied().map(|s| {
            let d = self.prefix(self.time) - self.prefix(s);
            self.dec(s);
            u64::from(d)
        });
        self.time += 1;
        let t = self.time;
        self.inc(t);
        self.last.insert(key, t);
        dist
    }

    /// Number of distinct keys seen so far.
    pub fn distinct(&self) -> usize {
        self.last.len()
    }

    fn compact(&mut self) {
        let mut pairs: Vec<(u32, u64)> = self.last.iter().map(|(&k, &s)| (s, k)).collect();
        pairs.sort_unstable();
        let live = pairs.len() as u32;
        self.cap = live.saturating_mul(2).max(1 << 16).next_power_of_two();
        self.tree = vec![0; self.cap as usize + 1];
        self.time = live;
        for (i, &(_, key)) in pairs.iter().enumerate() {
            let slot = i as u32 + 1;
            self.inc(slot);
            self.last.insert(key, slot);
        }
    }
}

// ---------------------------------------------------------------------
// Histograms.

/// Sparse reuse-distance histogram: cold (first-touch) count plus
/// `(bucket, count)` pairs sorted by bucket index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReuseHistogram {
    /// First-touch accesses (always miss, at any capacity).
    pub cold: u64,
    /// `(bucket index, access count)` pairs, sorted, counts nonzero.
    pub buckets: Vec<(u32, u64)>,
}

impl ReuseHistogram {
    /// Total accesses recorded, including cold.
    pub fn total(&self) -> u64 {
        self.cold + self.buckets.iter().map(|&(_, n)| n).sum::<u64>()
    }

    /// Expected misses in a fully-associative LRU structure holding
    /// `capacity` keys (hit iff distance < capacity). Buckets straddling
    /// the capacity contribute fractionally; cold accesses always miss.
    pub fn misses_beyond(&self, capacity: u64) -> f64 {
        let mut m = self.cold as f64;
        if capacity == 0 {
            return self.total() as f64;
        }
        for &(idx, n) in &self.buckets {
            let (lo, hi) = bucket_bounds(idx as usize);
            if lo >= capacity {
                m += n as f64;
            } else if hi >= capacity {
                let width = (hi - lo + 1) as f64;
                m += n as f64 * ((hi - capacity + 1) as f64 / width);
            }
        }
        m
    }

    /// Add another histogram into this one.
    pub fn merge(&mut self, other: &ReuseHistogram) {
        self.cold += other.cold;
        if other.buckets.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(a, na)), Some(&(b, nb))) if a == b => {
                    out.push((a, na + nb));
                    i += 1;
                    j += 1;
                }
                (Some(&(a, na)), Some(&(b, _))) if a < b => {
                    out.push((a, na));
                    i += 1;
                }
                (Some(_), Some(&(b, nb))) => {
                    out.push((b, nb));
                    j += 1;
                }
                (Some(&(a, na)), None) => {
                    out.push((a, na));
                    i += 1;
                }
                (None, Some(&(b, nb))) => {
                    out.push((b, nb));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = out;
    }
}

/// Dense histogram used during capture (fixed-size counts, zeroed on
/// drain); converted to the sparse form when a phase closes.
#[derive(Clone, Debug)]
struct DenseHist {
    counts: Vec<u64>,
    cold: u64,
}

impl DenseHist {
    fn new() -> Self {
        DenseHist {
            counts: vec![0; NUM_BUCKETS],
            cold: 0,
        }
    }

    #[inline]
    fn add(&mut self, dist: Option<u64>) {
        match dist {
            Some(d) => self.counts[bucket_of(d)] += 1,
            None => self.cold += 1,
        }
    }

    fn drain(&mut self) -> ReuseHistogram {
        let buckets = self
            .counts
            .iter_mut()
            .enumerate()
            .filter(|(_, n)| **n != 0)
            .map(|(i, n)| (i as u32, std::mem::take(n)))
            .collect();
        ReuseHistogram {
            cold: std::mem::take(&mut self.cold),
            buckets,
        }
    }
}

// ---------------------------------------------------------------------
// Per-thread capture state.

/// One logical thread's capture state: three global reuse trackers (the
/// distances span phase boundaries, so caches stay warm across phases)
/// plus the dense accumulators of the phase in progress.
pub struct ThreadRecorder {
    line: ReuseTracker,
    /// One page tracker per [`PAGE_SHIFTS`] entry (same order).
    pages: Vec<ReuseTracker>,
    /// One fetch-stream tracker per [`CODE_SHIFTS`] entry (same order).
    code: Vec<ReuseTracker>,
    events: u64,
    acc: [u64; MODES],
    loads: u64,
    stores: u64,
    instructions: u64,
    ifetches: u64,
    stream_pages: [u64; NUM_SHIFTS],
    line_h: [DenseHist; MODES],
    page_h: Vec<[DenseHist; MODES]>,
    code_h: Vec<DenseHist>,
    /// One per-set tracker per [`CONFLICT_SHAPES`] entry (global, like
    /// the reuse trackers: sets stay warm across phases).
    shapes: Vec<SetTracker>,
    conflict_h: Vec<[DenseConflict; MODES]>,
}

impl Default for ThreadRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadRecorder {
    /// Fresh recorder.
    pub fn new() -> Self {
        let h3 = || [DenseHist::new(), DenseHist::new(), DenseHist::new()];
        ThreadRecorder {
            line: ReuseTracker::new(),
            pages: PAGE_SHIFTS.iter().map(|_| ReuseTracker::new()).collect(),
            code: CODE_SHIFTS.iter().map(|_| ReuseTracker::new()).collect(),
            events: 0,
            acc: [0; MODES],
            loads: 0,
            stores: 0,
            instructions: 0,
            ifetches: 0,
            stream_pages: [0; NUM_SHIFTS],
            line_h: h3(),
            page_h: PAGE_SHIFTS.iter().map(|_| h3()).collect(),
            code_h: CODE_SHIFTS.iter().map(|_| DenseHist::new()).collect(),
            shapes: CONFLICT_SHAPES.iter().map(SetTracker::new).collect(),
            conflict_h: CONFLICT_SHAPES
                .iter()
                .map(|_| {
                    [
                        DenseConflict::new(),
                        DenseConflict::new(),
                        DenseConflict::new(),
                    ]
                })
                .collect(),
        }
    }

    /// Record one data access at raw virtual address `va`.
    #[inline]
    pub fn data(&mut self, va: u64, is_store: bool, mode: usize) {
        self.events += 1;
        self.acc[mode] += 1;
        if is_store {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
        let d = self.line.access(va >> 6);
        self.line_h[mode].add(d);
        for (i, &shift) in PAGE_SHIFTS.iter().enumerate() {
            let d = self.pages[i].access(va >> shift);
            self.page_h[i][mode].add(d);
        }
        for (i, shape) in CONFLICT_SHAPES.iter().enumerate() {
            let key = if shape.granularity == GRAN_LINE {
                va >> 6
            } else {
                va >> 12
            };
            let d = self.shapes[i].access(key);
            self.conflict_h[i][mode].add(d);
        }
        if mode == MODE_STREAM {
            // The cycle engine restarts the prefetcher only on TLB misses
            // within the first two lines of a page: count the stream
            // accesses eligible at each mapping granularity.
            for (i, &shift) in PAGE_SHIFTS.iter().enumerate() {
                if va & ((1u64 << shift) - 1) < 128 {
                    self.stream_pages[i] += 1;
                }
            }
        }
    }

    /// Record a compute charge of `n` instructions.
    #[inline]
    pub fn compute(&mut self, n: u64) {
        self.events += 1;
        self.instructions += n;
    }

    /// Record one instruction fetch at raw virtual address `va`.
    #[inline]
    pub fn ifetch(&mut self, va: u64) {
        self.events += 1;
        self.ifetches += 1;
        for (i, &shift) in CODE_SHIFTS.iter().enumerate() {
            let d = self.code[i].access(va >> shift);
            self.code_h[i].add(d);
        }
    }

    fn drain(&mut self) -> PhaseThread {
        self.events = 0;
        PhaseThread {
            acc: std::mem::take(&mut self.acc),
            loads: std::mem::take(&mut self.loads),
            stores: std::mem::take(&mut self.stores),
            instructions: std::mem::take(&mut self.instructions),
            ifetches: std::mem::take(&mut self.ifetches),
            stream_pages: std::mem::take(&mut self.stream_pages),
            line: [
                self.line_h[0].drain(),
                self.line_h[1].drain(),
                self.line_h[2].drain(),
            ],
            pages: self
                .page_h
                .iter_mut()
                .map(|hs| [hs[0].drain(), hs[1].drain(), hs[2].drain()])
                .collect(),
            code: self.code_h.iter_mut().map(DenseHist::drain).collect(),
            conflict: self
                .conflict_h
                .iter_mut()
                .map(|ms| [ms[0].drain(), ms[1].drain(), ms[2].drain()])
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// The profile data model.

/// One thread's aggregate within a phase.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseThread {
    /// Data accesses per mode (`MODE_*` indices).
    pub acc: [u64; MODES],
    /// Data loads (any mode).
    pub loads: u64,
    /// Data stores (any mode).
    pub stores: u64,
    /// Compute instructions charged.
    pub instructions: u64,
    /// Instruction fetches issued by the code walker.
    pub ifetches: u64,
    /// Streamed accesses in the first two lines of a page at each
    /// [`PAGE_SHIFTS`] granularity (prefetch-restart candidates under a
    /// mapping of that size).
    pub stream_pages: [u64; NUM_SHIFTS],
    /// Per-mode reuse-distance histograms at 64 B line granularity.
    pub line: [ReuseHistogram; MODES],
    /// Per-mode histograms at each [`PAGE_SHIFTS`] page granularity
    /// (same order, always [`NUM_SHIFTS`] entries).
    pub pages: Vec<[ReuseHistogram; MODES]>,
    /// Instruction-fetch histograms at each [`CODE_SHIFTS`] granularity
    /// (same order, always [`NUM_CODE_SHIFTS`] entries).
    pub code: Vec<ReuseHistogram>,
    /// Per-mode set-conflict histograms, one entry per
    /// [`CONFLICT_SHAPES`] geometry (same order).
    pub conflict: Vec<[ConflictHist; MODES]>,
}

impl Default for PhaseThread {
    fn default() -> Self {
        PhaseThread {
            acc: [0; MODES],
            loads: 0,
            stores: 0,
            instructions: 0,
            ifetches: 0,
            stream_pages: [0; NUM_SHIFTS],
            line: Default::default(),
            pages: vec![Default::default(); NUM_SHIFTS],
            code: vec![ReuseHistogram::default(); NUM_CODE_SHIFTS],
            conflict: Vec::new(),
        }
    }
}

impl PhaseThread {
    /// Per-mode page-granularity histograms for a mapping whose page
    /// shift is `shift`; `None` when the shift is not a capture
    /// granularity.
    pub fn page_hist(&self, shift: u32) -> Option<&[ReuseHistogram; MODES]> {
        self.pages.get(shift_index(shift)?)
    }

    /// Prefetch-restart candidates for a mapping of page shift `shift`
    /// (zero when the shift is not captured).
    pub fn stream_pages_at(&self, shift: u32) -> u64 {
        shift_index(shift).map_or(0, |i| self.stream_pages[i])
    }

    /// Instruction-fetch histogram for code mapped at base-granule
    /// `shift`; `None` when the shift is not a capture granularity.
    pub fn code_hist(&self, shift: u32) -> Option<&ReuseHistogram> {
        self.code.get(code_shift_index(shift)?)
    }

    fn merge(&mut self, other: &PhaseThread) {
        for m in 0..MODES {
            self.acc[m] += other.acc[m];
            self.line[m].merge(&other.line[m]);
        }
        for (s, o) in self.pages.iter_mut().zip(&other.pages) {
            for m in 0..MODES {
                s[m].merge(&o[m]);
            }
        }
        if self.conflict.len() < other.conflict.len() {
            self.conflict
                .resize_with(other.conflict.len(), Default::default);
        }
        for (s, o) in self.conflict.iter_mut().zip(&other.conflict) {
            for m in 0..MODES {
                s[m].merge(&o[m]);
            }
        }
        self.loads += other.loads;
        self.stores += other.stores;
        self.instructions += other.instructions;
        self.ifetches += other.ifetches;
        for (s, o) in self.stream_pages.iter_mut().zip(&other.stream_pages) {
            *s += o;
        }
        for (s, o) in self.code.iter_mut().zip(&other.code) {
            s.merge(o);
        }
    }

    fn is_empty(&self) -> bool {
        self.acc == [0; MODES] && self.instructions == 0 && self.ifetches == 0
    }
}

/// One phase: everything captured under one region label, across all of
/// that label's barrier episodes.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Innermost region annotation active when the work ran (`""` for
    /// work outside any region).
    pub label: String,
    /// Barrier synchronizations closed under this label.
    pub barriers: u64,
    /// Per-thread aggregates (index = logical thread id).
    pub threads: Vec<PhaseThread>,
}

/// A captured kernel reference stream, compacted: the machine-independent
/// input the analytic backend evaluates against any machine preset, page
/// policy and NUMA placement.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamProfile {
    /// Application name (e.g. `"cg"`).
    pub app: String,
    /// Problem class letter (e.g. `"W"`).
    pub class: String,
    /// Logical thread count the stream was captured at.
    pub threads: usize,
    /// Kernel checksum produced by the capture run.
    pub checksum: f64,
    /// Phases in first-appearance order.
    pub phases: Vec<Phase>,
}

/// Accumulates [`ThreadRecorder`] contents into phases as the capture
/// run crosses region and barrier boundaries.
pub struct PhaseAggregator {
    phases: Vec<Phase>,
    index: HashMap<String, usize>,
    stack: Vec<String>,
}

impl Default for PhaseAggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseAggregator {
    /// Empty aggregator.
    pub fn new() -> Self {
        PhaseAggregator {
            phases: Vec::new(),
            index: HashMap::new(),
            stack: Vec::new(),
        }
    }

    fn label(&self) -> &str {
        self.stack.last().map(String::as_str).unwrap_or("")
    }

    fn phase_mut(&mut self, threads: usize) -> &mut Phase {
        let label = self.label().to_owned();
        let idx = *self.index.entry(label.clone()).or_insert_with(|| {
            self.phases.push(Phase {
                label,
                barriers: 0,
                threads: vec![PhaseThread::default(); threads],
            });
            self.phases.len() - 1
        });
        &mut self.phases[idx]
    }

    /// Close the open episode: drain every recorder into the current
    /// label's phase. `barrier` marks episodes ended by a barrier
    /// synchronization (counted for barrier-cost prediction).
    pub fn flush(&mut self, recorders: &mut [ThreadRecorder], barrier: bool) {
        let dirty = recorders.iter().any(|r| r.events != 0);
        if !dirty && !barrier {
            return;
        }
        let phase = self.phase_mut(recorders.len());
        if barrier {
            phase.barriers += 1;
        }
        if dirty {
            for (t, r) in recorders.iter_mut().enumerate() {
                let pt = r.drain();
                if !pt.is_empty() {
                    phase.threads[t].merge(&pt);
                }
            }
        }
    }

    /// A region annotation opened: flush pending work to the outer label.
    pub fn region_enter(&mut self, name: &str, recorders: &mut [ThreadRecorder]) {
        self.flush(recorders, false);
        self.stack.push(name.to_owned());
    }

    /// A region annotation closed.
    pub fn region_exit(&mut self, recorders: &mut [ThreadRecorder]) {
        self.flush(recorders, false);
        self.stack.pop();
    }

    /// Finish the capture into a [`StreamProfile`].
    pub fn finish(
        mut self,
        recorders: &mut [ThreadRecorder],
        app: &str,
        class: &str,
        checksum: f64,
    ) -> StreamProfile {
        self.flush(recorders, false);
        StreamProfile {
            app: app.to_owned(),
            class: class.to_owned(),
            threads: recorders.len(),
            checksum,
            phases: self.phases,
        }
    }
}

// ---------------------------------------------------------------------
// Serialization (writer below, reader via `parse_json`).

fn write_hist(out: &mut String, h: &ReuseHistogram) {
    out.push_str("{\"c\":");
    let _ = write!(out, "{}", h.cold);
    out.push_str(",\"b\":[");
    for (i, &(idx, n)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{idx},{n}]");
    }
    out.push_str("]}");
}

fn write_hist3(out: &mut String, hs: &[ReuseHistogram; MODES]) {
    out.push('[');
    for (i, h) in hs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_hist(out, h);
    }
    out.push(']');
}

fn write_conflict(out: &mut String, h: &ConflictHist) {
    let _ = write!(out, "{{\"f\":{},\"d\":[", h.far);
    for (i, &(dist, n)) in h.d.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{dist},{n}]");
    }
    out.push_str("]}");
}

fn write_conflicts(out: &mut String, cs: &[[ConflictHist; MODES]]) {
    out.push('[');
    for (i, modes) in cs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (m, h) in modes.iter().enumerate() {
            if m > 0 {
                out.push(',');
            }
            write_conflict(out, h);
        }
        out.push(']');
    }
    out.push(']');
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl StreamProfile {
    /// Serialize to JSON (compact, integers exact below 2^53). The
    /// output opens with an `"engine"` stamp ([`crate::ENGINE_VERSION`]);
    /// [`from_json`](Self::from_json) rejects any other version, so a
    /// profile captured under older charge rules can never silently feed
    /// the analytic backend stale predictions.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1 << 16);
        let _ = write!(
            out,
            "{{\"engine\":{},\"app\":\"{}\",\"class\":\"{}\",\"threads\":{},\"checksum\":{}",
            crate::ENGINE_VERSION,
            escape(&self.app),
            escape(&self.class),
            self.threads,
            self.checksum
        );
        out.push_str(",\"phases\":[");
        for (pi, p) in self.phases.iter().enumerate() {
            if pi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"barriers\":{},\"threads\":[",
                escape(&p.label),
                p.barriers
            );
            for (ti, t) in p.threads.iter().enumerate() {
                if ti > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"acc\":[{},{},{}],\"ld\":{},\"st\":{},\"ins\":{},\"if\":{}",
                    t.acc[0], t.acc[1], t.acc[2], t.loads, t.stores, t.instructions, t.ifetches,
                );
                out.push_str(",\"sp\":[");
                for (i, n) in t.stream_pages.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{n}");
                }
                out.push(']');
                out.push_str(",\"line\":");
                write_hist3(&mut out, &t.line);
                out.push_str(",\"pg\":[");
                for (i, hs) in t.pages.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_hist3(&mut out, hs);
                }
                out.push(']');
                out.push_str(",\"code\":[");
                for (i, h) in t.code.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_hist(&mut out, h);
                }
                out.push(']');
                out.push_str(",\"cf\":");
                write_conflicts(&mut out, &t.conflict);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parse a profile serialized by [`to_json`](Self::to_json).
    ///
    /// Rejects profiles stamped with a different [`crate::ENGINE_VERSION`]
    /// (including pre-stamp profiles, which lack the key entirely): their
    /// histograms may encode semantics the current engine no longer
    /// matches, and the only safe response is recapture.
    pub fn from_json(src: &str) -> Result<StreamProfile, String> {
        let j = parse_json(src)?;
        let engine = req_u64(&j, "engine")?;
        if engine != u64::from(crate::ENGINE_VERSION) {
            return Err(format!(
                "profile engine version {engine} != current {} — recapture required",
                crate::ENGINE_VERSION
            ));
        }
        let app = req_str(&j, "app")?;
        let class = req_str(&j, "class")?;
        let threads = req_u64(&j, "threads")? as usize;
        let checksum = req_num(&j, "checksum")?;
        let mut phases = Vec::new();
        for p in req_arr(&j, "phases")? {
            let label = req_str(p, "label")?;
            let barriers = req_u64(p, "barriers")?;
            let mut ts = Vec::new();
            for t in req_arr(p, "threads")? {
                ts.push(read_phase_thread(t)?);
            }
            if ts.len() != threads {
                return Err(format!(
                    "phase {label:?}: {} thread entries, expected {threads}",
                    ts.len()
                ));
            }
            phases.push(Phase {
                label,
                barriers,
                threads: ts,
            });
        }
        Ok(StreamProfile {
            app,
            class,
            threads,
            checksum,
            phases,
        })
    }
}

fn req<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn req_num(j: &Json, key: &str) -> Result<f64, String> {
    req(j, key)?
        .as_num()
        .ok_or_else(|| format!("key {key:?} is not a number"))
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    let n = req_num(j, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("key {key:?} is not a non-negative integer"));
    }
    Ok(n as u64)
}

fn req_str(j: &Json, key: &str) -> Result<String, String> {
    Ok(req(j, key)?
        .as_str()
        .ok_or_else(|| format!("key {key:?} is not a string"))?
        .to_owned())
}

fn req_arr<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    req(j, key)?
        .as_arr()
        .ok_or_else(|| format!("key {key:?} is not an array"))
}

fn read_hist(j: &Json) -> Result<ReuseHistogram, String> {
    let cold = req_u64(j, "c")?;
    let mut buckets = Vec::new();
    for pair in req_arr(j, "b")? {
        let p = pair.as_arr().ok_or("histogram bucket is not a pair")?;
        if p.len() != 2 {
            return Err("histogram bucket is not a pair".into());
        }
        let idx = p[0].as_num().ok_or("bucket index not a number")? as u32;
        let n = p[1].as_num().ok_or("bucket count not a number")? as u64;
        buckets.push((idx, n));
    }
    Ok(ReuseHistogram { cold, buckets })
}

fn read_hist3(j: &Json, key: &str) -> Result<[ReuseHistogram; MODES], String> {
    let arr = req_arr(j, key)?;
    if arr.len() != MODES {
        return Err(format!("key {key:?}: expected {MODES} histograms"));
    }
    Ok([
        read_hist(&arr[0])?,
        read_hist(&arr[1])?,
        read_hist(&arr[2])?,
    ])
}

fn read_conflict(j: &Json) -> Result<ConflictHist, String> {
    let far = req_u64(j, "f")?;
    let mut d = Vec::new();
    for pair in req_arr(j, "d")? {
        let p = pair.as_arr().ok_or("conflict bucket is not a pair")?;
        if p.len() != 2 {
            return Err("conflict bucket is not a pair".into());
        }
        let dist = p[0].as_num().ok_or("conflict distance not a number")? as u32;
        let n = p[1].as_num().ok_or("conflict count not a number")? as u64;
        d.push((dist, n));
    }
    Ok(ConflictHist { far, d })
}

fn read_conflicts(j: &Json) -> Result<Vec<[ConflictHist; MODES]>, String> {
    let mut out = Vec::new();
    for modes in req_arr(j, "cf")? {
        let arr = modes.as_arr().ok_or("cf entry is not an array")?;
        if arr.len() != MODES {
            return Err(format!("cf entry: expected {MODES} histograms"));
        }
        out.push([
            read_conflict(&arr[0])?,
            read_conflict(&arr[1])?,
            read_conflict(&arr[2])?,
        ]);
    }
    if out.len() != CONFLICT_SHAPES.len() {
        return Err(format!(
            "cf: {} shapes, expected {} (profile from an older format?)",
            out.len(),
            CONFLICT_SHAPES.len()
        ));
    }
    Ok(out)
}

fn read_phase_thread(j: &Json) -> Result<PhaseThread, String> {
    let acc_arr = req_arr(j, "acc")?;
    if acc_arr.len() != MODES {
        return Err("acc: expected 3 entries".into());
    }
    let mut acc = [0u64; MODES];
    for (i, a) in acc_arr.iter().enumerate() {
        acc[i] = a.as_num().ok_or("acc entry not a number")? as u64;
    }
    let sp_arr = req_arr(j, "sp")?;
    if sp_arr.len() != NUM_SHIFTS {
        return Err(format!("sp: expected {NUM_SHIFTS} entries"));
    }
    let mut stream_pages = [0u64; NUM_SHIFTS];
    for (i, n) in sp_arr.iter().enumerate() {
        stream_pages[i] = n.as_num().ok_or("sp entry not a number")? as u64;
    }
    let pg_arr = req_arr(j, "pg")?;
    if pg_arr.len() != NUM_SHIFTS {
        return Err(format!(
            "pg: {} page granularities, expected {NUM_SHIFTS} (profile from an older format?)",
            pg_arr.len()
        ));
    }
    let mut pages = Vec::with_capacity(NUM_SHIFTS);
    for hs in pg_arr {
        let arr = hs.as_arr().ok_or("pg entry is not an array")?;
        if arr.len() != MODES {
            return Err(format!("pg entry: expected {MODES} histograms"));
        }
        pages.push([
            read_hist(&arr[0])?,
            read_hist(&arr[1])?,
            read_hist(&arr[2])?,
        ]);
    }
    Ok(PhaseThread {
        acc,
        loads: req_u64(j, "ld")?,
        stores: req_u64(j, "st")?,
        instructions: req_u64(j, "ins")?,
        ifetches: req_u64(j, "if")?,
        stream_pages,
        line: read_hist3(j, "line")?,
        pages,
        code: {
            let arr = req_arr(j, "code")?;
            if arr.len() != NUM_CODE_SHIFTS {
                return Err(format!("code: expected {NUM_CODE_SHIFTS} histograms"));
            }
            arr.iter().map(read_hist).collect::<Result<_, _>>()?
        },
        conflict: read_conflicts(j)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: distinct keys since previous access.
    fn naive_distances(keys: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            let prev = keys[..i].iter().rposition(|&x| x == k);
            out.push(prev.map(|p| {
                let mut seen = std::collections::HashSet::new();
                for &x in &keys[p + 1..i] {
                    seen.insert(x);
                }
                seen.len() as u64
            }));
        }
        out
    }

    #[test]
    fn tracker_matches_naive_reference() {
        // Deterministic pseudo-random key stream with heavy reuse.
        let mut state = 0x1234_5678_u64;
        let keys: Vec<u64> = (0..2000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % 97
            })
            .collect();
        let want = naive_distances(&keys);
        let mut tr = ReuseTracker::new();
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(tr.access(k), want[i], "access {i} key {k}");
        }
        assert_eq!(tr.distinct(), 97);
    }

    #[test]
    fn tracker_survives_compaction() {
        // Force several compactions with a small working set: distances
        // stay exact across renumbering.
        let mut tr = ReuseTracker::new();
        for round in 0..3u64 {
            for k in 0..40_000u64 {
                let d = tr.access(k % 50);
                if round > 0 || k >= 50 {
                    assert_eq!(d, Some(49), "round {round} k {k}");
                }
            }
        }
    }

    #[test]
    fn bucket_bounds_partition_the_distance_axis() {
        let mut expect = 0u64;
        for idx in 0..NUM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expect, "bucket {idx} lower bound");
            assert!(hi >= lo);
            expect = hi + 1;
        }
        for d in [0, 1, 15, 16, 17, 100, 1 << 20, (1 << 30) + 12345] {
            let idx = bucket_of(d);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= d && d <= hi, "distance {d} in bucket {idx}");
        }
    }

    #[test]
    fn misses_beyond_interpolates() {
        let mut h = ReuseHistogram {
            cold: 5,
            ..Default::default()
        };
        // 100 accesses at exact distance 8.
        h.buckets.push((bucket_of(8) as u32, 100));
        assert_eq!(h.misses_beyond(9), 5.0); // all hit
        assert_eq!(h.misses_beyond(8), 105.0); // dist 8 >= cap 8: miss
        assert_eq!(h.misses_beyond(0), 105.0);
        assert_eq!(h.total(), 105);
    }

    #[test]
    fn aggregator_merges_phases_by_label() {
        let mut recs = vec![ThreadRecorder::new(), ThreadRecorder::new()];
        let mut agg = PhaseAggregator::new();
        agg.region_enter("k:sweep", &mut recs);
        recs[0].data(0x1000, false, MODE_STREAM);
        recs[1].data(0x2000, true, MODE_LATENCY);
        agg.flush(&mut recs, true);
        agg.region_exit(&mut recs);
        agg.region_enter("k:sweep", &mut recs);
        recs[0].data(0x1000, false, MODE_STREAM);
        agg.flush(&mut recs, true);
        agg.region_exit(&mut recs);
        let p = agg.finish(&mut recs, "cg", "S", 1.25);
        assert_eq!(p.phases.len(), 1);
        let ph = &p.phases[0];
        assert_eq!(ph.label, "k:sweep");
        assert_eq!(ph.barriers, 2);
        assert_eq!(ph.threads[0].acc[MODE_STREAM], 2);
        assert_eq!(ph.threads[1].stores, 1);
        // Second access of the same line is a repeat at distance 0.
        assert_eq!(ph.threads[0].line[MODE_STREAM].cold, 1);
        assert_eq!(ph.threads[0].line[MODE_STREAM].buckets, vec![(0, 1)]);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut recs = vec![ThreadRecorder::new()];
        let mut agg = PhaseAggregator::new();
        agg.region_enter("a:b", &mut recs);
        for i in 0..500u64 {
            recs[0].data(0x40_0000 + i * 64, i % 3 == 0, (i % 3) as usize);
        }
        recs[0].compute(1234);
        recs[0].ifetch(0x40_0000);
        agg.flush(&mut recs, true);
        agg.region_exit(&mut recs);
        recs[0].data(0x40_0000, false, MODE_LATENCY);
        let p = agg.finish(&mut recs, "mg", "W", -3.5e-2);
        let json = p.to_json();
        let back = StreamProfile::from_json(&json).expect("parses");
        assert_eq!(p, back);
        assert_eq!(back.checksum.to_bits(), p.checksum.to_bits());
    }

    #[test]
    fn engine_version_mismatch_is_rejected() {
        let p = StreamProfile {
            app: "cg".into(),
            class: "S".into(),
            threads: 1,
            checksum: 0.5,
            phases: Vec::new(),
        };
        let json = p.to_json();
        assert!(StreamProfile::from_json(&json).is_ok());
        // The same profile stamped by a past (or future) engine must be
        // refused, whatever else it contains.
        let cur = format!("\"engine\":{}", crate::ENGINE_VERSION);
        for other in [0, crate::ENGINE_VERSION - 1, crate::ENGINE_VERSION + 1] {
            let stale = json.replace(&cur, &format!("\"engine\":{other}"));
            assert_ne!(stale, json, "patch must take");
            let err = StreamProfile::from_json(&stale).unwrap_err();
            assert!(err.contains("engine version"), "{err}");
        }
        // Pre-stamp profiles (no key at all) are equally stale.
        let unstamped = json.replace(&format!("{cur},"), "");
        let err = StreamProfile::from_json(&unstamped).unwrap_err();
        assert!(err.contains("engine"), "{err}");
    }

    #[test]
    fn conflict_capture_sees_set_thrash_the_full_assoc_hists_hide() {
        // Four lines 32 KB apart map to the same set of the 512-set
        // 2-way shape (Opteron L1D) but are only 4 distinct lines to the
        // fully-associative histogram.
        let shape_2w = conflict_shape_index(GRAN_LINE, 512, 2).unwrap();
        let shape_16w = conflict_shape_index(GRAN_LINE, 1024, 16).unwrap();
        let mut recs = vec![ThreadRecorder::new()];
        let mut agg = PhaseAggregator::new();
        for _ in 0..100u32 {
            for slot in 0..4u64 {
                recs[0].data(slot * 512 * 64, false, MODE_LATENCY);
            }
        }
        agg.flush(&mut recs, true);
        let p = agg.finish(&mut recs, "t", "S", 0.0);
        let t = &p.phases[0].threads[0];

        // Full-assoc line view: working set of 4 lines, distance 3 — a
        // 2-way cache looks clean at any capacity >= 4 lines.
        assert_eq!(t.line[MODE_LATENCY].misses_beyond(4), 4.0); // cold only

        // Per-set view: all four collide in one set, so 2 ways thrash on
        // every access while 16 ways absorb the whole working set.
        let two_way = &t.conflict[shape_2w][MODE_LATENCY];
        assert_eq!(two_way.misses_beyond(2), 400.0);
        // 1024-set shape: lines 32 KB apart also alias (period 64 KB)...
        let sixteen_way = &t.conflict[shape_16w][MODE_LATENCY];
        // ...but 16 ways hold all 4 residents: only the cold misses.
        assert_eq!(sixteen_way.misses_beyond(16), 4.0);
        assert_eq!(two_way.total(), 400);
    }

    #[test]
    fn conflict_hist_merge_and_depth_cap() {
        let mut a = ConflictHist {
            far: 2,
            d: vec![(0, 10), (3, 5)],
        };
        let b = ConflictHist {
            far: 1,
            d: vec![(1, 7), (3, 5)],
        };
        a.merge(&b);
        assert_eq!(a.far, 3);
        assert_eq!(a.d, vec![(0, 10), (1, 7), (3, 10)]);
        assert_eq!(a.misses_beyond(2), 3.0 + 10.0);
        assert_eq!(a.misses_beyond(1), 3.0 + 7.0 + 10.0);

        // Reuse deeper than the tracked depth lands in `far`.
        let shape = &CONFLICT_SHAPES[0];
        let mut tr = SetTracker::new(shape);
        let set_stride = u64::from(shape.sets); // same set every access
        for k in 0..=CONFLICT_DEPTH as u64 {
            assert_eq!(tr.access(k * set_stride), None);
        }
        // Key 0 was pushed out of the depth-32 window: still None.
        assert_eq!(tr.access(0), None);
        // Key at depth 1 survives and reports its exact distance.
        assert_eq!(tr.access(CONFLICT_DEPTH as u64 * set_stride), Some(1));
    }
}
