//! Timeline export in the Chrome `trace_event` JSON format.
//!
//! The [`TraceRecorder`] stores duration slices (`"B"`/`"E"`) and
//! instants (`"i"`) per thread; [`TraceRecorder::to_json`] renders the
//! stable subset of the format that `chrome://tracing` and Perfetto
//! accept: one named track per simulated thread, timestamps in
//! microseconds. The simulator's unit of time is the cycle, so the
//! export uses **1 trace µs = 1 simulated cycle** — absolute numbers
//! read as cycles, and the relative widths (barrier waits, daemon
//! episodes, kernel phases) are what the view is for.
//!
//! The module also carries [`parse_json`], a minimal dependency-free
//! JSON reader, so the round-trip property test (emit → parse → check
//! nesting) needs nothing outside the tree.

/// Event kind, mirroring the `ph` field of the trace format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// Duration begin (`"B"`).
    Begin,
    /// Duration end (`"E"`).
    End,
    /// Thread-scoped instant (`"i"`).
    Instant,
}

/// One recorded timeline event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Slice or instant name.
    pub name: String,
    /// Begin / end / instant.
    pub ph: TracePhase,
    /// Simulated thread the event belongs to (one track each).
    pub tid: usize,
    /// Timestamp: the thread's cycle clock when the event happened.
    pub ts: u64,
}

/// An append-only timeline. The engine records; [`Self::to_json`]
/// renders.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Open a duration slice on `thread`'s track.
    pub fn begin(&mut self, name: &str, thread: usize, ts: u64) {
        self.push(name, TracePhase::Begin, thread, ts);
    }

    /// Close the innermost slice of this name on `thread`'s track.
    pub fn end(&mut self, name: &str, thread: usize, ts: u64) {
        self.push(name, TracePhase::End, thread, ts);
    }

    /// Record a thread-scoped instant (a vertical tick in the viewer).
    pub fn instant(&mut self, name: &str, thread: usize, ts: u64) {
        self.push(name, TracePhase::Instant, thread, ts);
    }

    fn push(&mut self, name: &str, ph: TracePhase, tid: usize, ts: u64) {
        self.events.push(TraceEvent {
            name: name.to_owned(),
            ph,
            tid,
            ts,
        });
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drop every recorded event (keeps the allocation).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Render as a Chrome `trace_event` JSON object. `cores[t]` names
    /// thread `t`'s track (`"core C thread T"`) via `thread_name`
    /// metadata; all events share `pid` 0.
    pub fn to_json(&self, cores: &[usize]) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for (t, &core) in cores.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{t},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"core {core} thread {t}\"}}}}"
            ));
        }
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let name = escape_json(&e.name);
            match e.ph {
                TracePhase::Begin | TracePhase::End => {
                    let ph = if e.ph == TracePhase::Begin { 'B' } else { 'E' };
                    out.push_str(&format!(
                        "{{\"ph\":\"{ph}\",\"pid\":0,\"tid\":{},\"ts\":{},\"name\":\"{name}\"}}",
                        e.tid, e.ts
                    ));
                }
                TracePhase::Instant => {
                    out.push_str(&format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{},\
                         \"name\":\"{name}\"}}",
                        e.tid, e.ts
                    ));
                }
            }
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value — the minimal model the round-trip test needs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (keys may repeat).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), else `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset and a
/// short description; trailing non-whitespace is an error.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        members.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our own output.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            c => {
                // Re-sync to char boundaries for multibyte UTF-8.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let s = std::str::from_utf8(&b[start..end])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(s);
                    *pos = end;
                }
            }
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_owned())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_metadata_slices_and_instants() {
        let mut tr = TraceRecorder::new();
        tr.begin("cg:matvec", 0, 10);
        tr.instant("tlb-shootdown", 0, 15);
        tr.end("cg:matvec", 0, 20);
        let json = tr.to_json(&[2]);
        let doc = parse_json(&json).expect("own output parses");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 4, "1 metadata + 3 recorded");
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(
            events[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("core 2 thread 0")
        );
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("B"));
        assert_eq!(events[1].get("ts").and_then(Json::as_num), Some(10.0));
        assert_eq!(events[2].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(events[2].get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(events[3].get("ph").and_then(Json::as_str), Some("E"));
    }

    #[test]
    fn escaping_round_trips() {
        let mut tr = TraceRecorder::new();
        tr.instant("weird \"name\"\\with\nstuff", 0, 1);
        let json = tr.to_json(&[0]);
        let doc = parse_json(&json).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(
            events[1].get("name").and_then(Json::as_str),
            Some("weird \"name\"\\with\nstuff")
        );
    }

    #[test]
    fn parser_handles_the_usual_shapes() {
        let doc =
            parse_json(r#" {"a": [1, -2.5, 1e3], "b": {"nested": true}, "c": null, "d": "x"} "#)
                .unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_arr).unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2],
            Json::Num(1000.0)
        );
        assert_eq!(
            doc.get("b").and_then(|b| b.get("nested")),
            Some(&Json::Bool(true))
        );
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("d").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn clear_empties_the_timeline() {
        let mut tr = TraceRecorder::new();
        tr.begin("x", 0, 0);
        tr.clear();
        assert!(tr.events().is_empty());
        let doc = parse_json(&tr.to_json(&[0])).unwrap();
        assert_eq!(
            doc.get("traceEvents").and_then(Json::as_arr).unwrap().len(),
            1
        );
    }
}
