//! Region attribution: charging every counter increment to a named phase.
//!
//! The paper's argument is made with OProfile *attribution* — DTLB misses
//! and cycles pinned to specific parallel loops of the NPB kernels (§4,
//! Figs. 3–5). This module is that attribution layer for the simulator:
//! the runtime pushes named regions ("cg:matvec", "rt:barrier",
//! "os:khugepaged", …) around the work it executes, and every event a
//! thread's counter sheet records while a region is innermost is charged
//! to that region for that thread.
//!
//! Attribution is **conservative by construction**: the profiler keeps a
//! per-thread snapshot of the thread's [`Counters`] and, on every region
//! transition, settles `current - snapshot` into the outgoing innermost
//! region's bucket. Counters only change via the thread sheets the engine
//! already owns, so for every [`Event`] the sum over regions equals the
//! global counter exactly — no sampling error, no double counting. The
//! engine debug-asserts this at barriers and the `regions` property test
//! asserts it at several thread counts.
//!
//! Region id 0 is the implicit root, `"(root)"`: whatever runs outside
//! any named region (startup faults, un-annotated loops) lands there, so
//! conservation holds even for partially annotated programs.

use std::collections::HashMap;

use crate::counters::{Counters, Event, Profile};
use crate::trace::TraceRecorder;

/// What the engine should profile. The default is [`ProfileSpec::Off`]:
/// no per-region state is kept and runs are byte-identical to a build
/// without the profiler.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProfileSpec {
    /// No attribution (zero overhead; region enters/exits are no-ops).
    #[default]
    Off,
    /// Per-region × per-thread counter attribution ([`ProfileSheet`]).
    Regions,
    /// Regions plus a Chrome `trace_event` timeline (see
    /// [`crate::trace`]).
    Trace,
}

impl ProfileSpec {
    /// Whether any profiling is requested.
    pub fn enabled(self) -> bool {
        self != ProfileSpec::Off
    }

    /// Whether the timeline recorder is requested.
    pub fn wants_trace(self) -> bool {
        self == ProfileSpec::Trace
    }
}

/// Index of a region in a [`RegionProfiler`] / [`ProfileSheet`].
pub type RegionId = usize;

/// Name of the implicit root region (id 0).
pub const ROOT_REGION: &str = "(root)";

/// The live attribution state the simulated engine drives.
///
/// Region transitions are control-flow events: the runtime enters/exits
/// regions *between* parallel work (fork points, barrier episodes, daemon
/// slots), never mid-quantum, so a single region stack is shared by all
/// threads while the counter buckets stay per-thread.
#[derive(Debug)]
pub struct RegionProfiler {
    names: Vec<String>,
    index: HashMap<String, RegionId>,
    stack: Vec<RegionId>,
    /// Per-thread counter snapshot at the last transition.
    snaps: Vec<Counters>,
    /// Attributed counters: `rows[region][thread]`.
    rows: Vec<Vec<Counters>>,
    /// Thread → core placement (for the trace's track metadata).
    cores: Vec<usize>,
    trace: Option<TraceRecorder>,
}

impl RegionProfiler {
    /// A fresh profiler for `cores.len()` threads (thread `t` runs on
    /// core `cores[t]`). `trace` additionally records the timeline.
    pub fn new(cores: Vec<usize>, trace: bool) -> Self {
        let threads = cores.len();
        RegionProfiler {
            names: vec![ROOT_REGION.to_owned()],
            index: HashMap::from([(ROOT_REGION.to_owned(), 0)]),
            stack: Vec::new(),
            snaps: vec![Counters::new(); threads],
            rows: vec![vec![Counters::new(); threads]],
            cores,
            trace: trace.then(TraceRecorder::new),
        }
    }

    /// Number of threads attributed.
    pub fn threads(&self) -> usize {
        self.snaps.len()
    }

    /// The innermost active region (root when the stack is empty).
    pub fn current(&self) -> RegionId {
        self.stack.last().copied().unwrap_or(0)
    }

    fn intern(&mut self, name: &str) -> RegionId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len();
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        self.rows.push(vec![Counters::new(); self.threads()]);
        id
    }

    /// Settle every thread's counters-since-snapshot into the innermost
    /// active region.
    fn settle(&mut self, profile: &Profile) {
        let region = self.current();
        for t in 0..self.snaps.len() {
            let now = profile.thread(t);
            let delta = now.diff(&self.snaps[t]);
            self.rows[region][t].merge(&delta);
            self.snaps[t] = now.clone();
        }
    }

    /// Enter a named region: settle the outgoing region, push the new
    /// one, and (when tracing) open a duration slice on every track at
    /// each thread's current clock.
    pub fn enter(&mut self, name: &str, profile: &Profile, clocks: &[u64]) {
        self.settle(profile);
        let id = self.intern(name);
        self.stack.push(id);
        if let Some(tr) = &mut self.trace {
            for (t, &ts) in clocks.iter().enumerate() {
                tr.begin(&self.names[id], t, ts);
            }
        }
    }

    /// Exit the innermost region (settling it first). Unbalanced exits
    /// are a runtime-wiring bug and panic.
    pub fn exit(&mut self, profile: &Profile, clocks: &[u64]) {
        self.settle(profile);
        let id = self.stack.pop().expect("region exit without enter");
        if let Some(tr) = &mut self.trace {
            for (t, &ts) in clocks.iter().enumerate() {
                tr.end(&self.names[id], t, ts);
            }
        }
    }

    /// Record an instantaneous timeline event (shootdowns, migrations) on
    /// one thread's track. No counter attribution — purely a trace mark.
    pub fn instant(&mut self, name: &str, thread: usize, clock: u64) {
        if let Some(tr) = &mut self.trace {
            tr.instant(name, thread, clock);
        }
    }

    /// Settle and snapshot the attribution so far as a [`ProfileSheet`].
    pub fn sheet(&mut self, profile: &Profile) -> ProfileSheet {
        self.settle(profile);
        ProfileSheet {
            names: self.names.clone(),
            cores: self.cores.clone(),
            rows: self.rows.clone(),
        }
    }

    /// Render the timeline recorded so far as Chrome `trace_event` JSON
    /// (None unless built with `trace`).
    pub fn trace_json(&self) -> Option<String> {
        self.trace.as_ref().map(|t| t.to_json(&self.cores))
    }

    /// Assert exact conservation: for every thread and every [`Event`],
    /// the sum over regions equals the thread's global counter.
    ///
    /// Settles first, so it may be called at any transition-safe point
    /// (the engine calls it at barriers in debug builds).
    pub fn check_conservation(&mut self, profile: &Profile) {
        self.settle(profile);
        for t in 0..self.snaps.len() {
            let mut summed = Counters::new();
            for row in &self.rows {
                summed.merge(&row[t]);
            }
            for e in Event::ALL {
                assert_eq!(
                    summed.get(e),
                    profile.thread(t).get(e),
                    "region attribution lost {e} events on thread {t}"
                );
            }
        }
    }

    /// Zero the attribution and the timeline (the engine's
    /// `reset_timing` analogue). Interned names and the active stack are
    /// kept — the program's phase structure does not change on reset.
    pub fn reset(&mut self) {
        for row in &mut self.rows {
            row.iter_mut().for_each(|c| *c = Counters::new());
        }
        self.snaps.iter_mut().for_each(|c| *c = Counters::new());
        if let Some(tr) = &mut self.trace {
            tr.clear();
        }
    }
}

/// A finished attribution: every [`Event`] counter, per region × thread.
///
/// `PartialEq` compares everything exactly; determinism tests compare
/// whole sheets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileSheet {
    names: Vec<String>,
    cores: Vec<usize>,
    rows: Vec<Vec<Counters>>,
}

impl ProfileSheet {
    /// Number of regions (including the root).
    pub fn region_count(&self) -> usize {
        self.names.len()
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.cores.len()
    }

    /// Core a thread ran on.
    pub fn core_of(&self, thread: usize) -> usize {
        self.cores[thread]
    }

    /// A region's name.
    pub fn name(&self, region: RegionId) -> &str {
        &self.names[region]
    }

    /// Look a region up by name.
    pub fn by_name(&self, name: &str) -> Option<RegionId> {
        self.names.iter().position(|n| n == name)
    }

    /// One region's counters on one thread.
    pub fn get(&self, region: RegionId, thread: usize) -> &Counters {
        &self.rows[region][thread]
    }

    /// One region's counters summed across threads.
    pub fn region_total(&self, region: RegionId) -> Counters {
        let mut total = Counters::new();
        for c in &self.rows[region] {
            total.merge(c);
        }
        total
    }

    /// Sum of every region on every thread — equals the run's aggregate
    /// counters (the conservation invariant).
    pub fn total(&self) -> Counters {
        let mut total = Counters::new();
        for r in 0..self.region_count() {
            total.merge(&self.region_total(r));
        }
        total
    }

    /// Regions ranked by an event's cross-thread total, descending;
    /// ties break by name so the order is deterministic. Zero-count
    /// regions are omitted.
    pub fn top_by(&self, e: Event) -> Vec<(RegionId, u64)> {
        let mut ranked: Vec<(RegionId, u64)> = (0..self.region_count())
            .map(|r| (r, self.region_total(r).get(e)))
            .filter(|&(_, n)| n > 0)
            .collect();
        ranked.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| self.names[a.0].cmp(&self.names[b.0]))
        });
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile2() -> Profile {
        Profile::new(2)
    }

    #[test]
    fn settles_deltas_into_the_innermost_region() {
        let mut p = profile2();
        let mut rp = RegionProfiler::new(vec![0, 1], false);
        p.thread_mut(0).add(Event::Loads, 10); // root work
        rp.enter("a", &p, &[0, 0]);
        p.thread_mut(0).add(Event::Loads, 5);
        p.thread_mut(1).add(Event::Stores, 7);
        rp.enter("a:inner", &p, &[0, 0]);
        p.thread_mut(0).add(Event::Loads, 1);
        rp.exit(&p, &[0, 0]); // a:inner
        rp.exit(&p, &[0, 0]); // a
        p.thread_mut(1).add(Event::Loads, 2); // root again
        let sheet = rp.sheet(&p);
        let root = sheet.by_name(ROOT_REGION).unwrap();
        let a = sheet.by_name("a").unwrap();
        let inner = sheet.by_name("a:inner").unwrap();
        assert_eq!(sheet.get(root, 0).get(Event::Loads), 10);
        assert_eq!(sheet.get(root, 1).get(Event::Loads), 2);
        assert_eq!(sheet.get(a, 0).get(Event::Loads), 5);
        assert_eq!(sheet.get(a, 1).get(Event::Stores), 7);
        assert_eq!(sheet.get(inner, 0).get(Event::Loads), 1);
        rp.check_conservation(&p);
    }

    #[test]
    fn reentered_regions_accumulate() {
        let mut p = profile2();
        let mut rp = RegionProfiler::new(vec![0, 1], false);
        for _ in 0..3 {
            rp.enter("loop", &p, &[0, 0]);
            p.thread_mut(0).add(Event::Cycles, 4);
            rp.exit(&p, &[0, 0]);
        }
        let sheet = rp.sheet(&p);
        assert_eq!(sheet.region_count(), 2, "one named region plus the root");
        let id = sheet.by_name("loop").unwrap();
        assert_eq!(sheet.region_total(id).get(Event::Cycles), 12);
    }

    #[test]
    fn conservation_holds_with_unannotated_work() {
        let mut p = profile2();
        let mut rp = RegionProfiler::new(vec![0, 1], false);
        p.thread_mut(0).add(Event::Cycles, 100);
        p.thread_mut(1).add(Event::Cycles, 50);
        rp.enter("x", &p, &[0, 0]);
        p.thread_mut(1).add(Event::DtlbMisses, 9);
        rp.exit(&p, &[0, 0]);
        rp.check_conservation(&p);
        let sheet = rp.sheet(&p);
        assert_eq!(sheet.total(), p.aggregate());
    }

    #[test]
    fn top_by_ranks_descending_with_name_ties() {
        let mut p = profile2();
        let mut rp = RegionProfiler::new(vec![0, 1], false);
        for (name, n) in [("b", 5u64), ("a", 5), ("c", 9), ("zero", 0)] {
            rp.enter(name, &p, &[0, 0]);
            p.thread_mut(0).add(Event::DtlbMisses, n);
            rp.exit(&p, &[0, 0]);
        }
        let sheet = rp.sheet(&p);
        let ranked: Vec<(&str, u64)> = sheet
            .top_by(Event::DtlbMisses)
            .into_iter()
            .map(|(r, n)| (sheet.name(r), n))
            .collect();
        assert_eq!(ranked, vec![("c", 9), ("a", 5), ("b", 5)]);
    }

    #[test]
    fn reset_zeroes_attribution_but_keeps_names() {
        let mut p = profile2();
        let mut rp = RegionProfiler::new(vec![0, 1], false);
        rp.enter("phase", &p, &[0, 0]);
        p.thread_mut(0).add(Event::Loads, 3);
        rp.exit(&p, &[0, 0]);
        p = Profile::new(2); // the engine resets its profile too
        rp.reset();
        rp.check_conservation(&p);
        let sheet = rp.sheet(&p);
        assert_eq!(sheet.by_name("phase"), Some(1));
        assert_eq!(sheet.total(), Counters::new());
    }

    #[test]
    #[should_panic(expected = "region exit without enter")]
    fn unbalanced_exit_panics() {
        let p = profile2();
        let mut rp = RegionProfiler::new(vec![0, 1], false);
        rp.exit(&p, &[0, 0]);
    }
}
