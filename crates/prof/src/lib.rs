//! # `lpomp-prof` — event counters and reports (the OProfile analogue)
//!
//! The paper measures its systems with OProfile: aggregate ITLB miss rates
//! (Fig. 3) and normalized DTLB miss counts (Fig. 5). This crate provides
//! the counter substrate those measurements need — a fixed set of hardware
//! events, per-thread counter sheets, whole-run profiles with aggregation,
//! rate computation against a cycle clock, and the normalized-comparison
//! arithmetic of Fig. 5 — plus a small text-table formatter the experiment
//! binaries use to print paper-shaped tables.
//!
//! Counting is exact rather than sampled: the simulator observes every
//! event, so there is no need for OProfile's statistical sampling.

#![warn(missing_docs)]

pub mod counters;
pub mod report;
pub mod table;

pub use counters::{Counters, Event, Profile, ThreadSheet};
pub use report::{imbalance, normalized, rate_per_second, NormalizedSeries};
pub use table::TextTable;
