//! # `lpomp-prof` — event counters and reports (the OProfile analogue)
//!
//! The paper measures its systems with OProfile: aggregate ITLB miss rates
//! (Fig. 3) and normalized DTLB miss counts (Fig. 5). This crate provides
//! the counter substrate those measurements need — a fixed set of hardware
//! events, per-thread counter sheets, whole-run profiles with aggregation,
//! rate computation against a cycle clock, and the normalized-comparison
//! arithmetic of Fig. 5 — plus a small text-table formatter the experiment
//! binaries use to print paper-shaped tables.
//!
//! Counting is exact rather than sampled: the simulator observes every
//! event, so there is no need for OProfile's statistical sampling.
//!
//! Beyond whole-run sheets, the [`region`] module attributes every
//! counter increment to a named program phase (the paper's per-loop
//! OProfile attribution, §4), and [`trace`] exports the timeline as
//! Chrome `trace_event` JSON. The [`reuse`] module captures per-thread
//! reuse-distance histograms into the compact [`StreamProfile`] the
//! analytic backend evaluates.

#![warn(missing_docs)]

/// Version stamp of the evaluation engine and its persisted artifacts.
///
/// Bump this whenever a change alters what a cached artifact *means*:
/// charge rules or cost-model semantics, the capture pipeline behind
/// [`StreamProfile`], the serialization schemas, or the set of counted
/// [`Event`]s. Every on-disk cache in the workspace — the
/// `LPOMP_PROFILE_DIR` profile cache and the `lpomp-core` sweep result
/// store — stamps its files with this number and refuses (recaptures /
/// re-runs) anything written under a different one, so stale artifacts
/// can never silently feed predictions or figures.
pub const ENGINE_VERSION: u32 = 8;

pub mod counters;
pub mod region;
pub mod report;
pub mod reuse;
pub mod table;
pub mod trace;

pub use counters::{Counters, Event, Profile, ThreadSheet};
pub use region::{ProfileSheet, ProfileSpec, RegionId, RegionProfiler, ROOT_REGION};
pub use report::{imbalance, normalized, rate_per_second, NormalizedSeries};
pub use reuse::{PhaseAggregator, ReuseHistogram, ReuseTracker, StreamProfile, ThreadRecorder};
pub use table::TextTable;
pub use trace::{parse_json, Json, TraceRecorder};
