//! The NAS Parallel Benchmarks pseudo-random number generator.
//!
//! NPB specifies a linear congruential generator
//! `x_{k+1} = a * x_k  (mod 2^46)` with `a = 5^13`, returning uniform
//! doubles in (0, 1). All NPB kernels (CG's `makea`, FT's initial
//! conditions, EP's Gaussian pairs) draw from it, and because it is part
//! of the benchmark *specification*, we implement it exactly rather than
//! using the `rand` crate (which we reserve for non-NPB test inputs).
//!
//! The generator also supports O(log k) jump-ahead (`randlc` with a power
//! of the multiplier), which EP uses to give each thread an independent
//! substream — reproduced here as [`Nprng::skip`].

/// Modulus 2^46.
const M46: u64 = 1 << 46;
/// Mask for mod 2^46.
const MASK46: u64 = M46 - 1;
/// The NPB multiplier a = 5^13.
pub const A: u64 = 1_220_703_125;
/// The canonical NPB seed.
pub const SEED: u64 = 314_159_265;

/// 46-bit modular multiply (exact, via u128).
#[inline]
fn mul46(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) & MASK46 as u128) as u64
}

/// The NPB LCG state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nprng {
    x: u64,
}

impl Nprng {
    /// Generator seeded with the canonical NPB seed.
    pub fn new_default() -> Self {
        Nprng { x: SEED }
    }

    /// Generator with an explicit (46-bit) seed.
    pub fn new(seed: u64) -> Self {
        Nprng { x: seed & MASK46 }
    }

    /// Current raw state.
    pub fn state(&self) -> u64 {
        self.x
    }

    /// Next uniform double in (0, 1) — NPB's `randlc`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.x = mul46(A, self.x);
        self.x as f64 / M46 as f64
    }

    /// Fill `out` with uniform doubles — NPB's `vranlc`.
    pub fn fill(&mut self, out: &mut [f64]) {
        for o in out {
            *o = self.next_f64();
        }
    }

    /// Next integer uniform in `[0, n)` (used by `makea`-style column
    /// placement).
    #[inline]
    pub fn next_index(&mut self, n: usize) -> usize {
        (self.next_f64() * n as f64) as usize % n.max(1)
    }

    /// Advance the stream by `k` steps in O(log k) (NPB's power-of-a
    /// jump-ahead, used to partition EP's stream across threads).
    pub fn skip(&mut self, k: u64) {
        // Compute a^k mod 2^46 by binary exponentiation.
        let mut ak = 1u64;
        let mut base = A;
        let mut k = k;
        while k > 0 {
            if k & 1 == 1 {
                ak = mul46(ak, base);
            }
            base = mul46(base, base);
            k >>= 1;
        }
        self.x = mul46(ak, self.x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_in_unit_interval_and_deterministic() {
        let mut r = Nprng::new_default();
        let mut r2 = Nprng::new_default();
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!(v > 0.0 && v < 1.0);
            assert_eq!(v, r2.next_f64());
        }
    }

    #[test]
    fn known_first_value() {
        // x1 = 5^13 * 314159265 mod 2^46; value = x1 / 2^46.
        let mut r = Nprng::new_default();
        let v = r.next_f64();
        let expect = mul46(A, SEED) as f64 / M46 as f64;
        assert_eq!(v, expect);
    }

    #[test]
    fn skip_matches_sequential_stepping() {
        let mut a = Nprng::new_default();
        let mut b = Nprng::new_default();
        for _ in 0..1234 {
            a.next_f64();
        }
        b.skip(1234);
        assert_eq!(a.state(), b.state());
        assert_eq!(a.next_f64(), b.next_f64());
    }

    #[test]
    fn skip_zero_is_identity() {
        let mut a = Nprng::new_default();
        let before = a.state();
        a.skip(0);
        assert_eq!(a.state(), before);
    }

    #[test]
    fn fill_advances_state_per_element() {
        let mut a = Nprng::new_default();
        let mut b = Nprng::new_default();
        let mut buf = [0.0; 10];
        a.fill(&mut buf);
        for v in buf {
            assert_eq!(v, b.next_f64());
        }
    }

    #[test]
    fn next_index_in_range() {
        let mut r = Nprng::new_default();
        for _ in 0..1000 {
            let i = r.next_index(37);
            assert!(i < 37);
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut r = Nprng::new_default();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
