//! Extension workload: skewed lower-triangular sparse mat-vec (SKEW).
//!
//! CG's matrix gives every row the same nonzero count, so a static
//! contiguous partition is perfectly balanced and there is nothing for a
//! work-stealing scheduler to win. SKEW is the complementary stressor: a
//! *sawtooth* work profile with one tooth per socket-half — within each
//! half of the rows the nonzero count ramps `1 → nzmax`, so under
//! `Schedule::Static` on 4 threads each node's second thread carries
//! almost twice its node-mate's work and every barrier waits for the
//! heavy pair. Crucially the two halves carry *equal* totals: the
//! imbalance is entirely *within* each node, so a locality-aware stealer
//! can rebalance with node-local steals alone, while a topology-blind
//! stealer hauls chunks (and their page traffic) across the die for no
//! benefit. Self-scheduling off a shared queue fixes the imbalance but
//! scatters rows across cores with no regard for where their pages
//! landed at first touch; the hierarchical scheduler (E8) fixes the
//! imbalance *and* keeps rows near their pages.
//!
//! Two properties the scheduling experiment depends on:
//!
//! - The first-touch init loop is hardcoded `Schedule::Static` in every
//!   configuration, so page homes mirror the static partition and all
//!   schedule cells start from identical placement.
//! - The iterative phases pick their schedule via
//!   [`Team::schedule_or`]`(Schedule::Static)`, so a default build is
//!   bit-identical to the pre-override runtime while `ext_sched` swaps in
//!   topology-blind `Dynamic` or `Hierarchical` per cell.
//!
//! Gathers hit a window near the diagonal (cubed-uniform offsets), so a
//! chunk executed on the thread that first-touched its rows reads mostly
//! node-local pages; a chunk stolen across the die pays `dram_remote` on
//! nearly every line — the signal the E8 counters measure.
//!
//! SKEW is intentionally *not* an [`crate::AppKind`]: the paper's Figure 4
//! sweeps iterate `AppKind::ALL`, and those goldens must not move.

use crate::common::{Class, CodeProfile, Footprint, Kernel};
use crate::rng::Nprng;
use lpomp_runtime::{BumpAllocator, Reduction, Schedule, ShVec, Team};

/// Elements per cache line (for stream sampling).
const LINE_ELEMS: usize = 8;

/// Problem parameters per class.
#[derive(Clone, Copy, Debug)]
struct Params {
    /// Matrix dimension.
    n: usize,
    /// Nonzeros in the heaviest (last) row; row 0 has exactly one.
    nzmax: usize,
    /// Outer mat-vec + update iterations.
    outer: usize,
}

fn params(class: Class) -> Params {
    match class {
        Class::S => Params {
            n: 2048,
            nzmax: 8,
            outer: 2,
        },
        // Same regime as CG class W: the gather vector (512 KB) fits the
        // L2 cache but its ~128 4 KB pages overwhelm the 32-entry L1
        // DTLB, and the sawtooth matrix spans ~6 MB across both nodes.
        Class::W => Params {
            n: 64 * 1024,
            nzmax: 12,
            outer: 2,
        },
        Class::A => Params {
            n: 112 * 1024,
            nzmax: 13,
            outer: 3,
        },
        Class::B => Params {
            n: 1_500_000,
            nzmax: 16,
            outer: 6,
        },
    }
}

/// Nonzeros in row `i`: a sawtooth with one tooth per half. Within each
/// half the weight ramps `1 → nzmax`; across halves the totals match,
/// so on a two-node machine the static imbalance is intra-node only.
fn row_nz(p: Params, i: usize) -> usize {
    let half = p.n / 2;
    let pos = i % half;
    1 + pos * (p.nzmax - 1) / (half - 1)
}

/// Allocated state of a SKEW instance.
struct Data {
    rowstr: ShVec<u64>,
    colidx: ShVec<u64>,
    a: ShVec<f64>,
    x: ShVec<f64>,
    y: ShVec<f64>,
    /// Fixed per-element checksum weights.
    w: ShVec<f64>,
}

/// The skewed mat-vec benchmark.
pub struct Skew {
    class: Class,
    prm: Params,
    data: Option<Data>,
}

impl Skew {
    /// New SKEW instance for `class` (call [`Kernel::setup`] before running).
    pub fn new(class: Class) -> Self {
        Skew {
            class,
            prm: params(class),
            data: None,
        }
    }

    fn nnz(&self) -> usize {
        (0..self.prm.n).map(|i| row_nz(self.prm, i)).sum()
    }

    fn data(&self) -> &Data {
        self.data.as_ref().expect("setup() not called")
    }

    /// Serial reference of the full benchmark in plain Rust.
    fn reference_impl(&self) -> f64 {
        let d = self.data();
        let p = self.prm;
        let n = p.n;
        let nnz = self.nnz();
        let rowstr: Vec<usize> = (0..=n).map(|i| d.rowstr.get_raw(i) as usize).collect();
        let colidx: Vec<usize> = (0..nnz).map(|k| d.colidx.get_raw(k) as usize).collect();
        let a: Vec<f64> = (0..nnz).map(|k| d.a.get_raw(k)).collect();
        let w: Vec<f64> = (0..n).map(|i| d.w.get_raw(i)).collect();
        let mut x: Vec<f64> = (0..n).map(|i| 1.0 + w[i]).collect();
        let mut y = vec![0.0f64; n];
        let mut zeta = 0.0;
        for _ in 0..p.outer {
            for i in 0..n {
                let mut s = 0.0;
                for k in rowstr[i]..rowstr[i + 1] {
                    s += a[k] * x[colidx[k]];
                }
                y[i] = s;
            }
            zeta = y.iter().zip(&w).map(|(u, v)| u * v).sum();
            for i in 0..n {
                x[i] = 0.5 * (x[i] + y[i]);
            }
        }
        zeta
    }
}

impl Kernel for Skew {
    fn name(&self) -> &'static str {
        "SKEW"
    }

    fn class(&self) -> Class {
        self.class
    }

    fn footprint(&self) -> Footprint {
        let n = self.prm.n as u64;
        let nnz = self.nnz() as u64;
        Footprint {
            instruction_bytes: 900_000,
            data_bytes: (n + 1) * 8 + nnz * 16 + 3 * n * 8,
        }
    }

    fn code_profile(&self) -> CodeProfile {
        CodeProfile {
            code_bytes: 900_000,
            hot_bytes: 32 * 1024,
            cold_period: 1500,
        }
    }

    fn setup(&mut self, alloc: &mut BumpAllocator) {
        let p = self.prm;
        let n = p.n;
        let mut rng = Nprng::new_default();
        let mut acc = 0u64;
        let rowstr: ShVec<u64> = alloc.alloc_vec_from(n + 1, |i| {
            let here = acc;
            if i < n {
                acc += row_nz(p, i) as u64;
            }
            here
        });
        let nnz = acc as usize;
        let colidx: ShVec<u64> = alloc.alloc_vec(nnz);
        let a: ShVec<f64> = alloc.alloc_vec(nnz);
        for i in 0..n {
            let base = rowstr.get_raw(i) as usize;
            let nz = row_nz(p, i);
            // Diagonal first, then cubed-uniform offsets clustered near it:
            // most gathers stay on the row's own pages, a short tail
            // strides further out.
            colidx.set_raw(base, i as u64);
            a.set_raw(base, 1.0);
            for k in 1..nz {
                let u = rng.next_f64();
                let sign = if rng.next_f64() < 0.5 { -1.0 } else { 1.0 };
                let off = (u * u * u * (n as f64 / 8.0)) as i64 * sign as i64;
                let col = (i as i64 + off).rem_euclid(n as i64) as u64;
                colidx.set_raw(base + k, col);
                a.set_raw(base + k, rng.next_f64() / nz as f64);
            }
        }
        let x: ShVec<f64> = alloc.alloc_vec(n);
        let y: ShVec<f64> = alloc.alloc_vec(n);
        let w: ShVec<f64> = alloc.alloc_vec_from(n, |i| 1.0 / (1.0 + (i % 97) as f64));
        self.data = Some(Data {
            rowstr,
            colidx,
            a,
            x,
            y,
            w,
        });
    }

    fn run(&mut self, team: &mut Team) -> f64 {
        let p = self.prm;
        let n = p.n;
        let d = self.data();
        // Iterative phases honour the experiment's override; everything
        // else is pinned so placement and checksums are schedule-invariant.
        let sched = team.schedule_or(Schedule::Static);
        // First-touch init: always Static, so page homes mirror the static
        // partition in every schedule cell (and repeated runs are
        // identical — x is reset here).
        team.region("skew:init", |team| {
            team.parallel_for(0..n, Schedule::Static, &|ctx, rr| {
                let nlen = rr.len() as u64;
                for i in rr {
                    if i % LINE_ELEMS == 0 {
                        ctx.write_streamed(d.x.va(i));
                        ctx.write_streamed(d.y.va(i));
                        ctx.read_streamed(d.rowstr.va(i));
                    }
                    d.x.set_raw(i, 1.0 + d.w.get_raw(i));
                    d.y.set_raw(i, 0.0);
                    // Touch this row's slice of the matrix so a/colidx
                    // pages are homed with their rows.
                    let start = d.rowstr.get_raw(i) as usize;
                    let end = d.rowstr.get_raw(i + 1) as usize;
                    for k in (start..end).step_by(LINE_ELEMS) {
                        ctx.read_streamed(d.a.va(k));
                        ctx.read_streamed(d.colidx.va(k));
                    }
                }
                ctx.compute(nlen);
            });
        });
        let mut zeta = 0.0;
        for _ in 0..p.outer {
            // y = A·x — the sawtooth, schedule-sensitive phase.
            team.region("skew:matvec", |team| {
                team.parallel_for(0..n, sched, &|ctx, rows| {
                    let mut nz = 0u64;
                    for i in rows {
                        let start = d.rowstr.get_raw(i) as usize;
                        let end = d.rowstr.get_raw(i + 1) as usize;
                        nz += (end - start) as u64;
                        let mut sum = 0.0;
                        for k in start..end {
                            if k % LINE_ELEMS == 0 {
                                ctx.read_streamed(d.a.va(k));
                                ctx.read_streamed(d.colidx.va(k));
                            }
                            let col = d.colidx.get_raw(k) as usize;
                            let xj = d.x.get(ctx, col);
                            sum += d.a.get_raw(k) * xj;
                        }
                        d.y.set_raw(i, sum);
                        if i % LINE_ELEMS == 0 {
                            ctx.write_streamed(d.y.va(i));
                        }
                    }
                    ctx.compute(2 * nz);
                });
            });
            // zeta = y·w — pinned Static so the summation order (and the
            // checksum) is identical across schedule cells; each y[i] is
            // exact because a row is always summed serially by one thread.
            zeta = team.region("skew:norm", |team| {
                team.parallel_for_reduce(0..n, Schedule::Static, Reduction::Sum, &|ctx, rr| {
                    let mut s = 0.0;
                    let nlen = rr.len() as u64;
                    for i in rr {
                        if i % LINE_ELEMS == 0 {
                            ctx.read_streamed(d.y.va(i));
                        }
                        s += d.y.get_raw(i) * d.w.get_raw(i);
                    }
                    ctx.compute(2 * nlen);
                    s
                })
            });
            // x = (x + y)/2 — element-wise, so exact under any schedule.
            team.region("skew:update", |team| {
                team.parallel_for(0..n, sched, &|ctx, rr| {
                    let nlen = rr.len() as u64;
                    for i in rr {
                        if i % LINE_ELEMS == 0 {
                            ctx.read_streamed(d.y.va(i));
                            ctx.write_streamed(d.x.va(i));
                        }
                        d.x.set_raw(i, 0.5 * (d.x.get_raw(i) + d.y.get_raw(i)));
                    }
                    ctx.compute(2 * nlen);
                });
            });
        }
        zeta
    }

    fn reference(&self) -> f64 {
        self.reference_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::verify_close;

    fn run_skew_native(class: Class, threads: usize) -> (f64, bool) {
        let mut k = Skew::new(class);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let mut team = Team::native(threads);
        let cs = k.run(&mut team);
        let ok = verify_close(cs, k.reference());
        (cs, ok)
    }

    #[test]
    fn skew_native_matches_reference_across_thread_counts() {
        for threads in [1, 2, 4] {
            let (cs, ok) = run_skew_native(Class::S, threads);
            assert!(ok, "threads={threads} checksum={cs}");
            assert!(cs.is_finite());
        }
    }

    #[test]
    fn skew_checksum_is_deterministic() {
        let (a, _) = run_skew_native(Class::S, 2);
        let (b, _) = run_skew_native(Class::S, 4);
        assert!(verify_close(a, b));
    }

    #[test]
    fn skew_repeated_runs_are_identical() {
        let mut k = Skew::new(Class::S);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let mut team = Team::native(2);
        let a = k.run(&mut team);
        let b = k.run(&mut team);
        assert_eq!(a, b);
    }

    #[test]
    fn skew_row_weights_are_a_balanced_sawtooth() {
        let p = params(Class::W);
        let half = p.n / 2;
        assert_eq!(row_nz(p, 0), 1);
        assert_eq!(row_nz(p, half - 1), p.nzmax);
        assert_eq!(row_nz(p, half), 1);
        assert_eq!(row_nz(p, p.n - 1), p.nzmax);
        // Halves (node partitions on a two-node machine) carry equal
        // totals — the imbalance must be intra-node only...
        let q = |a: usize, b: usize| (a..b).map(|i| row_nz(p, i)).sum::<usize>();
        assert_eq!(q(0, half), q(half, p.n));
        // ...while within a half the second quarter (a static thread
        // partition at 4 threads) carries well over its node-mate's load.
        assert!(
            q(p.n / 4, half) * 2 > q(0, p.n / 4) * 3,
            "ramp must skew the intra-node split"
        );
    }

    #[test]
    fn skew_w_matches_the_cg_w_regime() {
        // Gather vector fits L2 but dwarfs the 32-entry L1 DTLB in 4 KB
        // pages — the same placement-sensitive regime as CG class W.
        let p = params(Class::W);
        let x_bytes = (p.n * 8) as u64;
        assert!(x_bytes < 1024 * 1024);
        assert!(x_bytes / 4096 >= 4 * 32);
    }

    #[test]
    fn skew_native_honours_default_schedule_only() {
        // Native teams have no override machinery: schedule_or returns the
        // default, so this test pins the no-override path the goldens use.
        let team = Team::native(2);
        assert_eq!(team.schedule_or(Schedule::Static), Schedule::Static);
    }
}
