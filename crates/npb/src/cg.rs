//! NPB CG: conjugate gradient with a random sparse matrix.
//!
//! The paper's headline application: *"CG accesses randomly generated
//! matrix entries. The stride size might be larger than a 4KB page and
//! might benefit from large page support"* (§4.2) — and indeed CG shows
//! the largest improvement (≈25% at 4 threads on the Opteron).
//!
//! The TLB-relevant pattern is the sparse mat-vec `q = A·p`: the matrix
//! (`a`, `colidx`, `rowstr`) streams sequentially, but `p[colidx[k]]` is a
//! *gather* across the whole vector. With the simulated-evaluation class
//! the vector spans ~8 MB — beyond the Opteron's 4 MB of 4 KB-page DTLB
//! reach but comfortably inside its 16 MB of 2 MB-page reach — the same
//! regime the paper's class B occupies on the real machine.
//!
//! Structure follows NPB CG: an outer power-iteration loop computing
//! `zeta = shift + 1/(x·z)`, with an inner conjugate-gradient solve.

use crate::common::{Class, CodeProfile, Footprint, Kernel};
use crate::rng::Nprng;
use lpomp_runtime::{BumpAllocator, Reduction, Schedule, ShVec, Team};

/// Bytes per cache line (for stream sampling).
const LINE_ELEMS: usize = 8;

/// Problem parameters per class.
#[derive(Clone, Copy, Debug)]
struct Params {
    /// Matrix dimension.
    n: usize,
    /// Nonzeros per row.
    nonzer: usize,
    /// Outer (power-method) iterations.
    outer: usize,
    /// Inner CG iterations per outer step.
    inner: usize,
    /// Eigenvalue shift (NPB parameter, folded into the checksum).
    shift: f64,
}

fn params(class: Class) -> Params {
    match class {
        Class::S => Params {
            n: 4096,
            nonzer: 6,
            outer: 2,
            inner: 4,
            shift: 10.0,
        },
        // The class-B-on-real-hardware regime, scaled: NPB CG class B has
        // x = 75000 x 8 B = 600 KB — it fits the 1 MB L2 *cache*, but its
        // ~150 4 KB pages overwhelm the 32-entry L1 DTLB, so with small
        // pages nearly every gather pays the L2-TLB (or walk) latency on
        // top of an L2-cache hit. One 2 MB page covers the whole vector.
        Class::W => Params {
            n: 64 * 1024, // 512 KB gather vector
            nonzer: 12,
            outer: 2,
            inner: 8,
            shift: 12.0,
        },
        Class::A => Params {
            n: 112 * 1024,
            nonzer: 13,
            outer: 3,
            inner: 8,
            shift: 20.0,
        },
        // Sized so the data footprint lands near the paper's Table 2
        // measurement for CG class B (725 MB).
        Class::B => Params {
            n: 2_500_000,
            nonzer: 16,
            outer: 15,
            inner: 25,
            shift: 60.0,
        },
    }
}

/// Allocated state of a CG instance.
struct Data {
    rowstr: ShVec<u64>,
    colidx: ShVec<u64>,
    a: ShVec<f64>,
    x: ShVec<f64>,
    z: ShVec<f64>,
    p: ShVec<f64>,
    q: ShVec<f64>,
    r: ShVec<f64>,
}

/// The CG benchmark.
pub struct Cg {
    class: Class,
    prm: Params,
    data: Option<Data>,
}

impl Cg {
    /// New CG instance for `class` (call [`Kernel::setup`] before running).
    pub fn new(class: Class) -> Self {
        Cg {
            class,
            prm: params(class),
            data: None,
        }
    }

    fn nnz(&self) -> usize {
        self.prm.n * self.prm.nonzer
    }

    fn data(&self) -> &Data {
        self.data.as_ref().expect("setup() not called")
    }

    /// One parallel sparse mat-vec `q = A·p` with instrumentation.
    fn matvec(team: &mut Team, d: &Data, flops_per_nz: u64) {
        let n = d.rowstr.len() - 1;
        team.region("cg:matvec", |team| {
            team.parallel_for(0..n, Schedule::Static, &|ctx, rows| {
                let mut nz = 0u64;
                for i in rows {
                    let start = d.rowstr.get_raw(i) as usize;
                    let end = d.rowstr.get_raw(i + 1) as usize;
                    nz += (end - start) as u64;
                    let mut sum = 0.0;
                    for k in start..end {
                        // a[] and colidx[] stream sequentially; sample one
                        // instrumented access per cache line of each.
                        if k % LINE_ELEMS == 0 {
                            ctx.read_streamed(d.a.va(k));
                            ctx.read_streamed(d.colidx.va(k));
                        }
                        let col = d.colidx.get_raw(k) as usize;
                        // The gather the whole paper turns on.
                        let pj = d.p.get(ctx, col);
                        sum += d.a.get_raw(k) * pj;
                    }
                    d.q.set_raw(i, sum);
                    if i % LINE_ELEMS == 0 {
                        ctx.write_streamed(d.q.va(i));
                    }
                }
                ctx.compute(flops_per_nz * nz);
            });
        });
    }

    /// Parallel instrumented dot product.
    fn dot(team: &mut Team, u: &ShVec<f64>, v: &ShVec<f64>) -> f64 {
        let n = u.len();
        team.region("cg:dot", |team| {
            team.parallel_for_reduce(0..n, Schedule::Static, Reduction::Sum, &|ctx, rr| {
                let mut s = 0.0;
                ctx.compute(2 * rr.len() as u64);
                for i in rr {
                    if i % LINE_ELEMS == 0 {
                        ctx.read_streamed(u.va(i));
                        ctx.read_streamed(v.va(i));
                    }
                    s += u.get_raw(i) * v.get_raw(i);
                }
                s
            })
        })
    }

    /// The inner conjugate-gradient solve; returns `x·z` after `inner`
    /// iterations.
    fn conj_grad(&self, team: &mut Team) -> f64 {
        let d = self.data();
        let n = self.prm.n;
        // z = 0, r = x, p = r.
        team.region("cg:init", |team| {
            team.parallel_for(0..n, Schedule::Static, &|ctx, rr| {
                let nlen = rr.len() as u64;
                for i in rr {
                    if i % LINE_ELEMS == 0 {
                        ctx.read_streamed(d.x.va(i));
                        ctx.write_streamed(d.z.va(i));
                        ctx.write_streamed(d.r.va(i));
                        ctx.write_streamed(d.p.va(i));
                    }
                    let xi = d.x.get_raw(i);
                    d.z.set_raw(i, 0.0);
                    d.r.set_raw(i, xi);
                    d.p.set_raw(i, xi);
                }
                ctx.compute(nlen);
            });
        });
        let mut rho = Self::dot(team, &d.r, &d.r);
        for _ in 0..self.prm.inner {
            Self::matvec(team, d, 2);
            let pq = Self::dot(team, &d.p, &d.q);
            let alpha = rho / pq;
            // z += alpha p ; r -= alpha q
            team.region("cg:axpy", |team| {
                team.parallel_for(0..n, Schedule::Static, &|ctx, rr| {
                    let nlen = rr.len() as u64;
                    for i in rr {
                        if i % LINE_ELEMS == 0 {
                            ctx.read_streamed(d.p.va(i));
                            ctx.read_streamed(d.q.va(i));
                            ctx.write_streamed(d.z.va(i));
                            ctx.write_streamed(d.r.va(i));
                        }
                        d.z.set_raw(i, d.z.get_raw(i) + alpha * d.p.get_raw(i));
                        d.r.set_raw(i, d.r.get_raw(i) - alpha * d.q.get_raw(i));
                    }
                    ctx.compute(4 * nlen);
                });
            });
            let rho_new = Self::dot(team, &d.r, &d.r);
            let beta = rho_new / rho;
            rho = rho_new;
            // p = r + beta p
            team.region("cg:p-update", |team| {
                team.parallel_for(0..n, Schedule::Static, &|ctx, rr| {
                    let nlen = rr.len() as u64;
                    for i in rr {
                        if i % LINE_ELEMS == 0 {
                            ctx.read_streamed(d.r.va(i));
                            ctx.write_streamed(d.p.va(i));
                        }
                        d.p.set_raw(i, d.r.get_raw(i) + beta * d.p.get_raw(i));
                    }
                    ctx.compute(2 * nlen);
                });
            });
        }
        Self::dot(team, &d.x, &d.z)
    }

    /// Serial reference of the full benchmark in plain Rust.
    fn reference_impl(&self) -> f64 {
        let d = self.data();
        let p = self.prm;
        let n = p.n;
        let rowstr: Vec<usize> = (0..=n).map(|i| d.rowstr.get_raw(i) as usize).collect();
        let colidx: Vec<usize> = (0..self.nnz())
            .map(|k| d.colidx.get_raw(k) as usize)
            .collect();
        let a: Vec<f64> = (0..self.nnz()).map(|k| d.a.get_raw(k)).collect();
        let mut x = vec![1.0f64; n];
        let mut zeta = 0.0;
        for _ in 0..p.outer {
            // conj_grad
            let mut z = vec![0.0f64; n];
            let mut r = x.clone();
            let mut pv = x.clone();
            let mut q = vec![0.0f64; n];
            let mut rho: f64 = r.iter().map(|v| v * v).sum();
            for _ in 0..p.inner {
                for i in 0..n {
                    let mut s = 0.0;
                    for k in rowstr[i]..rowstr[i + 1] {
                        s += a[k] * pv[colidx[k]];
                    }
                    q[i] = s;
                }
                let pq: f64 = pv.iter().zip(&q).map(|(u, v)| u * v).sum();
                let alpha = rho / pq;
                for i in 0..n {
                    z[i] += alpha * pv[i];
                    r[i] -= alpha * q[i];
                }
                let rho_new: f64 = r.iter().map(|v| v * v).sum();
                let beta = rho_new / rho;
                rho = rho_new;
                for i in 0..n {
                    pv[i] = r[i] + beta * pv[i];
                }
            }
            let xz: f64 = x.iter().zip(&z).map(|(u, v)| u * v).sum();
            zeta = p.shift + 1.0 / xz;
            let znorm = z.iter().map(|v| v * v).sum::<f64>().sqrt();
            for i in 0..n {
                x[i] = z[i] / znorm;
            }
        }
        zeta
    }
}

impl Kernel for Cg {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn class(&self) -> Class {
        self.class
    }

    fn footprint(&self) -> Footprint {
        let n = self.prm.n as u64;
        let nnz = self.nnz() as u64;
        Footprint {
            instruction_bytes: 1_400_000, // Table 2: CG binary 1.4 MB
            data_bytes: (n + 1) * 8 + nnz * 16 + 5 * n * 8,
        }
    }

    fn code_profile(&self) -> CodeProfile {
        CodeProfile {
            code_bytes: 1_400_000,
            hot_bytes: 48 * 1024,
            cold_period: 1500,
        }
    }

    fn setup(&mut self, alloc: &mut BumpAllocator) {
        let p = self.prm;
        let n = p.n;
        let nnz = self.nnz();
        let mut rng = Nprng::new_default();
        let rowstr: ShVec<u64> = alloc.alloc_vec_from(n + 1, |i| (i * p.nonzer) as u64);
        // Diagonally dominant random pattern with NPB-makea-like
        // clustering: offsets are cubed uniforms, so most nonzeros sit
        // near the diagonal (good cache behaviour) while a long tail
        // strides the whole vector (pages far beyond the L1 DTLB reach).
        let colidx: ShVec<u64> = alloc.alloc_vec(nnz);
        let a: ShVec<f64> = alloc.alloc_vec(nnz);
        for i in 0..n {
            let base = i * p.nonzer;
            colidx.set_raw(base, i as u64);
            a.set_raw(base, 2.0 * p.nonzer as f64);
            for k in 1..p.nonzer {
                let u = rng.next_f64();
                let sign = if rng.next_f64() < 0.5 { -1.0 } else { 1.0 };
                let off = (u * u * u * (n as f64 / 2.0)) as i64 * sign as i64;
                let col = (i as i64 + off).rem_euclid(n as i64) as u64;
                colidx.set_raw(base + k, col);
                a.set_raw(base + k, rng.next_f64());
            }
        }
        let x: ShVec<f64> = alloc.alloc_vec_from(n, |_| 1.0);
        let z: ShVec<f64> = alloc.alloc_vec(n);
        let pvec: ShVec<f64> = alloc.alloc_vec(n);
        let q: ShVec<f64> = alloc.alloc_vec(n);
        let r: ShVec<f64> = alloc.alloc_vec(n);
        self.data = Some(Data {
            rowstr,
            colidx,
            a,
            x,
            z,
            p: pvec,
            q,
            r,
        });
    }

    fn run(&mut self, team: &mut Team) -> f64 {
        let p = self.prm;
        let n = p.n;
        // Reset x (so repeated runs are identical).
        self.data().x.fill_raw(1.0);
        let mut zeta = 0.0;
        for _ in 0..p.outer {
            let xz = self.conj_grad(team);
            zeta = p.shift + 1.0 / xz;
            let d = self.data();
            let znorm2 = team.region("cg:norm", |team| {
                team.parallel_for_reduce(0..n, Schedule::Static, Reduction::Sum, &|ctx, rr| {
                    let mut s = 0.0;
                    let nlen = rr.len() as u64;
                    for i in rr {
                        if i % LINE_ELEMS == 0 {
                            ctx.read_streamed(d.z.va(i));
                        }
                        let zi = d.z.get_raw(i);
                        s += zi * zi;
                    }
                    ctx.compute(2 * nlen);
                    s
                })
            });
            let znorm = znorm2.sqrt();
            team.region("cg:x-update", |team| {
                team.parallel_for(0..n, Schedule::Static, &|ctx, rr| {
                    let nlen = rr.len() as u64;
                    for i in rr {
                        if i % LINE_ELEMS == 0 {
                            ctx.read_streamed(d.z.va(i));
                            ctx.write_streamed(d.x.va(i));
                        }
                        d.x.set_raw(i, d.z.get_raw(i) / znorm);
                    }
                    ctx.compute(nlen);
                });
            });
        }
        zeta
    }

    fn reference(&self) -> f64 {
        self.reference_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_native;
    use crate::AppKind;

    #[test]
    fn cg_native_matches_reference_across_thread_counts() {
        for threads in [1, 2, 4] {
            let (cs, ok) = run_native(AppKind::Cg, Class::S, threads);
            assert!(ok, "threads={threads} checksum={cs}");
            assert!(cs.is_finite());
        }
    }

    #[test]
    fn cg_checksum_is_deterministic() {
        let (a, _) = run_native(AppKind::Cg, Class::S, 2);
        let (b, _) = run_native(AppKind::Cg, Class::S, 4);
        assert!(crate::common::verify_close(a, b));
    }

    #[test]
    fn cg_repeated_runs_are_identical() {
        let mut k = Cg::new(Class::S);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let mut team = Team::native(2);
        let a = k.run(&mut team);
        let b = k.run(&mut team);
        assert_eq!(a, b);
    }

    #[test]
    fn cg_footprint_class_b_near_paper_table2() {
        // Paper Table 2: CG (B) data = 725 MB. Ours should be same order.
        let fp = Cg::new(Class::B).footprint();
        let mb = fp.data_bytes as f64 / (1024.0 * 1024.0);
        assert!((500.0..1000.0).contains(&mb), "CG B = {mb:.0} MB");
    }

    #[test]
    fn cg_w_vector_is_in_the_class_b_regime() {
        // The regime the experiment depends on: the gather vector fits
        // the 1 MB L2 cache (gathers are cache hits), far exceeds the
        // 32-entry L1 DTLB in 4 KB pages, and fits one 2 MB page.
        let p = params(Class::W);
        let x_bytes = (p.n * 8) as u64;
        assert!(x_bytes < 1024 * 1024, "must fit L2 cache");
        assert!(x_bytes / 4096 >= 4 * 32, "must dwarf the 32-entry L1 DTLB");
        assert!(x_bytes <= 2 * 1024 * 1024, "must fit one 2MB page");
    }

    #[test]
    fn matvec_matches_dense_multiplication() {
        let mut k = Cg::new(Class::S);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let d = k.data();
        let n = 64; // check a prefix of rows against a dense product
                    // p = some deterministic vector.
        for i in 0..k.prm.n {
            d.p.set_raw(i, ((i % 13) as f64) * 0.25 - 1.0);
        }
        let mut team = Team::native(2);
        Cg::matvec(&mut team, d, 2);
        for i in 0..n {
            let start = d.rowstr.get_raw(i) as usize;
            let end = d.rowstr.get_raw(i + 1) as usize;
            let mut want = 0.0;
            for kk in start..end {
                want += d.a.get_raw(kk) * d.p.get_raw(d.colidx.get_raw(kk) as usize);
            }
            let got = d.q.get_raw(i);
            assert!((got - want).abs() < 1e-12, "row {i}: {got} vs {want}");
        }
    }

    #[test]
    fn matrix_is_diagonally_dominant() {
        let mut k = Cg::new(Class::S);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let d = k.data();
        for i in 0..16 {
            let base = i * k.prm.nonzer;
            let diag = d.a.get_raw(base);
            let off: f64 = (1..k.prm.nonzer).map(|j| d.a.get_raw(base + j)).sum();
            assert!(diag > off, "row {i}: {diag} <= {off}");
            assert_eq!(d.colidx.get_raw(base), i as u64);
        }
    }
}
