//! NPB FT: 3-D fast Fourier transform PDE solver.
//!
//! *"FT divides the DFT of any composite size N = N1×N2 into many smaller
//! DFTs of size N1 and N2. Several smaller DFTs might fit in a single 2MB
//! page, which might reduce TLB misses"* (paper §4.2) — yet FT is one of
//! the two applications that show **no significant improvement** (§4.4):
//! its per-point FFT arithmetic dominates, and its cross-dimension pencil
//! sweeps span more address space than even the 2 MB-page TLB can reach
//! (the Opteron has only eight 2 MB DTLB entries), so both page sizes
//! thrash in the transpose-like phases. Its DTLB miss reduction is only
//! 2–3× (Fig. 5) and run time barely moves.
//!
//! The grid is complex, stored interleaved (re, im) in one shared array.
//! Each 1-D FFT pass copies a pencil into thread-local scratch, runs an
//! iterative radix-2 FFT, and writes back — exactly the NPB `cffts1/2/3`
//! structure. The x-pass is contiguous (streamed); the y- and z-passes
//! stride by a row and a plane respectively (demand accesses).

use crate::common::{Class, CodeProfile, Footprint, Kernel};
use crate::rng::Nprng;
use lpomp_runtime::{BumpAllocator, Schedule, ShVec, Team};

#[derive(Clone, Copy, Debug)]
struct Params {
    nx: usize,
    ny: usize,
    nz: usize,
    iters: usize,
}

fn params(class: Class) -> Params {
    match class {
        Class::S => Params {
            nx: 32,
            ny: 16,
            nz: 16,
            iters: 2,
        },
        // 256 x 128 x 64 complex (padded) = ~34 MB per grid array: the
        // z-pencil sweep spans over twice the Opteron's eight-entry 2 MB
        // DTLB reach, so the transpose-like phases thrash at *both* page
        // sizes — the reason FT gains so little in the paper.
        Class::W => Params {
            nx: 256,
            ny: 128,
            nz: 64,
            iters: 2,
        },
        Class::A => Params {
            nx: 256,
            ny: 256,
            nz: 128,
            iters: 3,
        },
        // NPB class B: 512 x 256 x 256, 20 iterations (paper Table 2 data
        // footprint 2.4 GB).
        Class::B => Params {
            nx: 512,
            ny: 256,
            nz: 256,
            iters: 20,
        },
    }
}

/// Row padding in elements. NPB FT pads its array dimensions so that the
/// large power-of-two strides of the y/z pencil walks do not collapse
/// onto a handful of set-associative TLB/cache sets — without it, the
/// z-pass thrashes the Opteron's 4-way L2 TLB on every access. We follow
/// NPB and pad each x-row by one complex element.
const PAD: usize = 1;

/// NPB's `fftblock`: pencils FFTed per tile in the strided passes.
const FFT_BLOCK: usize = 16;

/// In-place iterative radix-2 complex FFT over scratch buffers.
/// `re.len()` must be a power of two. Returns the flop count.
fn fft_inplace(re: &mut [f64], im: &mut [f64], inverse: bool) -> u64 {
    let n = re.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    let mut flops = 0u64;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut cr = 1.0;
            let mut ci = 0.0;
            for k in 0..len / 2 {
                let a = start + k;
                let b = a + len / 2;
                let tr = re[b] * cr - im[b] * ci;
                let ti = re[b] * ci + im[b] * cr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
                flops += 16;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for i in 0..n {
            re[i] *= inv;
            im[i] *= inv;
        }
        flops += 2 * n as u64;
    }
    flops
}

/// The FT benchmark.
pub struct Ft {
    class: Class,
    prm: Params,
    /// Interleaved complex grids (re at 2e, im at 2e+1).
    u0: Option<ShVec<f64>>,
    u1: Option<ShVec<f64>>,
    /// Per-point evolution factors.
    twiddle: Option<ShVec<f64>>,
}

impl Ft {
    /// New FT instance.
    pub fn new(class: Class) -> Self {
        Ft {
            class,
            prm: params(class),
            u0: None,
            u1: None,
            twiddle: None,
        }
    }

    /// Elements per padded row.
    #[inline]
    fn nxp(p: &Params) -> usize {
        p.nx + PAD
    }

    /// Element index of grid point (i, j, k) in the padded layout.
    #[inline]
    fn eidx(p: &Params, i: usize, j: usize, k: usize) -> usize {
        (k * p.ny + j) * Self::nxp(p) + i
    }

    /// Total padded elements.
    #[inline]
    fn padded_pts(p: &Params) -> usize {
        p.nz * p.ny * Self::nxp(p)
    }

    /// FFT pass along x: pencils are contiguous — streamed.
    fn pass_x(team: &mut Team, p: Params, g: &ShVec<f64>, inverse: bool) {
        let pencils = p.ny * p.nz;
        team.parallel_for(0..pencils, Schedule::Static, &|ctx, rows| {
            let mut re = vec![0.0; p.nx];
            let mut im = vec![0.0; p.nx];
            for jk in rows {
                let base = jk * Self::nxp(&p);
                ctx.stream_read(g.va(2 * base), (2 * p.nx * 8) as u64);
                for i in 0..p.nx {
                    re[i] = g.get_raw(2 * (base + i));
                    im[i] = g.get_raw(2 * (base + i) + 1);
                }
                let flops = fft_inplace(&mut re, &mut im, inverse);
                for i in 0..p.nx {
                    g.set_raw(2 * (base + i), re[i]);
                    g.set_raw(2 * (base + i) + 1, im[i]);
                }
                ctx.stream_write(g.va(2 * base), (2 * p.nx * 8) as u64);
                ctx.compute(flops);
            }
        });
    }

    /// FFT pass along y (stride = row) or z (stride = plane): tiles of
    /// [`FFT_BLOCK`] pencils are gathered into contiguous scratch, FFTed,
    /// and scattered back — NPB's `fftblock` tiling, which amortizes each
    /// page touch over a block of consecutive elements.
    fn pass_strided(team: &mut Team, p: Params, g: &ShVec<f64>, dim_z: bool, inverse: bool) {
        let (len, outer, inner) = if dim_z {
            (p.nz, p.ny, p.nx)
        } else {
            (p.ny, p.nz, p.nx)
        };
        let tiles = inner / FFT_BLOCK;
        team.parallel_for(0..outer * tiles, Schedule::Static, &|ctx, rows| {
            let mut re = vec![0.0; len * FFT_BLOCK];
            let mut im = vec![0.0; len * FFT_BLOCK];
            for ot in rows {
                let o = ot / tiles;
                let i0 = (ot % tiles) * FFT_BLOCK;
                // Gather the tile: per (t), FFT_BLOCK consecutive complex
                // elements = FFT_BLOCK*16 contiguous bytes.
                for t in 0..len {
                    let e = if dim_z {
                        Self::eidx(&p, i0, o, t)
                    } else {
                        Self::eidx(&p, i0, t, o)
                    };
                    let mut b = 0u64;
                    while b < (FFT_BLOCK * 16) as u64 {
                        ctx.read_pipelined(g.va(2 * e).add(b));
                        b += 64;
                    }
                    for bi in 0..FFT_BLOCK {
                        re[bi * len + t] = g.get_raw(2 * (e + bi));
                        im[bi * len + t] = g.get_raw(2 * (e + bi) + 1);
                    }
                }
                let mut flops = 0u64;
                for bi in 0..FFT_BLOCK {
                    flops += fft_inplace(
                        &mut re[bi * len..(bi + 1) * len],
                        &mut im[bi * len..(bi + 1) * len],
                        inverse,
                    );
                }
                // Scatter the tile back.
                for t in 0..len {
                    let e = if dim_z {
                        Self::eidx(&p, i0, o, t)
                    } else {
                        Self::eidx(&p, i0, t, o)
                    };
                    let mut b = 0u64;
                    while b < (FFT_BLOCK * 16) as u64 {
                        ctx.write_pipelined(g.va(2 * e).add(b));
                        b += 64;
                    }
                    for bi in 0..FFT_BLOCK {
                        g.set_raw(2 * (e + bi), re[bi * len + t]);
                        g.set_raw(2 * (e + bi) + 1, im[bi * len + t]);
                    }
                }
                ctx.compute(flops);
            }
        });
    }

    /// Full 3-D FFT of `g` in place.
    fn fft3d(team: &mut Team, p: Params, g: &ShVec<f64>, inverse: bool) {
        Ft::pass_x(team, p, g, inverse);
        Ft::pass_strided(team, p, g, false, inverse);
        Ft::pass_strided(team, p, g, true, inverse);
    }

    /// Evolve: u1 = u0 * twiddle^t (elementwise, streamed).
    fn evolve(team: &mut Team, u0: &ShVec<f64>, u1: &ShVec<f64>, tw: &ShVec<f64>, t: u32) {
        let n = tw.len();
        team.parallel_for(0..n, Schedule::Static, &|ctx, rr| {
            let mut flops = 0u64;
            for e in rr {
                if e % 4 == 0 {
                    ctx.read_streamed(u0.va(2 * e));
                    ctx.read_streamed(tw.va(e));
                    ctx.write_streamed(u1.va(2 * e));
                }
                let f = tw.get_raw(e).powi(t as i32);
                u1.set_raw(2 * e, u0.get_raw(2 * e) * f);
                u1.set_raw(2 * e + 1, u0.get_raw(2 * e + 1) * f);
                flops += 4;
            }
            ctx.compute(flops);
        });
    }

    /// NPB-style checksum: sum of 1024 pseudo-randomly chosen grid points.
    fn checksum(&self, g: &ShVec<f64>) -> f64 {
        let p = self.prm;
        let mut rng = Nprng::new(271_828_183);
        let mut s = 0.0;
        for _ in 0..1024 {
            let i = rng.next_index(p.nx);
            let j = rng.next_index(p.ny);
            let k = rng.next_index(p.nz);
            let e = Self::eidx(&p, i, j, k);
            s += g.get_raw(2 * e) + g.get_raw(2 * e + 1);
        }
        s
    }

    fn run_impl(&self, team: &mut Team) -> f64 {
        let p = self.prm;
        let u0 = self.u0.as_ref().unwrap();
        let u1 = self.u1.as_ref().unwrap();
        let tw = self.twiddle.as_ref().unwrap();
        // Regenerate the initial condition so repeated runs are identical.
        Self::init_grid(u0, Self::padded_pts(&p));
        Ft::fft3d(team, p, u0, false);
        let mut cs = 0.0;
        for t in 1..=p.iters as u32 {
            Ft::evolve(team, u0, u1, tw, t);
            Ft::fft3d(team, p, u1, true);
            cs += self.checksum(u1);
        }
        cs
    }

    fn init_grid(g: &ShVec<f64>, npts: usize) {
        let mut rng = Nprng::new_default();
        for e in 0..npts {
            g.set_raw(2 * e, rng.next_f64());
            g.set_raw(2 * e + 1, rng.next_f64());
        }
    }
}

impl Kernel for Ft {
    fn name(&self) -> &'static str {
        "FT"
    }

    fn class(&self) -> Class {
        self.class
    }

    fn footprint(&self) -> Footprint {
        let npts = Self::padded_pts(&self.prm) as u64;
        Footprint {
            instruction_bytes: 1_400_000, // Table 2: FT binary 1.4 MB
            // Two interleaved complex grids + the twiddle array (padded
            // rows, as in NPB).
            data_bytes: 2 * npts * 16 + npts * 8,
        }
    }

    fn code_profile(&self) -> CodeProfile {
        CodeProfile {
            code_bytes: 1_400_000,
            hot_bytes: 64 * 1024,
            cold_period: 1200,
        }
    }

    fn setup(&mut self, alloc: &mut BumpAllocator) {
        let p = self.prm;
        let npts = Self::padded_pts(&p);
        let u0: ShVec<f64> = alloc.alloc_vec(2 * npts);
        let u1: ShVec<f64> = alloc.alloc_vec(2 * npts);
        Self::init_grid(&u0, npts);
        // Evolution factors exp(-4 pi^2 alpha |k|^2), precomputed per point.
        let alpha = 1e-6;
        let nxp = Self::nxp(&p);
        let tw: ShVec<f64> = alloc.alloc_vec_from(npts, |e| {
            let i = (e % nxp).min(p.nx - 1);
            let j = (e / nxp) % p.ny;
            let k = e / (nxp * p.ny);
            // Signed frequencies.
            let fx = if i <= p.nx / 2 {
                i as f64
            } else {
                i as f64 - p.nx as f64
            };
            let fy = if j <= p.ny / 2 {
                j as f64
            } else {
                j as f64 - p.ny as f64
            };
            let fz = if k <= p.nz / 2 {
                k as f64
            } else {
                k as f64 - p.nz as f64
            };
            (-4.0 * alpha * std::f64::consts::PI.powi(2) * (fx * fx + fy * fy + fz * fz)).exp()
        });
        self.u0 = Some(u0);
        self.u1 = Some(u1);
        self.twiddle = Some(tw);
    }

    fn run(&mut self, team: &mut Team) -> f64 {
        self.run_impl(team)
    }

    fn reference(&self) -> f64 {
        let mut team = Team::native(1);
        self.run_impl(&mut team)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_native;
    use crate::AppKind;

    #[test]
    fn fft_roundtrip_recovers_input() {
        let n = 64;
        let mut rng = Nprng::new_default();
        let re0: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let im0: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft_inplace(&mut re, &mut im, false);
        fft_inplace(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] - re0[i]).abs() < 1e-10, "re[{i}]");
            assert!((im[i] - im0[i]).abs() < 1e-10, "im[{i}]");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let n = 16;
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        re[0] = 1.0;
        fft_inplace(&mut re, &mut im, false);
        for i in 0..n {
            assert!((re[i] - 1.0).abs() < 1e-12);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 32;
        let mut rng = Nprng::new_default();
        let re0: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        let im0: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        // Naive O(n^2) DFT with the same sign convention (forward = -i).
        let mut dft_re = vec![0.0; n];
        let mut dft_im = vec![0.0; n];
        for (k, (dr, di)) in dft_re.iter_mut().zip(dft_im.iter_mut()).enumerate() {
            for t in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                let (s, c) = ang.sin_cos();
                *dr += re0[t] * c - im0[t] * s;
                *di += re0[t] * s + im0[t] * c;
            }
        }
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft_inplace(&mut re, &mut im, false);
        for k in 0..n {
            assert!((re[k] - dft_re[k]).abs() < 1e-9, "re[{k}]");
            assert!((im[k] - dft_im[k]).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn fft_parseval_energy_conserved() {
        let n = 128;
        let mut rng = Nprng::new_default();
        let mut re: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let mut im = vec![0.0; n];
        let e_time: f64 = re.iter().map(|v| v * v).sum();
        fft_inplace(&mut re, &mut im, false);
        let e_freq: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() / e_time < 1e-10);
    }

    #[test]
    fn ft_native_matches_reference_across_threads() {
        for threads in [1, 2, 4] {
            let (cs, ok) = run_native(AppKind::Ft, Class::S, threads);
            assert!(ok, "threads={threads} checksum={cs}");
            assert!(cs.is_finite());
        }
    }

    #[test]
    fn ft_class_b_footprint_matches_paper_order() {
        // Paper Table 2: FT (B) = 2.4 GB.
        let fp = Ft::new(Class::B).footprint();
        let gb = fp.data_bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!((1.0..4.0).contains(&gb), "FT B = {gb:.2} GB");
    }

    #[test]
    fn ft_w_z_span_exceeds_2mb_reach() {
        // The design point that makes FT benefit little: the z-pencil
        // sweep spans well past the Opteron's 16 MB of 2 MB-page reach
        // (its L1 holds just eight 2 MB entries and the L2 holds none).
        let p = params(Class::W);
        let span = ((p.nx + PAD) * p.ny * p.nz * 16) as u64;
        assert!(span > 2 * 16 * 1024 * 1024);
    }
}
