//! NPB LU: SSOR solver with wavefront (hyperplane) parallelism
//! (extension workload).
//!
//! The seventh NPB code, included because its parallel structure differs
//! from everything else in the suite: the lower/upper triangular sweeps
//! carry a data dependence on the (i−1, j−1, k−1) neighbours, so the
//! parallel unit is a *hyperplane* (all points with i+j+k = d), executed
//! plane by plane with a barrier between planes — the classic wavefront
//! schedule NPB LU's `pipelined` OpenMP version approximates. Points on a
//! hyperplane are scattered through memory (no two share a cache line
//! neighbourhood), which gives LU a page-access profile between the
//! sequential sweeps of MG and the gathers of CG.
//!
//! The arithmetic is an SSOR relaxation of a diffusion-like operator over
//! a 5-component field; diagonally dominant by construction, verified
//! against a serial reference.

use crate::common::{init_field, Class, CodeProfile, Footprint, Kernel};
use lpomp_runtime::{BumpAllocator, Reduction, Schedule, ShVec, Team};

/// Components per grid cell.
const NC: usize = 5;
/// SSOR relaxation factor.
const OMEGA: f64 = 1.2;

#[derive(Clone, Copy, Debug)]
struct Params {
    n: usize,
    iters: usize,
}

fn params(class: Class) -> Params {
    match class {
        Class::S => Params { n: 12, iters: 2 },
        Class::W => Params { n: 48, iters: 3 },
        Class::A => Params { n: 64, iters: 3 },
        // NPB class B: 102^3, 250 iterations.
        Class::B => Params { n: 102, iters: 250 },
    }
}

struct Data {
    u: ShVec<f64>,
    rhs: ShVec<f64>,
    v: ShVec<f64>,
    forcing: ShVec<f64>,
    /// Flattened hyperplanes: point ids grouped by diagonal d = i+j+k.
    planes: Vec<u32>,
    /// `planes[plane_off[d]..plane_off[d+1]]` are the points of plane d.
    plane_off: Vec<usize>,
}

/// The LU benchmark.
pub struct Lu {
    class: Class,
    prm: Params,
    data: Option<Data>,
}

#[inline]
fn cell(n: usize, i: usize, j: usize, k: usize) -> usize {
    ((k * n + j) * n + i) * NC
}

impl Lu {
    /// New LU instance.
    pub fn new(class: Class) -> Self {
        Lu {
            class,
            prm: params(class),
            data: None,
        }
    }

    fn data(&self) -> &Data {
        self.data.as_ref().expect("setup() not called")
    }

    /// Decompose a flat point id into (i, j, k).
    #[inline]
    fn coords(n: usize, id: u32) -> (usize, usize, usize) {
        let id = id as usize;
        (id % n, (id / n) % n, id / (n * n))
    }

    /// Build the hyperplane schedule: plane d holds all (i, j, k) with
    /// i + j + k = d.
    fn build_planes(n: usize) -> (Vec<u32>, Vec<usize>) {
        let nplanes = 3 * n - 2;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); nplanes];
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    buckets[i + j + k].push(((k * n + j) * n + i) as u32);
                }
            }
        }
        let mut planes = Vec::with_capacity(n * n * n);
        let mut off = Vec::with_capacity(nplanes + 1);
        off.push(0);
        for b in buckets {
            planes.extend_from_slice(&b);
            off.push(planes.len());
        }
        (planes, off)
    }

    /// rhs = forcing − L(u): streamed stencil sweep (as in SP/BT).
    fn compute_rhs(team: &mut Team, n: usize, d: &Data) {
        team.parallel_for(0..n * n, Schedule::Static, &|ctx, rows| {
            let mut flops = 0u64;
            for kj in rows {
                let k = kj / n;
                let j = kj % n;
                for i in 0..n {
                    let c0 = cell(n, i, j, k);
                    if (i * NC).is_multiple_of(8) {
                        ctx.read_streamed(d.u.va(c0));
                        ctx.read_streamed(d.forcing.va(c0));
                        ctx.write_streamed(d.rhs.va(c0));
                    }
                    for c in 0..NC {
                        // Interior 7-point Laplacian with clamped edges.
                        let nb = |ii: isize, jj: isize, kk: isize| -> f64 {
                            let ii = ii.clamp(0, n as isize - 1) as usize;
                            let jj = jj.clamp(0, n as isize - 1) as usize;
                            let kk = kk.clamp(0, n as isize - 1) as usize;
                            d.u.get_raw(cell(n, ii, jj, kk) + c)
                        };
                        let (fi, fj, fk) = (i as isize, j as isize, k as isize);
                        let lap = nb(fi - 1, fj, fk)
                            + nb(fi + 1, fj, fk)
                            + nb(fi, fj - 1, fk)
                            + nb(fi, fj + 1, fk)
                            + nb(fi, fj, fk - 1)
                            + nb(fi, fj, fk + 1)
                            - 6.0 * d.u.get_raw(c0 + c);
                        d.rhs.set_raw(c0 + c, d.forcing.get_raw(c0 + c) + lap);
                    }
                    flops += 8 * NC as u64;
                }
            }
            ctx.compute(flops);
        });
    }

    /// One triangular sweep over the hyperplanes. `lower` selects the
    /// forward (blts-like) or backward (buts-like) direction. Each plane
    /// is a parallel loop; the implicit barrier between planes carries
    /// the wavefront dependence.
    fn sweep(team: &mut Team, n: usize, d: &Data, lower: bool) {
        let nplanes = d.plane_off.len() - 1;
        let order: Vec<usize> = if lower {
            (0..nplanes).collect()
        } else {
            (0..nplanes).rev().collect()
        };
        for pd in order {
            let lo = d.plane_off[pd];
            let hi = d.plane_off[pd + 1];
            team.parallel_for(lo..hi, Schedule::Static, &|ctx, rr| {
                let mut flops = 0u64;
                for t in rr {
                    let (i, j, k) = Self::coords(n, d.planes[t]);
                    let c0 = cell(n, i, j, k);
                    // Dependence neighbours (previous plane).
                    let dep = |ii: usize, jj: usize, kk: usize, c: usize| -> f64 {
                        d.v.get_raw(cell(n, ii, jj, kk) + c)
                    };
                    // Scattered demand accesses: the point itself + its
                    // three dependence neighbours live on far-apart pages.
                    ctx.read_pipelined(d.rhs.va(c0));
                    ctx.write_pipelined(d.v.va(c0));
                    let mut have_dep = false;
                    for c in 0..NC {
                        let mut acc = d.rhs.get_raw(c0 + c);
                        if lower {
                            if i > 0 {
                                acc += 0.2 * dep(i - 1, j, k, c);
                                have_dep = true;
                            }
                            if j > 0 {
                                acc += 0.2 * dep(i, j - 1, k, c);
                                have_dep = true;
                            }
                            if k > 0 {
                                acc += 0.2 * dep(i, j, k - 1, c);
                                have_dep = true;
                            }
                        } else {
                            if i + 1 < n {
                                acc += 0.2 * dep(i + 1, j, k, c);
                                have_dep = true;
                            }
                            if j + 1 < n {
                                acc += 0.2 * dep(i, j + 1, k, c);
                                have_dep = true;
                            }
                            if k + 1 < n {
                                acc += 0.2 * dep(i, j, k + 1, c);
                                have_dep = true;
                            }
                        }
                        d.v.set_raw(c0 + c, acc / 2.0);
                    }
                    if have_dep {
                        ctx.read_pipelined(d.v.va(cell(n, i.saturating_sub(1), j, k)));
                    }
                    flops += 10 * NC as u64;
                }
                ctx.compute(flops);
            });
        }
    }

    /// u += omega · v; returns ‖u‖².
    fn update(team: &mut Team, n: usize, d: &Data) -> f64 {
        let total = n * n * n * NC;
        team.parallel_for_reduce(0..total, Schedule::Static, Reduction::Sum, &|ctx, rr| {
            let mut s = 0.0;
            let nlen = rr.len() as u64;
            for e in rr {
                if e % 8 == 0 {
                    ctx.read_streamed(d.v.va(e));
                    ctx.write_streamed(d.u.va(e));
                }
                let val = d.u.get_raw(e) + OMEGA * d.v.get_raw(e) * 0.01;
                d.u.set_raw(e, val);
                s += val * val;
            }
            ctx.compute(4 * nlen);
            s
        })
    }

    fn run_impl(&self, team: &mut Team) -> f64 {
        let p = self.prm;
        let n = p.n;
        let d = self.data();
        for e in 0..d.u.len() {
            d.u.set_raw(e, init_field(e));
        }
        let mut checksum = 0.0;
        for _ in 0..p.iters {
            Self::compute_rhs(team, n, d);
            d.v.fill_raw(0.0);
            Self::sweep(team, n, d, true); // lower triangular
            Self::sweep(team, n, d, false); // upper triangular
            checksum = Self::update(team, n, d).sqrt();
        }
        checksum
    }
}

impl Kernel for Lu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn class(&self) -> Class {
        self.class
    }

    fn footprint(&self) -> Footprint {
        let n3 = (self.prm.n * self.prm.n * self.prm.n) as u64;
        Footprint {
            instruction_bytes: 1_500_000,
            // u, rhs, v, forcing (5 comps) + the plane schedule.
            data_bytes: 4 * n3 * (NC as u64) * 8 + n3 * 4,
        }
    }

    fn code_profile(&self) -> CodeProfile {
        CodeProfile {
            code_bytes: 1_500_000,
            hot_bytes: 72 * 1024,
            cold_period: 1100,
        }
    }

    fn setup(&mut self, alloc: &mut BumpAllocator) {
        let n = self.prm.n;
        let n3 = n * n * n;
        let (planes, plane_off) = Self::build_planes(n);
        self.data = Some(Data {
            u: alloc.alloc_vec_from(n3 * NC, init_field),
            rhs: alloc.alloc_vec(n3 * NC),
            v: alloc.alloc_vec(n3 * NC),
            forcing: alloc.alloc_vec_from(n3 * NC, |e| ((e % 83) as f64 - 41.0) * 0.001),
            planes,
            plane_off,
        });
    }

    fn run(&mut self, team: &mut Team) -> f64 {
        self.run_impl(team)
    }

    fn reference(&self) -> f64 {
        let mut team = Team::native(1);
        self.run_impl(&mut team)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_native;
    use crate::AppKind;

    #[test]
    fn hyperplanes_partition_the_grid() {
        let n = 8;
        let (planes, off) = Lu::build_planes(n);
        assert_eq!(planes.len(), n * n * n);
        assert_eq!(off.len(), 3 * n - 2 + 1);
        // Every point appears exactly once, in its own diagonal's bucket.
        let mut seen = vec![false; n * n * n];
        for d in 0..3 * n - 2 {
            for &id in &planes[off[d]..off[d + 1]] {
                let (i, j, k) = Lu::coords(n, id);
                assert_eq!(i + j + k, d, "point {id} in wrong plane");
                assert!(!seen[id as usize]);
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn plane_sizes_peak_in_the_middle() {
        let n = 8;
        let (_, off) = Lu::build_planes(n);
        let size = |d: usize| off[d + 1] - off[d];
        assert_eq!(size(0), 1);
        assert_eq!(size(3 * n - 3), 1);
        let mid = size((3 * n - 2) / 2);
        assert!(mid > size(0) && mid > size(3 * n - 3));
    }

    #[test]
    fn lu_native_matches_reference_across_threads() {
        for threads in [1, 2, 4] {
            let (cs, ok) = run_native(AppKind::Lu, Class::S, threads);
            assert!(ok, "threads={threads} checksum={cs}");
            assert!(cs.is_finite() && cs > 0.0);
        }
    }

    #[test]
    fn lu_wavefront_dependence_is_respected() {
        // The parallel result must equal the strictly sequential one —
        // which it can only do if planes run in dependence order.
        let (seq, _) = run_native(AppKind::Lu, Class::S, 1);
        let (par, _) = run_native(AppKind::Lu, Class::S, 4);
        assert!(crate::common::verify_close(seq, par), "{seq} vs {par}");
    }
}
