//! NPB MG: multigrid V-cycle Poisson solver.
//!
//! *"MG works continuously on a set of grids that are changed between
//! coarse and fine. It tests both short and long distance data movement"*
//! (paper §4.2). MG is the lowest-compute-intensity of the five — a few
//! flops per grid point against sweeps over grids far larger than the
//! 4 KB-page TLB reach — so page-walk time is a large share of its run
//! time and the paper measures a ~17% improvement (and a ≥10× DTLB miss
//! reduction) with 2 MB pages.
//!
//! Grids are periodic cubes; the V-cycle uses a 7-point residual/smoother
//! and 7-point restriction/prolongation. Phases parallelize over (k, j)
//! rows; each phase reads one array and writes another, so parallel
//! writes are disjoint and results are deterministic.

use crate::common::{Class, CodeProfile, Footprint, Kernel};
use lpomp_runtime::{BumpAllocator, Reduction, Schedule, ShVec, Team};

/// Stencil coefficients (center, face-neighbor) for the operator A,
/// the smoother S, restriction and prolongation.
const A0: f64 = -8.0 / 3.0;
const A1: f64 = 1.0 / 6.0;
const S0: f64 = -3.0 / 8.0;
const S1: f64 = 1.0 / 32.0;

#[derive(Clone, Copy, Debug)]
struct Params {
    /// Fine-grid edge length (power of two).
    n: usize,
    /// Coarsest-grid edge length.
    coarsest: usize,
    /// V-cycle iterations.
    iters: usize,
}

fn params(class: Class) -> Params {
    match class {
        Class::S => Params {
            n: 32,
            coarsest: 4,
            iters: 2,
        },
        // Fine grid 128^3 = 16 MB/array: sweeps span 4x the Opteron's
        // 4 KB-page reach, within the 2 MB-page regime.
        Class::W => Params {
            n: 128,
            coarsest: 4,
            iters: 2,
        },
        Class::A => Params {
            n: 192,
            coarsest: 4,
            iters: 2,
        },
        // NPB class B: 256^3, 20 iterations.
        Class::B => Params {
            n: 256,
            coarsest: 4,
            iters: 20,
        },
    }
}

/// One grid level.
struct Level {
    n: usize,
    u: ShVec<f64>,
    r: ShVec<f64>,
}

/// The MG benchmark.
pub struct Mg {
    class: Class,
    prm: Params,
    levels: Vec<Level>,
    v: Option<ShVec<f64>>,
}

#[inline]
fn idx(n: usize, i: usize, j: usize, k: usize) -> usize {
    (k * n + j) * n + i
}

/// Periodic neighbor index.
#[inline]
fn wrap(x: usize, d: isize, n: usize) -> usize {
    (x as isize + d).rem_euclid(n as isize) as usize
}

impl Mg {
    /// New MG instance.
    pub fn new(class: Class) -> Self {
        Mg {
            class,
            prm: params(class),
            levels: Vec::new(),
            v: None,
        }
    }

    fn level_dims(&self) -> Vec<usize> {
        let mut dims = Vec::new();
        let mut n = self.prm.n;
        while n >= self.prm.coarsest {
            dims.push(n);
            n /= 2;
        }
        dims
    }

    /// 7-point stencil application `dst = src2 - A(src)` (resid) or
    /// `dst += S(src)` (psinv), parallel over (k, j) rows.
    ///
    /// Instrumentation: per 8-element line, one streamed access per
    /// distinct stencil stream (center, y±1, z±1 input lines and the
    /// output line) — multi-stream sweeps are exactly what hardware
    /// prefetchers cover, leaving the page walks as the exposed cost.
    #[allow(clippy::too_many_arguments)]
    fn stencil(
        team: &mut Team,
        n: usize,
        src: &ShVec<f64>,
        extra: Option<&ShVec<f64>>,
        dst: &ShVec<f64>,
        c0: f64,
        c1: f64,
        accumulate: bool,
    ) {
        team.parallel_for(0..n * n, Schedule::Static, &|ctx, rows| {
            let mut flops = 0u64;
            for kj in rows {
                let k = kj / n;
                let j = kj % n;
                let km = wrap(k, -1, n);
                let kp = wrap(k, 1, n);
                let jm = wrap(j, -1, n);
                let jp = wrap(j, 1, n);
                for i0 in (0..n).step_by(8) {
                    // One streamed access per stencil input line.
                    ctx.read_streamed(src.va(idx(n, i0, j, k)));
                    ctx.read_streamed(src.va(idx(n, i0, jm, k)));
                    ctx.read_streamed(src.va(idx(n, i0, jp, k)));
                    ctx.read_streamed(src.va(idx(n, i0, j, km)));
                    ctx.read_streamed(src.va(idx(n, i0, j, kp)));
                    if let Some(e) = extra {
                        ctx.read_streamed(e.va(idx(n, i0, j, k)));
                    }
                    ctx.write_streamed(dst.va(idx(n, i0, j, k)));
                    for i in i0..(i0 + 8).min(n) {
                        let im = wrap(i, -1, n);
                        let ip = wrap(i, 1, n);
                        let center = src.get_raw(idx(n, i, j, k));
                        let faces = src.get_raw(idx(n, im, j, k))
                            + src.get_raw(idx(n, ip, j, k))
                            + src.get_raw(idx(n, i, jm, k))
                            + src.get_raw(idx(n, i, jp, k))
                            + src.get_raw(idx(n, i, j, km))
                            + src.get_raw(idx(n, i, j, kp));
                        let mut val = c0 * center + c1 * faces;
                        if let Some(e) = extra {
                            val = e.get_raw(idx(n, i, j, k)) - val;
                        }
                        if accumulate {
                            val += dst.get_raw(idx(n, i, j, k));
                        }
                        dst.set_raw(idx(n, i, j, k), val);
                    }
                    flops += 9 * 8;
                }
            }
            ctx.compute(flops);
        });
    }

    /// Restriction: coarse.r = weighted average of fine.r.
    fn rprj3(
        team: &mut Team,
        fine_n: usize,
        fine: &ShVec<f64>,
        coarse_n: usize,
        coarse: &ShVec<f64>,
    ) {
        team.parallel_for(0..coarse_n * coarse_n, Schedule::Static, &|ctx, rows| {
            let mut flops = 0u64;
            for kj in rows {
                let k = kj / coarse_n;
                let j = kj % coarse_n;
                let fk = 2 * k;
                let fj = 2 * j;
                for i0 in (0..coarse_n).step_by(8) {
                    // Fine reads: the (2i) line plus the z±1 / y±1 lines —
                    // stride-2 streams through the fine grid.
                    let fi0 = 2 * i0;
                    ctx.read_streamed(fine.va(idx(fine_n, fi0, fj, fk)));
                    ctx.read_streamed(fine.va(idx(fine_n, fi0, wrap(fj, -1, fine_n), fk)));
                    ctx.read_streamed(fine.va(idx(fine_n, fi0, wrap(fj, 1, fine_n), fk)));
                    ctx.read_streamed(fine.va(idx(fine_n, fi0, fj, wrap(fk, -1, fine_n))));
                    ctx.read_streamed(fine.va(idx(fine_n, fi0, fj, wrap(fk, 1, fine_n))));
                    ctx.write_streamed(coarse.va(idx(coarse_n, i0, j, k)));
                    for i in i0..(i0 + 8).min(coarse_n) {
                        let fi = 2 * i;
                        let center = fine.get_raw(idx(fine_n, fi, fj, fk));
                        let faces = fine.get_raw(idx(fine_n, wrap(fi, -1, fine_n), fj, fk))
                            + fine.get_raw(idx(fine_n, wrap(fi, 1, fine_n), fj, fk))
                            + fine.get_raw(idx(fine_n, fi, wrap(fj, -1, fine_n), fk))
                            + fine.get_raw(idx(fine_n, fi, wrap(fj, 1, fine_n), fk))
                            + fine.get_raw(idx(fine_n, fi, fj, wrap(fk, -1, fine_n)))
                            + fine.get_raw(idx(fine_n, fi, fj, wrap(fk, 1, fine_n)));
                        coarse.set_raw(idx(coarse_n, i, j, k), 0.5 * center + faces / 12.0);
                    }
                    flops += 9 * 8;
                }
            }
            ctx.compute(flops);
        });
    }

    /// Prolongation: fine.u += trilinear-ish interpolation of coarse.u.
    fn interp(
        team: &mut Team,
        coarse_n: usize,
        coarse: &ShVec<f64>,
        fine_n: usize,
        fine: &ShVec<f64>,
    ) {
        team.parallel_for(0..coarse_n * coarse_n, Schedule::Static, &|ctx, rows| {
            let mut flops = 0u64;
            for kj in rows {
                let k = kj / coarse_n;
                let j = kj % coarse_n;
                let fk = 2 * k;
                let fj = 2 * j;
                for i0 in (0..coarse_n).step_by(8) {
                    ctx.read_streamed(coarse.va(idx(coarse_n, i0, j, k)));
                    // Each coarse line feeds two fine lines in x and the
                    // odd-k plane.
                    ctx.write_streamed(fine.va(idx(fine_n, 2 * i0, fj, fk)));
                    if 2 * i0 + 8 < fine_n {
                        ctx.write_streamed(fine.va(idx(fine_n, 2 * i0 + 8, fj, fk)));
                    }
                    ctx.write_streamed(fine.va(idx(fine_n, 2 * i0, fj, wrap(fk, 1, fine_n))));
                    for i in i0..(i0 + 8).min(coarse_n) {
                        let fi = 2 * i;
                        let c = coarse.get_raw(idx(coarse_n, i, j, k));
                        let cx = coarse.get_raw(idx(coarse_n, wrap(i, 1, coarse_n), j, k));
                        // Even point gets the coarse value; odd point the
                        // average with the next coarse point; the odd-k
                        // plane gets a half contribution.
                        let e0 = idx(fine_n, fi, fj, fk);
                        let e1 = idx(fine_n, wrap(fi, 1, fine_n), fj, fk);
                        let e2 = idx(fine_n, fi, fj, wrap(fk, 1, fine_n));
                        fine.set_raw(e0, fine.get_raw(e0) + c);
                        fine.set_raw(e1, fine.get_raw(e1) + 0.5 * (c + cx));
                        fine.set_raw(e2, fine.get_raw(e2) + 0.5 * c);
                    }
                    flops += 6 * 8;
                }
            }
            ctx.compute(flops);
        });
    }

    /// Squared norm of a grid.
    fn norm2(team: &mut Team, n: usize, g: &ShVec<f64>) -> f64 {
        team.parallel_for_reduce(0..n * n, Schedule::Static, Reduction::Sum, &|ctx, rows| {
            let mut s = 0.0;
            let mut flops = 0u64;
            for kj in rows.clone() {
                let k = kj / n;
                let j = kj % n;
                for i0 in (0..n).step_by(8) {
                    ctx.read_streamed(g.va(idx(n, i0, j, k)));
                    for i in i0..(i0 + 8).min(n) {
                        let v = g.get_raw(idx(n, i, j, k));
                        s += v * v;
                    }
                    flops += 2 * 8;
                }
            }
            ctx.compute(flops);
            s
        })
    }

    /// Initialise v with a deterministic sparse impulse pattern (NPB puts
    /// +1/-1 at selected points; we use a fixed pseudo-random scatter).
    fn init_v(v: &ShVec<f64>, n: usize) {
        v.fill_raw(0.0);
        let mut rng = crate::rng::Nprng::new_default();
        for s in 0..20 {
            let i = rng.next_index(n);
            let j = rng.next_index(n);
            let k = rng.next_index(n);
            v.set_raw(idx(n, i, j, k), if s % 2 == 0 { 1.0 } else { -1.0 });
        }
    }

    /// One V-cycle + residual, shared by `run` (any team).
    fn vcycle(&self, team: &mut Team) {
        let nl = self.levels.len();
        let v = self.v.as_ref().unwrap();
        // Downstroke: restrict residuals to the coarsest level.
        for l in 0..nl - 1 {
            let (f, c) = (&self.levels[l], &self.levels[l + 1]);
            team.region("mg:rprj3", |team| Self::rprj3(team, f.n, &f.r, c.n, &c.r));
        }
        // Coarsest solve: one smoothing application into u.
        let bottom = &self.levels[nl - 1];
        bottom.u.fill_raw(0.0);
        team.region("mg:coarse-solve", |team| {
            Self::stencil(team, bottom.n, &bottom.r, None, &bottom.u, S0, S1, false)
        });
        // Upstroke: interpolate and smooth.
        for l in (0..nl - 1).rev() {
            let (f, c) = (&self.levels[l], &self.levels[l + 1]);
            if l > 0 {
                f.u.fill_raw(0.0);
            }
            team.region("mg:interp", |team| Self::interp(team, c.n, &c.u, f.n, &f.u));
            // r_l = (l == 0 ? v : r_l) - A u_l, then smooth u_l += S r_l.
            let rhs = if l == 0 { v } else { &f.r };
            team.region("mg:resid", |team| {
                Self::stencil(team, f.n, &f.u, Some(rhs), &f.r, A0, A1, false)
            });
            team.region("mg:psinv", |team| {
                Self::stencil(team, f.n, &f.r, None, &f.u, S0, S1, true)
            });
        }
    }

    fn run_impl(&self, team: &mut Team) -> f64 {
        let fine = &self.levels[0];
        let v = self.v.as_ref().unwrap();
        fine.u.fill_raw(0.0);
        // r = v initially.
        for i in 0..v.len() {
            fine.r.set_raw(i, v.get_raw(i));
        }
        for _ in 0..self.prm.iters {
            self.vcycle(team);
            // Final residual r = v - A u on the fine grid.
            team.region("mg:resid", |team| {
                Self::stencil(team, fine.n, &fine.u, Some(v), &fine.r, A0, A1, false)
            });
        }
        team.region("mg:norm2", |team| Self::norm2(team, fine.n, &fine.r))
            .sqrt()
    }
}

impl Kernel for Mg {
    fn name(&self) -> &'static str {
        "MG"
    }

    fn class(&self) -> Class {
        self.class
    }

    fn footprint(&self) -> Footprint {
        let mut data = 0u64;
        for n in self.level_dims() {
            data += 2 * (n * n * n * 8) as u64; // u and r per level
        }
        data += (self.prm.n.pow(3) * 8) as u64; // v on the finest level
        Footprint {
            instruction_bytes: 1_400_000, // Table 2: MG binary 1.4 MB
            data_bytes: data,
        }
    }

    fn code_profile(&self) -> CodeProfile {
        // MG has the most distinct phases of the five (paper Fig. 3 shows
        // it with the highest — still negligible — ITLB miss rate), so it
        // gets the largest hot region and most frequent cold excursions.
        CodeProfile {
            code_bytes: 1_400_000,
            hot_bytes: 96 * 1024,
            cold_period: 400,
        }
    }

    fn setup(&mut self, alloc: &mut BumpAllocator) {
        self.levels = self
            .level_dims()
            .into_iter()
            .map(|n| Level {
                n,
                u: alloc.alloc_vec(n * n * n),
                r: alloc.alloc_vec(n * n * n),
            })
            .collect();
        let n = self.prm.n;
        let v = alloc.alloc_vec(n * n * n);
        Self::init_v(&v, n);
        self.v = Some(v);
    }

    fn run(&mut self, team: &mut Team) -> f64 {
        self.run_impl(team)
    }

    fn reference(&self) -> f64 {
        // The parallel phases write disjoint elements and read only from
        // other arrays, so a 1-thread native team computes the exact
        // serial result.
        let mut team = Team::native(1);
        self.run_impl(&mut team)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_native;
    use crate::AppKind;

    #[test]
    fn mg_native_matches_reference_across_threads() {
        for threads in [1, 2, 4] {
            let (cs, ok) = run_native(AppKind::Mg, Class::S, threads);
            assert!(ok, "threads={threads} checksum={cs}");
            assert!(cs.is_finite() && cs >= 0.0);
        }
    }

    #[test]
    fn mg_vcycle_reduces_residual() {
        // The V-cycle must actually damp the impulse residual, i.e. the
        // final residual norm is below the initial ||v||.
        let mut k = Mg::new(Class::S);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let v = k.v.as_ref().unwrap();
        let v0: f64 = (0..v.len())
            .map(|i| v.get_raw(i) * v.get_raw(i))
            .sum::<f64>()
            .sqrt();
        let mut team = Team::native(2);
        let rn = k.run(&mut team);
        assert!(rn < v0, "residual {rn} not below initial {v0}");
    }

    #[test]
    fn mg_level_dims_halve() {
        let k = Mg::new(Class::S);
        assert_eq!(k.level_dims(), vec![32, 16, 8, 4]);
    }

    #[test]
    fn mg_footprint_class_b_magnitude() {
        // NPB MG class B is 256^3: our u/r/v hierarchy is ~420 MB; the
        // paper's Table 2 reports 884 MB including runtime overheads —
        // same order of magnitude.
        let fp = Mg::new(Class::B).footprint();
        let mb = fp.data_bytes as f64 / (1024.0 * 1024.0);
        assert!((300.0..1000.0).contains(&mb), "MG B = {mb:.0} MB");
    }

    #[test]
    fn wrap_is_periodic() {
        assert_eq!(wrap(0, -1, 8), 7);
        assert_eq!(wrap(7, 1, 8), 0);
        assert_eq!(wrap(3, 1, 8), 4);
    }
}
