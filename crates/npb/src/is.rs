//! NPB IS: integer bucket sort (extension workload).
//!
//! Not one of the paper's five applications, but the sixth classic NPB
//! kernel and a natural extra datapoint: its ranking phase scatters
//! increments across a multi-megabyte histogram indexed by random keys —
//! the same "random access over many pages" profile that makes CG the
//! paper's best case. Including it tests that the harness's conclusions
//! generalize beyond the five calibrated codes.
//!
//! Structure follows NPB IS: iterations of (perturb two keys → count keys
//! into per-thread histograms → merge → prefix-sum → partial
//! verification), with the full sort checked at the end via the rank
//! array's monotonicity.

use crate::common::{Class, CodeProfile, Footprint, Kernel};
use crate::rng::Nprng;
use lpomp_runtime::{BumpAllocator, Schedule, ShVec, Team};

#[derive(Clone, Copy, Debug)]
struct Params {
    /// Number of keys.
    n: usize,
    /// Key range (bucket count).
    max_key: usize,
    /// Ranking iterations.
    iters: usize,
}

fn params(class: Class) -> Params {
    match class {
        Class::S => Params {
            n: 1 << 14,
            max_key: 1 << 10,
            iters: 3,
        },
        // Histogram spans 2 MB per thread: hundreds of 4 KB pages of
        // random writes (far beyond the 32-entry L1 DTLB), one large page.
        Class::W => Params {
            n: 1 << 20,
            max_key: 1 << 18,
            iters: 4,
        },
        Class::A => Params {
            n: 1 << 22,
            max_key: 1 << 19,
            iters: 6,
        },
        // NPB class B: 2^25 keys, 2^21 key range, 10 iterations.
        Class::B => Params {
            n: 1 << 25,
            max_key: 1 << 21,
            iters: 10,
        },
    }
}

/// The IS benchmark.
pub struct Is {
    class: Class,
    prm: Params,
    keys: Option<ShVec<u64>>,
    /// Per-thread histograms, thread-major: `hist[t * max_key + k]`.
    hist: Option<ShVec<u64>>,
    /// Merged counts / rank prefix.
    ranks: Option<ShVec<u64>>,
    threads_hint: usize,
}

/// Maximum team size the histogram array is provisioned for.
const MAX_THREADS: usize = 8;

impl Is {
    /// New IS instance.
    pub fn new(class: Class) -> Self {
        Is {
            class,
            prm: params(class),
            keys: None,
            hist: None,
            ranks: None,
            threads_hint: MAX_THREADS,
        }
    }

    fn run_impl(&self, team: &mut Team) -> f64 {
        let p = self.prm;
        let keys = self.keys.as_ref().unwrap();
        let hist = self.hist.as_ref().unwrap();
        let ranks = self.ranks.as_ref().unwrap();
        let threads = team.threads();
        assert!(threads <= MAX_THREADS);
        // Regenerate keys so repeated runs are identical.
        Self::gen_keys(keys, p);
        let mut checksum = 0.0;
        for it in 0..p.iters {
            // NPB perturbs two keys per iteration.
            keys.set_raw(it % p.n, (it % p.max_key) as u64);
            keys.set_raw((it * 31) % p.n, ((p.max_key - 1 - it) % p.max_key) as u64);

            // Phase 1: zero the per-thread histograms (streamed).
            team.parallel_for(0..threads * p.max_key, Schedule::Static, &|ctx, rr| {
                for e in rr.clone() {
                    if e % 8 == 0 {
                        ctx.write_streamed(hist.va(e));
                    }
                    hist.set_raw(e, 0);
                }
                ctx.compute(rr.len() as u64);
            });

            // Phase 2: count — sequential key reads, random histogram
            // increments (the TLB-hostile scatter).
            team.parallel_for(0..p.n, Schedule::Static, &|ctx, rr| {
                let t = ctx.thread_id();
                let base = t * p.max_key;
                let nlen = rr.len() as u64;
                for i in rr {
                    if i % 8 == 0 {
                        ctx.read_streamed(keys.va(i));
                    }
                    let k = keys.get_raw(i) as usize;
                    let e = base + k;
                    ctx.read(hist.va(e));
                    ctx.write(hist.va(e));
                    hist.set_raw(e, hist.get_raw(e) + 1);
                }
                ctx.compute(3 * nlen);
            });

            // Phase 3: merge thread histograms and prefix-sum (parallel
            // merge over buckets, then a single-threaded scan as in NPB).
            team.parallel_for(0..p.max_key, Schedule::Static, &|ctx, rr| {
                let nlen = rr.len() as u64;
                for k in rr {
                    let mut sum = 0u64;
                    for t in 0..threads {
                        let e = t * p.max_key + k;
                        if k % 8 == 0 {
                            ctx.read_streamed(hist.va(e));
                        }
                        sum += hist.get_raw(e);
                    }
                    if k % 8 == 0 {
                        ctx.write_streamed(ranks.va(k));
                    }
                    ranks.set_raw(k, sum);
                }
                ctx.compute(threads as u64 * nlen);
            });
            team.single(&mut |ctx| {
                let mut acc = 0u64;
                for k in 0..p.max_key {
                    if k % 8 == 0 {
                        ctx.read_streamed(ranks.va(k));
                        ctx.write_streamed(ranks.va(k));
                    }
                    let c = ranks.get_raw(k);
                    ranks.set_raw(k, acc);
                    acc += c;
                }
                ctx.compute(2 * p.max_key as u64);
            });

            // Partial verification: the ranks of five probe keys.
            let mut rng = Nprng::new(17 + it as u64);
            for _ in 0..5 {
                let k = rng.next_index(p.max_key);
                checksum += ranks.get_raw(k) as f64;
            }
        }
        checksum
    }

    fn gen_keys(keys: &ShVec<u64>, p: Params) {
        let mut rng = Nprng::new_default();
        for i in 0..p.n {
            // NPB uses the average of four draws to bias toward the middle.
            let k = (rng.next_f64() + rng.next_f64() + rng.next_f64() + rng.next_f64()) / 4.0;
            keys.set_raw(i, (k * p.max_key as f64) as u64 % p.max_key as u64);
        }
    }

    /// Full verification: ranks must be monotonically non-decreasing and
    /// end at n (a valid prefix-sum of a complete count).
    pub fn ranks_are_valid(&self) -> bool {
        let p = self.prm;
        let ranks = self.ranks.as_ref().unwrap();
        let mut prev = 0u64;
        for k in 0..p.max_key {
            let r = ranks.get_raw(k);
            if r < prev {
                return false;
            }
            prev = r;
        }
        prev <= p.n as u64
    }
}

impl Kernel for Is {
    fn name(&self) -> &'static str {
        "IS"
    }

    fn class(&self) -> Class {
        self.class
    }

    fn footprint(&self) -> Footprint {
        let p = self.prm;
        Footprint {
            instruction_bytes: 1_100_000,
            data_bytes: (p.n + (self.threads_hint + 1) * p.max_key) as u64 * 8,
        }
    }

    fn code_profile(&self) -> CodeProfile {
        CodeProfile {
            code_bytes: 1_100_000,
            hot_bytes: 24 * 1024,
            cold_period: 2500,
        }
    }

    fn setup(&mut self, alloc: &mut BumpAllocator) {
        let p = self.prm;
        let keys: ShVec<u64> = alloc.alloc_vec(p.n);
        Self::gen_keys(&keys, p);
        self.keys = Some(keys);
        self.hist = Some(alloc.alloc_vec(self.threads_hint * p.max_key));
        self.ranks = Some(alloc.alloc_vec(p.max_key));
    }

    fn run(&mut self, team: &mut Team) -> f64 {
        self.run_impl(team)
    }

    fn reference(&self) -> f64 {
        let mut team = Team::native(1);
        self.run_impl(&mut team)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_native;
    use crate::AppKind;

    #[test]
    fn is_native_matches_reference_across_threads() {
        for threads in [1, 2, 4] {
            let (cs, ok) = run_native(AppKind::Is, Class::S, threads);
            assert!(ok, "threads={threads} checksum={cs}");
        }
    }

    #[test]
    fn is_ranks_form_a_valid_prefix_sum() {
        let mut k = Is::new(Class::S);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let mut team = Team::native(3);
        k.run(&mut team);
        assert!(k.ranks_are_valid());
    }

    #[test]
    fn is_ranking_is_correct_on_a_tiny_case() {
        // Cross-check the rank array against a std sort.
        let mut k = Is::new(Class::S);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let mut team = Team::native(2);
        k.run(&mut team);
        let keys = k.keys.as_ref().unwrap().to_vec();
        let ranks = k.ranks.as_ref().unwrap();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        // rank[key] = index of the first occurrence of `key` in the sorted
        // order.
        for probe in [0usize, 7, 100, 1023] {
            let expected = sorted.partition_point(|&v| v < probe as u64);
            assert_eq!(ranks.get_raw(probe), expected as u64, "rank of key {probe}");
        }
    }

    #[test]
    fn is_key_distribution_is_centered() {
        // NPB's four-draw average biases keys toward the middle.
        let mut k = Is::new(Class::S);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let keys = k.keys.as_ref().unwrap().to_vec();
        let max = params(Class::S).max_key as f64;
        let mean = keys.iter().map(|&v| v as f64).sum::<f64>() / keys.len() as f64;
        assert!((mean / max - 0.5).abs() < 0.05, "mean/max = {}", mean / max);
    }
}
