//! NPB EP: embarrassingly parallel Gaussian-pair generation.
//!
//! Not part of the paper's five applications, but included as the
//! **TLB-insensitive control**: EP touches almost no memory (a 10-bin
//! histogram), so large pages must make no difference to it — a useful
//! falsifier for the experiment harness. It also isolates the SMT
//! scalability story: with no memory stalls, Xeon hyper-threading shows
//! pure execution-resource sharing.
//!
//! Algorithm (per NPB): generate pairs `(x, y)` uniform in (-1, 1) from
//! the NPB LCG, accept when `t = x² + y² ≤ 1`, transform to Gaussians via
//! Box–Muller (`x·sqrt(-2 ln t / t)`), count acceptances by annulus.

use crate::common::{Class, CodeProfile, Footprint, Kernel};
use crate::rng::Nprng;
use lpomp_runtime::{BumpAllocator, Reduction, Schedule, ShVec, Team};

/// Pairs generated per batch (one loop iteration = one batch).
const BATCH: usize = 1024;

fn total_pairs(class: Class) -> u64 {
    match class {
        Class::S => 1 << 16,
        Class::W => 1 << 21,
        Class::A => 1 << 23,
        Class::B => 1 << 30,
    }
}

/// The EP benchmark.
pub struct Ep {
    class: Class,
    pairs: u64,
    /// The NPB `q` array: accepted pairs per annulus `l = max(|X|,|Y|)`.
    counts: Option<ShVec<u64>>,
}

impl Ep {
    /// New EP instance.
    pub fn new(class: Class) -> Self {
        Ep {
            class,
            pairs: total_pairs(class),
            counts: None,
        }
    }

    /// Gaussian-pair sums and annulus counts for one batch starting at
    /// pair index `start`. `bins[l]` counts pairs with
    /// `l <= max(|X|, |Y|) < l + 1` (NPB's `q` array).
    fn batch_sum(start: u64, len: u64, bins: &mut [u64; 10]) -> f64 {
        let mut rng = Nprng::new_default();
        // Each pair consumes two LCG draws; jump to this batch's offset.
        rng.skip(start * 2);
        let mut sum = 0.0;
        for _ in 0..len {
            let x = 2.0 * rng.next_f64() - 1.0;
            let y = 2.0 * rng.next_f64() - 1.0;
            let t = x * x + y * y;
            if t <= 1.0 && t > 0.0 {
                let f = (-2.0 * t.ln() / t).sqrt();
                let gx = (x * f).abs();
                let gy = (y * f).abs();
                sum += gx + gy;
                let l = (gx.max(gy) as usize).min(9);
                bins[l] += 1;
            }
        }
        sum
    }
}

impl Kernel for Ep {
    fn name(&self) -> &'static str {
        "EP"
    }

    fn class(&self) -> Class {
        self.class
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            instruction_bytes: 1_200_000,
            // A histogram and per-thread scratch: effectively nothing.
            data_bytes: 4096,
        }
    }

    fn code_profile(&self) -> CodeProfile {
        CodeProfile {
            code_bytes: 1_200_000,
            hot_bytes: 16 * 1024,
            cold_period: 4000,
        }
    }

    fn setup(&mut self, alloc: &mut BumpAllocator) {
        self.counts = Some(alloc.alloc_vec(10));
    }

    fn run(&mut self, team: &mut Team) -> f64 {
        let counts = self.counts.as_ref().expect("setup() not called");
        counts.fill_raw(0);
        let batches = (self.pairs / BATCH as u64) as usize;
        team.parallel_for_reduce(0..batches, Schedule::Static, Reduction::Sum, &|ctx, rr| {
            let mut s = 0.0;
            let mut bins = [0u64; 10];
            for b in rr.clone() {
                s += Self::batch_sum(b as u64 * BATCH as u64, BATCH as u64, &mut bins);
            }
            // Merge this chunk's annulus counts (atomic adds commute, so
            // the result is thread-count independent).
            for (l, &c) in bins.iter().enumerate() {
                if c > 0 {
                    counts.fetch_add_raw(l, c);
                }
            }
            // ~60 instructions per pair (two LCG steps, squares, the
            // occasional ln/sqrt), essentially no memory traffic.
            ctx.compute(60 * BATCH as u64 * rr.len() as u64);
            s
        })
    }

    fn reference(&self) -> f64 {
        let batches = self.pairs / BATCH as u64;
        let mut s = 0.0;
        let mut bins = [0u64; 10];
        for b in 0..batches {
            s += Self::batch_sum(b * BATCH as u64, BATCH as u64, &mut bins);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_native;
    use crate::AppKind;

    #[test]
    fn ep_native_matches_reference() {
        for threads in [1, 3, 4] {
            let (cs, ok) = run_native(AppKind::Ep, Class::S, threads);
            assert!(ok, "threads={threads} checksum={cs}");
        }
    }

    #[test]
    fn ep_skip_partitioning_makes_batches_independent() {
        // Contiguous generation must equal batch-partitioned generation.
        let serial = {
            let mut rng = Nprng::new_default();
            let mut sum = 0.0;
            for _ in 0..2 * BATCH {
                let x = 2.0 * rng.next_f64() - 1.0;
                let y = 2.0 * rng.next_f64() - 1.0;
                let t = x * x + y * y;
                if t <= 1.0 && t > 0.0 {
                    let f = (-2.0 * t.ln() / t).sqrt();
                    sum += (x * f).abs() + (y * f).abs();
                }
            }
            sum
        };
        let mut bins = [0u64; 10];
        let batched = Ep::batch_sum(0, BATCH as u64, &mut bins)
            + Ep::batch_sum(BATCH as u64, BATCH as u64, &mut bins);
        assert!((serial - batched).abs() < 1e-9);
    }

    #[test]
    fn ep_annulus_counts_are_thread_independent() {
        let collect = |threads: usize| -> Vec<u64> {
            let mut k = Ep::new(Class::S);
            let mut alloc = lpomp_runtime::BumpAllocator::unbounded();
            k.setup(&mut alloc);
            let mut team = lpomp_runtime::Team::native(threads);
            k.run(&mut team);
            k.counts.as_ref().unwrap().to_vec()
        };
        let one = collect(1);
        let four = collect(4);
        assert_eq!(one, four);
        // Most Gaussian samples land in the first annulus; total accepted
        // pairs is below the pair count.
        assert!(one[0] > one[1]);
        let total: u64 = one.iter().sum();
        assert!(total <= total_pairs(Class::S));
        assert!(total > total_pairs(Class::S) / 2);
    }

    #[test]
    fn ep_footprint_is_tiny() {
        let fp = Ep::new(Class::B).footprint();
        assert!(fp.data_bytes < 1024 * 1024);
    }
}
