//! NPB BT: block-tridiagonal ADI solver with 5×5 blocks.
//!
//! *"BT sequentially accesses 5x5 blocks of 8-byte arrays. Several of
//! these might fit in a single large page and provide benefit"* (paper
//! §4.2) — but in the measurements BT shows **no significant improvement**
//! (§4.4) and only a 2–3× DTLB miss reduction (Fig. 5). Two properties
//! produce that, both reproduced here:
//!
//! 1. **High arithmetic intensity** — every cell of every solve line pays
//!    for 5×5 block factorisations (hundreds of flops), so page-walk time
//!    is a small share of the run to begin with.
//! 2. **Good block locality** — BT's sweeps revisit 5×5 blocks with high
//!    spatial locality, so its baseline DTLB miss rate is already low and
//!    there is little left for large pages to recover (the paper measures
//!    only a 2–3× miss reduction for BT, against ≥10× for CG/SP/MG).
//!
//! The block-Thomas solve is real arithmetic: per-cell 5×5 Gauss–Jordan
//! inverses and block multiplies with diagonally dominant blocks derived
//! from the solution state.

use crate::common::{init_field, Class, CodeProfile, Footprint, Kernel};
use lpomp_runtime::{BumpAllocator, Reduction, Schedule, ShVec, Team};

/// Components per grid cell.
const NC: usize = 5;

#[derive(Clone, Copy, Debug)]
struct Params {
    n: usize,
    iters: usize,
    tau: f64,
}

fn params(class: Class) -> Params {
    match class {
        Class::S => Params {
            n: 12,
            iters: 2,
            tau: 0.05,
        },
        // Same grid scale as SP: the footprints and access shapes match
        // (paper §4.2 expects BT ≈ SP in pattern; they differ in flops).
        Class::W => Params {
            n: 64,
            iters: 2,
            tau: 0.05,
        },
        Class::A => Params {
            n: 80,
            iters: 2,
            tau: 0.05,
        },
        // NPB class B: 102^3, 200 iterations; Table 2 reports 371 MB.
        Class::B => Params {
            n: 102,
            iters: 200,
            tau: 0.05,
        },
    }
}

struct Data {
    u: ShVec<f64>,
    rhs: ShVec<f64>,
    forcing: ShVec<f64>,
    /// Fused (us, vs, ws) per cell — NPB keeps these as three separate
    /// arrays; we interleave them so the phase's concurrently live 2 MB
    /// pages stay within the Opteron's eight-entry large-page L1 TLB
    /// (DESIGN.md documents this deviation).
    vel: ShVec<f64>,
    /// Fused (qs, rho_i, square) per cell.
    aux: ShVec<f64>,
}

/// The BT benchmark.
pub struct Bt {
    class: Class,
    prm: Params,
    data: Option<Data>,
}

#[inline]
fn cell(n: usize, i: usize, j: usize, k: usize) -> usize {
    ((k * n + j) * n + i) * NC
}

#[inline]
fn scalar(n: usize, i: usize, j: usize, k: usize) -> usize {
    (k * n + j) * n + i
}

#[inline]
fn wrap(x: usize, d: isize, n: usize) -> usize {
    (x as isize + d).rem_euclid(n as isize) as usize
}

/// 5×5 matrix as a flat row-major array.
type M5 = [f64; NC * NC];
/// 5-vector.
type V5 = [f64; NC];

/// `dst = a * b` (5×5 × 5×5). 250 flops.
fn matmul(a: &M5, b: &M5, dst: &mut M5) {
    for r in 0..NC {
        for c in 0..NC {
            let mut s = 0.0;
            for t in 0..NC {
                s += a[r * NC + t] * b[t * NC + c];
            }
            dst[r * NC + c] = s;
        }
    }
}

/// `dst = a * v` (5×5 × 5). 50 flops.
fn matvec(a: &M5, v: &V5, dst: &mut V5) {
    for r in 0..NC {
        let mut s = 0.0;
        for t in 0..NC {
            s += a[r * NC + t] * v[t];
        }
        dst[r] = s;
    }
}

/// Gauss–Jordan inverse of a 5×5 (diagonally dominant ⇒ stable without
/// pivoting, but we pivot on the largest column element anyway). ~300
/// flops. Returns false if singular.
fn inv5(a: &M5, dst: &mut M5) -> bool {
    let mut aug = [0.0f64; NC * 2 * NC];
    for r in 0..NC {
        for c in 0..NC {
            aug[r * 2 * NC + c] = a[r * NC + c];
        }
        aug[r * 2 * NC + NC + r] = 1.0;
    }
    for col in 0..NC {
        // Partial pivot.
        let mut piv = col;
        for r in col + 1..NC {
            if aug[r * 2 * NC + col].abs() > aug[piv * 2 * NC + col].abs() {
                piv = r;
            }
        }
        if aug[piv * 2 * NC + col].abs() < 1e-300 {
            return false;
        }
        if piv != col {
            for c in 0..2 * NC {
                aug.swap(col * 2 * NC + c, piv * 2 * NC + c);
            }
        }
        let d = aug[col * 2 * NC + col];
        for c in 0..2 * NC {
            aug[col * 2 * NC + c] /= d;
        }
        for r in 0..NC {
            if r != col {
                let f = aug[r * 2 * NC + col];
                if f != 0.0 {
                    for c in 0..2 * NC {
                        aug[r * 2 * NC + c] -= f * aug[col * 2 * NC + c];
                    }
                }
            }
        }
    }
    for r in 0..NC {
        for c in 0..NC {
            dst[r * NC + c] = aug[r * 2 * NC + NC + c];
        }
    }
    true
}

impl Bt {
    /// New BT instance.
    pub fn new(class: Class) -> Self {
        Bt {
            class,
            prm: params(class),
            data: None,
        }
    }

    fn data(&self) -> &Data {
        self.data.as_ref().expect("setup() not called")
    }

    /// Diagonal block for a cell: (2 + qs)·I + small state coupling.
    fn diag_block(d: &Data, sc: usize) -> M5 {
        let q = d.aux.get_raw(3 * sc);
        let r = d.aux.get_raw(3 * sc + 1);
        let mut m = [0.0f64; NC * NC];
        for t in 0..NC {
            m[t * NC + t] = 2.0 + q;
        }
        // Weak off-diagonal coupling keeps the block non-trivial but
        // diagonally dominant.
        for t in 0..NC - 1 {
            m[t * NC + t + 1] = 0.05 * r;
            m[(t + 1) * NC + t] = -0.05 * r;
        }
        m
    }

    /// Off-diagonal block: -0.5 I + tiny skew.
    fn off_block(d: &Data, sc: usize) -> M5 {
        let w = d.vel.get_raw(3 * sc + 2);
        let mut m = [0.0f64; NC * NC];
        for t in 0..NC {
            m[t * NC + t] = -0.5;
        }
        m[NC - 1] = 0.02 * w;
        m
    }

    /// rhs = forcing − L(u), refreshing all six derived arrays — the
    /// nine-concurrent-streams phase.
    fn compute_rhs(team: &mut Team, n: usize, d: &Data) {
        team.parallel_for(0..n * n, Schedule::Static, &|ctx, rows| {
            let mut flops = 0u64;
            for kj in rows {
                let k = kj / n;
                let j = kj % n;
                let jm = wrap(j, -1, n);
                let jp = wrap(j, 1, n);
                let km = wrap(k, -1, n);
                let kp = wrap(k, 1, n);
                for i in 0..n {
                    let c0 = cell(n, i, j, k);
                    let sc = scalar(n, i, j, k);
                    if (i * NC).is_multiple_of(8) {
                        ctx.read_streamed(d.u.va(c0));
                        ctx.read_streamed(d.u.va(cell(n, i, jm, k)));
                        ctx.read_streamed(d.u.va(cell(n, i, jp, k)));
                        ctx.read_streamed(d.u.va(cell(n, i, j, km)));
                        ctx.read_streamed(d.u.va(cell(n, i, j, kp)));
                        ctx.read_streamed(d.forcing.va(c0));
                        ctx.write_streamed(d.rhs.va(c0));
                    }
                    if (3 * sc).is_multiple_of(8) {
                        // The derived quantities, fused into two arrays.
                        ctx.write_streamed(d.vel.va(3 * sc));
                        ctx.write_streamed(d.aux.va(3 * sc));
                    }
                    let im = wrap(i, -1, n);
                    let ip = wrap(i, 1, n);
                    for c in 0..NC {
                        let lap = d.u.get_raw(cell(n, im, j, k) + c)
                            + d.u.get_raw(cell(n, ip, j, k) + c)
                            + d.u.get_raw(cell(n, i, jm, k) + c)
                            + d.u.get_raw(cell(n, i, jp, k) + c)
                            + d.u.get_raw(cell(n, i, j, km) + c)
                            + d.u.get_raw(cell(n, i, j, kp) + c)
                            - 6.0 * d.u.get_raw(c0 + c);
                        d.rhs.set_raw(c0 + c, d.forcing.get_raw(c0 + c) + lap);
                    }
                    let u0 = d.u.get_raw(c0);
                    let u1 = d.u.get_raw(c0 + 1);
                    let u2 = d.u.get_raw(c0 + 2);
                    let u3 = d.u.get_raw(c0 + 3);
                    let rho = 1.0 / (1.0 + u0.abs());
                    let square = 0.5 * (u1 * u1 + u2 * u2 + u3 * u3) * rho;
                    d.vel.set_raw(3 * sc, u1 * rho);
                    d.vel.set_raw(3 * sc + 1, u2 * rho);
                    d.vel.set_raw(3 * sc + 2, u3 * rho);
                    d.aux.set_raw(3 * sc, square * rho);
                    d.aux.set_raw(3 * sc + 1, rho);
                    d.aux.set_raw(3 * sc + 2, square);
                    flops += 8 * NC as u64 + 20;
                }
            }
            ctx.compute(flops);
        });
    }

    /// Block-Thomas solve of one line of `rhs`. `addrs[t]` is the base
    /// element of cell t; `coefs[t]` its scalar index. Returns flops.
    fn solve_line(d: &Data, addrs: &[usize], coefs: &[usize]) -> u64 {
        let len = addrs.len();
        let mut inv_d: Vec<M5> = Vec::with_capacity(len);
        let mut rprime: Vec<V5> = Vec::with_capacity(len);
        let mut flops = 0u64;
        // t = 0
        let d0 = Self::diag_block(d, coefs[0]);
        let mut inv = [0.0; NC * NC];
        assert!(inv5(&d0, &mut inv), "singular diagonal block");
        inv_d.push(inv);
        let mut r0 = [0.0; NC];
        for c in 0..NC {
            r0[c] = d.rhs.get_raw(addrs[0] + c);
        }
        rprime.push(r0);
        flops += 300;
        // Forward elimination.
        for t in 1..len {
            let lower = Self::off_block(d, coefs[t]);
            let upper = Self::off_block(d, coefs[t - 1]);
            let mut li = [0.0; NC * NC];
            matmul(&lower, &inv_d[t - 1], &mut li); // L * inv(D'_{t-1})
            let mut liu = [0.0; NC * NC];
            matmul(&li, &upper, &mut liu); // .. * U
            let mut dt = Self::diag_block(d, coefs[t]);
            for e in 0..NC * NC {
                dt[e] -= liu[e];
            }
            let mut rt = [0.0; NC];
            for c in 0..NC {
                rt[c] = d.rhs.get_raw(addrs[t] + c);
            }
            let mut lir = [0.0; NC];
            matvec(&li, &rprime[t - 1], &mut lir);
            for c in 0..NC {
                rt[c] -= lir[c];
            }
            let mut inv = [0.0; NC * NC];
            assert!(inv5(&dt, &mut inv), "singular eliminated block");
            inv_d.push(inv);
            rprime.push(rt);
            flops += 250 * 2 + 50 + 300 + 60;
        }
        // Back substitution, writing into rhs.
        let mut x_next = [0.0; NC];
        matvec(&inv_d[len - 1], &rprime[len - 1], &mut x_next);
        for c in 0..NC {
            d.rhs.set_raw(addrs[len - 1] + c, x_next[c]);
        }
        for t in (0..len - 1).rev() {
            let upper = Self::off_block(d, coefs[t]);
            let mut ux = [0.0; NC];
            matvec(&upper, &x_next, &mut ux);
            let mut rt = rprime[t];
            for c in 0..NC {
                rt[c] -= ux[c];
            }
            let mut xt = [0.0; NC];
            matvec(&inv_d[t], &rt, &mut xt);
            for c in 0..NC {
                d.rhs.set_raw(addrs[t] + c, xt[c]);
            }
            x_next = xt;
            flops += 50 + 5 + 50;
        }
        flops
    }

    /// Direction solve. The x lines are contiguous (streamed); y and z
    /// lines stride by a row / a plane (demand accesses with high cache
    /// locality — the page-crossing pattern large pages accelerate).
    fn solve(team: &mut Team, n: usize, d: &Data, dim: usize) {
        team.parallel_for(0..n * n, Schedule::Static, &|ctx, rows| {
            let mut addrs = vec![0usize; n];
            let mut coefs = vec![0usize; n];
            let mut flops = 0u64;
            for oi in rows {
                let (o, i) = (oi / n, oi % n);
                for t in 0..n {
                    // dim 0: line along i for fixed (j=i, k=o)
                    // dim 1: line along j for fixed (i=i, k=o)
                    // dim 2: line along k for fixed (i=i, j=o)
                    let (ci, cj, ck) = match dim {
                        0 => (t, i, o),
                        1 => (i, t, o),
                        _ => (i, o, t),
                    };
                    addrs[t] = cell(n, ci, cj, ck);
                    coefs[t] = scalar(n, ci, cj, ck);
                    if dim == 0 {
                        if (t * NC).is_multiple_of(8) {
                            ctx.read_streamed(d.rhs.va(addrs[t]));
                            ctx.write_streamed(d.rhs.va(addrs[t]));
                        }
                        if t % 8 == 0 {
                            ctx.read_streamed(d.aux.va(3 * coefs[t]));
                            ctx.read_streamed(d.vel.va(3 * coefs[t]));
                        }
                    } else {
                        ctx.read_pipelined(d.rhs.va(addrs[t]));
                        ctx.write_pipelined(d.rhs.va(addrs[t]));
                        if t % 8 == 0 {
                            ctx.read_pipelined(d.aux.va(3 * coefs[t]));
                            ctx.read_pipelined(d.vel.va(3 * coefs[t]));
                        }
                    }
                }
                flops += Self::solve_line(d, &addrs, &coefs);
            }
            ctx.compute(flops);
        });
    }

    /// u += tau · rhs, returning ‖u‖².
    fn add(team: &mut Team, n: usize, d: &Data, tau: f64) -> f64 {
        let total = n * n * n * NC;
        team.parallel_for_reduce(0..total, Schedule::Static, Reduction::Sum, &|ctx, rr| {
            let mut s = 0.0;
            for e in rr.clone() {
                if e % 8 == 0 {
                    ctx.read_streamed(d.rhs.va(e));
                    ctx.write_streamed(d.u.va(e));
                }
                let v = d.u.get_raw(e) + tau * d.rhs.get_raw(e);
                d.u.set_raw(e, v);
                s += v * v;
            }
            ctx.compute(4 * rr.len() as u64);
            s
        })
    }

    fn run_impl(&self, team: &mut Team) -> f64 {
        let p = self.prm;
        let n = p.n;
        let d = self.data();
        for e in 0..d.u.len() {
            d.u.set_raw(e, init_field(e));
        }
        let mut checksum = 0.0;
        for _ in 0..p.iters {
            Self::compute_rhs(team, n, d);
            for dim in 0..3 {
                Self::solve(team, n, d, dim);
            }
            checksum = Self::add(team, n, d, p.tau).sqrt();
        }
        checksum
    }
}

impl Kernel for Bt {
    fn name(&self) -> &'static str {
        "BT"
    }

    fn class(&self) -> Class {
        self.class
    }

    fn footprint(&self) -> Footprint {
        let n3 = (self.prm.n * self.prm.n * self.prm.n) as u64;
        Footprint {
            instruction_bytes: 1_600_000, // Table 2: BT binary 1.6 MB
            // u, rhs, forcing (5 comps) + the fused vel and aux arrays
            // (six derived scalar fields).
            data_bytes: 3 * n3 * (NC as u64) * 8 + 6 * n3 * 8,
        }
    }

    fn code_profile(&self) -> CodeProfile {
        CodeProfile {
            code_bytes: 1_600_000,
            hot_bytes: 80 * 1024,
            cold_period: 900,
        }
    }

    fn setup(&mut self, alloc: &mut BumpAllocator) {
        let n = self.prm.n;
        let n3 = n * n * n;
        self.data = Some(Data {
            u: alloc.alloc_vec_from(n3 * NC, init_field),
            rhs: alloc.alloc_vec(n3 * NC),
            forcing: alloc.alloc_vec_from(n3 * NC, |e| ((e % 89) as f64 - 44.0) * 0.001),
            vel: alloc.alloc_vec(3 * n3),
            aux: alloc.alloc_vec(3 * n3),
        });
    }

    fn run(&mut self, team: &mut Team) -> f64 {
        self.run_impl(team)
    }

    fn reference(&self) -> f64 {
        let mut team = Team::native(1);
        self.run_impl(&mut team)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_native;
    use crate::AppKind;

    #[test]
    fn inv5_inverts() {
        let mut a = [0.0; NC * NC];
        for t in 0..NC {
            a[t * NC + t] = 2.0 + t as f64;
        }
        a[1] = 0.3;
        a[NC] = -0.2;
        let mut inv = [0.0; NC * NC];
        assert!(inv5(&a, &mut inv));
        let mut prod = [0.0; NC * NC];
        matmul(&a, &inv, &mut prod);
        for r in 0..NC {
            for c in 0..NC {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((prod[r * NC + c] - want).abs() < 1e-12, "({r},{c})");
            }
        }
    }

    #[test]
    fn inv5_rejects_singular() {
        let a = [0.0; NC * NC];
        let mut inv = [0.0; NC * NC];
        assert!(!inv5(&a, &mut inv));
    }

    #[test]
    fn block_solve_reproduces_known_solution() {
        // Build A x = b for known x on one line with the same block
        // generators, then check solve_line recovers x.
        let mut k = Bt::new(Class::S);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let d = k.data();
        let n = k.prm.n;
        let addrs: Vec<usize> = (0..n).map(|t| cell(n, t, 0, 0)).collect();
        let coefs: Vec<usize> = (0..n).map(|t| scalar(n, t, 0, 0)).collect();
        let want: Vec<V5> = (0..n)
            .map(|t| std::array::from_fn(|c| ((t * NC + c) as f64 * 0.13).sin()))
            .collect();
        // b_t = L_t x_{t-1} + D_t x_t + U_t x_{t+1}
        for t in 0..n {
            let dt = Bt::diag_block(d, coefs[t]);
            let mut b = [0.0; NC];
            matvec(&dt, &want[t], &mut b);
            if t > 0 {
                let l = Bt::off_block(d, coefs[t]);
                let mut lv = [0.0; NC];
                matvec(&l, &want[t - 1], &mut lv);
                for c in 0..NC {
                    b[c] += lv[c];
                }
            }
            if t + 1 < n {
                let u = Bt::off_block(d, coefs[t]);
                let mut uv = [0.0; NC];
                matvec(&u, &want[t + 1], &mut uv);
                for c in 0..NC {
                    b[c] += uv[c];
                }
            }
            for c in 0..NC {
                d.rhs.set_raw(addrs[t] + c, b[c]);
            }
        }
        Bt::solve_line(d, &addrs, &coefs);
        for t in 0..n {
            for c in 0..NC {
                let got = d.rhs.get_raw(addrs[t] + c);
                assert!(
                    (got - want[t][c]).abs() < 1e-8,
                    "t={t} c={c}: {got} vs {}",
                    want[t][c]
                );
            }
        }
    }

    #[test]
    fn bt_native_matches_reference_across_threads() {
        for threads in [1, 2, 4] {
            let (cs, ok) = run_native(AppKind::Bt, Class::S, threads);
            assert!(ok, "threads={threads} checksum={cs}");
            assert!(cs.is_finite() && cs > 0.0);
        }
    }

    #[test]
    fn bt_footprint_class_b_near_paper() {
        // Paper Table 2: BT (B) = 371 MB, measured on Omni/SCASH whose
        // startup preallocation and work arrays roughly double the raw
        // array bytes. Our raw arrays land in the same order of magnitude.
        let fp = Bt::new(Class::B).footprint();
        let mb = fp.data_bytes as f64 / (1024.0 * 1024.0);
        assert!((100.0..600.0).contains(&mb), "BT B = {mb:.0} MB");
    }
}
