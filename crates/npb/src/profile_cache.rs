//! Cache of captured reference-stream profiles, keyed by
//! `(application, class, thread count)`.
//!
//! The analytic backend needs one cycle-exact capture run per key; every
//! (machine × page policy × placement) evaluation after that is a pure
//! function of the cached [`StreamProfile`]. The cache is in-memory and
//! process-wide by default; set `LPOMP_PROFILE_DIR` to also persist
//! profiles as JSON across processes. Disk files are never trusted:
//! corrupt or truncated JSON, a key mismatch, or an
//! [`ENGINE_VERSION`](lpomp_prof::ENGINE_VERSION) stamp from a
//! different engine all fall back to recapture.

use crate::common::{AppKind, Class};
use lpomp_prof::reuse::StreamProfile;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// Cache key.
pub type ProfileKey = (AppKind, Class, usize);

/// See the [module docs](self).
pub struct ProfileCache {
    mem: Mutex<HashMap<ProfileKey, Arc<StreamProfile>>>,
    dir: Option<PathBuf>,
}

impl Default for ProfileCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileCache {
    /// Empty cache; the disk layer activates when `LPOMP_PROFILE_DIR`
    /// is set to a non-empty path.
    pub fn new() -> Self {
        let dir = std::env::var("LPOMP_PROFILE_DIR")
            .ok()
            .filter(|d| !d.is_empty())
            .map(PathBuf::from);
        Self::with_dir(dir)
    }

    /// Empty cache with an explicit on-disk directory (`None` = memory
    /// only).
    pub fn with_dir(dir: Option<PathBuf>) -> Self {
        ProfileCache {
            mem: Mutex::new(HashMap::new()),
            dir,
        }
    }

    /// Canonical file name of a key's profile.
    pub fn file_name(app: AppKind, class: Class, threads: usize) -> String {
        format!("{app}_{class}_t{threads}.json")
    }

    /// Lock the in-memory map, recovering from poisoning: the cache is a
    /// plain `HashMap` of immutable `Arc`s with no multi-step invariants,
    /// so a worker that panicked mid-`capture` leaves it consistent.
    /// Recovering lets the original panic surface alone instead of
    /// cascading `PoisonError` panics across every other sweep worker.
    fn mem(&self) -> MutexGuard<'_, HashMap<ProfileKey, Arc<StreamProfile>>> {
        self.mem
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Number of profiles resident in memory.
    pub fn len(&self) -> usize {
        self.mem().len()
    }

    /// Whether the in-memory cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the profile for a key, running `capture` on a miss. The
    /// cache lock is held across `capture`, serializing concurrent
    /// capture runs so parallel sweep workers never duplicate one.
    pub fn get_or_capture(
        &self,
        app: AppKind,
        class: Class,
        threads: usize,
        capture: impl FnOnce() -> StreamProfile,
    ) -> Arc<StreamProfile> {
        let mut mem = self.mem();
        if let Some(p) = mem.get(&(app, class, threads)) {
            return Arc::clone(p);
        }
        let profile = self.try_load(app, class, threads).unwrap_or_else(|| {
            let p = capture();
            self.try_store(app, class, threads, &p);
            p
        });
        let arc = Arc::new(profile);
        mem.insert((app, class, threads), Arc::clone(&arc));
        arc
    }

    fn path(&self, app: AppKind, class: Class, threads: usize) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(Self::file_name(app, class, threads)))
    }

    fn try_load(&self, app: AppKind, class: Class, threads: usize) -> Option<StreamProfile> {
        let path = self.path(app, class, threads)?;
        let src = std::fs::read_to_string(path).ok()?;
        // `from_json` rejects profiles stamped with a different
        // `ENGINE_VERSION` (stale charge rules / capture pipeline) and
        // errors on corrupt or truncated JSON; either way `.ok()?` turns
        // the failure into a recapture, never a panic or a stale hit.
        let p = StreamProfile::from_json(&src).ok()?;
        // Never trust a renamed file.
        let matches =
            p.app == app.to_string() && p.class == class.to_string() && p.threads == threads;
        matches.then_some(p)
    }

    fn try_store(&self, app: AppKind, class: Class, threads: usize, p: &StreamProfile) {
        let Some(path) = self.path(app, class, threads) else {
            return;
        };
        // Best effort: an unwritable directory only costs recapture.
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let _ = std::fs::write(path, p.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile(app: AppKind, class: Class, threads: usize) -> StreamProfile {
        StreamProfile {
            app: app.to_string(),
            class: class.to_string(),
            threads,
            checksum: 1.5,
            phases: Vec::new(),
        }
    }

    #[test]
    fn memory_cache_captures_once() {
        let cache = ProfileCache::with_dir(None);
        let mut calls = 0;
        for _ in 0..3 {
            let p = cache.get_or_capture(AppKind::Cg, Class::S, 2, || {
                calls += 1;
                tiny_profile(AppKind::Cg, Class::S, 2)
            });
            assert_eq!(p.threads, 2);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_layer_round_trips_and_rejects_mismatches() {
        let dir = std::env::temp_dir().join(format!("lpomp-pc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ProfileCache::with_dir(Some(dir.clone()));
        cache.get_or_capture(AppKind::Mg, Class::S, 4, || {
            tiny_profile(AppKind::Mg, Class::S, 4)
        });
        assert!(dir
            .join(ProfileCache::file_name(AppKind::Mg, Class::S, 4))
            .exists());

        // A second cache instance loads from disk without capturing.
        let cache2 = ProfileCache::with_dir(Some(dir.clone()));
        let p = cache2.get_or_capture(AppKind::Mg, Class::S, 4, || panic!("should load from disk"));
        assert_eq!(p.checksum, 1.5);

        // A mismatched file (wrong thread count inside) is recaptured.
        std::fs::write(
            dir.join(ProfileCache::file_name(AppKind::Mg, Class::S, 8)),
            tiny_profile(AppKind::Mg, Class::S, 4).to_json(),
        )
        .unwrap();
        let mut recaptured = false;
        cache2.get_or_capture(AppKind::Mg, Class::S, 8, || {
            recaptured = true;
            tiny_profile(AppKind::Mg, Class::S, 8)
        });
        assert!(recaptured);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_truncated_files_fall_back_to_recapture() {
        let dir = std::env::temp_dir().join(format!("lpomp-pc-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let good = tiny_profile(AppKind::Cg, Class::S, 2).to_json();
        let path = dir.join(ProfileCache::file_name(AppKind::Cg, Class::S, 2));
        for bad in [
            "",
            "not json",
            "{\"engine\":",
            &good[..good.len() / 2], // truncated mid-write
        ] {
            std::fs::write(&path, bad).unwrap();
            let cache = ProfileCache::with_dir(Some(dir.clone()));
            let mut recaptured = false;
            cache.get_or_capture(AppKind::Cg, Class::S, 2, || {
                recaptured = true;
                tiny_profile(AppKind::Cg, Class::S, 2)
            });
            assert!(recaptured, "file {bad:?} must recapture, not panic");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_engine_version_is_recaptured() {
        let dir = std::env::temp_dir().join(format!("lpomp-pc-engine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ProfileCache::with_dir(Some(dir.clone()));
        cache.get_or_capture(AppKind::Ft, Class::S, 2, || {
            tiny_profile(AppKind::Ft, Class::S, 2)
        });

        // Simulate an engine upgrade: rewrite the stored profile as if a
        // previous engine version had captured it. The file is otherwise
        // perfectly valid — only the stamp is stale.
        let path = dir.join(ProfileCache::file_name(AppKind::Ft, Class::S, 2));
        let cur = format!("\"engine\":{}", lpomp_prof::ENGINE_VERSION);
        let old = format!("\"engine\":{}", lpomp_prof::ENGINE_VERSION - 1);
        let src = std::fs::read_to_string(&path).unwrap();
        assert!(src.contains(&cur), "profiles must carry the engine stamp");
        std::fs::write(&path, src.replace(&cur, &old)).unwrap();

        let cache2 = ProfileCache::with_dir(Some(dir.clone()));
        let mut recaptured = false;
        cache2.get_or_capture(AppKind::Ft, Class::S, 2, || {
            recaptured = true;
            tiny_profile(AppKind::Ft, Class::S, 2)
        });
        assert!(recaptured, "stale engine stamp must force recapture");
        // The recapture refreshed the file back to the current stamp.
        let refreshed = std::fs::read_to_string(&path).unwrap();
        assert!(refreshed.contains(&cur));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        let cache = std::sync::Arc::new(ProfileCache::with_dir(None));
        // Poison the mutex: a worker panics while holding the lock
        // (mid-capture, as a panicking engine run would).
        let c = std::sync::Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            c.get_or_capture(AppKind::Cg, Class::S, 2, || panic!("engine run panicked"))
        })
        .join()
        .expect_err("worker must panic");
        // Other workers proceed with the original panic surfaced alone —
        // no PoisonError cascade.
        let p = cache.get_or_capture(AppKind::Cg, Class::S, 4, || {
            tiny_profile(AppKind::Cg, Class::S, 4)
        });
        assert_eq!(p.threads, 4);
        assert_eq!(cache.len(), 1);
    }
}
