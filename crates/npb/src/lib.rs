//! # `lpomp-npb` — the NAS Parallel Benchmark workloads
//!
//! From-scratch Rust implementations of the five OpenMP NPB applications
//! the paper evaluates (§4.2) — BT, CG, FT, SP, MG — plus EP as a
//! TLB-insensitive control. Each kernel
//!
//! * performs **real arithmetic** (block solves, conjugate gradient,
//!   radix-2 FFTs, multigrid V-cycles) on shared arrays, with a serial
//!   reference and checksum verification;
//! * **narrates its memory behaviour** through [`lpomp_machine::MemoryCtx`]:
//!   dense sweeps as prefetcher-covered streams, gathers and large-stride
//!   pencil walks as demand accesses — the distinction the large-page
//!   effect turns on;
//! * is parameterized by [`Class`]: `S` for tests, `W` scaled so that
//!   footprint ÷ TLB-reach matches the class-B-on-real-hardware regime,
//!   `B` for the paper's Table 2 footprints.
//!
//! Flop charges are the kernels' actual operation counts, so the relative
//! compute intensity of the applications — what separates the ~25%
//! CG gain from the flat BT/FT results — is measured, not asserted.

#![warn(missing_docs)]
// The solver kernels index multiple arrays with one loop variable, as the
// Fortran originals do; iterator zips would obscure the stencil structure.
#![allow(clippy::needless_range_loop)]

pub mod bt;
pub mod cg;
pub mod common;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;
pub mod profile_cache;
pub mod rng;
pub mod skew;
pub mod sp;

pub use common::{
    init_field, run_native, verify_close, AppKind, Class, CodeProfile, Footprint, Kernel,
};
pub use profile_cache::{ProfileCache, ProfileKey};
pub use rng::Nprng;
pub use skew::Skew;
