//! NPB SP: scalar-pentadiagonal (here tridiagonal-line) ADI solver.
//!
//! *"We would expect SP to perform similarly to BT because of similar data
//! access patterns and footprints"* (paper §4.2) — but SP's per-cell
//! arithmetic is scalar rather than 5×5-block, so memory time is a much
//! larger share and the paper measures a **20% improvement at 4 threads**
//! on the Opteron (and 13% at 8 threads on the Xeon), with a ≥10× DTLB
//! miss reduction.
//!
//! The TLB-relevant structure is the ADI sweep set: the x-solve walks
//! contiguous lines (streamed), while the y- and z-solves walk lines
//! whose elements are a row (~2.5 KB) and a plane (~160 KB) apart. Those
//! strided accesses enjoy high *cache* locality (neighbouring pencils
//! share lines) but cross a 4 KB page almost every step — the
//! "high TLB miss rate, high cache hit rate" inversion where page walks
//! dominate and 2 MB pages pay off. The working set is sized inside the
//! 16 MB 2 MB-page reach of the Opteron L1 TLB.
//!
//! Grid layout matches NPB: component-fastest, `addr(c,i,j,k)`, 40 bytes
//! per cell.

use crate::common::{init_field, Class, CodeProfile, Footprint, Kernel};
use lpomp_runtime::{BumpAllocator, Reduction, Schedule, ShVec, Team};

/// Components per grid cell.
const NC: usize = 5;

#[derive(Clone, Copy, Debug)]
struct Params {
    /// Grid edge (cube).
    n: usize,
    /// ADI iterations.
    iters: usize,
    /// Pseudo-time step for the add phase.
    tau: f64,
}

fn params(class: Class) -> Params {
    match class {
        Class::S => Params {
            n: 16,
            iters: 2,
            tau: 0.05,
        },
        // 64^3 cells x 5 components x 8 B = 10.5 MB per 5-component array:
        // beyond the 4 MB 4 KB-page reach, inside 16 MB 2 MB-page reach.
        Class::W => Params {
            n: 64,
            iters: 3,
            tau: 0.05,
        },
        Class::A => Params {
            n: 80,
            iters: 3,
            tau: 0.05,
        },
        // NPB class B is a 102^3 grid, 400 iterations; Table 2 reports a
        // 387 MB footprint.
        Class::B => Params {
            n: 102,
            iters: 400,
            tau: 0.05,
        },
    }
}

/// Allocated state.
struct Data {
    u: ShVec<f64>,
    rhs: ShVec<f64>,
    forcing: ShVec<f64>,
    rho_i: ShVec<f64>,
    speed: ShVec<f64>,
}

/// The SP benchmark.
pub struct Sp {
    class: Class,
    prm: Params,
    data: Option<Data>,
}

#[inline]
fn cell(n: usize, i: usize, j: usize, k: usize) -> usize {
    ((k * n + j) * n + i) * NC
}

#[inline]
fn scalar(n: usize, i: usize, j: usize, k: usize) -> usize {
    (k * n + j) * n + i
}

#[inline]
fn wrap(x: usize, d: isize, n: usize) -> usize {
    (x as isize + d).rem_euclid(n as isize) as usize
}

impl Sp {
    /// New SP instance.
    pub fn new(class: Class) -> Self {
        Sp {
            class,
            prm: params(class),
            data: None,
        }
    }

    fn data(&self) -> &Data {
        self.data.as_ref().expect("setup() not called")
    }

    /// rhs = forcing − L(u); also refresh rho_i and speed. Streamed sweep.
    fn compute_rhs(team: &mut Team, n: usize, d: &Data) {
        team.parallel_for(0..n * n, Schedule::Static, &|ctx, rows| {
            let mut flops = 0u64;
            for kj in rows {
                let k = kj / n;
                let j = kj % n;
                let jm = wrap(j, -1, n);
                let jp = wrap(j, 1, n);
                let km = wrap(k, -1, n);
                let kp = wrap(k, 1, n);
                for i in 0..n {
                    let c0 = cell(n, i, j, k);
                    // Streams: u (plus its y/z neighbour-line streams),
                    // forcing, rhs, and the derived scalar arrays — eight
                    // concurrent streams, the many-array pattern of NPB's
                    // compute_rhs.
                    if (i * NC).is_multiple_of(8) {
                        ctx.read_streamed(d.u.va(c0));
                        ctx.read_streamed(d.u.va(cell(n, i, jm, k)));
                        ctx.read_streamed(d.u.va(cell(n, i, jp, k)));
                        ctx.read_streamed(d.u.va(cell(n, i, j, km)));
                        ctx.read_streamed(d.u.va(cell(n, i, j, kp)));
                        ctx.read_streamed(d.forcing.va(c0));
                        ctx.write_streamed(d.rhs.va(c0));
                    }
                    if i % 8 == 0 {
                        ctx.write_streamed(d.rho_i.va(scalar(n, i, j, k)));
                        ctx.write_streamed(d.speed.va(scalar(n, i, j, k)));
                    }
                    let im = wrap(i, -1, n);
                    let ip = wrap(i, 1, n);
                    for c in 0..NC {
                        let lap = d.u.get_raw(cell(n, im, j, k) + c)
                            + d.u.get_raw(cell(n, ip, j, k) + c)
                            + d.u.get_raw(cell(n, i, jm, k) + c)
                            + d.u.get_raw(cell(n, i, jp, k) + c)
                            + d.u.get_raw(cell(n, i, j, km) + c)
                            + d.u.get_raw(cell(n, i, j, kp) + c)
                            - 6.0 * d.u.get_raw(c0 + c);
                        d.rhs.set_raw(c0 + c, d.forcing.get_raw(c0 + c) + lap);
                    }
                    let u0 = d.u.get_raw(c0).abs();
                    d.rho_i.set_raw(scalar(n, i, j, k), 1.0 / (1.0 + u0));
                    d.speed.set_raw(scalar(n, i, j, k), (0.25 + u0).sqrt());
                    flops += 8 * NC as u64 + 10;
                }
            }
            ctx.compute(flops);
        });
    }

    /// Tridiagonal Thomas solve of one line of `rhs`, coefficients from
    /// `speed`. `addrs[t]` is the base element index of cell `t`;
    /// `coefs[t]` its scalar index.
    fn solve_line(d: &Data, addrs: &[usize], coefs: &[usize], scratch: &mut [f64]) -> u64 {
        let len = addrs.len();
        let (beta, rest) = scratch.split_at_mut(len);
        let (work, _) = rest.split_at_mut(len * NC);
        let mut flops = 0u64;
        // Forward elimination (diagonally dominant by construction).
        let spd0 = d.speed.get_raw(coefs[0]);
        let diag0 = 2.0 + spd0 + 0.01 * d.u.get_raw(addrs[0]).abs();
        beta[0] = diag0;
        for c in 0..NC {
            work[c] = d.rhs.get_raw(addrs[0] + c);
        }
        for t in 1..len {
            let spd = d.speed.get_raw(coefs[t]);
            let rho = d.rho_i.get_raw(coefs[t]);
            let sub = -0.5 - 0.1 * spd - 0.05 * rho;
            let sup = -0.5;
            let m = sub / beta[t - 1];
            beta[t] = (2.0 + spd + 0.01 * d.u.get_raw(addrs[t]).abs()) - m * sup;
            for c in 0..NC {
                work[t * NC + c] = d.rhs.get_raw(addrs[t] + c) - m * work[(t - 1) * NC + c];
            }
            flops += 6 + 2 * NC as u64;
        }
        // Back substitution, writing the solution into rhs.
        for c in 0..NC {
            d.rhs
                .set_raw(addrs[len - 1] + c, work[(len - 1) * NC + c] / beta[len - 1]);
        }
        for t in (0..len - 1).rev() {
            let sup = -0.5;
            for c in 0..NC {
                let x = (work[t * NC + c] - sup * d.rhs.get_raw(addrs[t + 1] + c)) / beta[t];
                d.rhs.set_raw(addrs[t] + c, x);
            }
            flops += 3 * NC as u64;
        }
        flops
    }

    /// x-direction solve: lines are contiguous — streamed.
    fn x_solve(team: &mut Team, n: usize, d: &Data) {
        team.parallel_for(0..n * n, Schedule::Static, &|ctx, rows| {
            let mut addrs = vec![0usize; n];
            let mut coefs = vec![0usize; n];
            let mut scratch = vec![0.0f64; n + n * NC];
            let mut flops = 0u64;
            for kj in rows {
                let k = kj / n;
                let j = kj % n;
                for i in 0..n {
                    addrs[i] = cell(n, i, j, k);
                    coefs[i] = scalar(n, i, j, k);
                    if (i * NC).is_multiple_of(8) {
                        ctx.read_streamed(d.rhs.va(addrs[i]));
                        ctx.write_streamed(d.rhs.va(addrs[i]));
                    }
                    if i % 8 == 0 {
                        ctx.read_streamed(d.speed.va(coefs[i]));
                    }
                }
                flops += Self::solve_line(d, &addrs, &coefs, &mut scratch);
            }
            ctx.compute(flops);
        });
    }

    /// y- or z-direction solve: pencil elements are a row / a plane apart.
    /// Demand accesses: one read and one write per cell, page-crossing at
    /// (almost) every step — the phase large pages accelerate.
    fn strided_solve(team: &mut Team, n: usize, d: &Data, dim_z: bool) {
        team.parallel_for(0..n * n, Schedule::Static, &|ctx, rows| {
            let mut addrs = vec![0usize; n];
            let mut coefs = vec![0usize; n];
            let mut scratch = vec![0.0f64; n + n * NC];
            let mut flops = 0u64;
            for oi in rows {
                let (o, i) = (oi / n, oi % n);
                // lhs-construction pass: NPB's y/z solves first walk the
                // pencil reading the state and coefficient arrays (u,
                // speed, rho_i) to build the factor coefficients. Every
                // element lives on its own page.
                for t in 0..n {
                    let (ci, cj, ck) = if dim_z { (i, o, t) } else { (i, t, o) };
                    addrs[t] = cell(n, ci, cj, ck);
                    coefs[t] = scalar(n, ci, cj, ck);
                    ctx.read_pipelined(d.u.va(addrs[t]));
                    ctx.read_pipelined(d.speed.va(coefs[t]));
                    ctx.read_pipelined(d.rho_i.va(coefs[t]));
                }
                // Solve pass: forward elimination reads rhs, back
                // substitution writes it.
                for t in 0..n {
                    ctx.read_pipelined(d.rhs.va(addrs[t]));
                }
                flops += Self::solve_line(d, &addrs, &coefs, &mut scratch);
                for t in 0..n {
                    ctx.write_pipelined(d.rhs.va(addrs[t]));
                }
            }
            ctx.compute(flops);
        });
    }

    /// u += tau * rhs (streamed), returning ||u||² for the checksum.
    fn add(team: &mut Team, n: usize, d: &Data, tau: f64) -> f64 {
        let total = n * n * n * NC;
        team.parallel_for_reduce(0..total, Schedule::Static, Reduction::Sum, &|ctx, rr| {
            let mut s = 0.0;
            for e in rr.clone() {
                if e % 8 == 0 {
                    ctx.read_streamed(d.rhs.va(e));
                    ctx.write_streamed(d.u.va(e));
                }
                let v = d.u.get_raw(e) + tau * d.rhs.get_raw(e);
                d.u.set_raw(e, v);
                s += v * v;
            }
            ctx.compute(4 * rr.len() as u64);
            s
        })
    }

    fn run_impl(&self, team: &mut Team) -> f64 {
        let p = self.prm;
        let n = p.n;
        let d = self.data();
        // Reset u so repeated runs are identical.
        for e in 0..d.u.len() {
            d.u.set_raw(e, init_field(e));
        }
        let mut checksum = 0.0;
        for _ in 0..p.iters {
            team.region("sp:rhs", |team| Self::compute_rhs(team, n, d));
            team.region("sp:x-solve", |team| Self::x_solve(team, n, d));
            team.region("sp:y-solve", |team| Self::strided_solve(team, n, d, false));
            team.region("sp:z-solve", |team| Self::strided_solve(team, n, d, true));
            checksum = team
                .region("sp:add", |team| Self::add(team, n, d, p.tau))
                .sqrt();
        }
        checksum
    }
}

impl Kernel for Sp {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn class(&self) -> Class {
        self.class
    }

    fn footprint(&self) -> Footprint {
        let n3 = (self.prm.n * self.prm.n * self.prm.n) as u64;
        Footprint {
            instruction_bytes: 1_600_000, // Table 2: SP binary 1.6 MB
            // u, rhs, forcing (5 comps) + rho_i, speed (scalars).
            data_bytes: 3 * n3 * (NC as u64) * 8 + 2 * n3 * 8,
        }
    }

    fn code_profile(&self) -> CodeProfile {
        CodeProfile {
            code_bytes: 1_600_000,
            hot_bytes: 64 * 1024,
            cold_period: 1000,
        }
    }

    fn setup(&mut self, alloc: &mut BumpAllocator) {
        let n = self.prm.n;
        let n3 = n * n * n;
        let u: ShVec<f64> = alloc.alloc_vec_from(n3 * NC, init_field);
        let rhs: ShVec<f64> = alloc.alloc_vec(n3 * NC);
        let forcing: ShVec<f64> =
            alloc.alloc_vec_from(n3 * NC, |e| ((e % 97) as f64 - 48.0) * 0.001);
        let rho_i: ShVec<f64> = alloc.alloc_vec(n3);
        let speed: ShVec<f64> = alloc.alloc_vec(n3);
        self.data = Some(Data {
            u,
            rhs,
            forcing,
            rho_i,
            speed,
        });
    }

    fn run(&mut self, team: &mut Team) -> f64 {
        self.run_impl(team)
    }

    fn reference(&self) -> f64 {
        let mut team = Team::native(1);
        self.run_impl(&mut team)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_native;
    use crate::AppKind;

    #[test]
    fn sp_native_matches_reference_across_threads() {
        for threads in [1, 2, 4] {
            let (cs, ok) = run_native(AppKind::Sp, Class::S, threads);
            assert!(ok, "threads={threads} checksum={cs}");
            assert!(cs.is_finite() && cs > 0.0);
        }
    }

    #[test]
    fn sp_checksum_stable_across_repeated_runs() {
        let mut k = Sp::new(Class::S);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let mut team = Team::native(2);
        let a = k.run(&mut team);
        let b = k.run(&mut team);
        assert_eq!(a, b);
    }

    #[test]
    fn tridiagonal_solve_is_exact_on_a_known_system() {
        // Build a tiny instance, set rhs = A*x for a known x along one
        // line, solve, and compare. speed is zeroed so the coefficients
        // are constant: sub = -0.5, diag = 2, sup = -0.5.
        let mut k = Sp::new(Class::S);
        let mut alloc = BumpAllocator::unbounded();
        k.setup(&mut alloc);
        let d = k.data();
        let n = k.prm.n;
        for e in 0..d.speed.len() {
            d.speed.set_raw(e, 0.0);
        }
        // Zero u as well: the diagonal includes a 0.01*|u| term.
        d.u.fill_raw(0.0);
        let want: Vec<f64> = (0..n).map(|t| (t as f64 * 0.37).sin()).collect();
        let addrs: Vec<usize> = (0..n).map(|i| cell(n, i, 0, 0)).collect();
        let coefs: Vec<usize> = (0..n).map(|i| scalar(n, i, 0, 0)).collect();
        for t in 0..n {
            let xm = if t > 0 { want[t - 1] } else { 0.0 };
            let xp = if t + 1 < n { want[t + 1] } else { 0.0 };
            let b = -0.5 * xm + 2.0 * want[t] - 0.5 * xp;
            for c in 0..NC {
                d.rhs.set_raw(addrs[t] + c, b);
            }
        }
        let mut scratch = vec![0.0; n + n * NC];
        Sp::solve_line(d, &addrs, &coefs, &mut scratch);
        for t in 0..n {
            let got = d.rhs.get_raw(addrs[t]);
            assert!((got - want[t]).abs() < 1e-9, "t={t}: {got} vs {}", want[t]);
        }
    }

    #[test]
    fn sp_w_working_set_in_the_large_page_sweet_spot() {
        let p = params(Class::W);
        let u_bytes = (p.n.pow(3) * NC * 8) as u64;
        assert!(u_bytes > 4 * 1024 * 1024);
        assert!(u_bytes < 16 * 1024 * 1024);
    }

    #[test]
    fn sp_footprint_class_b_near_paper() {
        // Paper Table 2: SP (B) = 387 MB, measured on Omni/SCASH whose
        // startup preallocation and work arrays roughly double the raw
        // array bytes. Our raw arrays land in the same order of magnitude.
        let fp = Sp::new(Class::B).footprint();
        let mb = fp.data_bytes as f64 / (1024.0 * 1024.0);
        assert!((100.0..600.0).contains(&mb), "SP B = {mb:.0} MB");
    }
}
