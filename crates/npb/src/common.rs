//! Kernel framework: problem classes, footprints, code profiles, and the
//! [`Kernel`] trait every NPB implementation satisfies.

use lpomp_runtime::{BumpAllocator, Team};

/// NPB problem classes. `S` is the test class (seconds in the simulator);
/// `W` is the default simulated-evaluation class, scaled so that the
/// footprint ÷ TLB-reach ratios sit in the same regime class B occupies on
/// the real machines; `A` is a larger check; `B` matches the paper's
/// evaluation class (used analytically for Table 2, executable but slow).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Class {
    /// Tiny test class.
    S,
    /// Workstation class — the simulated evaluation default.
    W,
    /// Larger validation class.
    A,
    /// The paper's class (Table 2 footprints).
    B,
}

impl Class {
    /// All classes, smallest first.
    pub const ALL: [Class; 4] = [Class::S, Class::W, Class::A, Class::B];
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            Class::S => 'S',
            Class::W => 'W',
            Class::A => 'A',
            Class::B => 'B',
        };
        write!(f, "{c}")
    }
}

/// Memory footprint of a benchmark instance — the two columns of the
/// paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Footprint {
    /// Binary (instruction) bytes.
    pub instruction_bytes: u64,
    /// Data bytes (shared arrays).
    pub data_bytes: u64,
}

/// Instruction-fetch behaviour of a benchmark (drives the ITLB model and
/// the paper's Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeProfile {
    /// Binary size (Table 2 "Instruction" column).
    pub code_bytes: u64,
    /// Size of the hot loop region.
    pub hot_bytes: u64,
    /// One cold-code excursion per this many compute quanta.
    pub cold_period: u64,
}

/// The interface every NPB kernel implements.
///
/// Lifecycle: `new(class)` → [`setup`](Kernel::setup) (allocate shared
/// arrays from the region allocator and build inputs) → one or more
/// [`run`](Kernel::run) calls on a team → [`verify`](Kernel::verify)
/// against the serial reference.
///
/// `Send` because a multi-tenant machine runs each tenant's kernel on
/// its own coroutine thread (see `lpomp-runtime`'s tenancy module).
pub trait Kernel: Send {
    /// Benchmark name ("CG", "MG", ...).
    fn name(&self) -> &'static str;

    /// Problem class this instance was built for.
    fn class(&self) -> Class;

    /// Memory footprint of this instance.
    fn footprint(&self) -> Footprint;

    /// Instruction-fetch profile.
    fn code_profile(&self) -> CodeProfile;

    /// Allocate shared arrays and build the input data.
    fn setup(&mut self, alloc: &mut BumpAllocator);

    /// Execute the timed benchmark on `team`; returns the checksum.
    fn run(&mut self, team: &mut Team) -> f64;

    /// Serial reference checksum (plain Rust, uninstrumented), used by
    /// [`verify`](Kernel::verify). Requires [`setup`](Kernel::setup).
    fn reference(&self) -> f64;

    /// Whether `checksum` matches the serial reference within floating-
    /// point reassociation tolerance.
    fn verify(&self, checksum: f64) -> bool {
        let r = self.reference();
        verify_close(checksum, r)
    }
}

/// Deterministic, bounded pseudo-random initial value for element `e` of
/// a solution field (golden-ratio low-discrepancy sequence scaled to
/// [0, 0.5)). Used by the structured-grid kernels so repeated runs start
/// from identical state without touching the NPB RNG stream.
pub fn init_field(e: usize) -> f64 {
    let x = (e as f64) * 0.618_033_988_749_894;
    (x - x.floor()) * 0.5
}

/// Relative-error check tolerant of parallel reduction reassociation.
pub fn verify_close(got: f64, want: f64) -> bool {
    if want == 0.0 {
        return got.abs() < 1e-8;
    }
    ((got - want) / want).abs() < 1e-8
}

/// The benchmarks of the paper's evaluation (§4.2) plus EP as a
/// TLB-insensitive control.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Block-tridiagonal ADI solver.
    Bt,
    /// Conjugate gradient with a random sparse matrix.
    Cg,
    /// 3-D fast Fourier transform PDE solver.
    Ft,
    /// Scalar-pentadiagonal ADI solver.
    Sp,
    /// Multigrid V-cycle Poisson solver.
    Mg,
    /// Embarrassingly parallel Gaussian-pair generation (extension).
    Ep,
    /// Integer bucket sort (extension).
    Is,
    /// SSOR wavefront solver (extension).
    Lu,
}

impl AppKind {
    /// The five applications of the paper's figures, in figure order.
    pub const PAPER_FIVE: [AppKind; 5] = [
        AppKind::Bt,
        AppKind::Cg,
        AppKind::Ft,
        AppKind::Sp,
        AppKind::Mg,
    ];

    /// All kernels including the EP control and the IS/LU extensions.
    pub const ALL: [AppKind; 8] = [
        AppKind::Bt,
        AppKind::Cg,
        AppKind::Ft,
        AppKind::Sp,
        AppKind::Mg,
        AppKind::Ep,
        AppKind::Is,
        AppKind::Lu,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Bt => "BT",
            AppKind::Cg => "CG",
            AppKind::Ft => "FT",
            AppKind::Sp => "SP",
            AppKind::Mg => "MG",
            AppKind::Ep => "EP",
            AppKind::Is => "IS",
            AppKind::Lu => "LU",
        }
    }

    /// Build the kernel for a class (not yet `setup`).
    pub fn build(self, class: Class) -> Box<dyn Kernel> {
        match self {
            AppKind::Bt => Box::new(crate::bt::Bt::new(class)),
            AppKind::Cg => Box::new(crate::cg::Cg::new(class)),
            AppKind::Ft => Box::new(crate::ft::Ft::new(class)),
            AppKind::Sp => Box::new(crate::sp::Sp::new(class)),
            AppKind::Mg => Box::new(crate::mg::Mg::new(class)),
            AppKind::Ep => Box::new(crate::ep::Ep::new(class)),
            AppKind::Is => Box::new(crate::is::Is::new(class)),
            AppKind::Lu => Box::new(crate::lu::Lu::new(class)),
        }
    }

    /// Footprint without building the kernel (Table 2 regeneration).
    pub fn footprint(self, class: Class) -> Footprint {
        self.build(class).footprint()
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Run a kernel end to end on a team: setup with an unbounded allocator
/// (native runs) and verify. Returns the checksum. Test helper.
pub fn run_native(kind: AppKind, class: Class, threads: usize) -> (f64, bool) {
    let mut k = kind.build(class);
    let mut alloc = BumpAllocator::unbounded();
    k.setup(&mut alloc);
    let mut team = Team::native(threads);
    let cs = k.run(&mut team);
    let ok = k.verify(cs);
    (cs, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_display() {
        assert_eq!(Class::S.to_string(), "S");
        assert_eq!(Class::B.to_string(), "B");
    }

    #[test]
    fn verify_close_tolerances() {
        assert!(verify_close(1.0, 1.0 + 1e-12));
        assert!(!verify_close(1.0, 1.01));
        assert!(verify_close(0.0, 0.0));
        assert!(!verify_close(1e-3, 0.0));
    }

    #[test]
    fn paper_five_matches_figure_order() {
        let names: Vec<_> = AppKind::PAPER_FIVE.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["BT", "CG", "FT", "SP", "MG"]);
    }

    #[test]
    fn all_kernels_buildable() {
        for k in AppKind::ALL {
            let b = k.build(Class::S);
            assert_eq!(b.class(), Class::S);
            assert!(!b.name().is_empty());
            let fp = b.footprint();
            assert!(fp.data_bytes > 0);
            assert!(fp.instruction_bytes > 0);
        }
    }

    #[test]
    fn class_b_footprints_are_large() {
        // Table 2 magnitude check: every paper app's class-B data footprint
        // is in the hundreds-of-MB-to-GB range.
        for k in AppKind::PAPER_FIVE {
            let fp = k.footprint(Class::B);
            assert!(
                fp.data_bytes > 100 * 1024 * 1024,
                "{k}: {} bytes",
                fp.data_bytes
            );
        }
    }
}
