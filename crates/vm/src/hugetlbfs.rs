//! A `hugetlbfs`-style reserved pool of 2 MB pages, plus the shared
//! "map files" the modified Omni/SCASH runtime allocates its global heap
//! from (paper §3.3: *"we preallocate a set of large pages which may be
//! used by the processes through the hugetlbfs filesystem"*).
//!
//! The pool is carved out of the buddy allocator at construction — the
//! boot-time reservation that guarantees order-9 blocks exist even after
//! the rest of physical memory fragments. Files created in the pool own a
//! fixed run of large frames; mapping a file into several address spaces
//! shares those frames, which is how all processes of the node see one
//! memory image.
//!
//! [`ShmFs`] is the small-page sibling used for the intra-node mailbox
//! file, which the paper deliberately keeps in traditional 4 KB pages.

use crate::addr::{PageSize, PhysAddr};
use crate::error::{VmError, VmResult};
use crate::frame::BuddyAllocator;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared, named segment of preallocated frames of a single page size.
///
/// Cloned `Arc`s of a segment are handed to [`crate::vma::Backing::Shared`]
/// so that multiple address spaces resolve faults to the same frames. The
/// segment keeps a map count — the number of VMAs currently mapping it,
/// across all address spaces — so tenant-aware policy (migration pinning,
/// teardown accounting) can distinguish a private file from one visible
/// to several processes.
#[derive(Debug)]
pub struct SharedSegment {
    name: String,
    page_size: PageSize,
    frames: Vec<PhysAddr>,
    map_count: AtomicUsize,
}

impl SharedSegment {
    /// Name the segment was created under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Page size of every frame in the segment.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Length of the segment in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.frames.len() as u64 * self.page_size.bytes()
    }

    /// Number of pages in the segment.
    pub fn page_count(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Number of VMAs (across all address spaces) currently mapping this
    /// segment. Zero for a created-but-unmapped file.
    pub fn map_count(&self) -> usize {
        self.map_count.load(Ordering::Relaxed)
    }

    /// Record one more mapping. Called by the VMA layer on `mmap`.
    pub(crate) fn note_mapped(&self) {
        self.map_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one mapping gone. Called by the VMA layer on `munmap`.
    pub(crate) fn note_unmapped(&self) {
        let prev = self.map_count.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "unmapped a segment that was never mapped");
    }

    /// Physical frame backing page `index` of the file.
    pub fn frame(&self, index: u64) -> VmResult<PhysAddr> {
        self.frames
            .get(index as usize)
            .copied()
            .ok_or(VmError::OutOfRange {
                offset: index * self.page_size.bytes(),
                len: self.page_size.bytes(),
                object_len: self.len_bytes(),
            })
    }
}

/// Statistics for a huge-page pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HugePoolStats {
    /// Pages reserved at pool creation.
    pub reserved: u64,
    /// Pages currently handed out to files.
    pub in_use: u64,
    /// Peak simultaneous usage.
    pub peak: u64,
    /// Allocation requests that failed because the pool was empty.
    pub failed: u64,
}

/// Boot-time reserved pool of huge pages (the `hugetlbfs` analogue).
/// Classically 2 MB pages; [`reserve_sized`](Self::reserve_sized) builds
/// pools of any rung size — including gigantic sizes (1 GB, 32 MB) that
/// exceed the buddy allocator's `MAX_ORDER` and therefore *only* exist via
/// this boot-time reservation, exactly as on Linux.
#[derive(Debug)]
pub struct HugePool {
    page_size: PageSize,
    free: Vec<PhysAddr>,
    /// Per-node free buckets, populated only by
    /// [`reserve_per_node`](Self::reserve_per_node) — the analogue of a
    /// per-node `nr_hugepages` sysctl. Empty for classic reservations.
    node_free: Vec<Vec<PhysAddr>>,
    /// Home node of every frame reserved per-node, for re-bucketing on
    /// unlink. Lookup-only, so unordered iteration never matters.
    origin: HashMap<u64, usize>,
    files: HashMap<String, Arc<SharedSegment>>,
    stats: HugePoolStats,
}

impl HugePool {
    /// Reserve `pages` 2 MB pages from the buddy allocator. Fails with
    /// [`VmError::OutOfMemory`] if physical memory is too fragmented or
    /// small — exactly the condition boot-time reservation avoids.
    pub fn reserve(frames: &mut BuddyAllocator, pages: u64) -> VmResult<Self> {
        Self::reserve_sized(frames, pages, PageSize::Large2M)
    }

    /// Reserve `pages` pages of `size` from the buddy allocator. Sizes
    /// above the buddy `MAX_ORDER` (e.g. 1 GB) are carved as contiguous
    /// aligned runs, so the reservation succeeds only on a largely
    /// unfragmented machine — boot time, in practice.
    pub fn reserve_sized(
        frames: &mut BuddyAllocator,
        pages: u64,
        size: PageSize,
    ) -> VmResult<Self> {
        let order = size.buddy_order();
        let mut free = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            match frames.alloc_block(order) {
                Ok(pa) => free.push(pa),
                Err(e) => {
                    // Roll back the partial reservation.
                    for pa in free {
                        frames.free_block(pa, order);
                    }
                    return Err(e);
                }
            }
        }
        Ok(HugePool {
            page_size: size,
            free,
            node_free: Vec::new(),
            origin: HashMap::new(),
            files: HashMap::new(),
            stats: HugePoolStats {
                reserved: pages,
                ..Default::default()
            },
        })
    }

    /// Reserve `per_node[n]` 2 MB pages on each NUMA node `n`, mirroring
    /// Linux's per-node `nr_hugepages` reservation. Each page must come
    /// from its requested node's frame range — a fallback to another node
    /// is treated as exhaustion and rolls the whole reservation back.
    /// Files are then cut from the per-node buckets with
    /// [`create_file_on`](Self::create_file_on).
    pub fn reserve_per_node(frames: &mut BuddyAllocator, per_node: &[u64]) -> VmResult<Self> {
        Self::reserve_per_node_sized(frames, per_node, PageSize::Large2M)
    }

    /// [`reserve_per_node`](Self::reserve_per_node) for any rung size,
    /// including gigantic sizes above the buddy `MAX_ORDER` — those carve
    /// aligned runs *inside* each node's frame range (see
    /// [`BuddyAllocator::alloc_block_on_node`]), so a per-node gigantic
    /// reservation succeeds only while every named node still holds a
    /// fully free aligned run.
    pub fn reserve_per_node_sized(
        frames: &mut BuddyAllocator,
        per_node: &[u64],
        size: PageSize,
    ) -> VmResult<Self> {
        let order = size.buddy_order();
        let mut node_free: Vec<Vec<PhysAddr>> = per_node
            .iter()
            .map(|&n| Vec::with_capacity(n as usize))
            .collect();
        let mut origin = HashMap::new();
        let rollback = |frames: &mut BuddyAllocator, buckets: &mut Vec<Vec<PhysAddr>>| {
            for bucket in buckets.iter_mut() {
                for pa in bucket.drain(..) {
                    frames.free_block(pa, order);
                }
            }
        };
        for (node, &pages) in per_node.iter().enumerate() {
            for _ in 0..pages {
                match frames.alloc_block_on_node(node, order) {
                    Ok(pa) if frames.node_of(pa) == node => {
                        origin.insert(pa.0, node);
                        node_free[node].push(pa);
                    }
                    Ok(pa) => {
                        // Landed off-node: the node itself is full.
                        frames.free_block(pa, order);
                        rollback(frames, &mut node_free);
                        return Err(VmError::OutOfMemory { order });
                    }
                    Err(e) => {
                        rollback(frames, &mut node_free);
                        return Err(e);
                    }
                }
            }
        }
        Ok(HugePool {
            page_size: size,
            free: Vec::new(),
            node_free,
            origin,
            files: HashMap::new(),
            stats: HugePoolStats {
                reserved: per_node.iter().sum(),
                ..Default::default()
            },
        })
    }

    /// Page size of every page in the pool.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Pages still available in the pool (all nodes combined).
    pub fn available(&self) -> u64 {
        self.free.len() as u64 + self.node_free.iter().map(|b| b.len() as u64).sum::<u64>()
    }

    /// Pages still available on one node of a per-node reservation.
    pub fn available_on(&self, node: usize) -> u64 {
        self.node_free.get(node).map_or(0, |b| b.len() as u64)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> HugePoolStats {
        self.stats
    }

    /// Create a named file of `len_bytes` (rounded up to whole pool pages)
    /// backed by pool pages.
    pub fn create_file(&mut self, name: &str, len_bytes: u64) -> VmResult<Arc<SharedSegment>> {
        if self.files.contains_key(name) {
            return Err(VmError::FileExists(name.to_owned()));
        }
        let pages = self.page_size.pages_for(len_bytes);
        if pages > self.free.len() as u64 {
            self.stats.failed += 1;
            return Err(VmError::HugePoolExhausted {
                requested: pages,
                available: self.free.len() as u64,
            });
        }
        let at = self.free.len() - pages as usize;
        let frames = self.free.split_off(at);
        self.stats.in_use += pages;
        self.stats.peak = self.stats.peak.max(self.stats.in_use);
        let seg = Arc::new(SharedSegment {
            name: name.to_owned(),
            page_size: self.page_size,
            frames,
            map_count: AtomicUsize::new(0),
        });
        self.files.insert(name.to_owned(), seg.clone());
        Ok(seg)
    }

    /// Create a named file whose page `i` is drawn from node
    /// `node_for(i)`'s bucket of a per-node reservation — how a NUMA-aware
    /// runtime places a shared hugetlbfs heap (master-node, interleave, …)
    /// at segment-creation time. When the requested node's bucket is empty
    /// the page falls back to the lowest-numbered non-empty bucket, like
    /// the kernel's zonelist walk.
    pub fn create_file_on(
        &mut self,
        name: &str,
        len_bytes: u64,
        node_for: impl Fn(u64) -> usize,
    ) -> VmResult<Arc<SharedSegment>> {
        if self.node_free.is_empty() {
            // Classic reservation: there is only one bucket, so placement
            // degenerates to plain creation.
            return self.create_file(name, len_bytes);
        }
        if self.files.contains_key(name) {
            return Err(VmError::FileExists(name.to_owned()));
        }
        let pages = self.page_size.pages_for(len_bytes);
        if pages > self.available() {
            self.stats.failed += 1;
            return Err(VmError::HugePoolExhausted {
                requested: pages,
                available: self.available(),
            });
        }
        let mut frames = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let want = node_for(i).min(self.node_free.len().saturating_sub(1));
            let bucket = if self.node_free.get(want).is_some_and(|b| !b.is_empty()) {
                want
            } else {
                self.node_free
                    .iter()
                    .position(|b| !b.is_empty())
                    .expect("available() said pages remain")
            };
            frames.push(
                self.node_free[bucket]
                    .pop()
                    .expect("bucket checked non-empty"),
            );
        }
        self.stats.in_use += pages;
        self.stats.peak = self.stats.peak.max(self.stats.in_use);
        let seg = Arc::new(SharedSegment {
            name: name.to_owned(),
            page_size: self.page_size,
            frames,
            map_count: AtomicUsize::new(0),
        });
        self.files.insert(name.to_owned(), seg.clone());
        Ok(seg)
    }

    /// Look up an existing file by name (a second "process" opening it).
    pub fn open_file(&self, name: &str) -> VmResult<Arc<SharedSegment>> {
        self.files
            .get(name)
            .cloned()
            .ok_or_else(|| VmError::NoSuchFile(name.to_owned()))
    }

    /// Remove a file, returning its pages to the pool once no address space
    /// holds a reference (callers must have dropped their mappings' `Arc`s;
    /// pages of still-referenced files are retained, like an unlinked but
    /// open file).
    pub fn unlink(&mut self, name: &str) -> VmResult<()> {
        let seg = self
            .files
            .remove(name)
            .ok_or_else(|| VmError::NoSuchFile(name.to_owned()))?;
        match Arc::try_unwrap(seg) {
            Ok(seg) => {
                self.stats.in_use -= seg.frames.len() as u64;
                for pa in seg.frames {
                    match self.origin.get(&pa.0) {
                        Some(&node) => self.node_free[node].push(pa),
                        None => self.free.push(pa),
                    }
                }
                Ok(())
            }
            Err(seg) => {
                // Still mapped somewhere; keep it alive without a name.
                self.stats.in_use -= 0; // unchanged; pages still in use
                drop(seg);
                Ok(())
            }
        }
    }

    /// Release the pool's unused pages back to the buddy allocator.
    pub fn shrink_to_fit(&mut self, frames: &mut BuddyAllocator) {
        let order = self.page_size.buddy_order();
        for pa in self.free.drain(..) {
            frames.free_block(pa, order);
            self.stats.reserved -= 1;
        }
        for bucket in self.node_free.iter_mut() {
            for pa in bucket.drain(..) {
                frames.free_block(pa, order);
                self.stats.reserved -= 1;
            }
        }
    }
}

/// Small-page shared files (POSIX shm analogue) — used for the mailbox
/// region the paper keeps in 4 KB pages. Pages are the filesystem's
/// granule: 4 KB by default, or an architecture's base granule via
/// [`ShmFs::with_granule`].
#[derive(Debug)]
pub struct ShmFs {
    files: HashMap<String, Arc<SharedSegment>>,
    granule: PageSize,
}

impl Default for ShmFs {
    fn default() -> Self {
        Self::with_granule(PageSize::Small4K)
    }
}

impl ShmFs {
    /// Create an empty shm filesystem with the classic 4 KB granule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty shm filesystem whose files are built from pages of
    /// `granule` (an architecture's base page size).
    pub fn with_granule(granule: PageSize) -> Self {
        ShmFs {
            files: HashMap::new(),
            granule,
        }
    }

    /// Page size of this filesystem's files.
    pub fn granule(&self) -> PageSize {
        self.granule
    }

    /// Create a named granule-paged file of `len_bytes` (rounded up),
    /// drawing frames from the buddy allocator immediately.
    pub fn create_file(
        &mut self,
        frames: &mut BuddyAllocator,
        name: &str,
        len_bytes: u64,
    ) -> VmResult<Arc<SharedSegment>> {
        self.create_file_placed(frames, name, len_bytes, |_| None)
    }

    /// Like [`create_file`](Self::create_file), but page `i` is allocated
    /// on node `node_for(i)` when it returns `Some` — NUMA placement for
    /// shared small-page segments. `None` keeps the allocator's default
    /// (lowest address first).
    pub fn create_file_placed(
        &mut self,
        frames: &mut BuddyAllocator,
        name: &str,
        len_bytes: u64,
        node_for: impl Fn(u64) -> Option<usize>,
    ) -> VmResult<Arc<SharedSegment>> {
        if self.files.contains_key(name) {
            return Err(VmError::FileExists(name.to_owned()));
        }
        let order = self.granule.buddy_order();
        let pages = self.granule.pages_for(len_bytes);
        let mut fr = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let got = match node_for(i) {
                Some(node) => frames.alloc_on_node(node.min(frames.nodes() - 1), order),
                None => frames.alloc(order),
            };
            match got {
                Ok(pa) => fr.push(pa),
                Err(e) => {
                    for pa in fr {
                        frames.free(pa, order);
                    }
                    return Err(e);
                }
            }
        }
        let seg = Arc::new(SharedSegment {
            name: name.to_owned(),
            page_size: self.granule,
            frames: fr,
            map_count: AtomicUsize::new(0),
        });
        self.files.insert(name.to_owned(), seg.clone());
        Ok(seg)
    }

    /// Look up an existing file.
    pub fn open_file(&self, name: &str) -> VmResult<Arc<SharedSegment>> {
        self.files
            .get(name)
            .cloned()
            .ok_or_else(|| VmError::NoSuchFile(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> BuddyAllocator {
        BuddyAllocator::new(64 * 1024 * 1024)
    }

    #[test]
    fn reserve_and_create() {
        let mut f = frames();
        let mut pool = HugePool::reserve(&mut f, 8).unwrap();
        assert_eq!(pool.available(), 8);
        let seg = pool.create_file("heap", 5 * 1024 * 1024).unwrap(); // 3 pages
        assert_eq!(seg.page_count(), 3);
        assert_eq!(pool.available(), 5);
        assert_eq!(pool.stats().in_use, 3);
        // frames are 2MB aligned
        for i in 0..3 {
            assert_eq!(seg.frame(i).unwrap().0 % PageSize::Large2M.bytes(), 0);
        }
    }

    #[test]
    fn sized_pool_serves_gigabyte_pages() {
        // 2 GB extent, pool of one 1 GB page — carved past the buddy
        // MAX_ORDER via the contiguous-run path.
        let mut f = BuddyAllocator::new(2u64 << 30);
        let before = f.free_bytes();
        let mut pool = HugePool::reserve_sized(&mut f, 1, PageSize::Page1G).unwrap();
        assert_eq!(pool.page_size(), PageSize::Page1G);
        assert_eq!(pool.available(), 1);
        let seg = pool.create_file("heap", 123).unwrap();
        assert_eq!(seg.page_size(), PageSize::Page1G);
        assert_eq!(seg.page_count(), 1);
        assert_eq!(seg.frame(0).unwrap().0 % PageSize::Page1G.bytes(), 0);
        drop(seg);
        pool.unlink("heap").unwrap();
        pool.shrink_to_fit(&mut f);
        assert_eq!(f.free_bytes(), before);
    }

    #[test]
    fn reservation_failure_rolls_back() {
        let mut f = BuddyAllocator::new(8 * 1024 * 1024); // 4 large pages
        let before = f.free_bytes();
        assert!(HugePool::reserve(&mut f, 100).is_err());
        assert_eq!(f.free_bytes(), before);
    }

    #[test]
    fn pool_exhaustion_reported() {
        let mut f = frames();
        let mut pool = HugePool::reserve(&mut f, 2).unwrap();
        let e = pool.create_file("big", 10 * 1024 * 1024);
        assert_eq!(
            e.err(),
            Some(VmError::HugePoolExhausted {
                requested: 5,
                available: 2
            })
        );
        assert_eq!(pool.stats().failed, 1);
    }

    #[test]
    fn open_returns_same_segment() {
        let mut f = frames();
        let mut pool = HugePool::reserve(&mut f, 4).unwrap();
        let a = pool.create_file("heap", 1).unwrap();
        let b = pool.open_file("heap").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(pool.open_file("nope").is_err());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut f = frames();
        let mut pool = HugePool::reserve(&mut f, 4).unwrap();
        pool.create_file("heap", 1).unwrap();
        assert_eq!(
            pool.create_file("heap", 1).err(),
            Some(VmError::FileExists("heap".into()))
        );
    }

    #[test]
    fn unlink_returns_pages_when_unreferenced() {
        let mut f = frames();
        let mut pool = HugePool::reserve(&mut f, 4).unwrap();
        let seg = pool
            .create_file("heap", 2 * PageSize::Large2M.bytes())
            .unwrap();
        drop(seg);
        pool.unlink("heap").unwrap();
        assert_eq!(pool.available(), 4);
        assert_eq!(pool.stats().in_use, 0);
    }

    #[test]
    fn shrink_returns_memory_to_buddy() {
        let mut f = frames();
        let before = f.free_bytes();
        let mut pool = HugePool::reserve(&mut f, 8).unwrap();
        assert_eq!(f.free_bytes(), before - 8 * PageSize::Large2M.bytes());
        pool.shrink_to_fit(&mut f);
        assert_eq!(f.free_bytes(), before);
    }

    #[test]
    fn per_node_reservation_places_pages() {
        let mut f = BuddyAllocator::with_nodes(64 * 1024 * 1024, 2);
        let mut pool = HugePool::reserve_per_node(&mut f, &[4, 4]).unwrap();
        assert_eq!(pool.available(), 8);
        assert_eq!(pool.available_on(0), 4);
        assert_eq!(pool.available_on(1), 4);
        // Interleaved file: even pages on node 0, odd on node 1.
        let seg = pool
            .create_file_on("heap", 4 * PageSize::Large2M.bytes(), |i| (i % 2) as usize)
            .unwrap();
        for i in 0..4 {
            let pa = seg.frame(i).unwrap();
            assert_eq!(f.node_of(pa), (i % 2) as usize, "page {i} misplaced");
        }
        assert_eq!(pool.available_on(0), 2);
        assert_eq!(pool.available_on(1), 2);
        // Master-node file: everything on node 0, overflowing to node 1
        // once node 0's bucket runs dry.
        let seg2 = pool
            .create_file_on("master", 3 * PageSize::Large2M.bytes(), |_| 0)
            .unwrap();
        assert_eq!(f.node_of(seg2.frame(0).unwrap()), 0);
        assert_eq!(f.node_of(seg2.frame(1).unwrap()), 0);
        assert_eq!(f.node_of(seg2.frame(2).unwrap()), 1, "fallback bucket");
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn per_node_unlink_rebuckets_and_shrink_returns_all() {
        let mut f = BuddyAllocator::with_nodes(64 * 1024 * 1024, 2);
        let before = f.free_bytes();
        let mut pool = HugePool::reserve_per_node(&mut f, &[2, 2]).unwrap();
        let seg = pool
            .create_file_on("heap", 2 * PageSize::Large2M.bytes(), |i| (i % 2) as usize)
            .unwrap();
        assert_eq!(pool.available_on(0), 1);
        drop(seg);
        pool.unlink("heap").unwrap();
        assert_eq!(pool.available_on(0), 2);
        assert_eq!(pool.available_on(1), 2);
        pool.shrink_to_fit(&mut f);
        assert_eq!(f.free_bytes(), before);
    }

    #[test]
    fn per_node_gigantic_reservation_places_and_round_trips() {
        // 4 GB over 2 nodes: one 1 GB page reserved on each node.
        let mut f = BuddyAllocator::with_nodes(4u64 << 30, 2);
        let before = f.free_bytes();
        let mut pool = HugePool::reserve_per_node_sized(&mut f, &[1, 1], PageSize::Page1G).unwrap();
        assert_eq!(pool.page_size(), PageSize::Page1G);
        assert_eq!(pool.available_on(0), 1);
        assert_eq!(pool.available_on(1), 1);
        let seg = pool
            .create_file_on("heap", 2 * PageSize::Page1G.bytes(), |i| (i % 2) as usize)
            .unwrap();
        for i in 0..2 {
            let pa = seg.frame(i).unwrap();
            assert_eq!(f.node_of(pa), (i % 2) as usize, "page {i} misplaced");
            assert_eq!(pa.0 % PageSize::Page1G.bytes(), 0);
        }
        drop(seg);
        pool.unlink("heap").unwrap();
        assert_eq!(pool.available_on(0), 1, "unlink re-buckets by origin");
        pool.shrink_to_fit(&mut f);
        assert_eq!(f.free_bytes(), before);
    }

    #[test]
    fn per_node_gigantic_reservation_rolls_back_when_a_node_is_full() {
        // Each node holds exactly two 1 GB runs; asking for three on node 0
        // must fail (the fallback run would land on node 1) and leak
        // nothing.
        let mut f = BuddyAllocator::with_nodes(4u64 << 30, 2);
        let before = f.free_bytes();
        assert!(HugePool::reserve_per_node_sized(&mut f, &[3, 0], PageSize::Page1G).is_err());
        assert_eq!(f.free_bytes(), before);
    }

    #[test]
    fn per_node_reservation_rolls_back_when_a_node_is_full() {
        // 8 MB split over 2 nodes = 2 large pages per node; asking for 3 on
        // node 1 must fail without leaking the partial reservation.
        let mut f = BuddyAllocator::with_nodes(8 * 1024 * 1024, 2);
        let before = f.free_bytes();
        assert!(HugePool::reserve_per_node(&mut f, &[1, 3]).is_err());
        assert_eq!(f.free_bytes(), before);
    }

    #[test]
    fn shm_placed_file_lands_on_requested_nodes() {
        let mut f = BuddyAllocator::with_nodes(16 * 1024 * 1024, 2);
        let mut shm = ShmFs::new();
        let seg = shm
            .create_file_placed(&mut f, "heap", 8 * 4096, |i| Some((i % 2) as usize))
            .unwrap();
        for i in 0..8 {
            assert_eq!(f.node_of(seg.frame(i).unwrap()), (i % 2) as usize);
        }
    }

    #[test]
    fn shm_small_pages() {
        let mut f = frames();
        let mut shm = ShmFs::new();
        let seg = shm.create_file(&mut f, "mailbox", 10_000).unwrap();
        assert_eq!(seg.page_size(), PageSize::Small4K);
        assert_eq!(seg.page_count(), 3);
        assert!(shm.open_file("mailbox").is_ok());
        assert!(shm.create_file(&mut f, "mailbox", 1).is_err());
    }
}
