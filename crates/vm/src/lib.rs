//! # `lpomp-vm` — simulated virtual-memory substrate
//!
//! A from-scratch software model of the virtual-memory machinery the paper
//! (Noronha & Panda, *Improving Scalability of OpenMP Applications on
//! Multi-core Systems Using Large Page Support*, IPDPS 2007) relies on:
//!
//! * [`addr`] — virtual/physical addresses and open-ended [`PageSize`]
//!   arithmetic (4 KB base pages through 1 GB gigantic pages);
//! * [`arch`] — translation architectures: the [`MMArch`] trait, radix
//!   walk shapes, and each architecture's page-size ladder;
//! * [`frame`] — a binary buddy allocator for physical frames, the reason
//!   large pages must be *reserved early* before memory fragments;
//! * [`page_table`] — x86-64-style 4-level radix tables where a 2 MB
//!   mapping ends the walk one level early (the paper's Figure 2);
//! * [`vma`] — address spaces, regions, demand faulting vs. eager
//!   population (the §3.3 preallocation design point);
//! * [`hugetlbfs`] — the reserved large-page pool and the shared map files
//!   through which all processes of a node share one heap image.
//!
//! Higher layers (`lpomp-tlb`, `lpomp-machine`) consume the
//! [`page_table::WalkTrace`] to charge page walks to the cache hierarchy,
//! and `lpomp-core` implements the paper's large-page allocation policy on
//! top of [`hugetlbfs::HugePool`].

#![warn(missing_docs)]

pub mod addr;
pub mod arch;
pub mod compact;
pub mod error;
pub mod fragment;
pub mod frame;
pub mod hugetlbfs;
pub mod khugepaged;
pub mod migrate;
pub mod page_table;
pub mod process;
pub mod promote;
pub mod vma;

pub use addr::{PageSize, PhysAddr, VirtAddr};
pub use arch::{Arch, MMArch, Rung, WalkShape, MAX_LADDER};
pub use compact::{compact, CompactReport};
pub use error::{VmError, VmResult};
pub use fragment::{age_heap, AgeReport};
pub use frame::BuddyAllocator;
pub use hugetlbfs::{HugePool, SharedSegment, ShmFs};
pub use khugepaged::{DaemonCosts, Khugepaged, KhugepagedConfig, ScanOutcome};
pub use migrate::{
    migrate_page_to_node, HintSamples, MigrateOutcome, NumaDaemon, NumaDaemonConfig,
    NumaScanOutcome, MAX_CORES, MAX_NUMA_NODES,
};
pub use page_table::{AccessKind, PageTable, PteFlags, Translation, WalkTrace};
pub use process::Process;
pub use promote::{promote_region, PromotionReport};
pub use vma::{AccessOutcome, AddressSpace, Backing, NodePolicy, Populate, Vma};
