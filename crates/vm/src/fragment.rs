//! Deterministic heap aging: manufacture external fragmentation.
//!
//! The paper's preallocation argument rests on what a long-running system
//! does to the buddy heap: scattered long-lived 4 KB allocations leave
//! plenty of free memory but almost no free *order-9 blocks*. This module
//! reproduces that state on demand so the fragmentation experiments
//! (`ext_frag`) and the compaction/daemon tests run against a realistic
//! adversary instead of a freshly booted allocator.
//!
//! [`age_heap`] leaves each "aged" 2 MB block holding exactly one live,
//! *movable* 4 KB page (mapped into a dedicated anonymous region, the way
//! a long-lived process's stray heap page would be) with the other 511
//! frames free. The result: a high [`BuddyAllocator::fragmentation_index`]
//! at order 9, one-shot promotion failing with `skipped_no_memory`, and
//! exactly the workload compaction is built to unwind.

use crate::addr::{PageSize, PhysAddr, VirtAddr};
use crate::error::VmResult;
use crate::frame::BuddyAllocator;
use crate::page_table::{AccessKind, PteFlags};
use crate::vma::{AddressSpace, Backing, Populate};

/// What [`age_heap`] did to the allocator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AgeReport {
    /// 2 MB blocks fragmented: one movable page live, 511 frames free.
    pub fragmented: u64,
    /// 2 MB blocks left entirely free (the unaged remainder).
    pub spared: u64,
    /// Frames pinned for the rest of the run (sub-order-9 remnants and
    /// page-table scaffolding) — the immovable residue of a real uptime.
    pub pinned_frames: u64,
}

/// Age the free memory of `frames`: fragment `fraction` (0.0–1.0) of the
/// currently free order-9 blocks, leaving each with a single movable 4 KB
/// page mapped into a fresh anonymous region of `aspace`.
///
/// Deterministic by construction: blocks are aged in ascending physical
/// order and the mapped page of each aged block is its offset-0 frame.
/// All remaining free memory that is not spared as whole order-9 blocks is
/// pinned (allocated and never freed), so after aging the only free frames
/// are the 511-frame holes inside aged blocks plus the spared blocks.
pub fn age_heap(
    frames: &mut BuddyAllocator,
    aspace: &mut AddressSpace,
    fraction: f64,
) -> VmResult<AgeReport> {
    let o9 = PageSize::Large2M.buddy_order();
    let small = PageSize::Small4K;
    let mut report = AgeReport::default();

    // Capture every free order-9 block, in ascending address order.
    let mut held = Vec::new();
    while let Ok(b) = frames.alloc(o9) {
        held.push(b);
    }
    let total = held.len();
    let target = ((fraction.clamp(0.0, 1.0) * total as f64).round() as usize).min(total);

    // The fragmenter region: one demand-faulted page per aged block.
    let base = if target > 0 {
        Some(aspace.mmap(
            frames,
            target as u64 * small.bytes(),
            small,
            PteFlags::rw(),
            Backing::Anonymous,
            Populate::OnDemand,
            "fragmenter",
        )?)
    } else {
        None
    };
    // Pre-build the region's page-table paths while free frames are still
    // plentiful: fault the head page of each 2 MB-aligned leaf span. The
    // remaining faults below then allocate *only* a data frame, which lets
    // us steer each page onto an exact physical frame.
    let mut anchors = 0usize;
    if let Some(base) = base {
        let mut va = base;
        let end = base.add(target as u64 * small.bytes());
        while va < end {
            aspace.access(frames, va, AccessKind::Write)?;
            anchors += 1;
            va = VirtAddr(PageSize::Large2M.round_up(va.0 + 1));
        }
    }
    // Pin every other free frame: a long uptime's immovable residue.
    let mut pinned = 0u64;
    while frames.alloc(0).is_ok() {
        pinned += 1;
        assert!(pinned < 1 << 24, "drain loop ran away");
    }

    // Age blocks: with zero frames free elsewhere, freeing an aged block's
    // offset-0 frame and faulting the next fragmenter page lands that page
    // exactly there.
    let mut aged = Vec::new();
    let mut next_block = held.iter();
    if let Some(base) = base {
        for i in 0..target {
            if i.is_multiple_of(512) {
                continue; // anchor page — already mapped elsewhere
            }
            let Some(&b) = next_block.next() else { break };
            frames.split_allocated(b, o9);
            frames.free(b, 0);
            let va = base.add(i as u64 * small.bytes());
            aspace.access(frames, va, AccessKind::Write)?;
            debug_assert_eq!(
                aspace
                    .page_table()
                    .probe(va)
                    .map(|t| t.pa.frame_base(small)),
                Some(b),
                "fragmenter page landed on the wrong frame"
            );
            aged.push(b);
        }
    }
    // Spare the requested remainder as whole free order-9 blocks; anything
    // still held beyond that stays pinned.
    let spared = total - target;
    for _ in 0..spared {
        if let Some(&b) = next_block.next() {
            frames.free(b, o9);
            report.spared += 1;
        }
    }
    for &b in next_block {
        pinned += 512;
        let _ = b; // held, never freed
    }
    // Release the 511 remaining frames of every aged block.
    for &b in &aged {
        for k in 1..512u64 {
            frames.free(PhysAddr(b.0 + k * small.bytes()), 0);
        }
    }
    report.fragmented = aged.len() as u64;
    report.pinned_frames = pinned + anchors as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BuddyAllocator, AddressSpace) {
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let asp = AddressSpace::new(&mut frames).unwrap();
        (frames, asp)
    }

    #[test]
    fn full_aging_blocks_order9_allocation() {
        let (mut frames, mut asp) = setup();
        let r = age_heap(&mut frames, &mut asp, 1.0).unwrap();
        assert!(r.fragmented > 10, "{r:?}");
        assert_eq!(r.spared, 0);
        let o9 = PageSize::Large2M.buddy_order();
        assert!(frames.alloc(o9).is_err(), "order-9 must be exhausted");
        assert!(
            frames.fragmentation_index(o9) > 0.99,
            "index {}",
            frames.fragmentation_index(o9)
        );
        // ... while ~511/512 of each aged block's memory is still free.
        assert!(frames.free_bytes() > r.fragmented * 500 * 4096);
    }

    #[test]
    fn partial_aging_spares_whole_blocks() {
        let (mut frames, mut asp) = setup();
        let r = age_heap(&mut frames, &mut asp, 0.5).unwrap();
        assert!(r.spared > 0);
        assert!(r.fragmented > 0);
        let o9 = PageSize::Large2M.buddy_order();
        // Spared blocks satisfy order-9 allocations — exactly r.spared of them.
        let mut got = 0;
        while frames.alloc(o9).is_ok() {
            got += 1;
        }
        assert_eq!(got, r.spared);
    }

    #[test]
    fn zero_fraction_changes_nothing_orderwise() {
        let (mut frames, mut asp) = setup();
        let free_before = frames.free_bytes();
        let r = age_heap(&mut frames, &mut asp, 0.0).unwrap();
        assert_eq!(r.fragmented, 0);
        // Everything free before is spared or pinned, none fragmented.
        let o9 = PageSize::Large2M.buddy_order();
        assert!(frames.alloc(o9).is_ok());
        assert!(free_before >= frames.free_bytes());
    }

    #[test]
    fn aged_pages_are_live_and_writable() {
        let (mut frames, mut asp) = setup();
        age_heap(&mut frames, &mut asp, 1.0).unwrap();
        let vma = asp
            .vmas()
            .iter()
            .find(|v| v.name == "fragmenter")
            .expect("fragmenter region exists")
            .clone();
        let mut off = 0;
        while off < vma.len {
            asp.access(&mut frames, vma.start.add(off), AccessKind::Write)
                .unwrap();
            off += 4096;
        }
    }
}
