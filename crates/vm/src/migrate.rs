//! Cross-node page migration and the NUMA balancing daemon.
//!
//! The paper's Opteron testbed is a two-socket NUMA machine, and its
//! central trade-off — large pages clamp placement granularity — only
//! becomes mechanical once pages physically live on nodes and can be
//! *moved*. This module supplies both halves:
//!
//! * [`migrate_page_to_node`] relocates one mapped anonymous page onto a
//!   chosen node: allocate on the target node, remap the VA to the new
//!   frame with the same protection, free the old frame. It is the same
//!   unmap/map/free machinery [`mod@crate::compact`] uses to defragment,
//!   pointed across node boundaries instead of across the zone. Shared
//!   (hugetlbfs/shm) pages are pinned — their frames belong to the
//!   segment, as in Linux.
//! * [`NumaDaemon`] is an AutoNUMA-style balancer. The machine layer
//!   records a [`HintSamples`] entry whenever a data-TLB miss touches a
//!   page (the simulator's analogue of NUMA hinting faults); the daemon
//!   absorbs those samples at barrier points, finds pages with a
//!   *persistently dominant* remote accessor, and migrates them to that
//!   accessor's node.
//!
//! The documented failure mode is the paper's granularity argument: a
//! 2 MB page touched from both nodes never develops a dominant accessor,
//! so it can only **stay** where it is (counted in
//! [`NumaScanOutcome::stuck_shared`]) — or, if one node briefly
//! dominates, **bounce**. A 4 KB heap gives the balancer 512× finer
//! placement freedom; that flexibility is exactly what preallocated large
//! pages trade away.

use std::collections::BTreeMap;

use crate::addr::{PageSize, PhysAddr, VirtAddr};
use crate::error::{VmError, VmResult};
use crate::frame::BuddyAllocator;
use crate::khugepaged::DaemonCosts;
use crate::vma::{AddressSpace, Backing};

/// Upper bound on modelled NUMA nodes (fixed-size tally arrays keep the
/// hot sampling path allocation-free).
pub const MAX_NUMA_NODES: usize = 8;

/// Result of one [`migrate_page_to_node`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrateOutcome {
    /// The page moved; the caller owes a TLB shootdown.
    Moved {
        /// Old frame base.
        from: PhysAddr,
        /// New frame base, on the requested node.
        to: PhysAddr,
        /// Page-table entries edited (one unmap + one map).
        pt_edits: u64,
        /// Size of the page that moved.
        size: PageSize,
    },
    /// The page already lives on the requested node.
    AlreadyHome,
    /// The page is backed by a shared segment whose frames cannot move.
    Pinned,
    /// The target node has no free block of the required order.
    NoMemory,
}

/// Move the mapped page containing `va` onto `node`. See
/// [`MigrateOutcome`] for the ways this can (benignly) not happen.
pub fn migrate_page_to_node(
    aspace: &mut AddressSpace,
    frames: &mut BuddyAllocator,
    va: VirtAddr,
    node: usize,
) -> VmResult<MigrateOutcome> {
    let t = aspace
        .page_table()
        .probe(va)
        .ok_or(VmError::NotMapped(va))?;
    let movable = aspace
        .find_vma(va)
        .is_some_and(|v| matches!(v.backing, Backing::Anonymous));
    if !movable {
        return Ok(MigrateOutcome::Pinned);
    }
    let old = t.pa.frame_base(t.size);
    if frames.node_of(old) == node {
        return Ok(MigrateOutcome::AlreadyHome);
    }
    let order = t.size.buddy_order();
    let dest = match frames.alloc_on_node(node, order) {
        Ok(d) => d,
        Err(_) => return Ok(MigrateOutcome::NoMemory),
    };
    if frames.node_of(dest) != node {
        // The allocator fell back off-node: moving there would be pointless.
        frames.free(dest, order);
        return Ok(MigrateOutcome::NoMemory);
    }
    let page_va = va.page_base(t.size);
    let tr = aspace.unmap_page(page_va, t.size)?;
    aspace.map_page(frames, page_va, dest, t.size, tr.flags)?;
    frames.free(old, order);
    Ok(MigrateOutcome::Moved {
        from: old,
        to: dest,
        pt_edits: 2,
        size: t.size,
    })
}

/// Ceiling on per-core sample lanes (hardware contexts, not sockets).
pub const MAX_CORES: usize = 16;

/// Per-page access tallies recorded by the machine at data-TLB-miss time —
/// the simulator's NUMA hinting faults. Keyed by page-base virtual
/// address; ordered so daemon iteration is deterministic. Tallies are
/// kept at two granularities: per node (what the balancing daemon
/// weighs) and per core (what the hierarchical scheduler's chunk
/// negotiation needs — a completing thread must attribute exactly its
/// *own* traffic, or its node-mates' concurrent chunks pollute the
/// footprint and chunks re-home to the wrong node).
#[derive(Clone, Debug, Default)]
pub struct HintSamples {
    map: BTreeMap<u64, [u64; MAX_NUMA_NODES]>,
    by_core: BTreeMap<u64, [u64; MAX_CORES]>,
}

impl HintSamples {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one access to the page based at `page_base` from `node`
    /// (no per-core attribution — daemon-only tallies).
    #[inline]
    pub fn record(&mut self, page_base: u64, node: usize) {
        self.map.entry(page_base).or_default()[node.min(MAX_NUMA_NODES - 1)] += 1;
    }

    /// Record one access from `core` on `node`, feeding both tallies.
    #[inline]
    pub fn record_from(&mut self, page_base: u64, node: usize, core: usize) {
        self.record(page_base, node);
        self.by_core.entry(page_base).or_default()[core.min(MAX_CORES - 1)] += 1;
    }

    /// Number of pages with at least one sample.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(page_base, per-node tally)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u64; MAX_NUMA_NODES])> {
        self.map.iter().map(|(&p, t)| (p, t))
    }

    /// Iterate `(page_base, per-core tally)` pairs in address order.
    /// Only populated by [`HintSamples::record_from`].
    pub fn iter_cores(&self) -> impl Iterator<Item = (u64, &[u64; MAX_CORES])> {
        self.by_core.iter().map(|(&p, t)| (p, t))
    }

    /// Fold another sample set into this one, element-wise.
    pub fn merge(&mut self, other: HintSamples) {
        for (page, tally) in other.map {
            let slot = self.map.entry(page).or_default();
            for (s, t) in slot.iter_mut().zip(tally) {
                *s += t;
            }
        }
        for (page, tally) in other.by_core {
            let slot = self.by_core.entry(page).or_default();
            for (s, t) in slot.iter_mut().zip(tally) {
                *s += t;
            }
        }
    }
}

/// Tunables for the NUMA balancing daemon.
#[derive(Clone, Copy, Debug)]
pub struct NumaDaemonConfig {
    /// Samples a page needs before the daemon will judge it.
    pub min_samples: u64,
    /// A remote node must own at least `dominance_num/dominance_den` of a
    /// page's samples to trigger migration (the persistence filter that
    /// keeps genuinely shared pages from bouncing).
    pub dominance_num: u64,
    /// Denominator of the dominance ratio.
    pub dominance_den: u64,
    /// Cycle budget per scan; migrations stop (and their samples are kept
    /// for the next scan) once the work charged reaches this.
    pub cycle_budget: u64,
    /// Weight of one scheduler work hint (see
    /// [`NumaDaemon::set_work_hints`]) in synthetic samples: when judging
    /// a hinted page, this many extra samples are credited to the node
    /// that owns the page's work. The bias is decision-only — it never
    /// enters the persisted tally history.
    pub work_hint_weight: u64,
}

impl Default for NumaDaemonConfig {
    fn default() -> Self {
        NumaDaemonConfig {
            min_samples: 4,
            dominance_num: 3,
            dominance_den: 4,
            cycle_budget: 2_000_000,
            work_hint_weight: 2,
        }
    }
}

/// What one [`NumaDaemon::scan`] invocation did, and what it cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NumaScanOutcome {
    /// Pages migrated to their dominant accessor's node.
    pub migrated: u64,
    /// Pages with a remote-majority home but no dominant accessor — the
    /// stuck-shared case; overwhelmingly 2 MB pages touched from both
    /// nodes.
    pub stuck_shared: u64,
    /// Migrations abandoned because the target node was out of memory.
    pub failed_alloc: u64,
    /// Page-table entries edited.
    pub pt_edits: u64,
    /// Simulated cycles of daemon work (the caller charges these to the
    /// cores' clocks).
    pub cycles: u64,
    /// Whether any translation changed — the caller must broadcast a TLB
    /// shootdown.
    pub shootdown: bool,
}

impl NumaScanOutcome {
    /// Accumulate another outcome into this one.
    pub fn merge(&mut self, o: &NumaScanOutcome) {
        self.migrated += o.migrated;
        self.stuck_shared += o.stuck_shared;
        self.failed_alloc += o.failed_alloc;
        self.pt_edits += o.pt_edits;
        self.cycles += o.cycles;
        self.shootdown |= o.shootdown;
    }
}

/// The NUMA balancing daemon. Owns only its sample history; the address
/// space and allocator are passed into each [`scan`](Self::scan), the
/// same ownership shape as [`crate::khugepaged::Khugepaged`].
#[derive(Debug)]
pub struct NumaDaemon {
    /// Tunables; may be adjusted between scans.
    pub cfg: NumaDaemonConfig,
    samples: BTreeMap<u64, [u64; MAX_NUMA_NODES]>,
    work_hints: BTreeMap<u64, usize>,
    invocations: u64,
    totals: NumaScanOutcome,
}

impl NumaDaemon {
    /// A fresh daemon with the given tunables.
    pub fn new(cfg: NumaDaemonConfig) -> Self {
        NumaDaemon {
            cfg,
            samples: BTreeMap::new(),
            work_hints: BTreeMap::new(),
            invocations: 0,
            totals: NumaScanOutcome::default(),
        }
    }

    /// Install the scheduler's pages-follow-work hints: `page_base →
    /// node that owns the work touching that page`. Replaces the previous
    /// hint set; hints bias judgment (by
    /// [`NumaDaemonConfig::work_hint_weight`] synthetic samples) without
    /// polluting the sample history. An empty map disables the bias.
    pub fn set_work_hints(&mut self, hints: BTreeMap<u64, usize>) {
        self.work_hints = hints;
    }

    /// Fold a batch of hinting-fault samples into the daemon's history.
    pub fn absorb(&mut self, batch: HintSamples) {
        for (page, tally) in batch.map {
            let slot = self.samples.entry(page).or_default();
            for (s, t) in slot.iter_mut().zip(tally) {
                *s += t;
            }
        }
    }

    /// Number of scan invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Lifetime totals across all scans.
    pub fn totals(&self) -> NumaScanOutcome {
        self.totals
    }

    /// Run one budgeted balancing step over the absorbed samples. Each
    /// sufficiently sampled page whose dominant accessor is a remote node
    /// is migrated there; pages without a dominant accessor stay (and are
    /// counted stuck when their home is in the minority). Pages still
    /// below `min_samples` keep their tallies untouched — hinting faults
    /// arrive slowly (at most a handful per page per barrier interval),
    /// and accumulating across scans *is* the persistence filter. Pages
    /// judged and found genuinely shared have their tallies halved, so a
    /// brief one-node burst on a shared page decays instead of triggering
    /// a bounce.
    pub fn scan(
        &mut self,
        aspace: &mut AddressSpace,
        frames: &mut BuddyAllocator,
        costs: &DaemonCosts,
    ) -> VmResult<NumaScanOutcome> {
        self.invocations += 1;
        let mut out = NumaScanOutcome::default();
        let work = std::mem::take(&mut self.samples);
        let mut keep: Vec<(u64, [u64; MAX_NUMA_NODES])> = Vec::new();
        let decay_and_keep = |keep: &mut Vec<_>, page: u64, tally: [u64; MAX_NUMA_NODES]| {
            let halved = tally.map(|t| t / 2);
            if halved.iter().any(|&t| t > 0) {
                keep.push((page, halved));
            }
        };
        for (page, tally) in work {
            if out.cycles >= self.cfg.cycle_budget {
                // Budget spent: keep the rest untouched for the next scan.
                keep.push((page, tally));
                continue;
            }
            out.cycles += costs.scan_page;
            let total: u64 = tally.iter().sum();
            if total < self.cfg.min_samples {
                keep.push((page, tally));
                continue;
            }
            let va = VirtAddr(page);
            // The page may have been unmapped, collapsed or demoted since
            // sampling; judge the translation as it is now.
            let Some(t) = aspace.page_table().probe(va) else {
                continue;
            };
            let home = frames.node_of(t.pa.frame_base(t.size));
            // Judge on a copy biased by the scheduler's work hint (if
            // any); `tally` itself stays unbiased for decay/keep.
            let mut judged = tally;
            let mut jtotal = total;
            if let Some(&pref) = self.work_hints.get(&page) {
                let w = self.cfg.work_hint_weight;
                judged[pref.min(MAX_NUMA_NODES - 1)] += w;
                jtotal += w;
            }
            let dominant = (0..frames.nodes().min(MAX_NUMA_NODES))
                .max_by_key(|&n| (judged[n], std::cmp::Reverse(n)))
                .unwrap_or(0);
            if dominant == home {
                // Well placed; history has served its purpose.
                continue;
            }
            if judged[dominant] * self.cfg.dominance_den < jtotal * self.cfg.dominance_num {
                // Remote but not persistently dominated: genuinely shared.
                // A 2 MB page here is the paper's trade-off made visible —
                // it can only bounce or stay, and we make it stay.
                if tally[home] * 2 < total {
                    out.stuck_shared += 1;
                }
                decay_and_keep(&mut keep, page, tally);
                continue;
            }
            match migrate_page_to_node(aspace, frames, va, dominant)? {
                MigrateOutcome::Moved { pt_edits, size, .. } => {
                    let small_pages = size.bytes() / PageSize::Small4K.bytes();
                    out.migrated += 1;
                    out.pt_edits += pt_edits;
                    out.cycles += small_pages * costs.migrate_page + pt_edits * costs.pt_edit;
                    out.shootdown = true;
                }
                MigrateOutcome::NoMemory => {
                    out.failed_alloc += 1;
                    decay_and_keep(&mut keep, page, tally);
                }
                MigrateOutcome::AlreadyHome | MigrateOutcome::Pinned => {}
            }
        }
        self.samples.extend(keep);
        self.totals.merge(&out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_table::{AccessKind, PteFlags};
    use crate::vma::Populate;

    const COSTS: DaemonCosts = DaemonCosts {
        scan_page: 5,
        migrate_page: 3328,
        pt_edit: 80,
    };

    fn setup(size: PageSize, pages: u64) -> (BuddyAllocator, AddressSpace, VirtAddr) {
        let mut frames = BuddyAllocator::with_nodes(256 * 1024 * 1024, 2);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        let base = asp
            .mmap(
                &mut frames,
                pages * size.bytes(),
                size,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "heap",
            )
            .unwrap();
        (frames, asp, base)
    }

    #[test]
    fn migrate_moves_frame_and_preserves_mapping() {
        let (mut frames, mut asp, base) = setup(PageSize::Small4K, 4);
        let before = asp.page_table().probe(base).unwrap();
        assert_eq!(frames.node_of(before.pa), 0, "eager pages start on node 0");
        let out = migrate_page_to_node(&mut asp, &mut frames, base, 1).unwrap();
        let MigrateOutcome::Moved {
            from, to, pt_edits, ..
        } = out
        else {
            panic!("expected a move, got {out:?}");
        };
        assert_eq!(from, before.pa);
        assert_eq!(frames.node_of(to), 1);
        assert_eq!(pt_edits, 2);
        let after = asp.page_table().probe(base).unwrap();
        assert_eq!(after.pa, to);
        assert_eq!(after.flags, before.flags);
        // Old frame is free again; a re-migration home reuses node 0.
        assert_eq!(
            migrate_page_to_node(&mut asp, &mut frames, base, 1).unwrap(),
            MigrateOutcome::AlreadyHome
        );
    }

    #[test]
    fn migrate_handles_large_pages_and_pinned_segments() {
        let (mut frames, mut asp, base) = setup(PageSize::Large2M, 2);
        let out = migrate_page_to_node(&mut asp, &mut frames, base.add(0x1234), 1).unwrap();
        assert!(matches!(
            out,
            MigrateOutcome::Moved {
                size: PageSize::Large2M,
                ..
            }
        ));
        let t = asp.page_table().probe(base).unwrap();
        assert_eq!(frames.node_of(t.pa), 1);
        assert_eq!(t.size, PageSize::Large2M);

        // A shared shm segment is pinned.
        let mut shm = crate::hugetlbfs::ShmFs::new();
        let seg = shm.create_file(&mut frames, "mb", 4096).unwrap();
        let shared = asp
            .mmap(
                &mut frames,
                4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Shared(seg),
                Populate::Eager,
                "mailbox",
            )
            .unwrap();
        assert_eq!(
            migrate_page_to_node(&mut asp, &mut frames, shared, 1).unwrap(),
            MigrateOutcome::Pinned
        );
    }

    #[test]
    fn daemon_migrates_persistently_remote_pages_only() {
        let (mut frames, mut asp, base) = setup(PageSize::Small4K, 3);
        let mut d = NumaDaemon::new(NumaDaemonConfig::default());
        let mut batch = HintSamples::new();
        // Page 0: all accesses from node 1 — must migrate.
        for _ in 0..8 {
            batch.record(base.0, 1);
        }
        // Page 1: remote majority (5 of 8) but below the 3/4 dominance bar
        // — must stay, counted stuck.
        for _ in 0..3 {
            batch.record(base.0 + 4096, 0);
        }
        for _ in 0..5 {
            batch.record(base.0 + 4096, 1);
        }
        // Page 2: too few samples — undecided.
        batch.record(base.0 + 2 * 4096, 1);
        d.absorb(batch);
        let out = d.scan(&mut asp, &mut frames, &COSTS).unwrap();
        assert_eq!(out.migrated, 1);
        assert_eq!(out.stuck_shared, 1);
        assert!(out.shootdown);
        assert!(out.cycles >= COSTS.migrate_page);
        let t0 = asp.page_table().probe(base).unwrap();
        assert_eq!(frames.node_of(t0.pa), 1, "dominated page must move");
        let t1 = asp.page_table().probe(base.add(4096)).unwrap();
        assert_eq!(frames.node_of(t1.pa), 0, "shared page must stay");
        // Access after migration still works and reads the same mapping.
        assert!(asp.access(&mut frames, base, AccessKind::Read).is_ok());
    }

    #[test]
    fn daemon_accumulates_persistence_across_scans() {
        let (mut frames, mut asp, base) = setup(PageSize::Small4K, 1);
        let mut d = NumaDaemon::new(NumaDaemonConfig::default());
        // Three samples per round: below min_samples, so round 1 decides
        // nothing; the kept history plus round 2's samples crosses the bar.
        for round in 0..2 {
            let mut batch = HintSamples::new();
            for _ in 0..3 {
                batch.record(base.0, 1);
            }
            d.absorb(batch);
            let out = d.scan(&mut asp, &mut frames, &COSTS).unwrap();
            match round {
                0 => assert_eq!(out.migrated, 0, "one round must not trigger"),
                _ => assert_eq!(out.migrated, 1, "persistent remote access must"),
            }
        }
        assert_eq!(d.totals().migrated, 1);
        assert_eq!(d.invocations(), 2);
    }

    #[test]
    fn hint_samples_merge_and_iterate() {
        let mut a = HintSamples::new();
        a.record(0x1000, 0);
        a.record(0x1000, 1);
        let mut b = HintSamples::new();
        b.record(0x1000, 1);
        b.record(0x2000, 0);
        a.merge(b);
        let v: Vec<_> = a.iter().map(|(p, t)| (p, t[0], t[1])).collect();
        assert_eq!(v, vec![(0x1000, 1, 2), (0x2000, 1, 0)]);
    }

    #[test]
    fn work_hints_tip_a_borderline_page_without_polluting_history() {
        // Remote majority 5/8 is below the 3/4 dominance bar, so without
        // a hint the page stays…
        let samples = |d: &mut NumaDaemon, base: VirtAddr| {
            let mut batch = HintSamples::new();
            for _ in 0..3 {
                batch.record(base.0, 0);
            }
            for _ in 0..5 {
                batch.record(base.0, 1);
            }
            d.absorb(batch);
        };
        let (mut frames, mut asp, base) = setup(PageSize::Small4K, 1);
        let mut d = NumaDaemon::new(NumaDaemonConfig::default());
        samples(&mut d, base);
        let out = d.scan(&mut asp, &mut frames, &COSTS).unwrap();
        assert_eq!(out.migrated, 0);
        assert_eq!(out.stuck_shared, 1);

        // …while with the scheduler vouching for node 1, four synthetic
        // samples lift it to 9/12 = 3/4 — exactly the bar — so it moves.
        let (mut frames, mut asp, base) = setup(PageSize::Small4K, 1);
        let mut d = NumaDaemon::new(NumaDaemonConfig {
            work_hint_weight: 4,
            ..NumaDaemonConfig::default()
        });
        samples(&mut d, base);
        d.set_work_hints(std::iter::once((base.0, 1usize)).collect());
        let out = d.scan(&mut asp, &mut frames, &COSTS).unwrap();
        assert_eq!(out.migrated, 1, "hinted page must move");
        let t = asp.page_table().probe(base).unwrap();
        assert_eq!(frames.node_of(t.pa), 1);
    }

    #[test]
    fn daemon_without_hints_is_unchanged_by_the_hint_machinery() {
        // Twin daemons, one with an irrelevant hint map installed then
        // cleared: identical outcomes.
        let run = |hints: bool| {
            let (mut frames, mut asp, base) = setup(PageSize::Small4K, 2);
            let mut d = NumaDaemon::new(NumaDaemonConfig::default());
            if hints {
                d.set_work_hints(std::iter::once((0xdead_0000u64, 1usize)).collect());
                d.set_work_hints(BTreeMap::new());
            }
            let mut batch = HintSamples::new();
            for _ in 0..8 {
                batch.record(base.0, 1);
            }
            d.absorb(batch);
            d.scan(&mut asp, &mut frames, &COSTS).unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn daemon_budget_defers_migrations() {
        let (mut frames, mut asp, base) = setup(PageSize::Small4K, 8);
        let mut d = NumaDaemon::new(NumaDaemonConfig {
            // One 4 KB migration costs 3328 + 2*80 = 3488 plus scan, which
            // exceeds a 3000-cycle budget, so each scan admits one page.
            cycle_budget: 3_000,
            ..NumaDaemonConfig::default()
        });
        let mut batch = HintSamples::new();
        for p in 0..8u64 {
            for _ in 0..8 {
                batch.record(base.0 + p * 4096, 1);
            }
        }
        d.absorb(batch);
        let first = d.scan(&mut asp, &mut frames, &COSTS).unwrap();
        assert_eq!(first.migrated, 1, "budget must stop after one page");
        for _ in 0..7 {
            d.scan(&mut asp, &mut frames, &COSTS).unwrap();
        }
        assert_eq!(d.totals().migrated, 8, "deferred pages drain over scans");
        for p in 0..8u64 {
            let t = asp.page_table().probe(base.add(p * 4096)).unwrap();
            assert_eq!(frames.node_of(t.pa), 1, "page {p}");
        }
    }
}
