//! Virtual and physical address types and page-size arithmetic.
//!
//! The paper contrasts the traditional 4 KB page with the 2 MB large page
//! supported by modern x86 processors (its Table 1 lists separate TLB entry
//! arrays for each size). Everything above this module is generic over
//! [`PageSize`], so the rest of the stack can ask "what changes when the
//! leaf page grows by a factor of 512?" without special cases.
//!
//! A [`PageSize`] is an open value — any power-of-two size a translation
//! architecture ([`crate::arch`]) declares in its ladder — rather than the
//! closed 4 KB / 2 MB pair of the original model. `PageSize::Small4K` and
//! `PageSize::Large2M` remain as aliases for the x86-64-2007 ladder's
//! rungs 0 and 1 so existing call sites keep compiling.

use core::fmt;

/// Number of bits in the in-page offset of a 4 KB page.
pub const SMALL_PAGE_SHIFT: u32 = 12;
/// Number of bits in the in-page offset of a 2 MB page.
pub const LARGE_PAGE_SHIFT: u32 = 21;
/// Bytes in a 4 KB page.
pub const SMALL_PAGE_BYTES: u64 = 1 << SMALL_PAGE_SHIFT;
/// Bytes in a 2 MB page.
pub const LARGE_PAGE_BYTES: u64 = 1 << LARGE_PAGE_SHIFT;
/// How many 4 KB pages fit in one 2 MB page (512).
pub const SMALL_PER_LARGE: u64 = LARGE_PAGE_BYTES / SMALL_PAGE_BYTES;

/// A page size supported by the simulated MMU: any power of two from 4 KB
/// up, carried as its log2. Ordering and equality follow the size.
///
/// The closed two-variant enum this used to be survives as the associated
/// constants [`Small4K`](Self::Small4K) / [`Large2M`](Self::Large2M)
/// (rungs 0 and 1 of [`crate::arch::Arch::X86_64_2007`]); new code should
/// iterate an architecture's ladder instead of naming sizes directly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageSize {
    shift: u8,
}

#[allow(non_upper_case_globals)]
impl PageSize {
    /// Traditional 4 KB base page (x86-64-2007 ladder rung 0).
    pub const Small4K: PageSize = PageSize::from_shift(SMALL_PAGE_SHIFT);
    /// 2 MB large ("huge" / "super") page (x86-64-2007 ladder rung 1).
    pub const Large2M: PageSize = PageSize::from_shift(LARGE_PAGE_SHIFT);
    /// 16 KB base page (ARM64 16 KB granule).
    pub const Page16K: PageSize = PageSize::from_shift(14);
    /// 64 KB block (ARM64 4 KB granule, contiguous-bit run of 16 PTEs).
    pub const Page64K: PageSize = PageSize::from_shift(16);
    /// 32 MB block (ARM64 16 KB granule, level-1 leaf).
    pub const Page32M: PageSize = PageSize::from_shift(25);
    /// 1 GB gigantic page (x86-64 PDPT leaf).
    pub const Page1G: PageSize = PageSize::from_shift(30);

    /// The page size `2^shift` bytes. `shift` must be at least 12 (the
    /// machine-wide base frame) and below 48 (the virtual address width).
    #[inline]
    pub const fn from_shift(shift: u32) -> PageSize {
        assert!(shift >= SMALL_PAGE_SHIFT && shift < 48, "bad page shift");
        PageSize { shift: shift as u8 }
    }

    /// Size of the page in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        1u64 << self.shift
    }

    /// log2 of the page size.
    #[inline]
    pub const fn shift(self) -> u32 {
        self.shift as u32
    }

    /// Mask that extracts the in-page offset.
    #[inline]
    pub const fn offset_mask(self) -> u64 {
        self.bytes() - 1
    }

    /// Buddy-allocator order of one page of this size (order 0 = 4 KB).
    /// Physical frames are 4 KB machine-wide regardless of the base
    /// granule, so a 16 KB base page is an order-2 allocation.
    #[inline]
    pub const fn buddy_order(self) -> u8 {
        (self.shift() - SMALL_PAGE_SHIFT) as u8
    }

    /// Round `len` bytes up to a whole number of pages of this size.
    #[inline]
    pub const fn round_up(self, len: u64) -> u64 {
        let m = self.offset_mask();
        (len + m) & !m
    }

    /// Number of pages of this size needed to hold `len` bytes.
    #[inline]
    pub const fn pages_for(self, len: u64) -> u64 {
        self.round_up(len) >> self.shift()
    }

    /// The x86-64-2007 ladder, small first — kept for call sites written
    /// against the original two-size model. New code should iterate
    /// [`crate::arch::MMArch::ladder`] instead.
    pub const ALL: [PageSize; 2] = [PageSize::Small4K, PageSize::Large2M];
}

impl fmt::Display for PageSize {
    /// Renders as the paper writes sizes: `4KB`, `2MB`, `1GB`, …
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.shift();
        if s >= 30 {
            write!(f, "{}GB", 1u64 << (s - 30))
        } else if s >= 20 {
            write!(f, "{}MB", 1u64 << (s - 20))
        } else {
            write!(f, "{}KB", 1u64 << (s - 10))
        }
    }
}

impl fmt::Debug for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageSize({self})")
    }
}

/// A virtual address in a simulated 48-bit address space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtAddr(pub u64);

/// A physical address in the simulated machine's memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(pub u64);

impl VirtAddr {
    /// The zero address.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Virtual page number for a given page size.
    #[inline]
    pub const fn vpn(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// Offset within the page of the given size.
    #[inline]
    pub const fn page_offset(self, size: PageSize) -> u64 {
        self.0 & size.offset_mask()
    }

    /// First address of the page (of the given size) containing `self`.
    #[inline]
    pub const fn page_base(self, size: PageSize) -> VirtAddr {
        VirtAddr(self.0 & !size.offset_mask())
    }

    /// Address `bytes` further along.
    #[inline]
    pub const fn add(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }

    /// Is this address aligned to the given page size?
    #[inline]
    pub const fn is_aligned(self, size: PageSize) -> bool {
        self.0 & size.offset_mask() == 0
    }

    /// Index into the page-table level `level` (0 = leaf PT, 3 = root).
    ///
    /// x86-64 long mode: 9 bits per level above the 12-bit page offset.
    /// Other walk shapes index through
    /// [`crate::arch::WalkShape::pt_index`].
    #[inline]
    pub const fn pt_index(self, level: u8) -> usize {
        ((self.0 >> (SMALL_PAGE_SHIFT + 9 * level as u32)) & 0x1ff) as usize
    }
}

impl PhysAddr {
    /// Physical frame number for a given page size.
    #[inline]
    pub const fn pfn(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// Address `bytes` further along.
    #[inline]
    pub const fn add(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }

    /// First address of the frame (of the given size) containing `self`.
    #[inline]
    pub const fn frame_base(self, size: PageSize) -> PhysAddr {
        PhysAddr(self.0 & !size.offset_mask())
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA({:#x})", self.0)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA({:#x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_constants() {
        assert_eq!(PageSize::Small4K.bytes(), 4096);
        assert_eq!(PageSize::Large2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(SMALL_PER_LARGE, 512);
        assert_eq!(PageSize::Small4K.buddy_order(), 0);
        assert_eq!(PageSize::Large2M.buddy_order(), 9);
    }

    #[test]
    fn open_page_sizes_round_trip_shift() {
        for shift in [12u32, 14, 16, 21, 25, 30] {
            let s = PageSize::from_shift(shift);
            assert_eq!(s.shift(), shift);
            assert_eq!(s.bytes(), 1u64 << shift);
            assert_eq!(s.buddy_order() as u32, shift - 12);
        }
        assert_eq!(PageSize::Page16K.bytes(), 16 * 1024);
        assert_eq!(PageSize::Page64K.bytes(), 64 * 1024);
        assert_eq!(PageSize::Page32M.bytes(), 32 * 1024 * 1024);
        assert_eq!(PageSize::Page1G.bytes(), 1024 * 1024 * 1024);
        assert!(PageSize::Small4K < PageSize::Page16K);
        assert!(PageSize::Large2M < PageSize::Page1G);
    }

    #[test]
    fn display_matches_paper_spelling() {
        assert_eq!(PageSize::Small4K.to_string(), "4KB");
        assert_eq!(PageSize::Large2M.to_string(), "2MB");
        assert_eq!(PageSize::Page16K.to_string(), "16KB");
        assert_eq!(PageSize::Page64K.to_string(), "64KB");
        assert_eq!(PageSize::Page32M.to_string(), "32MB");
        assert_eq!(PageSize::Page1G.to_string(), "1GB");
    }

    #[test]
    fn round_up_and_pages_for() {
        let s = PageSize::Small4K;
        assert_eq!(s.round_up(0), 0);
        assert_eq!(s.round_up(1), 4096);
        assert_eq!(s.round_up(4096), 4096);
        assert_eq!(s.round_up(4097), 8192);
        assert_eq!(s.pages_for(1), 1);
        assert_eq!(s.pages_for(8192), 2);
        let l = PageSize::Large2M;
        assert_eq!(l.pages_for(1), 1);
        assert_eq!(l.pages_for(LARGE_PAGE_BYTES + 1), 2);
    }

    #[test]
    fn vpn_and_offset() {
        let a = VirtAddr(0x40_2345);
        assert_eq!(a.vpn(PageSize::Small4K), 0x402);
        assert_eq!(a.page_offset(PageSize::Small4K), 0x345);
        assert_eq!(a.vpn(PageSize::Large2M), 0x2);
        assert_eq!(a.page_offset(PageSize::Large2M), 0x2345);
        assert_eq!(a.page_base(PageSize::Small4K), VirtAddr(0x40_2000));
        assert_eq!(a.page_base(PageSize::Large2M), VirtAddr(0x40_0000));
    }

    #[test]
    fn pt_indices_cover_distinct_bits() {
        // VA with a distinct 9-bit group per level.
        let va = VirtAddr((1u64 << 12) | (2u64 << 21) | (3u64 << 30) | (4u64 << 39));
        assert_eq!(va.pt_index(0), 1);
        assert_eq!(va.pt_index(1), 2);
        assert_eq!(va.pt_index(2), 3);
        assert_eq!(va.pt_index(3), 4);
    }

    #[test]
    fn alignment_checks() {
        assert!(VirtAddr(0x200000).is_aligned(PageSize::Large2M));
        assert!(!VirtAddr(0x201000).is_aligned(PageSize::Large2M));
        assert!(VirtAddr(0x201000).is_aligned(PageSize::Small4K));
    }

    #[test]
    fn phys_frame_math() {
        let p = PhysAddr(0x40_2345);
        assert_eq!(p.pfn(PageSize::Small4K), 0x402);
        assert_eq!(p.frame_base(PageSize::Large2M), PhysAddr(0x40_0000));
        assert_eq!(p.add(0x10).0, 0x40_2355);
    }
}
