//! Error type shared by the virtual-memory subsystem.

use crate::addr::{PageSize, VirtAddr};
use core::fmt;

/// Errors produced by the simulated virtual-memory subsystem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Physical memory (of the requested order) is exhausted.
    OutOfMemory {
        /// Buddy order that could not be satisfied.
        order: u8,
    },
    /// The hugetlbfs-style pool has no free large pages left.
    HugePoolExhausted {
        /// Pages requested.
        requested: u64,
        /// Pages remaining in the pool.
        available: u64,
    },
    /// Attempt to map over an existing mapping.
    AlreadyMapped(VirtAddr),
    /// Translation of an unmapped address was attempted.
    NotMapped(VirtAddr),
    /// Access violated the region's protection bits.
    ProtectionViolation(VirtAddr),
    /// A virtual region of the requested size/alignment could not be found.
    NoVirtualSpace {
        /// Bytes requested.
        len: u64,
        /// Alignment requested.
        align: u64,
    },
    /// Address or length not aligned for the requested page size.
    Misaligned {
        /// The offending address.
        addr: VirtAddr,
        /// Page size whose alignment was violated.
        size: PageSize,
    },
    /// The page size is not a rung of the active translation
    /// architecture's ladder.
    UnsupportedPageSize(PageSize),
    /// Named shared file does not exist.
    NoSuchFile(String),
    /// Named shared file already exists.
    FileExists(String),
    /// Requested range lies outside the file/region.
    OutOfRange {
        /// Offset requested.
        offset: u64,
        /// Length requested.
        len: u64,
        /// Size of the object.
        object_len: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfMemory { order } => {
                write!(f, "out of physical memory at buddy order {order}")
            }
            VmError::HugePoolExhausted {
                requested,
                available,
            } => write!(
                f,
                "huge page pool exhausted: requested {requested}, available {available}"
            ),
            VmError::AlreadyMapped(a) => write!(f, "address {a} already mapped"),
            VmError::NotMapped(a) => write!(f, "address {a} not mapped"),
            VmError::ProtectionViolation(a) => write!(f, "protection violation at {a}"),
            VmError::NoVirtualSpace { len, align } => {
                write!(f, "no virtual space for {len} bytes (align {align})")
            }
            VmError::Misaligned { addr, size } => {
                write!(f, "address {addr} not aligned to {size} page")
            }
            VmError::UnsupportedPageSize(s) => {
                write!(f, "page size {s} is not in the architecture's ladder")
            }
            VmError::NoSuchFile(n) => write!(f, "no shared file named {n:?}"),
            VmError::FileExists(n) => write!(f, "shared file {n:?} already exists"),
            VmError::OutOfRange {
                offset,
                len,
                object_len,
            } => write!(
                f,
                "range [{offset}, {offset}+{len}) outside object of {object_len} bytes"
            ),
        }
    }
}

impl std::error::Error for VmError {}

/// Convenience alias used across the crate.
pub type VmResult<T> = Result<T, VmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VmError::HugePoolExhausted {
            requested: 4,
            available: 1,
        };
        let s = e.to_string();
        assert!(s.contains("requested 4"));
        assert!(s.contains("available 1"));
        let e = VmError::Misaligned {
            addr: VirtAddr(0x1234),
            size: PageSize::Large2M,
        };
        assert!(e.to_string().contains("2MB"));
    }
}
