//! Incremental huge-page promotion daemon — the simulator's `khugepaged`.
//!
//! One-shot [`crate::promote::promote_region`] models `madvise`-style
//! collapse: stop the world, walk the whole region, promote everything at
//! once. Real kernels cannot afford that; Linux runs a background thread
//! that scans a little at a time, bounded by a cycle budget, and leans on
//! memory compaction when fragmentation starves it of order-9 blocks.
//! [`Khugepaged`] is that thread. The simulated engine invokes
//! [`Khugepaged::scan`] at barrier points and charges the returned cycle
//! count to every core's clock, so daemon work is *visible in the
//! simulated timeline* instead of free.
//!
//! Three mechanisms, mirroring the kernel:
//!
//! * **incremental collapse** — scan anonymous 4 KB regions from a resume
//!   cursor, collapse each fully populated, protection-uniform 2 MB chunk
//!   (via the same `promote::try_collapse_chunk` engine as the
//!   one-shot path), and stop when the per-invocation budget is spent;
//! * **compaction fallback** — when a collapse fails for want of a free
//!   order-9 block, run [`crate::compact::compact`] for one block and
//!   retry once, the `khugepaged`/`kcompactd` handshake;
//! * **demotion pressure valve** — under a free-memory watermark, split
//!   the oldest daemon-promoted 2 MB leaf back into 4 KB PTEs so the
//!   region becomes reclaimable at page granularity again, and stop
//!   collapsing until pressure clears.
//!
//! The daemon goes **idle** after a full pass that makes no progress;
//! idle scans cost nothing, so a steady-state application pays no
//! per-barrier tax once its heap is promoted.

use std::collections::VecDeque;

use crate::addr::{PhysAddr, VirtAddr};
use crate::arch::MMArch;
use crate::compact::compact;
use crate::error::VmResult;
use crate::frame::BuddyAllocator;
use crate::promote::{try_collapse_chunk, ChunkCollapse};
use crate::vma::{AddressSpace, Backing};

/// Cycle prices for the daemon's unit operations, supplied by the
/// machine's cost model.
#[derive(Clone, Copy, Debug)]
pub struct DaemonCosts {
    /// Inspecting one small page's PTE during a scan.
    pub scan_page: u64,
    /// Copying one 4 KB page to a new frame (collapse or compaction).
    pub migrate_page: u64,
    /// Editing one page-table entry (map or unmap).
    pub pt_edit: u64,
}

/// Tunables for the daemon, the analogue of
/// `/sys/kernel/mm/transparent_hugepage/khugepaged/*`.
#[derive(Clone, Copy, Debug)]
pub struct KhugepagedConfig {
    /// Cycle budget per [`Khugepaged::scan`] invocation; the scan stops
    /// (and remembers its cursor) once the work it has charged reaches
    /// this.
    pub cycle_budget: u64,
    /// Run compaction (one block) and retry when a collapse finds no free
    /// order-9 block.
    pub compaction: bool,
    /// Free-memory watermark: below this the daemon stops collapsing and
    /// starts demoting its oldest promotions. Zero disables demotion.
    pub low_watermark_bytes: u64,
    /// Demotions allowed per scan while under the watermark.
    pub max_demotions: u64,
}

impl Default for KhugepagedConfig {
    fn default() -> Self {
        KhugepagedConfig {
            cycle_budget: 5_000_000,
            compaction: true,
            low_watermark_bytes: 0,
            max_demotions: 1,
        }
    }
}

/// What one [`Khugepaged::scan`] invocation did, and what it cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// 2 MB chunks collapsed to large pages.
    pub collapsed: u64,
    /// 4 KB pages migrated by the compaction fallback.
    pub compact_migrated: u64,
    /// 2 MB leaves split back to 4 KB under memory pressure.
    pub demoted: u64,
    /// Page-table entries edited.
    pub pt_edits: u64,
    /// Simulated cycles of daemon work (the caller charges these to the
    /// cores' clocks).
    pub cycles: u64,
    /// The share of `cycles` spent in the compaction fallback (a subset,
    /// so callers can attribute scan vs compaction separately).
    pub compact_cycles: u64,
    /// The share of `pt_edits` made by the compaction fallback (a subset
    /// of `pt_edits`, like `compact_cycles`).
    pub compact_pt_edits: u64,
    /// Whether any translation changed — the caller must broadcast a TLB
    /// shootdown (IPI + full flush on every core).
    pub shootdown: bool,
}

impl ScanOutcome {
    /// Accumulate another outcome into this one.
    pub fn merge(&mut self, o: &ScanOutcome) {
        self.collapsed += o.collapsed;
        self.compact_migrated += o.compact_migrated;
        self.demoted += o.demoted;
        self.pt_edits += o.pt_edits;
        self.cycles += o.cycles;
        self.compact_cycles += o.compact_cycles;
        self.compact_pt_edits += o.compact_pt_edits;
        self.shootdown |= o.shootdown;
    }
}

/// The incremental promotion daemon. Owns only bookkeeping (cursor, the
/// queue of chunks it promoted, an idle latch); the address space and
/// allocator it works on are passed into each [`Khugepaged::scan`].
#[derive(Debug)]
pub struct Khugepaged {
    /// Tunables; may be adjusted between scans.
    pub cfg: KhugepagedConfig,
    cursor: VirtAddr,
    /// Chunks this daemon promoted, oldest first — the demotion queue.
    promoted: VecDeque<VirtAddr>,
    idle: bool,
    invocations: u64,
    totals: ScanOutcome,
}

impl Khugepaged {
    /// A fresh daemon with the given tunables.
    pub fn new(cfg: KhugepagedConfig) -> Self {
        Khugepaged {
            cfg,
            cursor: VirtAddr(0),
            promoted: VecDeque::new(),
            idle: false,
            invocations: 0,
            totals: ScanOutcome::default(),
        }
    }

    /// True once a full pass made no progress; cleared by [`Self::kick`]
    /// or by pressure-valve demotion.
    pub fn is_idle(&self) -> bool {
        self.idle
    }

    /// Wake an idle daemon (call after new mappings appear).
    pub fn kick(&mut self) {
        self.idle = false;
    }

    /// Number of scan invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Lifetime totals across all scans.
    pub fn totals(&self) -> ScanOutcome {
        self.totals
    }

    /// Run one budgeted daemon step. Returns the work done and its cycle
    /// cost; the caller is responsible for charging `cycles` to the
    /// simulated clocks and, if `shootdown` is set, for the IPI broadcast
    /// and TLB flushes.
    pub fn scan(
        &mut self,
        aspace: &mut AddressSpace,
        frames: &mut BuddyAllocator,
        costs: &DaemonCosts,
    ) -> VmResult<ScanOutcome> {
        self.invocations += 1;
        let mut out = ScanOutcome::default();

        let pressured =
            self.cfg.low_watermark_bytes > 0 && frames.free_bytes() < self.cfg.low_watermark_bytes;
        if pressured {
            // Pressure valve: demote the oldest promotions and collapse
            // nothing until the watermark clears (re-collapsing what we
            // just split would thrash).
            while out.demoted < self.cfg.max_demotions {
                let Some(chunk) = self.promoted.pop_front() else {
                    break;
                };
                if self.demote(aspace, frames, chunk, costs, &mut out)? {
                    self.idle = false;
                }
            }
            self.totals.merge(&out);
            return Ok(out);
        }
        if self.idle {
            self.totals.merge(&out);
            return Ok(out);
        }

        // The collapse target is the rung above the base granule; an
        // architecture with a single-rung ladder has nothing to promote.
        let arch = aspace.page_table().arch();
        let Some(next) = arch.next_rung_above(arch.base()) else {
            self.idle = true;
            self.totals.merge(&out);
            return Ok(out);
        };
        let large = next.size;
        let per = large.bytes() / arch.base().bytes();

        // Candidate chunks: every chunk-aligned, fully-contained piece of
        // every anonymous base-granule region. Rebuilt per scan (regions
        // come and go); pure arithmetic, so not charged.
        let mut chunks: Vec<VirtAddr> = Vec::new();
        for vma in aspace.vmas() {
            if vma.page_size != arch.base() || !matches!(vma.backing, Backing::Anonymous) {
                continue;
            }
            let mut c = VirtAddr(large.round_up(vma.start.0));
            while c.0 + large.bytes() <= vma.start.0 + vma.len {
                chunks.push(c);
                c = c.add(large.bytes());
            }
        }
        if chunks.is_empty() {
            self.idle = true;
            self.totals.merge(&out);
            return Ok(out);
        }
        chunks.sort_unstable();

        // One circular pass starting at the cursor, stopping on budget
        // exhaustion.
        let start = {
            let i = chunks.partition_point(|c| *c < self.cursor);
            if i == chunks.len() {
                0
            } else {
                i
            }
        };
        let mut progress = false;
        let mut exhausted = false;
        for k in 0..chunks.len() {
            let i = (start + k) % chunks.len();
            if out.cycles >= self.cfg.cycle_budget {
                self.cursor = chunks[i];
                exhausted = true;
                break;
            }
            let chunk = chunks[i];
            match try_collapse_chunk(aspace, frames, chunk)? {
                ChunkCollapse::Promoted => {
                    self.note_collapse(chunk, per, costs, &mut out);
                    progress = true;
                }
                ChunkCollapse::AlreadyLarge => out.cycles += costs.scan_page,
                ChunkCollapse::Unpopulated | ChunkCollapse::MixedFlags => {
                    out.cycles += per * costs.scan_page;
                }
                ChunkCollapse::NoMemory => {
                    out.cycles += per * costs.scan_page;
                    if self.cfg.compaction {
                        let rep = compact(aspace, frames, 1)?;
                        let compact_cycles =
                            rep.migrated * (costs.migrate_page + 2 * costs.pt_edit);
                        out.compact_migrated += rep.migrated;
                        out.pt_edits += rep.pt_edits;
                        out.cycles += compact_cycles;
                        out.compact_cycles += compact_cycles;
                        out.compact_pt_edits += rep.pt_edits;
                        if rep.migrated > 0 {
                            out.shootdown = true;
                            progress = true;
                        }
                        if rep.blocks_freed > 0
                            && try_collapse_chunk(aspace, frames, chunk)? == ChunkCollapse::Promoted
                        {
                            self.note_collapse(chunk, per, costs, &mut out);
                            progress = true;
                        }
                    }
                }
            }
        }
        if !exhausted {
            self.cursor = chunks[start];
            if !progress {
                self.idle = true;
            }
        }
        self.totals.merge(&out);
        Ok(out)
    }

    /// Record and price one successful collapse of `per` small pages.
    fn note_collapse(
        &mut self,
        chunk: VirtAddr,
        per: u64,
        costs: &DaemonCosts,
        out: &mut ScanOutcome,
    ) {
        out.collapsed += 1;
        out.pt_edits += per + 1; // per unmaps + 1 block map
        out.cycles += per * (costs.scan_page + costs.migrate_page) + (per + 1) * costs.pt_edit;
        out.shootdown = true;
        self.promoted.push_back(chunk);
    }

    /// Split one daemon-promoted block leaf back into base-granule PTEs
    /// so the chunk is reclaimable page-by-page again. In-place: frames
    /// are not copied, the block-order buddy entry is split, the mapping
    /// keeps its flags. Returns whether a demotion actually happened.
    fn demote(
        &mut self,
        aspace: &mut AddressSpace,
        frames: &mut BuddyAllocator,
        chunk: VirtAddr,
        costs: &DaemonCosts,
        out: &mut ScanOutcome,
    ) -> VmResult<bool> {
        let arch = aspace.page_table().arch();
        let small = arch.base();
        let Some(next) = arch.next_rung_above(small) else {
            return Ok(false);
        };
        let large = next.size;
        let per = large.bytes() / small.bytes();
        // The chunk may have been unmapped or already split since we
        // promoted it; demote only a live block leaf.
        match aspace.page_table().probe(chunk) {
            Some(t) if t.size == large => {}
            _ => return Ok(false),
        }
        let t = aspace.unmap_page(chunk, large)?;
        let base = t.pa.frame_base(large);
        for i in 0..per {
            let va = chunk.add(i * small.bytes());
            let pa = PhysAddr(base.0 + i * small.bytes());
            if aspace.map_page(frames, va, pa, small, t.flags).is_err() {
                // No frame for the leaf page-table node — we are too far
                // into pressure even for the valve. Restore the block leaf
                // (its intermediate nodes still exist) and give up.
                debug_assert_eq!(i, 0, "only the first map can allocate a node");
                aspace.map_page(frames, chunk, base, large, t.flags)?;
                return Ok(false);
            }
        }
        frames.split_allocated(base, large.buddy_order());
        out.demoted += 1;
        out.pt_edits += per + 1; // 1 block unmap + per small maps
        out.cycles += (per + 1) * costs.pt_edit;
        out.shootdown = true;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageSize;
    use crate::fragment::age_heap;
    use crate::page_table::{AccessKind, PteFlags};
    use crate::promote::promote_region;
    use crate::vma::Populate;

    const COSTS: DaemonCosts = DaemonCosts {
        scan_page: 5,
        migrate_page: 3328,
        pt_edit: 80,
    };

    fn setup(mem: u64, heap: u64) -> (BuddyAllocator, AddressSpace, VirtAddr) {
        let mut frames = BuddyAllocator::new(mem);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        let base = asp
            .mmap(
                &mut frames,
                heap,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "heap",
            )
            .unwrap();
        (frames, asp, base)
    }

    #[test]
    fn budget_spreads_promotion_across_scans_then_goes_idle() {
        let chunk_bytes = PageSize::Large2M.bytes();
        let (mut frames, mut asp, base) = setup(256 * 1024 * 1024, 4 * chunk_bytes);
        // One collapse costs 512*(5+3328) + 513*80 = 1,747,536 cycles, so
        // a 1M budget stops each scan after exactly one collapse.
        let mut k = Khugepaged::new(KhugepagedConfig {
            cycle_budget: 1_000_000,
            ..KhugepagedConfig::default()
        });
        for scan in 0..4 {
            let out = k.scan(&mut asp, &mut frames, &COSTS).unwrap();
            assert_eq!(out.collapsed, 1, "scan {scan}");
            assert!(out.shootdown);
            assert_eq!(out.pt_edits, 513);
            assert!(out.cycles > 1_000_000);
            assert!(!k.is_idle());
        }
        for c in 0..4u64 {
            let t = asp.page_table().probe(base.add(c * chunk_bytes)).unwrap();
            assert_eq!(t.size, PageSize::Large2M, "chunk {c}");
        }
        // A full no-progress pass (everything AlreadyLarge) latches idle…
        let out = k.scan(&mut asp, &mut frames, &COSTS).unwrap();
        assert_eq!(out.collapsed, 0);
        assert_eq!(out.cycles, 4 * COSTS.scan_page);
        assert!(k.is_idle());
        // …after which scans are free.
        let out = k.scan(&mut asp, &mut frames, &COSTS).unwrap();
        assert_eq!(out, ScanOutcome::default());
        assert_eq!(k.invocations(), 6);
        assert_eq!(k.totals().collapsed, 4);
    }

    #[test]
    fn compaction_rescues_promotion_on_a_fragmented_heap() {
        let chunk_bytes = PageSize::Large2M.bytes();
        let (mut frames, mut asp, base) = setup(64 * 1024 * 1024, 2 * chunk_bytes);
        age_heap(&mut frames, &mut asp, 1.0).unwrap();
        // One-shot promotion is starved: no free order-9 block anywhere.
        let r = promote_region(&mut asp, &mut frames, base).unwrap();
        assert_eq!(r.promoted, 0);
        assert_eq!(r.skipped_no_memory, 2);
        // The daemon compacts its way out.
        let mut k = Khugepaged::new(KhugepagedConfig {
            cycle_budget: u64::MAX,
            ..KhugepagedConfig::default()
        });
        let out = k.scan(&mut asp, &mut frames, &COSTS).unwrap();
        assert_eq!(out.collapsed, 2);
        assert!(out.compact_migrated > 0, "compaction had to migrate");
        assert!(out.shootdown);
        // The compaction shares are strict subsets of the totals.
        assert!(out.compact_cycles > 0 && out.compact_cycles < out.cycles);
        assert!(out.compact_pt_edits > 0 && out.compact_pt_edits < out.pt_edits);
        assert_eq!(
            out.compact_cycles,
            out.compact_migrated * (COSTS.migrate_page + 2 * COSTS.pt_edit)
        );
        assert_eq!(out.compact_pt_edits, 2 * out.compact_migrated);
        for c in 0..2u64 {
            let t = asp.page_table().probe(base.add(c * chunk_bytes)).unwrap();
            assert_eq!(t.size, PageSize::Large2M, "chunk {c}");
        }
    }

    #[test]
    fn pressure_valve_demotes_and_pauses_collapse() {
        let chunk_bytes = PageSize::Large2M.bytes();
        let (mut frames, mut asp, base) = setup(64 * 1024 * 1024, chunk_bytes);
        let mut k = Khugepaged::new(KhugepagedConfig {
            cycle_budget: u64::MAX,
            ..KhugepagedConfig::default()
        });
        let out = k.scan(&mut asp, &mut frames, &COSTS).unwrap();
        assert_eq!(out.collapsed, 1);
        // Simulate memory pressure: every scan is now under the watermark.
        k.cfg.low_watermark_bytes = u64::MAX;
        let free_before = frames.free_bytes();
        let out = k.scan(&mut asp, &mut frames, &COSTS).unwrap();
        assert_eq!(out.demoted, 1);
        assert_eq!(out.collapsed, 0, "no collapsing under pressure");
        assert_eq!(out.pt_edits, 513);
        assert!(out.shootdown);
        // In-place split: no data frames moved; one frame went to the
        // rebuilt leaf page-table node.
        assert_eq!(frames.free_bytes(), free_before - 4096);
        for i in (0..512u64).step_by(97) {
            let t = asp
                .access(&mut frames, base.add(i * 4096), AccessKind::Read)
                .unwrap()
                .translation();
            assert_eq!(t.size, PageSize::Small4K);
        }
        // The demotion queue is drained; pressure scans now do nothing.
        let out = k.scan(&mut asp, &mut frames, &COSTS).unwrap();
        assert_eq!(out, ScanOutcome::default());
    }

    #[test]
    fn injected_allocation_failure_triggers_compact_and_retry() {
        let chunk_bytes = PageSize::Large2M.bytes();
        let (mut frames, mut asp, base) = setup(64 * 1024 * 1024, 4 * chunk_bytes);
        // The heap itself is fine; fault-inject one order-9 failure so the
        // first collapse attempt sees transient fragmentation.
        frames.inject_alloc_failures(1, PageSize::Large2M.buddy_order());
        let mut k = Khugepaged::new(KhugepagedConfig {
            cycle_budget: u64::MAX,
            ..KhugepagedConfig::default()
        });
        let out = k.scan(&mut asp, &mut frames, &COSTS).unwrap();
        assert_eq!(out.collapsed, 4, "retry must recover the failed chunk");
        assert!(out.compact_migrated > 0);
        for c in 0..4u64 {
            let t = asp.page_table().probe(base.add(c * chunk_bytes)).unwrap();
            assert_eq!(t.size, PageSize::Large2M, "chunk {c}");
        }
    }
}
