//! Memory compaction: coalescing free 2 MB blocks out of a fragmented
//! buddy heap by migrating the movable 4 KB frames that stand in the way.
//!
//! This is the mechanism Linux grew (`mm/compaction.c`) to make
//! transparent huge pages viable on a long-running system — the paper's §6
//! "fragmentation problem" answered with migration instead of boot-time
//! reservation. The shape follows the kernel's two-scanner design:
//!
//! * the **migration scanner** walks candidate 2 MB-aligned physical
//!   blocks from the low end, looking for blocks whose only live contents
//!   are *movable* pages (order-0 frames mapped 4 KB-small in an anonymous
//!   region — private data that can be copied without anyone noticing);
//! * the **free scanner** supplies migration targets from the *high* end
//!   of memory ([`BuddyAllocator::alloc_topdown`]), so vacated low blocks
//!   coalesce instead of being immediately reused as targets.
//!
//! Unmovable frames — page-table nodes, shared-segment frames, anything
//! not in the reverse map — cause their block to be abandoned, exactly as
//! in the kernel. The caller charges migration copies and page-table edits
//! to the simulated clock; TLB shootdown (remapped pages have new
//! translations) is likewise the caller's responsibility.

use crate::addr::{PageSize, PhysAddr, VirtAddr, SMALL_PAGE_SHIFT, SMALL_PER_LARGE};
use crate::error::VmResult;
use crate::frame::BuddyAllocator;
use crate::vma::{AddressSpace, Backing};
use std::collections::HashMap;

/// The result of one compaction run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// 4 KB pages migrated (copied to a fresh frame and remapped).
    pub migrated: u64,
    /// Page-table edits performed (one unmap + one map per migration).
    pub pt_edits: u64,
    /// Order-9 blocks freed (coalesced) by this run.
    pub blocks_freed: u64,
    /// Candidate blocks abandoned mid-run (no target frames left outside
    /// the candidate, or contents changed underfoot).
    pub abandoned: u64,
}

/// Build the reverse map: physical frame number → virtual page, for every
/// movable page (4 KB translation inside an anonymous small-page region).
fn build_rmap(aspace: &AddressSpace) -> HashMap<u64, VirtAddr> {
    let small = PageSize::Small4K;
    let mut rmap = HashMap::new();
    for vma in aspace.vmas() {
        if vma.page_size != small || !matches!(vma.backing, Backing::Anonymous) {
            continue;
        }
        let mut off = 0;
        while off < vma.len {
            let va = vma.start.add(off);
            if let Some(t) = aspace.page_table().probe(va) {
                if t.size == small {
                    rmap.insert(t.pa.frame_base(small).0 >> SMALL_PAGE_SHIFT, va);
                }
            }
            off += small.bytes();
        }
    }
    rmap
}

/// Migrate movable frames to coalesce up to `max_blocks` free order-9
/// blocks.
///
/// Candidate blocks are ranked by migration effort (fewest live pages
/// first), the kernel's cheapest-first heuristic. Each migrated page is
/// copied to a frame drawn from the top of memory, its PTE rewritten to
/// the new frame with identical flags, and its old frame freed; when the
/// last live frame leaves a block the buddy coalescing cascade reassembles
/// the free order-9 block.
pub fn compact(
    aspace: &mut AddressSpace,
    frames: &mut BuddyAllocator,
    max_blocks: u64,
) -> VmResult<CompactReport> {
    let small = PageSize::Small4K;
    let mut report = CompactReport::default();
    if max_blocks == 0 {
        return Ok(report);
    }
    let mut rmap = build_rmap(aspace);

    // Migration scanner: enumerate 2 MB-aligned candidate blocks whose
    // only live contents are movable order-0 frames.
    let total_pfns = frames.total_bytes() >> SMALL_PAGE_SHIFT;
    let mut candidates: Vec<(usize, u64)> = Vec::new(); // (live pages, base pfn)
    let mut base = 0u64;
    while base + SMALL_PER_LARGE <= total_pfns {
        if let Some(blocks) = frames.allocated_blocks_in(base, SMALL_PER_LARGE) {
            let movable = !blocks.is_empty()
                && blocks
                    .iter()
                    .all(|&(pfn, order)| order == 0 && rmap.contains_key(&pfn));
            if movable {
                candidates.push((blocks.len(), base));
            }
        }
        base += SMALL_PER_LARGE;
    }
    candidates.sort_unstable();

    let mut freed = 0u64;
    for (_, base) in candidates {
        if freed >= max_blocks {
            break;
        }
        // Re-validate: an earlier candidate's free scanner may have put a
        // migration target inside this block.
        let Some(blocks) = frames.allocated_blocks_in(base, SMALL_PER_LARGE) else {
            continue;
        };
        if blocks.is_empty()
            || !blocks
                .iter()
                .all(|&(pfn, order)| order == 0 && rmap.contains_key(&pfn))
        {
            report.abandoned += 1;
            continue;
        }
        let mut aborted = false;
        for (pfn, _) in blocks {
            let old = PhysAddr(pfn << SMALL_PAGE_SHIFT);
            let dest = match frames.alloc_topdown(0) {
                Ok(d) => d,
                Err(_) => {
                    aborted = true;
                    break;
                }
            };
            let dest_pfn = dest.0 >> SMALL_PAGE_SHIFT;
            if dest_pfn >= base && dest_pfn < base + SMALL_PER_LARGE {
                // The only free frames left are inside the block we are
                // vacating: memory is too full to compact further.
                frames.free(dest, 0);
                aborted = true;
                break;
            }
            let va = rmap[&pfn];
            let t = aspace.unmap_page(va, small)?;
            aspace.map_page(frames, va, dest, small, t.flags)?;
            frames.free(old, 0);
            rmap.remove(&pfn);
            rmap.insert(dest_pfn, va);
            report.migrated += 1;
            report.pt_edits += 2;
        }
        if aborted {
            report.abandoned += 1;
            continue;
        }
        debug_assert_eq!(
            frames.allocated_blocks_in(base, SMALL_PER_LARGE),
            Some(vec![]),
            "vacated block did not end up free"
        );
        report.blocks_freed += 1;
        freed += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::age_heap;
    use crate::page_table::AccessKind;

    /// First mapped page of the fragmenter region — a movable page sitting
    /// alone in an aged order-9 block.
    fn fragmenter_page(aspace: &AddressSpace) -> VirtAddr {
        let vma = aspace
            .vmas()
            .iter()
            .find(|v| v.name == "fragmenter")
            .expect("aged address space has a fragmenter region")
            .clone();
        let mut off = 0;
        while off < vma.len {
            let va = vma.start.add(off);
            if aspace.page_table().probe(va).is_some() {
                return va;
            }
            off += 4096;
        }
        panic!("no mapped fragmenter page");
    }

    #[test]
    fn compaction_reassembles_order9_blocks() {
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        age_heap(&mut frames, &mut asp, 1.0).unwrap();
        let o9 = PageSize::Large2M.buddy_order();
        assert!(frames.alloc(o9).is_err(), "setup must fragment the heap");
        assert!(frames.fragmentation_index(o9) > 0.9);
        let rep = compact(&mut asp, &mut frames, 2).unwrap();
        assert_eq!(rep.blocks_freed, 2);
        assert!(rep.migrated >= 2);
        assert_eq!(rep.pt_edits, 2 * rep.migrated);
        let b = frames.alloc(o9).expect("compaction must free order-9");
        frames.free(b, o9);
    }

    #[test]
    fn migrated_pages_keep_contents_addressable_and_flags() {
        let mut frames = BuddyAllocator::new(32 * 1024 * 1024);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        age_heap(&mut frames, &mut asp, 1.0).unwrap();
        let frag = fragmenter_page(&asp);
        let before = asp.page_table().probe(frag).unwrap();
        let rep = compact(&mut asp, &mut frames, 64).unwrap();
        assert!(rep.migrated > 0);
        // Still mapped 4 KB with the same protection; the frame may move.
        let after = asp.page_table().probe(frag).unwrap();
        assert_eq!(after.size, PageSize::Small4K);
        assert_eq!(
            (after.flags.writable, after.flags.executable),
            (before.flags.writable, before.flags.executable)
        );
        assert!(asp.access(&mut frames, frag, AccessKind::Write).is_ok());
    }

    #[test]
    fn pinned_frames_abandon_their_block() {
        let mut frames = BuddyAllocator::new(16 * 1024 * 1024);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        // Pin one *unmapped* frame out of every order-9 block: nothing is
        // movable, so compaction must give up without touching anything.
        let o9 = PageSize::Large2M.buddy_order();
        let mut held = Vec::new();
        while let Ok(b) = frames.alloc(o9) {
            held.push(b);
        }
        for &b in &held {
            frames.split_allocated(b, o9);
            for i in 1..512u64 {
                frames.free(PhysAddr(b.0 + i * 4096), 0);
            }
        }
        let rep = compact(&mut asp, &mut frames, 8).unwrap();
        assert_eq!(rep.blocks_freed, 0);
        assert_eq!(rep.migrated, 0);
        assert!(frames.alloc(o9).is_err());
    }

    #[test]
    fn zero_budget_is_a_noop() {
        let mut frames = BuddyAllocator::new(16 * 1024 * 1024);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        age_heap(&mut frames, &mut asp, 1.0).unwrap();
        let rep = compact(&mut asp, &mut frames, 0).unwrap();
        assert_eq!(rep, CompactReport::default());
    }
}
