//! Buddy allocator for physical page frames.
//!
//! The Linux kernels the paper ran on back both 4 KB pages and — through the
//! boot-time `hugetlbfs` reservation — 2 MB pages from a binary buddy
//! allocator. We reproduce that substrate: order 0 is one 4 KB frame and
//! order 9 is one 2 MB frame, so a large page is a naturally aligned block
//! of 512 base frames. This is also what makes the paper's *preallocation*
//! argument concrete: once the machine has been up for a while the buddy
//! heap fragments and order-9 blocks become scarce, which is why the huge
//! pool is reserved at "boot" (pool construction) in [`crate::hugetlbfs`].

use crate::addr::{PhysAddr, SMALL_PAGE_SHIFT};
use crate::error::{VmError, VmResult};
use std::collections::BTreeSet;

/// Maximum buddy order supported (order 10 = 4 MB), mirroring Linux's
/// historical `MAX_ORDER`.
pub const MAX_ORDER: u8 = 10;

/// Statistics kept by the frame allocator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Successful allocations, by count.
    pub allocs: u64,
    /// Frees, by count.
    pub frees: u64,
    /// Splits of a larger block into two buddies.
    pub splits: u64,
    /// Coalesces of two buddies into a larger block.
    pub merges: u64,
    /// Allocation failures.
    pub failures: u64,
}

/// Binary buddy allocator over a contiguous physical extent.
///
/// Frames are identified by their base [`PhysAddr`]; an order-`k` block is
/// `2^k` base (4 KB) frames, naturally aligned to its own size.
#[derive(Debug)]
pub struct BuddyAllocator {
    /// Free lists per order; ordered sets so behaviour is deterministic
    /// (lowest address first) and buddy membership checks are O(log n).
    free: Vec<BTreeSet<u64>>, // physical frame number (4 KB units) of block base
    /// Live allocations: block base pfn → order. Catches double frees and
    /// wrong-order frees.
    allocated: std::collections::HashMap<u64, u8>,
    /// Total managed base frames.
    total_frames: u64,
    /// Currently free base frames.
    free_frames: u64,
    stats: FrameStats,
    /// Fault injection: fail the next `inject_count` allocations of order
    /// ≥ `inject_min_order` (adversarial-fragmentation testing).
    inject_count: u64,
    inject_min_order: u8,
    /// NUMA nodes the extent is divided into (1 = UMA).
    nodes: usize,
    /// Base frames per node (MAX_ORDER-aligned); the last node absorbs any
    /// remainder. Meaningless when `nodes == 1`.
    node_span: u64,
}

impl BuddyAllocator {
    /// Create an allocator managing `total_bytes` of physical memory
    /// starting at physical address 0. `total_bytes` is rounded down to a
    /// whole number of base frames.
    pub fn new(total_bytes: u64) -> Self {
        Self::with_nodes(total_bytes, 1)
    }

    /// Create an allocator whose extent is divided into `nodes` equal NUMA
    /// nodes. Node boundaries are aligned to `MAX_ORDER` blocks, so no
    /// buddy block ever straddles two nodes; the last node absorbs any
    /// remainder frames. With `nodes == 1` this is identical to
    /// [`new`](Self::new).
    pub fn with_nodes(total_bytes: u64, nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        let total_frames = total_bytes >> SMALL_PAGE_SHIFT;
        let node_span = if nodes == 1 {
            total_frames
        } else {
            let span = (total_frames / nodes as u64) & !((1u64 << MAX_ORDER) - 1);
            assert!(
                span > 0,
                "{total_bytes} bytes is too small to split across {nodes} nodes"
            );
            span
        };
        let mut a = BuddyAllocator {
            free: (0..=MAX_ORDER).map(|_| BTreeSet::new()).collect(),
            allocated: std::collections::HashMap::new(),
            total_frames,
            free_frames: 0,
            stats: FrameStats::default(),
            inject_count: 0,
            inject_min_order: 0,
            nodes,
            node_span,
        };
        // Seed the free lists with maximal aligned blocks.
        let mut pfn = 0u64;
        while pfn < total_frames {
            let mut order = MAX_ORDER;
            loop {
                let span = 1u64 << order;
                if pfn.is_multiple_of(span) && pfn + span <= total_frames {
                    break;
                }
                order -= 1;
            }
            a.free[order as usize].insert(pfn);
            a.free_frames += 1 << order;
            pfn += 1 << order;
        }
        a
    }

    /// Total bytes managed.
    pub fn total_bytes(&self) -> u64 {
        self.total_frames << SMALL_PAGE_SHIFT
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free_frames << SMALL_PAGE_SHIFT
    }

    /// Snapshot of the allocator statistics.
    pub fn stats(&self) -> FrameStats {
        self.stats
    }

    /// Number of free blocks at exactly the given order.
    pub fn free_blocks_at(&self, order: u8) -> usize {
        self.free[order as usize].len()
    }

    /// Largest order with at least one free block, if any.
    pub fn largest_free_order(&self) -> Option<u8> {
        (0..=MAX_ORDER)
            .rev()
            .find(|&o| !self.free[o as usize].is_empty())
    }

    /// Number of NUMA nodes the extent is divided into.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Home node of a physical address: the node whose frame range contains
    /// it. Frames past the last even node boundary belong to the last node.
    pub fn node_of(&self, pa: PhysAddr) -> usize {
        if self.nodes == 1 {
            return 0;
        }
        (((pa.0 >> SMALL_PAGE_SHIFT) / self.node_span) as usize).min(self.nodes - 1)
    }

    /// The `[start, end)` physical frame number range owned by `node`.
    fn node_pfn_range(&self, node: usize) -> (u64, u64) {
        let start = self.node_span * node as u64;
        let end = if node == self.nodes - 1 {
            self.total_frames
        } else {
            start + self.node_span
        };
        (start, end)
    }

    /// Bytes currently free on one node.
    pub fn free_bytes_on(&self, node: usize) -> u64 {
        assert!(node < self.nodes);
        let (lo, hi) = self.node_pfn_range(node);
        let mut frames = 0u64;
        for o in 0..=MAX_ORDER {
            frames += (self.free[o as usize].range(lo..hi).count() as u64) << o;
        }
        frames << SMALL_PAGE_SHIFT
    }

    /// Allocate one naturally aligned block of order `order` from `node`'s
    /// frame range, falling back to the other nodes in ascending wrap-around
    /// order when the preferred node is exhausted — the shape of Linux's
    /// zonelist fallback. The caller can detect an off-node fallback with
    /// [`node_of`](Self::node_of).
    pub fn alloc_on_node(&mut self, node: usize, order: u8) -> VmResult<PhysAddr> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        assert!(node < self.nodes, "node {node} out of range");
        if self.nodes == 1 {
            return self.alloc(order);
        }
        if self.injected_failure(order) {
            return Err(VmError::OutOfMemory { order });
        }
        for i in 0..self.nodes {
            let n = (node + i) % self.nodes;
            let (lo, hi) = self.node_pfn_range(n);
            // Smallest order >= requested with a free block on this node.
            // Node boundaries are MAX_ORDER-aligned, so any block whose base
            // lies in the range is wholly contained in it.
            let mut found = None;
            for o in order..=MAX_ORDER {
                if let Some(&pfn) = self.free[o as usize].range(lo..hi).next() {
                    found = Some((o, pfn));
                    break;
                }
            }
            let Some((mut o, pfn)) = found else { continue };
            self.free[o as usize].remove(&pfn);
            while o > order {
                o -= 1;
                let buddy = pfn + (1u64 << o);
                self.free[o as usize].insert(buddy);
                self.stats.splits += 1;
            }
            self.free_frames -= 1 << order;
            self.stats.allocs += 1;
            self.allocated.insert(pfn, order);
            return Ok(PhysAddr(pfn << SMALL_PAGE_SHIFT));
        }
        self.stats.failures += 1;
        Err(VmError::OutOfMemory { order })
    }

    /// Allocate one naturally aligned block of order `order`, returning its
    /// base physical address.
    pub fn alloc(&mut self, order: u8) -> VmResult<PhysAddr> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        if self.injected_failure(order) {
            return Err(VmError::OutOfMemory { order });
        }
        // Find the smallest order >= requested with a free block.
        let mut found = None;
        for o in order..=MAX_ORDER {
            if let Some(&pfn) = self.free[o as usize].iter().next() {
                found = Some((o, pfn));
                break;
            }
        }
        let (mut o, pfn) = match found {
            Some(f) => f,
            None => {
                self.stats.failures += 1;
                return Err(VmError::OutOfMemory { order });
            }
        };
        self.free[o as usize].remove(&pfn);
        // Split down to the requested order, returning the upper halves.
        while o > order {
            o -= 1;
            let buddy = pfn + (1u64 << o);
            self.free[o as usize].insert(buddy);
            self.stats.splits += 1;
        }
        self.free_frames -= 1 << order;
        self.stats.allocs += 1;
        self.allocated.insert(pfn, order);
        Ok(PhysAddr(pfn << SMALL_PAGE_SHIFT))
    }

    /// Free a block previously returned by [`alloc`](Self::alloc) with the
    /// same order. Coalesces with free buddies as far as possible.
    pub fn free(&mut self, addr: PhysAddr, order: u8) {
        assert!(order <= MAX_ORDER);
        let mut pfn = addr.0 >> SMALL_PAGE_SHIFT;
        assert_eq!(
            pfn % (1 << order),
            0,
            "freed block {addr:?} not aligned to order {order}"
        );
        match self.allocated.remove(&pfn) {
            Some(o) => assert_eq!(o, order, "block {addr:?} freed with wrong order"),
            None => panic!("double free or foreign free of block at {addr:?}"),
        }
        let mut o = order;
        while o < MAX_ORDER {
            let buddy = pfn ^ (1u64 << o);
            if self.free[o as usize].remove(&buddy) {
                pfn = pfn.min(buddy);
                o += 1;
                self.stats.merges += 1;
            } else {
                break;
            }
        }
        let inserted = self.free[o as usize].insert(pfn);
        debug_assert!(inserted, "free-list corruption at pfn {pfn:#x}");
        self.free_frames += 1 << order;
        self.stats.frees += 1;
    }

    /// Allocate one naturally aligned block of order `order`, where the
    /// order may exceed [`MAX_ORDER`]. Orders up to `MAX_ORDER` go through
    /// the regular buddy path; larger requests are satisfied by carving an
    /// aligned run of free `MAX_ORDER` blocks out of the ordered free set —
    /// the moral equivalent of Linux's boot-time `alloc_bootmem`/CMA path
    /// for gigantic (1 GB) pages, which the buddy system itself cannot
    /// produce. Succeeds only while a fully free aligned run still exists,
    /// which is why gigantic pools must be reserved before memory
    /// fragments.
    pub fn alloc_block(&mut self, order: u8) -> VmResult<PhysAddr> {
        if order <= MAX_ORDER {
            return self.alloc(order);
        }
        if self.injected_failure(order) {
            return Err(VmError::OutOfMemory { order });
        }
        let span = 1u64 << order;
        let chunk = 1u64 << MAX_ORDER;
        let found = {
            let top = &self.free[MAX_ORDER as usize];
            top.iter().copied().find(|&base| {
                base.is_multiple_of(span)
                    && (1..span / chunk).all(|i| top.contains(&(base + i * chunk)))
            })
        };
        let Some(base) = found else {
            self.stats.failures += 1;
            return Err(VmError::OutOfMemory { order });
        };
        for i in 0..span / chunk {
            self.free[MAX_ORDER as usize].remove(&(base + i * chunk));
        }
        self.free_frames -= span;
        self.stats.allocs += 1;
        self.allocated.insert(base, order);
        Ok(PhysAddr(base << SMALL_PAGE_SHIFT))
    }

    /// Node-targeted sibling of [`alloc_block`](Self::alloc_block): carve
    /// one naturally aligned block of any order out of `node`'s frame
    /// range, falling back to the other nodes in ascending wrap-around
    /// order like [`alloc_on_node`](Self::alloc_on_node). Orders up to
    /// [`MAX_ORDER`] take the buddy path; gigantic orders need a fully
    /// free span-aligned run *inside one node* (node boundaries are
    /// `MAX_ORDER`-aligned, so a run found within a node's pfn range
    /// never straddles nodes). This is what a per-node reservation of a
    /// non-2 MB hugetlbfs pool draws from.
    pub fn alloc_block_on_node(&mut self, node: usize, order: u8) -> VmResult<PhysAddr> {
        if order <= MAX_ORDER {
            return self.alloc_on_node(node, order);
        }
        assert!(node < self.nodes, "node {node} out of range");
        if self.nodes == 1 {
            return self.alloc_block(order);
        }
        if self.injected_failure(order) {
            return Err(VmError::OutOfMemory { order });
        }
        let span = 1u64 << order;
        let chunk = 1u64 << MAX_ORDER;
        for i in 0..self.nodes {
            let n = (node + i) % self.nodes;
            let (lo, hi) = self.node_pfn_range(n);
            let found = {
                let top = &self.free[MAX_ORDER as usize];
                top.range(lo..hi).copied().find(|&base| {
                    base.is_multiple_of(span)
                        && base + span <= hi
                        && (1..span / chunk).all(|j| top.contains(&(base + j * chunk)))
                })
            };
            let Some(base) = found else { continue };
            for j in 0..span / chunk {
                self.free[MAX_ORDER as usize].remove(&(base + j * chunk));
            }
            self.free_frames -= span;
            self.stats.allocs += 1;
            self.allocated.insert(base, order);
            return Ok(PhysAddr(base << SMALL_PAGE_SHIFT));
        }
        self.stats.failures += 1;
        Err(VmError::OutOfMemory { order })
    }

    /// Free a block previously returned by [`alloc_block`](Self::alloc_block)
    /// with the same order. Above-`MAX_ORDER` blocks decompose back into
    /// their `MAX_ORDER` chunks (which need no further coalescing — the
    /// chunks are already maximal).
    pub fn free_block(&mut self, addr: PhysAddr, order: u8) {
        if order <= MAX_ORDER {
            return self.free(addr, order);
        }
        let pfn = addr.0 >> SMALL_PAGE_SHIFT;
        assert_eq!(
            pfn % (1 << order),
            0,
            "freed block {addr:?} not aligned to order {order}"
        );
        match self.allocated.remove(&pfn) {
            Some(o) => assert_eq!(o, order, "block {addr:?} freed with wrong order"),
            None => panic!("double free or foreign free of block at {addr:?}"),
        }
        let chunk = 1u64 << MAX_ORDER;
        for i in 0..(1u64 << order) / chunk {
            let inserted = self.free[MAX_ORDER as usize].insert(pfn + i * chunk);
            debug_assert!(inserted, "free-list corruption at pfn {pfn:#x}");
        }
        self.free_frames += 1 << order;
        self.stats.frees += 1;
    }

    /// Allocate one naturally aligned block of order `order` from the
    /// *top* of physical memory (highest free address). This is the
    /// compaction free scanner's allocation path: migration targets are
    /// drawn from the opposite end of memory from the low-address blocks
    /// being vacated, so the two scanners converge instead of thrashing.
    pub fn alloc_topdown(&mut self, order: u8) -> VmResult<PhysAddr> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        if self.injected_failure(order) {
            return Err(VmError::OutOfMemory { order });
        }
        // Candidate per order: the block with the highest *top* address.
        let mut found: Option<(u8, u64)> = None;
        for o in order..=MAX_ORDER {
            if let Some(&pfn) = self.free[o as usize].iter().next_back() {
                let top = pfn + (1u64 << o);
                if found.is_none_or(|(fo, fp)| top > fp + (1u64 << fo)) {
                    found = Some((o, pfn));
                }
            }
        }
        let (mut o, mut pfn) = match found {
            Some(f) => f,
            None => {
                self.stats.failures += 1;
                return Err(VmError::OutOfMemory { order });
            }
        };
        self.free[o as usize].remove(&pfn);
        // Split down keeping the *upper* half each time, so the returned
        // block is the highest-addressed piece.
        while o > order {
            o -= 1;
            self.free[o as usize].insert(pfn);
            pfn += 1u64 << o;
            self.stats.splits += 1;
        }
        self.free_frames -= 1 << order;
        self.stats.allocs += 1;
        self.allocated.insert(pfn, order);
        Ok(PhysAddr(pfn << SMALL_PAGE_SHIFT))
    }

    /// Split a live allocated block of `order` into `2^order` individually
    /// allocated order-0 frames, in place — no frames change state, only
    /// the bookkeeping granularity. This is how a 2 MB page is *demoted*:
    /// the backing block stays where it is, but each 4 KB piece becomes
    /// independently freeable (and migratable) afterwards.
    pub fn split_allocated(&mut self, addr: PhysAddr, order: u8) {
        assert!(order <= MAX_ORDER);
        let pfn = addr.0 >> SMALL_PAGE_SHIFT;
        match self.allocated.remove(&pfn) {
            Some(o) => assert_eq!(o, order, "block {addr:?} split with wrong order"),
            None => panic!("split of unallocated block at {addr:?}"),
        }
        for i in 0..(1u64 << order) {
            self.allocated.insert(pfn + i, 0);
        }
    }

    /// Enumerate the allocated blocks inside `[base_pfn, base_pfn + span)`
    /// as `(base_pfn, order)` pairs, in address order. Returns `None` when
    /// the range is covered by a block *larger* than itself (so the range
    /// cannot be reasoned about in isolation). `span` must be a power of
    /// two and `base_pfn` aligned to it — the shape of a compaction
    /// candidate.
    pub fn allocated_blocks_in(&self, base_pfn: u64, span: u64) -> Option<Vec<(u64, u8)>> {
        debug_assert!(span.is_power_of_two() && base_pfn.is_multiple_of(span));
        let end = base_pfn + span;
        let mut out = Vec::new();
        let mut pos = base_pfn;
        while pos < end {
            if let Some(&ord) = self.allocated.get(&pos) {
                out.push((pos, ord));
                pos += 1u64 << ord;
                continue;
            }
            // Not an allocated base: must be inside a free block. The free
            // block may be *larger* than the queried span (coalescing does
            // not stop at the span boundary), so check the aligned cover of
            // `pos` at every order.
            let mut advance = None;
            for o in 0..=MAX_ORDER {
                let cover = pos & !((1u64 << o) - 1);
                if self.free[o as usize].contains(&cover) {
                    advance = Some(cover + (1u64 << o) - pos);
                    break;
                }
            }
            match advance {
                Some(s) => pos += s,
                // Interior of a covering *allocated* block: opaque to this
                // range.
                None => return None,
            }
        }
        Some(out)
    }

    /// Fault injection for adversarial tests: the next `count` allocations
    /// (either path) requesting order ≥ `min_order` fail with
    /// [`VmError::OutOfMemory`], counted as failures in the stats.
    pub fn inject_alloc_failures(&mut self, count: u64, min_order: u8) {
        self.inject_count = count;
        self.inject_min_order = min_order;
    }

    fn injected_failure(&mut self, order: u8) -> bool {
        if self.inject_count > 0 && order >= self.inject_min_order {
            self.inject_count -= 1;
            self.stats.failures += 1;
            true
        } else {
            false
        }
    }

    /// External-fragmentation index for a target order: the fraction of free
    /// memory that is *unusable* for an allocation of that order because it
    /// sits in smaller blocks. 0.0 means any free memory could satisfy the
    /// order; 1.0 means none of it could.
    pub fn fragmentation_index(&self, order: u8) -> f64 {
        if self.free_frames == 0 {
            return 0.0;
        }
        let mut usable = 0u64;
        for o in order..=MAX_ORDER {
            usable += (self.free[o as usize].len() as u64) << o;
        }
        1.0 - usable as f64 / self.free_frames as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageSize;

    fn mb(n: u64) -> u64 {
        n * 1024 * 1024
    }

    #[test]
    fn fresh_allocator_is_fully_free() {
        let a = BuddyAllocator::new(mb(64));
        assert_eq!(a.total_bytes(), mb(64));
        assert_eq!(a.free_bytes(), mb(64));
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
    }

    #[test]
    fn alloc_free_roundtrip_restores_state() {
        let mut a = BuddyAllocator::new(mb(16));
        let before = a.free_bytes();
        let b = a.alloc(0).unwrap();
        assert_eq!(a.free_bytes(), before - 4096);
        a.free(b, 0);
        assert_eq!(a.free_bytes(), before);
        // After coalescing everything is back to maximal blocks.
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
        assert_eq!(a.free_blocks_at(MAX_ORDER), 4);
    }

    #[test]
    fn large_page_order_alloc_is_aligned() {
        let mut a = BuddyAllocator::new(mb(8));
        let p = a.alloc(PageSize::Large2M.buddy_order()).unwrap();
        assert_eq!(p.0 % PageSize::Large2M.bytes(), 0);
    }

    #[test]
    fn exhaustion_returns_oom() {
        let mut a = BuddyAllocator::new(mb(4));
        // 4 MB = 2 large pages.
        let o9 = PageSize::Large2M.buddy_order();
        a.alloc(o9).unwrap();
        a.alloc(o9).unwrap();
        assert_eq!(a.alloc(o9), Err(VmError::OutOfMemory { order: o9 }));
        assert_eq!(a.stats().failures, 1);
    }

    #[test]
    fn small_allocs_fragment_large_orders() {
        let mut a = BuddyAllocator::new(mb(4));
        // Grab one 4 KB frame out of each 2 MB region: no order-9 block left.
        let mut held = Vec::new();
        let o9 = PageSize::Large2M.buddy_order();
        while a.largest_free_order().is_some_and(|o| o >= o9) {
            // allocate order-0 until the order-9 supply is gone
            held.push(a.alloc(0).unwrap());
            if held.len() > 10_000 {
                panic!("fragmentation never materialized");
            }
        }
        assert!(a.alloc(o9).is_err());
        assert!(a.fragmentation_index(o9) > 0.0);
        // Freeing everything coalesces back to clean order-10 blocks.
        for h in held {
            a.free(h, 0);
        }
        assert_eq!(a.free_bytes(), mb(4));
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
        assert_eq!(a.fragmentation_index(o9), 0.0);
    }

    #[test]
    fn distinct_blocks_do_not_overlap() {
        let mut a = BuddyAllocator::new(mb(4));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1024 {
            let p = a.alloc(0).unwrap();
            assert!(seen.insert(p.0), "duplicate frame {p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "double free or foreign free")]
    fn double_free_panics() {
        let mut a = BuddyAllocator::new(mb(4));
        let p = a.alloc(0).unwrap();
        a.free(p, 0);
        a.free(p, 0);
    }

    #[test]
    fn topdown_alloc_comes_from_the_high_end() {
        let mut a = BuddyAllocator::new(mb(8));
        let low = a.alloc(0).unwrap();
        let high = a.alloc_topdown(0).unwrap();
        assert_eq!(low.0, 0);
        assert_eq!(high.0, mb(8) - 4096, "topdown must return the last frame");
        // Repeated topdown allocations descend.
        let next = a.alloc_topdown(0).unwrap();
        assert_eq!(next.0, mb(8) - 2 * 4096);
        a.free(low, 0);
        a.free(high, 0);
        a.free(next, 0);
        assert_eq!(a.free_bytes(), mb(8));
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
    }

    #[test]
    fn split_allocated_enables_partial_free() {
        let mut a = BuddyAllocator::new(mb(8));
        let o9 = PageSize::Large2M.buddy_order();
        let block = a.alloc(o9).unwrap();
        let before = a.free_bytes();
        a.split_allocated(block, o9);
        assert_eq!(a.free_bytes(), before, "split moves no memory");
        // Each 4 KB piece is now independently freeable; freeing all of
        // them coalesces back to a clean heap.
        for i in 0..512 {
            a.free(PhysAddr(block.0 + i * 4096), 0);
        }
        assert_eq!(a.free_bytes(), mb(8));
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
    }

    #[test]
    #[should_panic(expected = "split of unallocated block")]
    fn split_of_free_block_panics() {
        let mut a = BuddyAllocator::new(mb(4));
        a.split_allocated(PhysAddr(0), 9);
    }

    #[test]
    fn allocated_blocks_in_reports_range_contents() {
        let mut a = BuddyAllocator::new(mb(8));
        // Empty range: no allocated blocks.
        assert_eq!(a.allocated_blocks_in(0, 512), Some(vec![]));
        let p0 = a.alloc(0).unwrap();
        let p1 = a.alloc(1).unwrap();
        let got = a.allocated_blocks_in(0, 512).unwrap();
        assert_eq!(
            got,
            vec![(p0.0 >> 12, 0), (p1.0 >> 12, 1)],
            "range must list both live blocks"
        );
        // A range interior to a larger covering block is opaque.
        let big = a.alloc(MAX_ORDER).unwrap();
        let base_pfn = big.0 >> 12;
        assert_eq!(a.allocated_blocks_in(base_pfn + 512, 512), None);
        assert_eq!(
            a.allocated_blocks_in(base_pfn, 1024),
            Some(vec![(base_pfn, MAX_ORDER)])
        );
    }

    #[test]
    fn injected_failures_hit_matching_orders_only() {
        let mut a = BuddyAllocator::new(mb(8));
        let o9 = PageSize::Large2M.buddy_order();
        a.inject_alloc_failures(2, o9);
        // Small allocations are unaffected.
        let small = a.alloc(0).unwrap();
        a.free(small, 0);
        // The next two order-9 requests fail despite plenty of memory.
        assert_eq!(a.alloc(o9), Err(VmError::OutOfMemory { order: o9 }));
        assert_eq!(a.alloc_topdown(o9), Err(VmError::OutOfMemory { order: o9 }));
        assert_eq!(a.stats().failures, 2);
        // The budget is spent; allocation works again.
        let p = a.alloc(o9).unwrap();
        a.free(p, o9);
    }

    #[test]
    fn gigantic_blocks_carve_aligned_runs() {
        let mut a = BuddyAllocator::new(mb(64));
        // Order 13 = 32 MB, well above MAX_ORDER.
        let p = a.alloc_block(13).unwrap();
        assert_eq!(p.0 % mb(32), 0);
        assert_eq!(a.free_bytes(), mb(32));
        let q = a.alloc_block(13).unwrap();
        assert_ne!(p, q);
        assert_eq!(a.alloc_block(13), Err(VmError::OutOfMemory { order: 13 }));
        a.free_block(p, 13);
        a.free_block(q, 13);
        assert_eq!(a.free_bytes(), mb(64));
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
    }

    #[test]
    fn gigantic_blocks_need_a_fully_free_aligned_run() {
        let mut a = BuddyAllocator::new(mb(64));
        // Pin one 4 KB frame in the first 32 MB half: only the second half
        // can still serve an order-13 request.
        let pin = a.alloc(0).unwrap();
        let p = a.alloc_block(13).unwrap();
        assert_eq!(p.0, mb(32), "must skip the fragmented first half");
        assert_eq!(a.alloc_block(13), Err(VmError::OutOfMemory { order: 13 }));
        a.free(pin, 0);
        a.free_block(p, 13);
        assert_eq!(a.free_bytes(), mb(64));
    }

    #[test]
    fn alloc_block_delegates_small_orders_to_the_buddy_path() {
        let mut a = BuddyAllocator::new(mb(8));
        let p = a.alloc_block(0).unwrap();
        let q = a.alloc_block(MAX_ORDER).unwrap();
        a.free_block(p, 0);
        a.free_block(q, MAX_ORDER);
        assert_eq!(a.free_bytes(), mb(8));
    }

    #[test]
    fn node_ranges_partition_the_extent() {
        let a = BuddyAllocator::with_nodes(mb(16), 2);
        assert_eq!(a.nodes(), 2);
        assert_eq!(a.free_bytes_on(0) + a.free_bytes_on(1), mb(16));
        assert_eq!(a.node_of(PhysAddr(0)), 0);
        assert_eq!(a.node_of(PhysAddr(mb(8) - 4096)), 0);
        assert_eq!(a.node_of(PhysAddr(mb(8))), 1);
        assert_eq!(a.node_of(PhysAddr(mb(16) - 4096)), 1);
    }

    #[test]
    fn single_node_allocator_matches_uma_behavior() {
        let mut uma = BuddyAllocator::new(mb(8));
        let mut one = BuddyAllocator::with_nodes(mb(8), 1);
        for _ in 0..64 {
            assert_eq!(uma.alloc(0).unwrap(), one.alloc(0).unwrap());
        }
        assert_eq!(uma.alloc(9).unwrap(), one.alloc_on_node(0, 9).unwrap());
        assert_eq!(one.node_of(PhysAddr(mb(7))), 0);
    }

    #[test]
    fn alloc_on_node_stays_on_node_until_exhausted() {
        let mut a = BuddyAllocator::with_nodes(mb(8), 2);
        let o9 = PageSize::Large2M.buddy_order();
        // Node 1 serves from its own half first.
        let p = a.alloc_on_node(1, o9).unwrap();
        assert_eq!(a.node_of(p), 1);
        let q = a.alloc_on_node(1, o9).unwrap();
        assert_eq!(a.node_of(q), 1);
        assert_eq!(a.free_bytes_on(1), 0);
        // Exhausted: falls back to node 0 rather than failing.
        let r = a.alloc_on_node(1, o9).unwrap();
        assert_eq!(a.node_of(r), 0);
        // Blocks remain properly aligned and freeable.
        a.free(p, o9);
        a.free(q, o9);
        a.free(r, o9);
        assert_eq!(a.free_bytes(), mb(8));
    }

    #[test]
    fn node_blocks_never_straddle_the_boundary() {
        let mut a = BuddyAllocator::with_nodes(mb(16), 2);
        while let Ok(p) = a.alloc(MAX_ORDER) {
            let node_first = a.node_of(p);
            let node_last = a.node_of(PhysAddr(p.0 + (4096 << MAX_ORDER) - 4096));
            assert_eq!(node_first, node_last, "block at {p:?} straddles nodes");
        }
    }

    #[test]
    fn alloc_on_node_oom_only_when_every_node_is_empty() {
        let mut a = BuddyAllocator::with_nodes(mb(8), 2);
        let o9 = PageSize::Large2M.buddy_order();
        // 2 large pages per node; node 0 then drains node 1 via fallback.
        for _ in 0..4 {
            a.alloc_on_node(0, o9).unwrap();
        }
        assert_eq!(
            a.alloc_on_node(0, o9),
            Err(VmError::OutOfMemory { order: o9 })
        );
        assert_eq!(a.stats().failures, 1);
    }

    #[test]
    fn node_targeted_gigantic_blocks_stay_on_node_until_exhausted() {
        // 4 GB over 2 nodes: each node holds two aligned 1 GB runs.
        let g = 30u8 - 12; // order of a 1 GB block in 4 KB frames
        let mut a = BuddyAllocator::with_nodes(4u64 << 30, 2);
        let p = a.alloc_block_on_node(1, g).unwrap();
        assert_eq!(a.node_of(p), 1);
        assert_eq!(p.0 % (1u64 << 30), 0);
        let q = a.alloc_block_on_node(1, g).unwrap();
        assert_eq!(a.node_of(q), 1);
        assert_eq!(a.free_bytes_on(1), 0);
        // Node 1 exhausted: the gigantic path falls back like alloc_on_node.
        let r = a.alloc_block_on_node(1, g).unwrap();
        assert_eq!(a.node_of(r), 0);
        // A pinned frame on node 0 kills its remaining aligned run.
        let pin = a.alloc_on_node(0, 0).unwrap();
        assert_eq!(a.node_of(pin), 0);
        assert_eq!(
            a.alloc_block_on_node(0, g),
            Err(VmError::OutOfMemory { order: g })
        );
        a.free(pin, 0);
        a.free_block(p, g);
        a.free_block(q, g);
        a.free_block(r, g);
        assert_eq!(a.free_bytes(), 4u64 << 30);
    }

    #[test]
    fn alloc_block_on_node_delegates_buddy_orders() {
        let mut a = BuddyAllocator::with_nodes(mb(16), 2);
        let p = a.alloc_block_on_node(1, 3).unwrap();
        assert_eq!(a.node_of(p), 1);
        a.free_block(p, 3);
        assert_eq!(a.free_bytes(), mb(16));
    }

    #[test]
    fn split_and_merge_counters_move() {
        let mut a = BuddyAllocator::new(mb(4));
        let p = a.alloc(0).unwrap();
        assert!(a.stats().splits >= 1);
        a.free(p, 0);
        assert!(a.stats().merges >= 1);
    }
}
