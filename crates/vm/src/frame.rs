//! Buddy allocator for physical page frames.
//!
//! The Linux kernels the paper ran on back both 4 KB pages and — through the
//! boot-time `hugetlbfs` reservation — 2 MB pages from a binary buddy
//! allocator. We reproduce that substrate: order 0 is one 4 KB frame and
//! order 9 is one 2 MB frame, so a large page is a naturally aligned block
//! of 512 base frames. This is also what makes the paper's *preallocation*
//! argument concrete: once the machine has been up for a while the buddy
//! heap fragments and order-9 blocks become scarce, which is why the huge
//! pool is reserved at "boot" (pool construction) in [`crate::hugetlbfs`].

use crate::addr::{PhysAddr, SMALL_PAGE_SHIFT};
use crate::error::{VmError, VmResult};
use std::collections::BTreeSet;

/// Maximum buddy order supported (order 10 = 4 MB), mirroring Linux's
/// historical `MAX_ORDER`.
pub const MAX_ORDER: u8 = 10;

/// Statistics kept by the frame allocator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Successful allocations, by count.
    pub allocs: u64,
    /// Frees, by count.
    pub frees: u64,
    /// Splits of a larger block into two buddies.
    pub splits: u64,
    /// Coalesces of two buddies into a larger block.
    pub merges: u64,
    /// Allocation failures.
    pub failures: u64,
}

/// Binary buddy allocator over a contiguous physical extent.
///
/// Frames are identified by their base [`PhysAddr`]; an order-`k` block is
/// `2^k` base (4 KB) frames, naturally aligned to its own size.
#[derive(Debug)]
pub struct BuddyAllocator {
    /// Free lists per order; ordered sets so behaviour is deterministic
    /// (lowest address first) and buddy membership checks are O(log n).
    free: Vec<BTreeSet<u64>>, // physical frame number (4 KB units) of block base
    /// Live allocations: block base pfn → order. Catches double frees and
    /// wrong-order frees.
    allocated: std::collections::HashMap<u64, u8>,
    /// Total managed base frames.
    total_frames: u64,
    /// Currently free base frames.
    free_frames: u64,
    stats: FrameStats,
}

impl BuddyAllocator {
    /// Create an allocator managing `total_bytes` of physical memory
    /// starting at physical address 0. `total_bytes` is rounded down to a
    /// whole number of base frames.
    pub fn new(total_bytes: u64) -> Self {
        let total_frames = total_bytes >> SMALL_PAGE_SHIFT;
        let mut a = BuddyAllocator {
            free: (0..=MAX_ORDER).map(|_| BTreeSet::new()).collect(),
            allocated: std::collections::HashMap::new(),
            total_frames,
            free_frames: 0,
            stats: FrameStats::default(),
        };
        // Seed the free lists with maximal aligned blocks.
        let mut pfn = 0u64;
        while pfn < total_frames {
            let mut order = MAX_ORDER;
            loop {
                let span = 1u64 << order;
                if pfn.is_multiple_of(span) && pfn + span <= total_frames {
                    break;
                }
                order -= 1;
            }
            a.free[order as usize].insert(pfn);
            a.free_frames += 1 << order;
            pfn += 1 << order;
        }
        a
    }

    /// Total bytes managed.
    pub fn total_bytes(&self) -> u64 {
        self.total_frames << SMALL_PAGE_SHIFT
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free_frames << SMALL_PAGE_SHIFT
    }

    /// Snapshot of the allocator statistics.
    pub fn stats(&self) -> FrameStats {
        self.stats
    }

    /// Number of free blocks at exactly the given order.
    pub fn free_blocks_at(&self, order: u8) -> usize {
        self.free[order as usize].len()
    }

    /// Largest order with at least one free block, if any.
    pub fn largest_free_order(&self) -> Option<u8> {
        (0..=MAX_ORDER)
            .rev()
            .find(|&o| !self.free[o as usize].is_empty())
    }

    /// Allocate one naturally aligned block of order `order`, returning its
    /// base physical address.
    pub fn alloc(&mut self, order: u8) -> VmResult<PhysAddr> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        // Find the smallest order >= requested with a free block.
        let mut found = None;
        for o in order..=MAX_ORDER {
            if let Some(&pfn) = self.free[o as usize].iter().next() {
                found = Some((o, pfn));
                break;
            }
        }
        let (mut o, pfn) = match found {
            Some(f) => f,
            None => {
                self.stats.failures += 1;
                return Err(VmError::OutOfMemory { order });
            }
        };
        self.free[o as usize].remove(&pfn);
        // Split down to the requested order, returning the upper halves.
        while o > order {
            o -= 1;
            let buddy = pfn + (1u64 << o);
            self.free[o as usize].insert(buddy);
            self.stats.splits += 1;
        }
        self.free_frames -= 1 << order;
        self.stats.allocs += 1;
        self.allocated.insert(pfn, order);
        Ok(PhysAddr(pfn << SMALL_PAGE_SHIFT))
    }

    /// Free a block previously returned by [`alloc`](Self::alloc) with the
    /// same order. Coalesces with free buddies as far as possible.
    pub fn free(&mut self, addr: PhysAddr, order: u8) {
        assert!(order <= MAX_ORDER);
        let mut pfn = addr.0 >> SMALL_PAGE_SHIFT;
        assert_eq!(
            pfn % (1 << order),
            0,
            "freed block {addr:?} not aligned to order {order}"
        );
        match self.allocated.remove(&pfn) {
            Some(o) => assert_eq!(o, order, "block {addr:?} freed with wrong order"),
            None => panic!("double free or foreign free of block at {addr:?}"),
        }
        let mut o = order;
        while o < MAX_ORDER {
            let buddy = pfn ^ (1u64 << o);
            if self.free[o as usize].remove(&buddy) {
                pfn = pfn.min(buddy);
                o += 1;
                self.stats.merges += 1;
            } else {
                break;
            }
        }
        let inserted = self.free[o as usize].insert(pfn);
        debug_assert!(inserted, "free-list corruption at pfn {pfn:#x}");
        self.free_frames += 1 << order;
        self.stats.frees += 1;
    }

    /// External-fragmentation index for a target order: the fraction of free
    /// memory that is *unusable* for an allocation of that order because it
    /// sits in smaller blocks. 0.0 means any free memory could satisfy the
    /// order; 1.0 means none of it could.
    pub fn fragmentation_index(&self, order: u8) -> f64 {
        if self.free_frames == 0 {
            return 0.0;
        }
        let mut usable = 0u64;
        for o in order..=MAX_ORDER {
            usable += (self.free[o as usize].len() as u64) << o;
        }
        1.0 - usable as f64 / self.free_frames as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageSize;

    fn mb(n: u64) -> u64 {
        n * 1024 * 1024
    }

    #[test]
    fn fresh_allocator_is_fully_free() {
        let a = BuddyAllocator::new(mb(64));
        assert_eq!(a.total_bytes(), mb(64));
        assert_eq!(a.free_bytes(), mb(64));
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
    }

    #[test]
    fn alloc_free_roundtrip_restores_state() {
        let mut a = BuddyAllocator::new(mb(16));
        let before = a.free_bytes();
        let b = a.alloc(0).unwrap();
        assert_eq!(a.free_bytes(), before - 4096);
        a.free(b, 0);
        assert_eq!(a.free_bytes(), before);
        // After coalescing everything is back to maximal blocks.
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
        assert_eq!(a.free_blocks_at(MAX_ORDER), 4);
    }

    #[test]
    fn large_page_order_alloc_is_aligned() {
        let mut a = BuddyAllocator::new(mb(8));
        let p = a.alloc(PageSize::Large2M.buddy_order()).unwrap();
        assert_eq!(p.0 % PageSize::Large2M.bytes(), 0);
    }

    #[test]
    fn exhaustion_returns_oom() {
        let mut a = BuddyAllocator::new(mb(4));
        // 4 MB = 2 large pages.
        let o9 = PageSize::Large2M.buddy_order();
        a.alloc(o9).unwrap();
        a.alloc(o9).unwrap();
        assert_eq!(a.alloc(o9), Err(VmError::OutOfMemory { order: o9 }));
        assert_eq!(a.stats().failures, 1);
    }

    #[test]
    fn small_allocs_fragment_large_orders() {
        let mut a = BuddyAllocator::new(mb(4));
        // Grab one 4 KB frame out of each 2 MB region: no order-9 block left.
        let mut held = Vec::new();
        let o9 = PageSize::Large2M.buddy_order();
        while a.largest_free_order().is_some_and(|o| o >= o9) {
            // allocate order-0 until the order-9 supply is gone
            held.push(a.alloc(0).unwrap());
            if held.len() > 10_000 {
                panic!("fragmentation never materialized");
            }
        }
        assert!(a.alloc(o9).is_err());
        assert!(a.fragmentation_index(o9) > 0.0);
        // Freeing everything coalesces back to clean order-10 blocks.
        for h in held {
            a.free(h, 0);
        }
        assert_eq!(a.free_bytes(), mb(4));
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
        assert_eq!(a.fragmentation_index(o9), 0.0);
    }

    #[test]
    fn distinct_blocks_do_not_overlap() {
        let mut a = BuddyAllocator::new(mb(4));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1024 {
            let p = a.alloc(0).unwrap();
            assert!(seen.insert(p.0), "duplicate frame {p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "double free or foreign free")]
    fn double_free_panics() {
        let mut a = BuddyAllocator::new(mb(4));
        let p = a.alloc(0).unwrap();
        a.free(p, 0);
        a.free(p, 0);
    }

    #[test]
    fn split_and_merge_counters_move() {
        let mut a = BuddyAllocator::new(mb(4));
        let p = a.alloc(0).unwrap();
        assert!(a.stats().splits >= 1);
        a.free(p, 0);
        assert!(a.stats().merges >= 1);
    }
}
