//! Transparent promotion of base-granule regions to the next ladder rung
//! — the paper's §6 future work (*"transparent native kernel support for
//! large pages is still not present in the Linux kernel"*; Linux later
//! grew exactly this as THP/khugepaged).
//!
//! [`promote_region`] collapses a base-granule anonymous region into
//! next-rung mappings the way khugepaged does: allocate a block-sized
//! frame, migrate the small pages into it, replace their PTEs with the
//! block leaf, and free the old frames. On x86-64-2007 that is the
//! classic 512 × 4 KB → one 2 MB PMD leaf; on an ARM64 granule the next
//! rung is a contiguous-bit block. Promotion is *opportunistic*: it
//! needs a free block-order frame, so on a fragmented buddy heap it
//! degrades gracefully — the precise failure mode whose avoidance
//! motivates the paper's boot-time reservation.

use crate::addr::VirtAddr;
use crate::arch::MMArch;
use crate::error::{VmError, VmResult};
use crate::frame::BuddyAllocator;
use crate::vma::{AddressSpace, Backing};

/// The result of a promotion attempt over a region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PromotionReport {
    /// Next-rung chunks successfully promoted.
    pub promoted: u64,
    /// Chunks skipped because not every small page was populated.
    pub skipped_unpopulated: u64,
    /// Chunks skipped because no block-order frame was available
    /// (fragmentation).
    pub skipped_no_memory: u64,
    /// Chunks skipped because their pages carry *different* protection
    /// bits: collapsing them into one leaf would silently widen (or
    /// narrow) some pages' permissions, so they are left alone.
    pub skipped_mixed_flags: u64,
    /// Small pages migrated (freed back to the allocator).
    pub small_pages_freed: u64,
    /// Bytes of one promoted chunk — the target rung's size (zero until
    /// a region has been examined).
    pub chunk_bytes: u64,
}

impl PromotionReport {
    /// Bytes now backed by the promoted rung.
    pub fn promoted_bytes(&self) -> u64 {
        self.promoted * self.chunk_bytes
    }
}

/// Promote the anonymous base-granule region containing `start` to the
/// architecture's next ladder rung.
///
/// Every fully populated, chunk-aligned piece of the region is migrated
/// to the next rung; partially populated or unaligned edges are left at
/// the base granule (as khugepaged does). The caller is responsible for
/// shooting down stale TLB entries afterwards (the simulator flushes the
/// TLBs of every core, modelling the IPI shootdown).
///
/// # Errors
/// * [`VmError::NotMapped`] if `start` is not in any region;
/// * [`VmError::Misaligned`] if the region is already block-mapped or not
///   anonymous (shared files belong to their filesystem and are never
///   collapsed).
pub fn promote_region(
    aspace: &mut AddressSpace,
    frames: &mut BuddyAllocator,
    start: VirtAddr,
) -> VmResult<PromotionReport> {
    let arch = aspace.page_table().arch();
    let vma = aspace.find_vma(start).ok_or(VmError::NotMapped(start))?;
    if vma.page_size != arch.base() || !matches!(vma.backing, Backing::Anonymous) {
        return Err(VmError::Misaligned {
            addr: vma.start,
            size: vma.page_size,
        });
    }
    let (region_start, region_len) = (vma.start, vma.len);
    let large = arch
        .next_rung_above(vma.page_size)
        .ok_or(VmError::UnsupportedPageSize(vma.page_size))?
        .size;
    let per = large.bytes() / arch.base().bytes();

    let mut report = PromotionReport {
        chunk_bytes: large.bytes(),
        ..PromotionReport::default()
    };
    // First fully-contained chunk-aligned piece.
    let mut chunk = VirtAddr(large.round_up(region_start.0));
    while chunk.0 + large.bytes() <= region_start.0 + region_len {
        match try_collapse_chunk(aspace, frames, chunk)? {
            ChunkCollapse::Promoted => {
                report.promoted += 1;
                report.small_pages_freed += per;
            }
            ChunkCollapse::AlreadyLarge | ChunkCollapse::Unpopulated => {
                report.skipped_unpopulated += 1;
            }
            ChunkCollapse::MixedFlags => report.skipped_mixed_flags += 1,
            ChunkCollapse::NoMemory => report.skipped_no_memory += 1,
        }
        chunk = chunk.add(large.bytes());
    }
    if report.promoted > 0 {
        aspace.note_promotion(region_start);
    }
    Ok(report)
}

/// Outcome of a single-chunk collapse attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ChunkCollapse {
    /// Collapsed into one next-rung leaf; the small frames were freed.
    Promoted,
    /// The chunk is already backed by a block leaf.
    AlreadyLarge,
    /// Not all small pages are present.
    Unpopulated,
    /// The pages disagree on protection bits; collapsing would change
    /// the permissions of some of them.
    MixedFlags,
    /// No free block-order frame (fragmentation).
    NoMemory,
}

/// Attempt to collapse the one chunk-aligned piece at `chunk` to the
/// rung above the base granule (the shared engine of [`promote_region`]
/// and the incremental [`crate::khugepaged::Khugepaged`] daemon).
///
/// The chunk is inspected *before* anything is touched: if its pages are
/// incomplete or carry heterogeneous protection, the mapping is left
/// untouched. Only protection bits (writable/executable) must agree;
/// accessed/dirty bits are hardware-set status and are OR-combined into
/// the new leaf instead.
pub(crate) fn try_collapse_chunk(
    aspace: &mut AddressSpace,
    frames: &mut BuddyAllocator,
    chunk: VirtAddr,
) -> VmResult<ChunkCollapse> {
    let arch = aspace.page_table().arch();
    let small = arch.base();
    let large = arch
        .next_rung_above(small)
        .ok_or(VmError::UnsupportedPageSize(small))?
        .size;
    let per = large.bytes() / small.bytes();
    debug_assert!(chunk.is_aligned(large));

    // Every small page must be present with uniform protection.
    let mut old_frames = Vec::with_capacity(per as usize);
    let mut flags = match aspace.page_table().probe(chunk) {
        Some(t) if t.size != small => return Ok(ChunkCollapse::AlreadyLarge),
        Some(t) => {
            old_frames.push(t.pa.frame_base(small));
            t.flags
        }
        None => return Ok(ChunkCollapse::Unpopulated),
    };
    for i in 1..per {
        match aspace.page_table().probe(chunk.add(i * small.bytes())) {
            Some(t) if t.size == small => {
                if (t.flags.writable, t.flags.executable) != (flags.writable, flags.executable) {
                    return Ok(ChunkCollapse::MixedFlags);
                }
                flags.accessed |= t.flags.accessed;
                flags.dirty |= t.flags.dirty;
                old_frames.push(t.pa.frame_base(small));
            }
            _ => return Ok(ChunkCollapse::Unpopulated),
        }
    }
    // khugepaged order: reserve the target frame first; bail out without
    // touching the mapping if memory is too fragmented.
    let target = match frames.alloc(large.buddy_order()) {
        Ok(f) => f,
        Err(_) => return Ok(ChunkCollapse::NoMemory),
    };
    // Migrate: unmap the small pages, free their frames, install the
    // block leaf. (Data migration is implicit — the simulator's values
    // live host-side; the cost is charged by the caller.)
    for i in 0..per {
        aspace.unmap_page(chunk.add(i * small.bytes()), small)?;
    }
    for f in old_frames {
        frames.free(f, small.buddy_order());
    }
    aspace.map_page(frames, chunk, target, large, flags)?;
    Ok(ChunkCollapse::Promoted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageSize;
    use crate::page_table::{AccessKind, PteFlags};
    use crate::vma::Populate;

    fn setup(len: u64, populate: Populate) -> (BuddyAllocator, AddressSpace, VirtAddr) {
        let mut frames = BuddyAllocator::new(256 * 1024 * 1024);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        let base = asp
            .mmap(
                &mut frames,
                len,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                populate,
                "heap",
            )
            .unwrap();
        (frames, asp, base)
    }

    #[test]
    fn promotes_fully_populated_region() {
        let len = 4 * PageSize::Large2M.bytes();
        let (mut frames, mut asp, base) = setup(len, Populate::Eager);
        let r = promote_region(&mut asp, &mut frames, base).unwrap();
        assert_eq!(r.promoted, 4);
        assert_eq!(r.small_pages_freed, 4 * 512);
        assert_eq!(r.skipped_no_memory, 0);
        // Translations now come from 2 MB leaves.
        let t = asp
            .access(&mut frames, base.add(0x1234), AccessKind::Read)
            .unwrap()
            .translation();
        assert_eq!(t.size, PageSize::Large2M);
    }

    #[test]
    fn partially_populated_chunks_are_skipped() {
        let len = 2 * PageSize::Large2M.bytes();
        let (mut frames, mut asp, base) = setup(len, Populate::OnDemand);
        // Touch every page of the first chunk only.
        for i in 0..512u64 {
            asp.access(&mut frames, base.add(i * 4096), AccessKind::Write)
                .unwrap();
        }
        // And one page of the second.
        asp.access(
            &mut frames,
            base.add(PageSize::Large2M.bytes()),
            AccessKind::Write,
        )
        .unwrap();
        let r = promote_region(&mut asp, &mut frames, base).unwrap();
        assert_eq!(r.promoted, 1);
        assert_eq!(r.skipped_unpopulated, 1);
    }

    #[test]
    fn fragmentation_blocks_promotion_gracefully() {
        let len = PageSize::Large2M.bytes();
        let (mut frames, mut asp, base) = setup(len, Populate::Eager);
        // Exhaust all order-9 blocks by pinning one 4 KB page out of each.
        let mut pins = Vec::new();
        while frames.alloc(PageSize::Large2M.buddy_order()).is_ok() {
            // keep the large block, never free: simplest way to drain
        }
        while let Ok(p) = frames.alloc(0) {
            pins.push(p);
            if pins.len() > 100_000 {
                break;
            }
        }
        let r = promote_region(&mut asp, &mut frames, base).unwrap();
        assert_eq!(r.promoted, 0);
        assert_eq!(r.skipped_no_memory, 1);
        // The region still works with its 4 KB mappings.
        let t = asp
            .access(&mut frames, base, AccessKind::Read)
            .unwrap()
            .translation();
        assert_eq!(t.size, PageSize::Small4K);
    }

    #[test]
    fn mixed_protection_chunks_are_skipped_not_widened() {
        let len = 2 * PageSize::Large2M.bytes();
        let (mut frames, mut asp, base) = setup(len, Populate::Eager);
        // One page of the first chunk becomes read-only (the pattern of a
        // guard page or a COW-protected page). Collapsing that chunk with
        // the first PTE's RW flags would silently make it writable again.
        let ro_page = base.add(3 * 4096);
        asp.page_table_mut()
            .protect(ro_page, PteFlags::ro())
            .unwrap();
        let r = promote_region(&mut asp, &mut frames, base).unwrap();
        assert_eq!(r.promoted, 1, "the uniform chunk still collapses");
        assert_eq!(r.skipped_mixed_flags, 1);
        // The mixed chunk keeps its 4 KB mappings and its protection.
        let t = asp
            .access(&mut frames, base, AccessKind::Read)
            .unwrap()
            .translation();
        assert_eq!(t.size, PageSize::Small4K);
        assert_eq!(
            asp.access(&mut frames, ro_page, AccessKind::Write),
            Err(VmError::ProtectionViolation(ro_page))
        );
        assert!(asp.access(&mut frames, ro_page, AccessKind::Read).is_ok());
    }

    #[test]
    fn accessed_dirty_bits_do_not_block_collapse() {
        let len = PageSize::Large2M.bytes();
        let (mut frames, mut asp, base) = setup(len, Populate::Eager);
        // Dirty one page; the rest keep clean hardware status bits. A/D
        // heterogeneity is not a protection mismatch — the chunk must
        // still collapse, with the leaf inheriting the OR of the bits.
        asp.access(&mut frames, base.add(7 * 4096), AccessKind::Write)
            .unwrap();
        let r = promote_region(&mut asp, &mut frames, base).unwrap();
        assert_eq!(r.promoted, 1);
        assert_eq!(r.skipped_mixed_flags, 0);
        let flags = asp.page_table().probe(base).unwrap().flags;
        assert!(flags.dirty && flags.accessed);
    }

    #[test]
    fn promotion_preserves_frame_accounting() {
        let len = 2 * PageSize::Large2M.bytes();
        let (mut frames, mut asp, base) = setup(len, Populate::Eager);
        let before = frames.free_bytes();
        promote_region(&mut asp, &mut frames, base).unwrap();
        // 2 large frames allocated, 1024 small frames freed, and the two
        // now-empty leaf page-table nodes reclaimed: net +2 node frames.
        assert_eq!(frames.free_bytes(), before + 2 * 4096);
    }

    #[test]
    fn promotion_targets_the_next_rung_on_arm64() {
        // On the ARM64 4 KB granule the rung above 4 KB is the 64 KB
        // contiguous block (16 PTEs, one TLB entry) — not 2 MB.
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let mut asp = AddressSpace::new_for(&mut frames, crate::arch::Arch::ARM64_4K).unwrap();
        let base = asp
            .mmap(
                &mut frames,
                2 * PageSize::Page64K.bytes(),
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "heap",
            )
            .unwrap();
        let r = promote_region(&mut asp, &mut frames, base).unwrap();
        assert_eq!(r.promoted, 2);
        assert_eq!(r.small_pages_freed, 2 * 16);
        assert_eq!(r.chunk_bytes, PageSize::Page64K.bytes());
        let t = asp
            .access(&mut frames, base.add(0x5000), AccessKind::Read)
            .unwrap()
            .translation();
        assert_eq!(t.size, PageSize::Page64K);
    }

    #[test]
    fn shared_regions_are_rejected() {
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let mut pool = crate::hugetlbfs::HugePool::reserve(&mut frames, 4).unwrap();
        let seg = pool.create_file("f", PageSize::Large2M.bytes()).unwrap();
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        let base = asp
            .mmap(
                &mut frames,
                seg.len_bytes(),
                PageSize::Large2M,
                PteFlags::rw(),
                Backing::Shared(seg),
                Populate::Eager,
                "shared",
            )
            .unwrap();
        assert!(matches!(
            promote_region(&mut asp, &mut frames, base),
            Err(VmError::Misaligned { .. })
        ));
    }

    #[test]
    fn unmapped_address_rejected() {
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let mut asp = AddressSpace::new(&mut frames).unwrap();
        assert!(matches!(
            promote_region(&mut asp, &mut frames, VirtAddr(0xdead_0000)),
            Err(VmError::NotMapped(_))
        ));
    }
}
