//! Translation architectures: the [`MMArch`] trait and the page-size
//! *ladder* it declares.
//!
//! The paper answers "does large-page support buy scalability?" for one
//! point in the design space: x86-64 circa 2007 with {4 KB, 2 MB}. This
//! module turns that hard-coded pair into data. An architecture declares
//!
//! * its radix **walk shape** — offset bits of a level-0 leaf, index bits
//!   per level, and level count — which fixes how many memory references
//!   a walk of each size costs (a 1 GB walk is two references, a 2 MB walk
//!   three, a 4 KB walk four);
//! * its **ladder** of translation sizes, each a [`Rung`] pinning the leaf
//!   level and, for ARM-style contiguous-bit blocks, how many consecutive
//!   leaf PTEs one TLB entry covers.
//!
//! Everything above `lpomp-vm` (TLB arrays, walk charging, promotion
//! daemons, the analytic backend) iterates a ladder by *rank* instead of
//! matching on a closed enum. [`Arch::X86_64_2007`] instantiates today's
//! behavior byte-identically; the other presets re-ask the paper's
//! question on modern x86 (1 GB pages) and ARM64 granules.

use crate::addr::{PageSize, VirtAddr, SMALL_PAGE_SHIFT};

/// Maximum rungs any architecture's ladder may declare. Sized for
/// {base, contiguous block, level-1 block, level-2 block} plus slack;
/// fixed so TLB geometries can be `const` arrays indexed by rank.
pub const MAX_LADDER: usize = 4;

/// Shape of the radix page-table walk: where the offset ends and how many
/// index bits each level consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WalkShape {
    /// In-page offset bits of a level-0 leaf (the base granule's shift).
    pub base_shift: u32,
    /// Virtual-address bits consumed per level (9 on x86-64, 11 on an
    /// ARM64 16 KB granule).
    pub index_bits: u32,
    /// Number of radix levels (root is level `levels - 1`).
    pub levels: u8,
}

impl WalkShape {
    /// Entries in one table node.
    #[inline]
    pub const fn entries_per_table(&self) -> usize {
        1 << self.index_bits
    }

    /// Bytes occupied by one table node (8-byte entries).
    #[inline]
    pub const fn table_bytes(&self) -> u64 {
        (self.entries_per_table() as u64) * 8
    }

    /// Buddy order of the frame backing one table node. A 9-bit level is
    /// one 4 KB frame (order 0); an 11-bit level needs 16 KB (order 2).
    #[inline]
    pub const fn table_order(&self) -> u8 {
        let b = self.table_bytes();
        let shift = b.trailing_zeros();
        if shift <= SMALL_PAGE_SHIFT {
            0
        } else {
            (shift - SMALL_PAGE_SHIFT) as u8
        }
    }

    /// Index into table level `level` for `va` (0 = leaf level).
    #[inline]
    pub const fn pt_index(&self, va: VirtAddr, level: u8) -> usize {
        let shift = self.base_shift + self.index_bits * level as u32;
        ((va.0 >> shift) & ((1u64 << self.index_bits) - 1)) as usize
    }

    /// Shift of a leaf entry at `level` — the bytes one PTE at that level
    /// maps (before any contiguous-bit replication).
    #[inline]
    pub const fn level_shift(&self, level: u8) -> u32 {
        self.base_shift + self.index_bits * level as u32
    }
}

/// One rung of an architecture's page-size ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rung {
    /// The translation size one TLB entry of this rung covers.
    pub size: PageSize,
    /// Page-table level of the leaf entry (0 = last-level table).
    pub leaf_level: u8,
    /// Consecutive leaf PTEs one mapping writes. 1 for a normal leaf;
    /// above 1 this models ARM's contiguous-bit blocks, where N adjacent
    /// PTEs carry a hint that lets the TLB cache them as one entry while
    /// the walker still reads exactly one PTE.
    pub replicate: u32,
}

impl Rung {
    /// Memory references a hardware walk of this rung performs under
    /// `shape` (one per level from the root down to the leaf).
    #[inline]
    pub const fn walk_levels(&self, shape: &WalkShape) -> u8 {
        shape.levels - self.leaf_level
    }
}

/// A memory-management architecture: walk shape plus page-size ladder.
///
/// Implemented by [`Arch`]'s presets; kept as a trait so experiments can
/// define bespoke geometries without touching the enum.
pub trait MMArch {
    /// Short stable identifier (store fingerprints, result headers).
    fn name(&self) -> &'static str;
    /// The radix walk geometry.
    fn walk_shape(&self) -> WalkShape;
    /// Translation sizes, ascending; rank 0 is the base granule.
    fn ladder(&self) -> &'static [Rung];

    /// Base granule (rank 0).
    fn base(&self) -> PageSize {
        self.ladder()[0].size
    }

    /// The rung at `rank`. Panics when out of range.
    fn rung(&self, rank: usize) -> Rung {
        self.ladder()[rank]
    }

    /// Rank of `size` in the ladder, if the architecture supports it.
    fn rank_of(&self, size: PageSize) -> Option<usize> {
        self.ladder().iter().position(|r| r.size == size)
    }

    /// The rung describing `size`, if supported.
    fn rung_of(&self, size: PageSize) -> Option<Rung> {
        self.ladder().iter().copied().find(|r| r.size == size)
    }

    /// The rung one step above `size` — what khugepaged/THP promotion
    /// targets. `None` at the top of the ladder.
    fn next_rung_above(&self, size: PageSize) -> Option<Rung> {
        let rank = self.rank_of(size)?;
        self.ladder().get(rank + 1).copied()
    }
}

/// x86-64 long mode, 2007: 4 levels × 9 bits; 4 KB PTE leaf + 2 MB PD
/// leaf. Rung-for-rung identical to the original two-variant model.
const X86_64_2007_LADDER: [Rung; 2] = [
    Rung {
        size: PageSize::Small4K,
        leaf_level: 0,
        replicate: 1,
    },
    Rung {
        size: PageSize::Large2M,
        leaf_level: 1,
        replicate: 1,
    },
];

/// Modern x86-64: the 2007 ladder plus a 1 GB PDPT leaf, whose walk is
/// one level shorter again.
const X86_64_MODERN_LADDER: [Rung; 3] = [
    Rung {
        size: PageSize::Small4K,
        leaf_level: 0,
        replicate: 1,
    },
    Rung {
        size: PageSize::Large2M,
        leaf_level: 1,
        replicate: 1,
    },
    Rung {
        size: PageSize::Page1G,
        leaf_level: 2,
        replicate: 1,
    },
];

/// ARM64, 4 KB granule: 4 levels × 9 bits; the middle rung is the 64 KB
/// contiguous-bit block (16 adjacent level-0 PTEs, one TLB entry).
const ARM64_4K_LADDER: [Rung; 3] = [
    Rung {
        size: PageSize::Small4K,
        leaf_level: 0,
        replicate: 1,
    },
    Rung {
        size: PageSize::Page64K,
        leaf_level: 0,
        replicate: 16,
    },
    Rung {
        size: PageSize::Large2M,
        leaf_level: 1,
        replicate: 1,
    },
];

/// ARM64, 16 KB granule: 3 levels × 11 bits; 2 MB is the contiguous-bit
/// run of 128 level-0 PTEs and 32 MB the level-1 block.
const ARM64_16K_LADDER: [Rung; 3] = [
    Rung {
        size: PageSize::Page16K,
        leaf_level: 0,
        replicate: 1,
    },
    Rung {
        size: PageSize::Large2M,
        leaf_level: 0,
        replicate: 128,
    },
    Rung {
        size: PageSize::Page32M,
        leaf_level: 1,
        replicate: 1,
    },
];

/// The translation architectures shipped as presets.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Arch {
    /// x86-64 long mode as the paper's 2007 platforms implement it:
    /// {4 KB, 2 MB}. The default; byte-identical to the pre-ladder model.
    #[default]
    X86_64_2007,
    /// Modern x86-64: {4 KB, 2 MB, 1 GB}.
    X86_64_MODERN,
    /// ARM64 with the 4 KB granule: {4 KB, 64 KB contiguous, 2 MB}.
    ARM64_4K,
    /// ARM64 with the 16 KB granule: {16 KB, 2 MB contiguous, 32 MB}.
    ARM64_16K,
}

impl Arch {
    /// Every shipped preset, in presentation order.
    pub const ALL: [Arch; 4] = [
        Arch::X86_64_2007,
        Arch::X86_64_MODERN,
        Arch::ARM64_4K,
        Arch::ARM64_16K,
    ];

    /// Lowercase identifier used in store fingerprints (`;arch=…`).
    pub fn descriptor(self) -> &'static str {
        match self {
            Arch::X86_64_2007 => "x86_64_2007",
            Arch::X86_64_MODERN => "x86_64_modern",
            Arch::ARM64_4K => "arm64_4k",
            Arch::ARM64_16K => "arm64_16k",
        }
    }
}

impl MMArch for Arch {
    fn name(&self) -> &'static str {
        match self {
            Arch::X86_64_2007 => "x86-64-2007",
            Arch::X86_64_MODERN => "x86-64-modern",
            Arch::ARM64_4K => "arm64-4k",
            Arch::ARM64_16K => "arm64-16k",
        }
    }

    fn walk_shape(&self) -> WalkShape {
        match self {
            Arch::X86_64_2007 | Arch::X86_64_MODERN | Arch::ARM64_4K => WalkShape {
                base_shift: 12,
                index_bits: 9,
                levels: 4,
            },
            Arch::ARM64_16K => WalkShape {
                base_shift: 14,
                index_bits: 11,
                levels: 3,
            },
        }
    }

    fn ladder(&self) -> &'static [Rung] {
        match self {
            Arch::X86_64_2007 => &X86_64_2007_LADDER,
            Arch::X86_64_MODERN => &X86_64_MODERN_LADDER,
            Arch::ARM64_4K => &ARM64_4K_LADDER,
            Arch::ARM64_16K => &ARM64_16K_LADDER,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ladder_is_internally_consistent() {
        for arch in Arch::ALL {
            let shape = arch.walk_shape();
            let ladder = arch.ladder();
            assert!(!ladder.is_empty() && ladder.len() <= MAX_LADDER);
            assert_eq!(
                ladder[0].leaf_level, 0,
                "{arch:?}: base must be a level-0 leaf"
            );
            assert_eq!(ladder[0].replicate, 1, "{arch:?}: base is never contiguous");
            for w in ladder.windows(2) {
                assert!(w[0].size < w[1].size, "{arch:?}: ladder must ascend");
            }
            for r in ladder {
                // size = level span × replication, exactly.
                let entry_shift = shape.level_shift(r.leaf_level);
                assert!(r.replicate.is_power_of_two());
                assert_eq!(
                    r.size.shift(),
                    entry_shift + r.replicate.trailing_zeros(),
                    "{arch:?}: rung {} misdeclared",
                    r.size
                );
                // A contiguous run never crosses a table node.
                assert!(r.replicate as usize <= shape.entries_per_table());
                assert!(r.walk_levels(&shape) >= 1);
            }
        }
    }

    #[test]
    fn x86_2007_matches_the_original_model() {
        let a = Arch::X86_64_2007;
        assert_eq!(a.base(), PageSize::Small4K);
        assert_eq!(a.ladder().len(), 2);
        assert_eq!(a.rank_of(PageSize::Small4K), Some(0));
        assert_eq!(a.rank_of(PageSize::Large2M), Some(1));
        assert_eq!(a.rank_of(PageSize::Page1G), None);
        let shape = a.walk_shape();
        assert_eq!(shape.entries_per_table(), 512);
        assert_eq!(shape.table_order(), 0);
        assert_eq!(a.rung(0).walk_levels(&shape), 4);
        assert_eq!(a.rung(1).walk_levels(&shape), 3);
        assert_eq!(
            a.next_rung_above(PageSize::Small4K).unwrap().size,
            PageSize::Large2M
        );
        assert!(a.next_rung_above(PageSize::Large2M).is_none());
    }

    #[test]
    fn gigabyte_walks_are_cheaper_than_2mb_walks() {
        let a = Arch::X86_64_MODERN;
        let shape = a.walk_shape();
        assert_eq!(a.rung_of(PageSize::Page1G).unwrap().walk_levels(&shape), 2);
        assert_eq!(a.rung_of(PageSize::Large2M).unwrap().walk_levels(&shape), 3);
    }

    #[test]
    fn arm_contiguous_blocks_share_the_leaf_level() {
        let a = Arch::ARM64_4K;
        let contig = a.rung_of(PageSize::Page64K).unwrap();
        assert_eq!(contig.leaf_level, 0);
        assert_eq!(contig.replicate, 16);
        // Contiguous entries do NOT shorten the walk.
        assert_eq!(contig.walk_levels(&a.walk_shape()), 4);

        let b = Arch::ARM64_16K;
        assert_eq!(b.base(), PageSize::Page16K);
        let contig = b.rung_of(PageSize::Large2M).unwrap();
        assert_eq!(contig.replicate, 128);
        let shape = b.walk_shape();
        assert_eq!(shape.entries_per_table(), 2048);
        assert_eq!(shape.table_order(), 2, "16 KB table nodes");
        assert_eq!(b.rung_of(PageSize::Page32M).unwrap().walk_levels(&shape), 2);
    }

    #[test]
    fn walk_shape_indexing_generalizes_pt_index() {
        let x86 = Arch::X86_64_2007.walk_shape();
        let va = VirtAddr((1u64 << 12) | (2u64 << 21) | (3u64 << 30) | (4u64 << 39));
        for level in 0..4u8 {
            assert_eq!(x86.pt_index(va, level), va.pt_index(level));
        }
        let arm = Arch::ARM64_16K.walk_shape();
        let va = VirtAddr((5u64 << 14) | (6u64 << 25) | (7u64 << 36));
        assert_eq!(arm.pt_index(va, 0), 5);
        assert_eq!(arm.pt_index(va, 1), 6);
        assert_eq!(arm.pt_index(va, 2), 7);
    }

    #[test]
    fn descriptors_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for a in Arch::ALL {
            assert!(seen.insert(a.descriptor()));
        }
        assert_eq!(Arch::default(), Arch::X86_64_2007);
        assert_eq!(Arch::X86_64_2007.descriptor(), "x86_64_2007");
    }
}
