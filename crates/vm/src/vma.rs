//! Virtual memory areas and per-process address spaces.
//!
//! An [`AddressSpace`] is the analogue of a Linux `mm_struct`: an ordered
//! set of [`Vma`] regions plus the radix page table. Regions can be backed
//! anonymously (private frames) or by a shared segment (the memory-mapped
//! file through which Omni/SCASH shares the global heap between the
//! processes of one node — §3.3 of the paper). Each region has a fixed page
//! size, so a single space can mix a 4 KB-backed mailbox file with a
//! 2 MB-backed shared heap exactly the way the modified runtime does.
//!
//! Population policy is the design axis the paper argues about in §3.3
//! ("Large Page Allocation"): demand faulting is what a general-purpose OS
//! does; the paper's runtime *preallocates* (pre-touches) everything at
//! startup because an OpenMP job owns the node for its whole run.

use crate::addr::{PageSize, PhysAddr, VirtAddr};
use crate::error::{VmError, VmResult};
use crate::frame::BuddyAllocator;
use crate::hugetlbfs::SharedSegment;
use crate::page_table::{AccessKind, PageTable, PteFlags, Translation, WalkTrace};
use std::sync::Arc;

/// What backs a region's pages.
#[derive(Clone, Debug)]
pub enum Backing {
    /// Private frames allocated from the buddy allocator at fault time.
    Anonymous,
    /// A shared segment whose frames were allocated when the segment was
    /// created (hugetlbfs file or small-page shm file). Mapping processes
    /// share the same physical frames.
    Shared(Arc<SharedSegment>),
}

/// NUMA placement applied when an anonymous page is allocated at fault
/// time. This is the VM half of the machine's placement policy: the
/// machine decides which node is "local" to the faulting thread, the
/// address space decides which node the fresh frame comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodePolicy {
    /// Every anonymous page on one fixed node (the paper's master-node
    /// degenerate case when the master's node is passed).
    Fixed(usize),
    /// Round-robin `chunk`-byte virtual chunks across the nodes. The chunk
    /// is clamped up to the region's page size, so 2 MB pages interleave
    /// at 2 MB even when 4 KB interleave is requested.
    Interleave {
        /// Bytes per interleave chunk.
        chunk: u64,
    },
    /// Place each page on the node of the thread that first touches it —
    /// Linux's default policy. Pages populated without a faulting thread
    /// (eager prepopulation) fall back to node 0.
    FirstTouch,
}

/// When the pages of a freshly created mapping get populated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Populate {
    /// Map every page immediately (`MAP_POPULATE` / the paper's startup
    /// preallocation). No faults are taken later.
    Eager,
    /// Pages are mapped by the fault handler on first touch.
    OnDemand,
}

/// A contiguous virtual region with uniform backing, protection and page
/// size.
#[derive(Clone, Debug)]
pub struct Vma {
    /// First virtual address of the region.
    pub start: VirtAddr,
    /// Length in bytes (a whole number of pages).
    pub len: u64,
    /// Page size used for every mapping in the region.
    pub page_size: PageSize,
    /// Protection applied to each page.
    pub flags: PteFlags,
    /// What supplies the frames.
    pub backing: Backing,
    /// Debug name ("code", "shared-heap", "mailbox", ...).
    pub name: String,
}

impl Vma {
    /// End address (exclusive).
    pub fn end(&self) -> VirtAddr {
        self.start.add(self.len)
    }

    /// Does the region contain `va`?
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va < self.end()
    }

    /// Number of pages in the region.
    pub fn page_count(&self) -> u64 {
        self.len >> self.page_size.shift()
    }
}

/// Fault statistics for an address space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults resolved by allocating a fresh anonymous frame.
    pub anon_faults: u64,
    /// Faults resolved by mapping an existing shared frame.
    pub shared_faults: u64,
    /// Pages populated eagerly at mmap time.
    pub prepopulated: u64,
    /// Accesses that faulted on a region that does not exist (SIGSEGV).
    pub segv: u64,
}

/// The outcome of [`AddressSpace::access`]: how the translation was
/// obtained, so callers can charge the right cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The page was already mapped; `trace` is the hardware walk.
    Walked(Translation, WalkTrace),
    /// A page fault was taken and resolved, then the walk repeated.
    Faulted(Translation, WalkTrace),
}

impl AccessOutcome {
    /// The translation regardless of path.
    pub fn translation(&self) -> Translation {
        match self {
            AccessOutcome::Walked(t, _) | AccessOutcome::Faulted(t, _) => *t,
        }
    }

    /// The final successful walk trace.
    pub fn trace(&self) -> &WalkTrace {
        match self {
            AccessOutcome::Walked(_, w) | AccessOutcome::Faulted(_, w) => w,
        }
    }

    /// Whether a fault was taken.
    pub fn faulted(&self) -> bool {
        matches!(self, AccessOutcome::Faulted(..))
    }
}

/// Base of the mmap arena (above the code/static segments).
const MMAP_BASE: u64 = 0x1_0000_0000;

/// A simulated process address space.
#[derive(Debug)]
pub struct AddressSpace {
    pt: PageTable,
    vmas: Vec<Vma>, // kept sorted by start
    next_mmap: u64,
    faults: FaultStats,
    promotions: u64,
    /// `(nodes, policy)` governing anonymous frame placement; `None` keeps
    /// the allocator's default (lowest address first).
    node_policy: Option<(usize, NodePolicy)>,
}

impl AddressSpace {
    /// Create an empty x86-64-2007 address space; the page-table root is
    /// drawn from `frames`.
    pub fn new(frames: &mut BuddyAllocator) -> VmResult<Self> {
        Self::new_for(frames, crate::arch::Arch::X86_64_2007)
    }

    /// Create an empty address space whose page table is shaped for `arch`.
    pub fn new_for(frames: &mut BuddyAllocator, arch: crate::arch::Arch) -> VmResult<Self> {
        Ok(AddressSpace {
            pt: PageTable::new_for(frames, arch)?,
            vmas: Vec::new(),
            next_mmap: MMAP_BASE,
            faults: FaultStats::default(),
            promotions: 0,
            node_policy: None,
        })
    }

    /// Set the NUMA placement policy for anonymous fault-time allocations.
    pub fn set_node_policy(&mut self, nodes: usize, policy: NodePolicy) {
        self.node_policy = Some((nodes, policy));
    }

    /// The NUMA placement policy, if one was set.
    pub fn node_policy(&self) -> Option<(usize, NodePolicy)> {
        self.node_policy
    }

    /// Fault statistics snapshot.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Number of regions that have had chunks promoted to large pages.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Record that a region was (partially) promoted — called by
    /// [`crate::promote::promote_region`].
    pub(crate) fn note_promotion(&mut self, _start: VirtAddr) {
        self.promotions += 1;
    }

    /// Remove one page mapping (promotion migration path).
    pub(crate) fn unmap_page(&mut self, va: VirtAddr, size: PageSize) -> VmResult<Translation> {
        self.pt.unmap(va, size)
    }

    /// Install one page mapping (promotion migration path).
    pub(crate) fn map_page(
        &mut self,
        frames: &mut BuddyAllocator,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> VmResult<()> {
        self.pt.map(frames, va, pa, size, flags)
    }

    /// Borrow the underlying page table (for stats / direct walks).
    pub fn page_table(&self) -> &PageTable {
        &self.pt
    }

    /// Mutably borrow the page table (test scaffolding: setting up
    /// non-uniform protection without a user-visible API).
    #[cfg(test)]
    pub(crate) fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.pt
    }

    /// The regions of this space, ordered by start address.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Total bytes mapped across all regions.
    pub fn mapped_bytes(&self) -> u64 {
        self.vmas.iter().map(|v| v.len).sum()
    }

    /// Find the region containing `va`.
    pub fn find_vma(&self, va: VirtAddr) -> Option<&Vma> {
        // vmas is sorted by start; binary search for the candidate.
        let idx = self
            .vmas
            .partition_point(|v| v.start.0 <= va.0)
            .checked_sub(1)?;
        let v = &self.vmas[idx];
        v.contains(va).then_some(v)
    }

    fn find_vma_idx(&self, va: VirtAddr) -> Option<usize> {
        let idx = self
            .vmas
            .partition_point(|v| v.start.0 <= va.0)
            .checked_sub(1)?;
        self.vmas[idx].contains(va).then_some(idx)
    }

    /// Reserve a fresh virtual range of `len` bytes aligned to `size`.
    fn reserve_range(&mut self, len: u64, size: PageSize) -> VirtAddr {
        let align = size.bytes();
        let start = (self.next_mmap + align - 1) & !(align - 1);
        self.next_mmap = start + len;
        VirtAddr(start)
    }

    /// Create a mapping at a caller-chosen address (used for the fixed code
    /// segment). `start` must be size-aligned and the range must not
    /// overlap an existing region.
    #[allow(clippy::too_many_arguments)] // mirrors mmap(2)'s parameter surface
    pub fn mmap_fixed(
        &mut self,
        frames: &mut BuddyAllocator,
        start: VirtAddr,
        len: u64,
        page_size: PageSize,
        flags: PteFlags,
        backing: Backing,
        populate: Populate,
        name: &str,
    ) -> VmResult<VirtAddr> {
        if !start.is_aligned(page_size) {
            return Err(VmError::Misaligned {
                addr: start,
                size: page_size,
            });
        }
        let len = page_size.round_up(len);
        let end = start.add(len);
        if self.vmas.iter().any(|v| start < v.end() && v.start < end) {
            return Err(VmError::AlreadyMapped(start));
        }
        if let Backing::Shared(seg) = &backing {
            if seg.page_size() != page_size {
                return Err(VmError::Misaligned {
                    addr: start,
                    size: page_size,
                });
            }
            if len > seg.len_bytes() {
                return Err(VmError::OutOfRange {
                    offset: 0,
                    len,
                    object_len: seg.len_bytes(),
                });
            }
        }
        if let Backing::Shared(seg) = &backing {
            seg.note_mapped();
        }
        let vma = Vma {
            start,
            len,
            page_size,
            flags,
            backing,
            name: name.to_owned(),
        };
        let pos = self.vmas.partition_point(|v| v.start < vma.start);
        self.vmas.insert(pos, vma);
        if populate == Populate::Eager {
            self.populate_region(frames, start)?;
        }
        // keep next_mmap above fixed mappings too
        self.next_mmap = self.next_mmap.max(end.0);
        Ok(start)
    }

    /// Create a mapping at a kernel-chosen address (anonymous `mmap`).
    #[allow(clippy::too_many_arguments)]
    pub fn mmap(
        &mut self,
        frames: &mut BuddyAllocator,
        len: u64,
        page_size: PageSize,
        flags: PteFlags,
        backing: Backing,
        populate: Populate,
        name: &str,
    ) -> VmResult<VirtAddr> {
        let len = page_size.round_up(len);
        let start = self.reserve_range(len, page_size);
        self.mmap_fixed(
            frames, start, len, page_size, flags, backing, populate, name,
        )
    }

    /// Populate every not-yet-mapped page of the region containing `start`.
    /// Returns the number of pages populated.
    pub fn populate_region(
        &mut self,
        frames: &mut BuddyAllocator,
        start: VirtAddr,
    ) -> VmResult<u64> {
        let idx = self.find_vma_idx(start).ok_or(VmError::NotMapped(start))?;
        let (vstart, len, size) = {
            let v = &self.vmas[idx];
            (v.start, v.len, v.page_size)
        };
        let mut populated = 0;
        let mut off = 0;
        while off < len {
            let va = vstart.add(off);
            if self.pt.probe(va).is_none() {
                self.install_page(frames, idx, va, None)?;
                populated += 1;
            }
            off += size.bytes();
        }
        self.faults.prepopulated += populated;
        Ok(populated)
    }

    /// Install the page containing `va` for region index `idx`. For
    /// anonymous backing the frame's home node follows the space's
    /// [`NodePolicy`]; `touch` is the faulting thread's node, consumed by
    /// [`NodePolicy::FirstTouch`].
    fn install_page(
        &mut self,
        frames: &mut BuddyAllocator,
        idx: usize,
        va: VirtAddr,
        touch: Option<usize>,
    ) -> VmResult<PhysAddr> {
        let (vstart, size, flags, backing) = {
            let v = &self.vmas[idx];
            (v.start, v.page_size, v.flags, v.backing.clone())
        };
        let page_va = va.page_base(size);
        let pa = match backing {
            Backing::Anonymous => match self.node_policy {
                Some((nodes, policy)) => {
                    let node = match policy {
                        NodePolicy::Fixed(n) => n,
                        NodePolicy::Interleave { chunk } => {
                            let chunk = chunk.max(size.bytes());
                            ((page_va.0 / chunk) as usize) % nodes
                        }
                        NodePolicy::FirstTouch => touch.unwrap_or(0),
                    };
                    frames.alloc_on_node(node.min(nodes - 1), size.buddy_order())?
                }
                None => frames.alloc(size.buddy_order())?,
            },
            Backing::Shared(seg) => {
                let page_index = (page_va.0 - vstart.0) >> size.shift();
                seg.frame(page_index)?
            }
        };
        self.pt.map(frames, page_va, pa, size, flags)?;
        Ok(pa)
    }

    /// Translate an access, taking and resolving a page fault if needed.
    ///
    /// This is the path the machine model drives: a TLB miss performs
    /// `access`, charging the returned walk trace to the memory hierarchy
    /// and an additional fault cost when [`AccessOutcome::Faulted`].
    pub fn access(
        &mut self,
        frames: &mut BuddyAllocator,
        va: VirtAddr,
        kind: AccessKind,
    ) -> VmResult<AccessOutcome> {
        self.access_from(frames, va, kind, None)
    }

    /// [`access`](Self::access) with the faulting thread's NUMA node, so a
    /// demand fault under [`NodePolicy::FirstTouch`] places the fresh frame
    /// on the toucher's node.
    pub fn access_from(
        &mut self,
        frames: &mut BuddyAllocator,
        va: VirtAddr,
        kind: AccessKind,
        touch: Option<usize>,
    ) -> VmResult<AccessOutcome> {
        match self.pt.walk(va, kind) {
            Ok((t, w)) => Ok(AccessOutcome::Walked(t, w)),
            Err(VmError::NotMapped(_)) => {
                let idx = match self.find_vma_idx(va) {
                    Some(i) => i,
                    None => {
                        self.faults.segv += 1;
                        return Err(VmError::NotMapped(va));
                    }
                };
                match &self.vmas[idx].backing {
                    Backing::Anonymous => self.faults.anon_faults += 1,
                    Backing::Shared(_) => self.faults.shared_faults += 1,
                }
                self.install_page(frames, idx, va, touch)?;
                let (t, w) = self.pt.walk(va, kind)?;
                Ok(AccessOutcome::Faulted(t, w))
            }
            Err(e) => Err(e),
        }
    }

    /// A `/proc/<pid>/smaps`-style listing of the regions: name, range,
    /// page size, protection, and how many pages are installed.
    pub fn smaps(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for v in &self.vmas {
            let mut populated = 0u64;
            let mut off = 0;
            while off < v.len {
                if self.pt.probe(v.start.add(off)).is_some() {
                    populated += 1;
                }
                off += v.page_size.bytes();
            }
            let prot = format!(
                "{}{}{}",
                if v.flags.present { 'r' } else { '-' },
                if v.flags.writable { 'w' } else { '-' },
                if v.flags.executable { 'x' } else { '-' },
            );
            let _ = writeln!(
                out,
                "{:#014x}-{:#014x} {prot} {:>4} {:>8}/{:<8} {}",
                v.start.0,
                v.end().0,
                v.page_size.to_string(),
                populated,
                v.page_count(),
                v.name,
            );
        }
        out
    }

    /// Change the protection of the region containing `start` (mprotect).
    /// Updates the VMA and every installed mapping; the caller must shoot
    /// down stale TLB entries afterwards (real TLBs cache permissions).
    /// This is the mechanism SCASH's eager-release-consistency protocol
    /// uses to trap remote-page accesses — which the paper *disables* for
    /// intra-node runs (§3.3 "Memory Protection"); it is provided here for
    /// completeness of the substrate.
    pub fn mprotect(&mut self, start: VirtAddr, new_flags: PteFlags) -> VmResult<u64> {
        let idx = self.find_vma_idx(start).ok_or(VmError::NotMapped(start))?;
        self.vmas[idx].flags = new_flags;
        let (vstart, len, vsize) = {
            let v = &self.vmas[idx];
            (v.start, v.len, v.page_size)
        };
        let mut changed = 0;
        let mut off = 0;
        while off < len {
            let va = vstart.add(off);
            match self.pt.probe(va) {
                Some(t) => {
                    self.pt.protect(va, new_flags)?;
                    changed += 1;
                    off += t.size.bytes();
                }
                None => off += vsize.bytes(),
            }
        }
        Ok(changed)
    }

    /// Remove the region containing `start`, unmapping all its pages and
    /// returning anonymous frames to the allocator. Shared frames stay
    /// owned by their segment.
    pub fn munmap(&mut self, frames: &mut BuddyAllocator, start: VirtAddr) -> VmResult<()> {
        let idx = self.find_vma_idx(start).ok_or(VmError::NotMapped(start))?;
        let v = self.vmas.remove(idx);
        if let Backing::Shared(seg) = &v.backing {
            seg.note_unmapped();
        }
        // Promotion can leave a region with mixed page sizes; probe each
        // position and unmap at the size actually installed.
        let mut off = 0;
        while off < v.len {
            let va = v.start.add(off);
            match self.pt.probe(va) {
                Some(t) => {
                    let size = t.size;
                    self.pt.unmap(va, size)?;
                    if matches!(v.backing, Backing::Anonymous) {
                        frames.free(t.pa.frame_base(size), size.buddy_order());
                    }
                    off += size.bytes();
                }
                None => off += v.page_size.bytes(),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hugetlbfs::HugePool;

    fn frames() -> BuddyAllocator {
        BuddyAllocator::new(256 * 1024 * 1024)
    }

    #[test]
    fn anonymous_demand_faulting() {
        let mut f = frames();
        let mut asp = AddressSpace::new(&mut f).unwrap();
        let base = asp
            .mmap(
                &mut f,
                3 * 4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::OnDemand,
                "heap",
            )
            .unwrap();
        let out = asp
            .access(&mut f, base.add(4096), AccessKind::Write)
            .unwrap();
        assert!(out.faulted());
        // second touch of the same page: no fault
        let out = asp
            .access(&mut f, base.add(4100), AccessKind::Read)
            .unwrap();
        assert!(!out.faulted());
        assert_eq!(asp.fault_stats().anon_faults, 1);
    }

    #[test]
    fn eager_population_takes_no_faults() {
        let mut f = frames();
        let mut asp = AddressSpace::new(&mut f).unwrap();
        let base = asp
            .mmap(
                &mut f,
                8 * 4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "heap",
            )
            .unwrap();
        assert_eq!(asp.fault_stats().prepopulated, 8);
        for i in 0..8 {
            let out = asp
                .access(&mut f, base.add(i * 4096), AccessKind::Read)
                .unwrap();
            assert!(!out.faulted());
        }
        assert_eq!(asp.fault_stats().anon_faults, 0);
    }

    #[test]
    fn shared_segment_frames_are_shared_between_spaces() {
        let mut f = frames();
        let mut pool = HugePool::reserve(&mut f, 8).unwrap();
        let seg = pool
            .create_file("heap", 2 * PageSize::Large2M.bytes())
            .unwrap();
        let mut a = AddressSpace::new(&mut f).unwrap();
        let mut b = AddressSpace::new(&mut f).unwrap();
        let va_a = a
            .mmap(
                &mut f,
                seg.len_bytes(),
                PageSize::Large2M,
                PteFlags::rw(),
                Backing::Shared(seg.clone()),
                Populate::Eager,
                "shared-heap",
            )
            .unwrap();
        let va_b = b
            .mmap(
                &mut f,
                seg.len_bytes(),
                PageSize::Large2M,
                PteFlags::rw(),
                Backing::Shared(seg.clone()),
                Populate::Eager,
                "shared-heap",
            )
            .unwrap();
        let pa_a = a
            .access(&mut f, va_a.add(0x1234), AccessKind::Read)
            .unwrap();
        let pa_b = b
            .access(&mut f, va_b.add(0x1234), AccessKind::Read)
            .unwrap();
        assert_eq!(pa_a.translation().pa, pa_b.translation().pa);
    }

    #[test]
    fn segv_on_unmapped_access() {
        let mut f = frames();
        let mut asp = AddressSpace::new(&mut f).unwrap();
        let e = asp.access(&mut f, VirtAddr(0xdead_0000), AccessKind::Read);
        assert_eq!(e, Err(VmError::NotMapped(VirtAddr(0xdead_0000))));
        assert_eq!(asp.fault_stats().segv, 1);
    }

    #[test]
    fn munmap_returns_anonymous_frames() {
        let mut f = frames();
        let before = f.free_bytes();
        let mut asp = AddressSpace::new(&mut f).unwrap();
        let base = asp
            .mmap(
                &mut f,
                16 * 4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "heap",
            )
            .unwrap();
        asp.munmap(&mut f, base).unwrap();
        // Only the page-table nodes remain allocated.
        assert!(f.free_bytes() >= before - 16 * 4096);
        assert!(asp.find_vma(base).is_none());
    }

    #[test]
    fn mixed_page_sizes_in_one_space() {
        let mut f = frames();
        let mut pool = HugePool::reserve(&mut f, 4).unwrap();
        let seg = pool.create_file("big", PageSize::Large2M.bytes()).unwrap();
        let mut asp = AddressSpace::new(&mut f).unwrap();
        let small = asp
            .mmap(
                &mut f,
                4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "mailbox",
            )
            .unwrap();
        let large = asp
            .mmap(
                &mut f,
                seg.len_bytes(),
                PageSize::Large2M,
                PteFlags::rw(),
                Backing::Shared(seg),
                Populate::Eager,
                "shared-heap",
            )
            .unwrap();
        let ts = asp
            .access(&mut f, small, AccessKind::Read)
            .unwrap()
            .translation();
        let tl = asp
            .access(&mut f, large, AccessKind::Read)
            .unwrap()
            .translation();
        assert_eq!(ts.size, PageSize::Small4K);
        assert_eq!(tl.size, PageSize::Large2M);
    }

    #[test]
    fn fixed_mapping_overlap_rejected() {
        let mut f = frames();
        let mut asp = AddressSpace::new(&mut f).unwrap();
        asp.mmap_fixed(
            &mut f,
            VirtAddr(0x40_0000),
            8192,
            PageSize::Small4K,
            PteFlags::rx(),
            Backing::Anonymous,
            Populate::Eager,
            "code",
        )
        .unwrap();
        let e = asp.mmap_fixed(
            &mut f,
            VirtAddr(0x40_1000),
            4096,
            PageSize::Small4K,
            PteFlags::rw(),
            Backing::Anonymous,
            Populate::Eager,
            "overlap",
        );
        assert!(matches!(e, Err(VmError::AlreadyMapped(_))));
    }

    #[test]
    fn mprotect_changes_enforcement() {
        let mut f = frames();
        let mut asp = AddressSpace::new(&mut f).unwrap();
        let base = asp
            .mmap(
                &mut f,
                2 * 4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "data",
            )
            .unwrap();
        asp.access(&mut f, base, AccessKind::Write).unwrap();
        let changed = asp.mprotect(base, PteFlags::ro()).unwrap();
        assert_eq!(changed, 2);
        assert_eq!(
            asp.access(&mut f, base, AccessKind::Write),
            Err(VmError::ProtectionViolation(base))
        );
        assert!(asp.access(&mut f, base, AccessKind::Read).is_ok());
        // And back.
        asp.mprotect(base, PteFlags::rw()).unwrap();
        assert!(asp.access(&mut f, base, AccessKind::Write).is_ok());
    }

    #[test]
    fn mprotect_applies_to_later_faults_too() {
        let mut f = frames();
        let mut asp = AddressSpace::new(&mut f).unwrap();
        let base = asp
            .mmap(
                &mut f,
                2 * 4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::OnDemand,
                "lazy",
            )
            .unwrap();
        asp.mprotect(base, PteFlags::ro()).unwrap();
        // Page 1 was never populated; its demand fault must install the
        // *new* protection.
        assert_eq!(
            asp.access(&mut f, base.add(4096), AccessKind::Write),
            Err(VmError::ProtectionViolation(base.add(4096)))
        );
    }

    #[test]
    fn smaps_reports_regions() {
        let mut f = frames();
        let mut asp = AddressSpace::new(&mut f).unwrap();
        asp.mmap(
            &mut f,
            2 * 4096,
            PageSize::Small4K,
            PteFlags::rw(),
            Backing::Anonymous,
            Populate::OnDemand,
            "lazy-heap",
        )
        .unwrap();
        let base2 = asp
            .mmap(
                &mut f,
                4096,
                PageSize::Small4K,
                PteFlags::rx(),
                Backing::Anonymous,
                Populate::Eager,
                "code",
            )
            .unwrap();
        let _ = base2;
        let report = asp.smaps();
        assert!(report.contains("lazy-heap"));
        assert!(report.contains("code"));
        assert!(report.contains("r-x"));
        // lazy region: 0 of 2 pages populated.
        assert!(report.contains("       0/2"), "report:\n{report}");
    }

    #[test]
    fn first_touch_places_frames_on_the_touching_node() {
        let mut f = BuddyAllocator::with_nodes(256 * 1024 * 1024, 2);
        let mut asp = AddressSpace::new(&mut f).unwrap();
        asp.set_node_policy(2, NodePolicy::FirstTouch);
        let base = asp
            .mmap(
                &mut f,
                4 * 4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::OnDemand,
                "heap",
            )
            .unwrap();
        // Threads on node 1 touch pages 0-1, node 0 touches pages 2-3.
        for (i, node) in [(0, 1usize), (1, 1), (2, 0), (3, 0)] {
            let out = asp
                .access_from(&mut f, base.add(i * 4096), AccessKind::Write, Some(node))
                .unwrap();
            assert!(out.faulted());
            assert_eq!(f.node_of(out.translation().pa), node, "page {i}");
        }
    }

    #[test]
    fn interleave_policy_alternates_nodes_per_chunk() {
        let mut f = BuddyAllocator::with_nodes(256 * 1024 * 1024, 2);
        let mut asp = AddressSpace::new(&mut f).unwrap();
        asp.set_node_policy(2, NodePolicy::Interleave { chunk: 4096 });
        let base = asp
            .mmap(
                &mut f,
                8 * 4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::Eager,
                "heap",
            )
            .unwrap();
        for i in 0..8u64 {
            let t = asp.page_table().probe(base.add(i * 4096)).unwrap();
            let expect = (((base.0 + i * 4096) / 4096) % 2) as usize;
            assert_eq!(f.node_of(t.pa), expect, "page {i}");
        }
    }

    #[test]
    fn find_vma_boundaries() {
        let mut f = frames();
        let mut asp = AddressSpace::new(&mut f).unwrap();
        let base = asp
            .mmap(
                &mut f,
                2 * 4096,
                PageSize::Small4K,
                PteFlags::rw(),
                Backing::Anonymous,
                Populate::OnDemand,
                "r",
            )
            .unwrap();
        assert!(asp.find_vma(base).is_some());
        assert!(asp.find_vma(base.add(2 * 4096 - 1)).is_some());
        assert!(asp.find_vma(base.add(2 * 4096)).is_none());
    }
}
