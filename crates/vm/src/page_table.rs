//! Multi-level page tables with ladder-driven leaf sizes.
//!
//! The paper's Figure 2 walks through the Linux page-table organisation
//! (PGD → PMD → PTE page frames → data frame) and observes that translating
//! a virtual address costs one memory reference *per level*, which is what
//! the TLB exists to avoid. The radix geometry is no longer hard-coded:
//! a [`PageTable`] is built for a translation architecture
//! ([`crate::arch::Arch`]) whose [`WalkShape`] fixes the level count and
//! fan-out, and whose ladder fixes which sizes may terminate the walk at
//! which level. On x86-64 a 2 MB mapping ends the walk one level early and
//! a 1 GB mapping two levels early; on ARM64 a contiguous-bit block
//! (64 KB on the 4 KB granule, 2 MB on the 16 KB granule) writes N
//! replicated leaf entries that the TLB may cache as a single entry while
//! the walker still reads exactly one PTE. That "shorter or wider" walk —
//! and the far fewer leaf entries — is the entire mechanism behind the
//! paper's DTLB-miss reductions, so it is modelled structurally rather
//! than as a constant.
//!
//! Every table node is given a physical frame from the buddy allocator, so
//! a [`WalkTrace`] can report the exact physical addresses a hardware page
//! walker would touch; the machine model charges those to the cache
//! hierarchy (walks hit in L2 quite often in practice, which the paper's
//! cycle numbers implicitly include).

use crate::addr::{PageSize, PhysAddr, VirtAddr};
use crate::arch::{Arch, MMArch, Rung, WalkShape, MAX_LADDER};
use crate::error::{VmError, VmResult};
use crate::frame::BuddyAllocator;

/// Entries in one x86-64 table node (9 address bits per level). Other
/// architectures derive their fan-out from [`WalkShape::entries_per_table`].
pub const ENTRIES_PER_TABLE: usize = 512;
/// Bytes of one page-table entry.
pub const PTE_BYTES: u64 = 8;
/// Radix levels of the x86-64 long-mode walk (PML4, PDPT, PD, PT).
pub const LEVELS: u8 = 4;
/// Level at which an x86-64 2 MB leaf terminates the walk (the page
/// directory).
pub const LARGE_LEAF_LEVEL: u8 = 1;
/// Most levels any supported [`WalkShape`] declares (sizes [`WalkTrace`]).
pub const MAX_WALK_LEVELS: usize = 4;

/// Protection and status bits of a mapping, modelled after x86 PTE flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PteFlags {
    /// Mapping is valid.
    pub present: bool,
    /// Writes permitted.
    pub writable: bool,
    /// Instruction fetches permitted (inverse of NX).
    pub executable: bool,
    /// Set by the walker on any access.
    pub accessed: bool,
    /// Set by the walker on a write.
    pub dirty: bool,
}

impl PteFlags {
    /// Read/write data mapping.
    pub const fn rw() -> Self {
        PteFlags {
            present: true,
            writable: true,
            executable: false,
            accessed: false,
            dirty: false,
        }
    }

    /// Read-only data mapping.
    pub const fn ro() -> Self {
        PteFlags {
            present: true,
            writable: false,
            executable: false,
            accessed: false,
            dirty: false,
        }
    }

    /// Executable (code) mapping.
    pub const fn rx() -> Self {
        PteFlags {
            present: true,
            writable: false,
            executable: true,
            accessed: false,
            dirty: false,
        }
    }
}

/// One entry of a table node.
#[derive(Debug, Default)]
enum Entry {
    /// Nothing mapped below this entry.
    #[default]
    None,
    /// Pointer to the next-level table node.
    Table(Box<Node>),
    /// Terminal mapping. `pa` is the base of the whole translated block
    /// and `size` its rung size; a contiguous-bit block stores the same
    /// (pa, size) in each of its replicated entries, so any replica
    /// resolves the full block.
    Leaf {
        pa: PhysAddr,
        flags: PteFlags,
        size: PageSize,
    },
}

/// A single table node (4 KB on 9-bit levels, 16 KB on 11-bit levels).
#[derive(Debug)]
struct Node {
    /// Physical frame backing this node (for walk-cost accounting).
    frame: PhysAddr,
    entries: Box<[Entry]>,
    /// Number of non-`None` entries, for reclamation.
    live: u32,
}

impl Node {
    fn new(frame: PhysAddr, fanout: usize) -> Self {
        Node {
            frame,
            entries: (0..fanout).map(|_| Entry::None).collect(),
            live: 0,
        }
    }
}

/// The kind of access being translated; used for permission checks and for
/// setting accessed/dirty bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Fetch,
}

/// The result of a successful page walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Translated physical address (frame base + offset).
    pub pa: PhysAddr,
    /// Page size of the terminal mapping.
    pub size: PageSize,
    /// Flags of the terminal mapping.
    pub flags: PteFlags,
}

/// Physical addresses of the page-table entries a hardware walker reads,
/// root first. A base-page walk touches every level of the shape; a block
/// mapping at level L touches `levels - L` of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkTrace {
    steps: [PhysAddr; MAX_WALK_LEVELS],
    len: u8,
}

impl WalkTrace {
    fn new() -> Self {
        WalkTrace {
            steps: [PhysAddr(0); MAX_WALK_LEVELS],
            len: 0,
        }
    }

    fn push(&mut self, pa: PhysAddr) {
        self.steps[self.len as usize] = pa;
        self.len += 1;
    }

    /// Entries touched, root first.
    pub fn steps(&self) -> &[PhysAddr] {
        &self.steps[..self.len as usize]
    }

    /// Number of memory references the walk performed.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the walk touched no memory (never the case for real walks).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Counters maintained by a page table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageTableStats {
    /// Live mappings per ladder rank (rank 0 = base pages). A contiguous
    /// block counts once, not once per replicated entry.
    pub mappings: [u64; MAX_LADDER],
    /// Table nodes currently allocated (including the root).
    pub nodes: u64,
    /// Total walks performed via [`PageTable::walk`].
    pub walks: u64,
}

impl PageTableStats {
    /// Live base-page (rank 0) mappings — 4 KB on x86-64.
    pub fn small_mappings(&self) -> u64 {
        self.mappings[0]
    }

    /// Live mappings above the base rank (all block/huge sizes combined).
    pub fn large_mappings(&self) -> u64 {
        self.mappings[1..].iter().sum()
    }
}

/// A per-address-space radix page table.
#[derive(Debug)]
pub struct PageTable {
    arch: Arch,
    shape: WalkShape,
    root: Node,
    stats: PageTableStats,
}

impl PageTable {
    /// Create an empty x86-64-2007 page table, drawing the root node's
    /// frame from `frames`.
    pub fn new(frames: &mut BuddyAllocator) -> VmResult<Self> {
        Self::new_for(frames, Arch::X86_64_2007)
    }

    /// Create an empty page table shaped for `arch`.
    pub fn new_for(frames: &mut BuddyAllocator, arch: Arch) -> VmResult<Self> {
        let shape = arch.walk_shape();
        let frame = frames.alloc(shape.table_order())?;
        Ok(PageTable {
            arch,
            shape,
            root: Node::new(frame, shape.entries_per_table()),
            stats: PageTableStats {
                nodes: 1,
                ..Default::default()
            },
        })
    }

    /// The translation architecture this table was built for.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PageTableStats {
        self.stats
    }

    /// Memory consumed by table nodes themselves, in bytes. Block
    /// mappings need dramatically fewer nodes — one of the secondary
    /// benefits of large pages.
    pub fn table_bytes(&self) -> u64 {
        self.stats.nodes * self.shape.table_bytes().max(crate::addr::SMALL_PAGE_BYTES)
    }

    /// The rung describing `size`, or the unsupported-size error.
    fn rung_of(&self, size: PageSize) -> VmResult<Rung> {
        self.arch
            .rung_of(size)
            .ok_or(VmError::UnsupportedPageSize(size))
    }

    /// Map the page containing `va` to the frame at `pa` with the given
    /// size and flags. Both addresses must be size-aligned, and the size
    /// must be a rung of the table's architecture.
    pub fn map(
        &mut self,
        frames: &mut BuddyAllocator,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> VmResult<()> {
        if !va.is_aligned(size) {
            return Err(VmError::Misaligned { addr: va, size });
        }
        if pa.0 & size.offset_mask() != 0 {
            return Err(VmError::Misaligned {
                addr: VirtAddr(pa.0),
                size,
            });
        }
        let rung = self.rung_of(size)?;
        let rank = self.arch.rank_of(size).expect("rung_of checked");
        let fanout = self.shape.entries_per_table();
        let table_order = self.shape.table_order();
        let mut node = &mut self.root;
        let mut level = self.shape.levels - 1;
        while level > rung.leaf_level {
            let idx = self.shape.pt_index(va, level);
            // Descend, creating intermediate nodes as needed.
            let entry = &mut node.entries[idx];
            match entry {
                Entry::None => {
                    let frame = frames.alloc(table_order)?;
                    *entry = Entry::Table(Box::new(Node::new(frame, fanout)));
                    node.live += 1;
                    self.stats.nodes += 1;
                }
                Entry::Table(_) => {}
                Entry::Leaf { .. } => return Err(VmError::AlreadyMapped(va)),
            }
            node = match &mut node.entries[idx] {
                Entry::Table(t) => t,
                _ => unreachable!("just ensured a table entry"),
            };
            level -= 1;
        }
        let idx0 = self.shape.pt_index(va, rung.leaf_level);
        // A block mapping above level 0 may land where an (empty)
        // page-table node sits — e.g. after THP promotion unmapped the
        // base pages below it. Reclaim the empty node and take its slot.
        if rung.leaf_level > 0 {
            for i in 0..rung.replicate as usize {
                if let Entry::Table(t) = &node.entries[idx0 + i] {
                    if t.live == 0 {
                        let freed = t.frame;
                        node.entries[idx0 + i] = Entry::None;
                        node.live -= 1;
                        frames.free(freed, table_order);
                        self.stats.nodes -= 1;
                    }
                }
            }
        }
        if node.entries[idx0..idx0 + rung.replicate as usize]
            .iter()
            .any(|e| !matches!(e, Entry::None))
        {
            return Err(VmError::AlreadyMapped(va));
        }
        for e in node.entries[idx0..idx0 + rung.replicate as usize].iter_mut() {
            *e = Entry::Leaf { pa, flags, size };
        }
        node.live += rung.replicate;
        self.stats.mappings[rank] += 1;
        Ok(())
    }

    /// Remove the mapping for the page containing `va`. Returns the old
    /// translation. A contiguous block's replicated entries are all
    /// removed. Empty intermediate nodes are *not* eagerly reclaimed
    /// (as in Linux, where PGD/PMD frames persist until exit).
    pub fn unmap(&mut self, va: VirtAddr, size: PageSize) -> VmResult<Translation> {
        let rung = self.rung_of(size)?;
        let rank = self.arch.rank_of(size).expect("rung_of checked");
        let mut node = &mut self.root;
        let mut level = self.shape.levels - 1;
        while level > rung.leaf_level {
            let idx = self.shape.pt_index(va, level);
            node = match &mut node.entries[idx] {
                Entry::Table(t) => t,
                _ => return Err(VmError::NotMapped(va)),
            };
            level -= 1;
        }
        let idx0 = self.shape.pt_index(va.page_base(size), rung.leaf_level);
        match &node.entries[idx0] {
            Entry::Leaf { size: s, .. } if *s == size => {}
            _ => return Err(VmError::NotMapped(va)),
        }
        let mut out = None;
        for e in node.entries[idx0..idx0 + rung.replicate as usize].iter_mut() {
            if let Entry::Leaf { pa, flags, .. } = std::mem::take(e) {
                out.get_or_insert(Translation { pa, size, flags });
                node.live -= 1;
            }
        }
        self.stats.mappings[rank] -= 1;
        Ok(out.expect("first replica checked to be a leaf"))
    }

    /// Update the flags of an existing leaf mapping (mprotect path).
    /// Returns the page size of the mapping. All replicated entries of a
    /// contiguous block are updated together.
    pub fn protect(&mut self, va: VirtAddr, new_flags: PteFlags) -> VmResult<PageSize> {
        let arch = self.arch;
        let mut node = &mut self.root;
        let mut level = self.shape.levels - 1;
        loop {
            let idx = self.shape.pt_index(va, level);
            match &node.entries[idx] {
                Entry::None => return Err(VmError::NotMapped(va)),
                Entry::Leaf { size, .. } => {
                    let size = *size;
                    let rung = arch
                        .rung_of(size)
                        .ok_or(VmError::UnsupportedPageSize(size))?;
                    // The replica group is index-aligned because the block
                    // itself is size-aligned.
                    let idx0 = idx & !(rung.replicate as usize - 1);
                    for e in node.entries[idx0..idx0 + rung.replicate as usize].iter_mut() {
                        if let Entry::Leaf { flags, .. } = e {
                            *flags = new_flags;
                        }
                    }
                    return Ok(size);
                }
                Entry::Table(_) => {
                    if level == 0 {
                        return Err(VmError::NotMapped(va));
                    }
                    node = match &mut node.entries[idx] {
                        Entry::Table(t) => t,
                        _ => unreachable!(),
                    };
                    level -= 1;
                }
            }
        }
    }

    /// Translate `va` without permission checks or A/D updates (a "probe").
    pub fn probe(&self, va: VirtAddr) -> Option<Translation> {
        let mut node = &self.root;
        let mut level = self.shape.levels - 1;
        loop {
            let idx = self.shape.pt_index(va, level);
            match &node.entries[idx] {
                Entry::None => return None,
                Entry::Leaf { pa, flags, size } => {
                    return Some(Translation {
                        pa: pa.add(va.page_offset(*size)),
                        size: *size,
                        flags: *flags,
                    });
                }
                Entry::Table(t) => {
                    if level == 0 {
                        return None;
                    }
                    node = t;
                    level -= 1;
                }
            }
        }
    }

    /// Perform a full hardware-style walk for an access of kind `kind`,
    /// recording every table entry touched, enforcing permissions, and
    /// updating accessed/dirty bits. A contiguous block's walk reads only
    /// the one replica indexed by `va` — the contiguous hint costs the
    /// walker nothing.
    pub fn walk(&mut self, va: VirtAddr, kind: AccessKind) -> VmResult<(Translation, WalkTrace)> {
        self.stats.walks += 1;
        let mut trace = WalkTrace::new();
        let mut node = &mut self.root;
        let mut level = self.shape.levels - 1;
        loop {
            let idx = self.shape.pt_index(va, level);
            trace.push(node.frame.add(idx as u64 * PTE_BYTES));
            match &mut node.entries[idx] {
                Entry::None => return Err(VmError::NotMapped(va)),
                Entry::Leaf { pa, flags, size } => {
                    let ok = match kind {
                        AccessKind::Read => flags.present,
                        AccessKind::Write => flags.present && flags.writable,
                        AccessKind::Fetch => flags.present && flags.executable,
                    };
                    if !ok {
                        return Err(VmError::ProtectionViolation(va));
                    }
                    flags.accessed = true;
                    if kind == AccessKind::Write {
                        flags.dirty = true;
                    }
                    let t = Translation {
                        pa: pa.add(va.page_offset(*size)),
                        size: *size,
                        flags: *flags,
                    };
                    return Ok((t, trace));
                }
                Entry::Table(t) => {
                    if level == 0 {
                        return Err(VmError::NotMapped(va));
                    }
                    node = t;
                    level -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (BuddyAllocator, PageTable) {
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let pt = PageTable::new(&mut frames).unwrap();
        (frames, pt)
    }

    #[test]
    fn map_and_translate_small() {
        let (mut frames, mut pt) = fixture();
        let frame = frames.alloc(0).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x40_0000),
            frame,
            PageSize::Small4K,
            PteFlags::rw(),
        )
        .unwrap();
        let t = pt.probe(VirtAddr(0x40_0123)).unwrap();
        assert_eq!(t.pa, frame.add(0x123));
        assert_eq!(t.size, PageSize::Small4K);
    }

    #[test]
    fn map_and_translate_large() {
        let (mut frames, mut pt) = fixture();
        let frame = frames.alloc(PageSize::Large2M.buddy_order()).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x20_0000),
            frame,
            PageSize::Large2M,
            PteFlags::rw(),
        )
        .unwrap();
        let t = pt.probe(VirtAddr(0x20_0000 + 0x12_345)).unwrap();
        assert_eq!(t.pa, frame.add(0x12_345));
        assert_eq!(t.size, PageSize::Large2M);
    }

    #[test]
    fn walk_lengths_differ_by_page_size() {
        let (mut frames, mut pt) = fixture();
        let f4 = frames.alloc(0).unwrap();
        let f2m = frames.alloc(PageSize::Large2M.buddy_order()).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x1000),
            f4,
            PageSize::Small4K,
            PteFlags::rw(),
        )
        .unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x4000_0000),
            f2m,
            PageSize::Large2M,
            PteFlags::rw(),
        )
        .unwrap();
        let (_, small_trace) = pt.walk(VirtAddr(0x1000), AccessKind::Read).unwrap();
        let (_, large_trace) = pt.walk(VirtAddr(0x4000_0000), AccessKind::Read).unwrap();
        assert_eq!(small_trace.len(), LEVELS as usize);
        assert_eq!(large_trace.len(), LEVELS as usize - 1);
    }

    #[test]
    fn unsupported_size_is_rejected() {
        let (mut frames, mut pt) = fixture();
        let f = frames.alloc(PageSize::Page64K.buddy_order()).unwrap();
        assert_eq!(
            pt.map(
                &mut frames,
                VirtAddr(0x100_0000),
                f,
                PageSize::Page64K,
                PteFlags::rw()
            ),
            Err(VmError::UnsupportedPageSize(PageSize::Page64K)),
            "64 KB blocks are not an x86-64-2007 rung"
        );
    }

    #[test]
    fn gigabyte_leaf_shortens_the_walk_to_two_levels() {
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let mut pt = PageTable::new_for(&mut frames, Arch::X86_64_MODERN).unwrap();
        // The simulated extent is smaller than 1 GB, but the table layer
        // only stores the (va → pa) association; use a synthetic pa.
        pt.map(
            &mut frames,
            VirtAddr(1u64 << 30),
            PhysAddr(0),
            PageSize::Page1G,
            PteFlags::rw(),
        )
        .unwrap();
        let (t, trace) = pt
            .walk(VirtAddr((1u64 << 30) + 0xabc_def), AccessKind::Read)
            .unwrap();
        assert_eq!(t.size, PageSize::Page1G);
        assert_eq!(t.pa, PhysAddr(0xabc_def));
        assert_eq!(trace.len(), 2, "root + PDPT leaf only");
    }

    #[test]
    fn contiguous_block_replicates_leaves_but_walks_once() {
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let mut pt = PageTable::new_for(&mut frames, Arch::ARM64_4K).unwrap();
        let f = frames.alloc(PageSize::Page64K.buddy_order()).unwrap();
        let base = VirtAddr(0x100_0000);
        pt.map(&mut frames, base, f, PageSize::Page64K, PteFlags::rw())
            .unwrap();
        assert_eq!(pt.stats().mappings[1], 1, "one block mapping");
        // Every 4 KB-aligned probe inside the block resolves the block.
        for k in [0u64, 1, 7, 15] {
            let t = pt.probe(base.add(k * 4096 + 5)).unwrap();
            assert_eq!(t.size, PageSize::Page64K);
            assert_eq!(t.pa, f.add(k * 4096 + 5));
        }
        // The walk reads one PTE per level: contiguous costs nothing.
        let (_, trace) = pt.walk(base.add(9 * 4096), AccessKind::Read).unwrap();
        assert_eq!(trace.len(), 4);
        // A second block cannot land on any of the 16 replicas.
        let g = frames.alloc(0).unwrap();
        assert_eq!(
            pt.map(
                &mut frames,
                base.add(4096),
                g,
                PageSize::Small4K,
                PteFlags::rw()
            ),
            Err(VmError::AlreadyMapped(base.add(4096)))
        );
        // Unmap removes all replicas at once.
        let t = pt.unmap(base, PageSize::Page64K).unwrap();
        assert_eq!(t.pa, f);
        for k in 0..16u64 {
            assert!(pt.probe(base.add(k * 4096)).is_none(), "replica {k}");
        }
        assert_eq!(pt.stats().mappings[1], 0);
    }

    #[test]
    fn arm16k_granule_uses_wide_nodes() {
        let mut frames = BuddyAllocator::new(64 * 1024 * 1024);
        let mut pt = PageTable::new_for(&mut frames, Arch::ARM64_16K).unwrap();
        let f = frames.alloc(PageSize::Page16K.buddy_order()).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x100_0000),
            f,
            PageSize::Page16K,
            PteFlags::rw(),
        )
        .unwrap();
        let (t, trace) = pt.walk(VirtAddr(0x100_1234), AccessKind::Read).unwrap();
        assert_eq!(t.size, PageSize::Page16K);
        assert_eq!(trace.len(), 3, "three 11-bit levels");
        // One 16 KB node per level: 3 × 16 KB.
        assert_eq!(pt.table_bytes(), 3 * 16 * 1024);
    }

    #[test]
    fn walk_sets_accessed_and_dirty() {
        let (mut frames, mut pt) = fixture();
        let f = frames.alloc(0).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x1000),
            f,
            PageSize::Small4K,
            PteFlags::rw(),
        )
        .unwrap();
        let (t, _) = pt.walk(VirtAddr(0x1000), AccessKind::Read).unwrap();
        assert!(t.flags.accessed);
        assert!(!t.flags.dirty);
        let (t, _) = pt.walk(VirtAddr(0x1000), AccessKind::Write).unwrap();
        assert!(t.flags.dirty);
    }

    #[test]
    fn permission_enforcement() {
        let (mut frames, mut pt) = fixture();
        let f = frames.alloc(0).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x1000),
            f,
            PageSize::Small4K,
            PteFlags::ro(),
        )
        .unwrap();
        assert!(pt.walk(VirtAddr(0x1000), AccessKind::Read).is_ok());
        assert_eq!(
            pt.walk(VirtAddr(0x1000), AccessKind::Write),
            Err(VmError::ProtectionViolation(VirtAddr(0x1000)))
        );
        assert_eq!(
            pt.walk(VirtAddr(0x1000), AccessKind::Fetch),
            Err(VmError::ProtectionViolation(VirtAddr(0x1000)))
        );
    }

    #[test]
    fn double_map_rejected() {
        let (mut frames, mut pt) = fixture();
        let f = frames.alloc(0).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x1000),
            f,
            PageSize::Small4K,
            PteFlags::rw(),
        )
        .unwrap();
        let f2 = frames.alloc(0).unwrap();
        assert_eq!(
            pt.map(
                &mut frames,
                VirtAddr(0x1000),
                f2,
                PageSize::Small4K,
                PteFlags::rw()
            ),
            Err(VmError::AlreadyMapped(VirtAddr(0x1000)))
        );
    }

    #[test]
    fn unmap_removes_translation() {
        let (mut frames, mut pt) = fixture();
        let f = frames.alloc(0).unwrap();
        pt.map(
            &mut frames,
            VirtAddr(0x1000),
            f,
            PageSize::Small4K,
            PteFlags::rw(),
        )
        .unwrap();
        let t = pt.unmap(VirtAddr(0x1000), PageSize::Small4K).unwrap();
        assert_eq!(t.pa, f);
        assert!(pt.probe(VirtAddr(0x1000)).is_none());
        assert_eq!(
            pt.unmap(VirtAddr(0x1000), PageSize::Small4K),
            Err(VmError::NotMapped(VirtAddr(0x1000)))
        );
    }

    #[test]
    fn misaligned_map_rejected() {
        let (mut frames, mut pt) = fixture();
        let f = frames.alloc(PageSize::Large2M.buddy_order()).unwrap();
        assert!(matches!(
            pt.map(
                &mut frames,
                VirtAddr(0x1000),
                f,
                PageSize::Large2M,
                PteFlags::rw()
            ),
            Err(VmError::Misaligned { .. })
        ));
    }

    #[test]
    fn node_count_grows_much_slower_for_large_pages() {
        // Map 64 MB with 4 KB pages vs 2 MB pages and compare table overhead.
        let mut frames = BuddyAllocator::new(512 * 1024 * 1024);
        let mut small_pt = PageTable::new(&mut frames).unwrap();
        let mut large_pt = PageTable::new(&mut frames).unwrap();
        let span = 64u64 * 1024 * 1024;
        let base = 0x1_0000_0000u64;
        let mut off = 0;
        while off < span {
            let f = frames.alloc(0).unwrap();
            small_pt
                .map(
                    &mut frames,
                    VirtAddr(base + off),
                    f,
                    PageSize::Small4K,
                    PteFlags::rw(),
                )
                .unwrap();
            off += PageSize::Small4K.bytes();
        }
        let mut off = 0;
        while off < span {
            let f = frames.alloc(PageSize::Large2M.buddy_order()).unwrap();
            large_pt
                .map(
                    &mut frames,
                    VirtAddr(base + off),
                    f,
                    PageSize::Large2M,
                    PteFlags::rw(),
                )
                .unwrap();
            off += PageSize::Large2M.bytes();
        }
        assert_eq!(small_pt.stats().small_mappings(), span / 4096);
        assert_eq!(large_pt.stats().large_mappings(), span / (2 * 1024 * 1024));
        assert!(small_pt.table_bytes() > 8 * large_pt.table_bytes());
    }

    #[test]
    fn probe_of_unmapped_returns_none() {
        let (_frames, pt) = fixture();
        assert!(pt.probe(VirtAddr(0xdead_b000)).is_none());
    }
}
